file(REMOVE_RECURSE
  "libmedcc_dag.a"
)
