file(REMOVE_RECURSE
  "CMakeFiles/medcc_dag.dir/critical_path.cpp.o"
  "CMakeFiles/medcc_dag.dir/critical_path.cpp.o.d"
  "CMakeFiles/medcc_dag.dir/dot.cpp.o"
  "CMakeFiles/medcc_dag.dir/dot.cpp.o.d"
  "CMakeFiles/medcc_dag.dir/graph.cpp.o"
  "CMakeFiles/medcc_dag.dir/graph.cpp.o.d"
  "libmedcc_dag.a"
  "libmedcc_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
