# Empty dependencies file for medcc_dag.
# This may be replaced when dependencies are built.
