
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/annealing.cpp" "src/sched/CMakeFiles/medcc_sched.dir/annealing.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/annealing.cpp.o.d"
  "/root/repo/src/sched/bounds.cpp" "src/sched/CMakeFiles/medcc_sched.dir/bounds.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/bounds.cpp.o.d"
  "/root/repo/src/sched/critical_greedy.cpp" "src/sched/CMakeFiles/medcc_sched.dir/critical_greedy.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/critical_greedy.cpp.o.d"
  "/root/repo/src/sched/deadline.cpp" "src/sched/CMakeFiles/medcc_sched.dir/deadline.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/deadline.cpp.o.d"
  "/root/repo/src/sched/exhaustive.cpp" "src/sched/CMakeFiles/medcc_sched.dir/exhaustive.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/exhaustive.cpp.o.d"
  "/root/repo/src/sched/gain_loss.cpp" "src/sched/CMakeFiles/medcc_sched.dir/gain_loss.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/gain_loss.cpp.o.d"
  "/root/repo/src/sched/genetic.cpp" "src/sched/CMakeFiles/medcc_sched.dir/genetic.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/genetic.cpp.o.d"
  "/root/repo/src/sched/hbmct.cpp" "src/sched/CMakeFiles/medcc_sched.dir/hbmct.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/hbmct.cpp.o.d"
  "/root/repo/src/sched/heft.cpp" "src/sched/CMakeFiles/medcc_sched.dir/heft.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/heft.cpp.o.d"
  "/root/repo/src/sched/instance.cpp" "src/sched/CMakeFiles/medcc_sched.dir/instance.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/instance.cpp.o.d"
  "/root/repo/src/sched/lower_bound.cpp" "src/sched/CMakeFiles/medcc_sched.dir/lower_bound.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/lower_bound.cpp.o.d"
  "/root/repo/src/sched/mckp.cpp" "src/sched/CMakeFiles/medcc_sched.dir/mckp.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/mckp.cpp.o.d"
  "/root/repo/src/sched/pcp.cpp" "src/sched/CMakeFiles/medcc_sched.dir/pcp.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/pcp.cpp.o.d"
  "/root/repo/src/sched/reuse_aware.cpp" "src/sched/CMakeFiles/medcc_sched.dir/reuse_aware.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/reuse_aware.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/medcc_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/vm_reuse.cpp" "src/sched/CMakeFiles/medcc_sched.dir/vm_reuse.cpp.o" "gcc" "src/sched/CMakeFiles/medcc_sched.dir/vm_reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/medcc_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/medcc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/medcc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/medcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
