# Empty compiler generated dependencies file for medcc_sched.
# This may be replaced when dependencies are built.
