file(REMOVE_RECURSE
  "libmedcc_sched.a"
)
