# Empty compiler generated dependencies file for medcc_cloud.
# This may be replaced when dependencies are built.
