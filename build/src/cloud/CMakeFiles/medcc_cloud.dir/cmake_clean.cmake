file(REMOVE_RECURSE
  "CMakeFiles/medcc_cloud.dir/billing.cpp.o"
  "CMakeFiles/medcc_cloud.dir/billing.cpp.o.d"
  "CMakeFiles/medcc_cloud.dir/cost_model.cpp.o"
  "CMakeFiles/medcc_cloud.dir/cost_model.cpp.o.d"
  "CMakeFiles/medcc_cloud.dir/vm_type.cpp.o"
  "CMakeFiles/medcc_cloud.dir/vm_type.cpp.o.d"
  "libmedcc_cloud.a"
  "libmedcc_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
