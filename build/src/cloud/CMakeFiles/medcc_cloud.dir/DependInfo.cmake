
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cpp" "src/cloud/CMakeFiles/medcc_cloud.dir/billing.cpp.o" "gcc" "src/cloud/CMakeFiles/medcc_cloud.dir/billing.cpp.o.d"
  "/root/repo/src/cloud/cost_model.cpp" "src/cloud/CMakeFiles/medcc_cloud.dir/cost_model.cpp.o" "gcc" "src/cloud/CMakeFiles/medcc_cloud.dir/cost_model.cpp.o.d"
  "/root/repo/src/cloud/vm_type.cpp" "src/cloud/CMakeFiles/medcc_cloud.dir/vm_type.cpp.o" "gcc" "src/cloud/CMakeFiles/medcc_cloud.dir/vm_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/medcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
