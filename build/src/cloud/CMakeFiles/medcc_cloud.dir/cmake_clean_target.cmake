file(REMOVE_RECURSE
  "libmedcc_cloud.a"
)
