# Empty dependencies file for medcc_multicloud.
# This may be replaced when dependencies are built.
