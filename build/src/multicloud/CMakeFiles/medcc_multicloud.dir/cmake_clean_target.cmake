file(REMOVE_RECURSE
  "libmedcc_multicloud.a"
)
