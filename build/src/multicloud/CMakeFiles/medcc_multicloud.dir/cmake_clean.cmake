file(REMOVE_RECURSE
  "CMakeFiles/medcc_multicloud.dir/multicloud.cpp.o"
  "CMakeFiles/medcc_multicloud.dir/multicloud.cpp.o.d"
  "libmedcc_multicloud.a"
  "libmedcc_multicloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_multicloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
