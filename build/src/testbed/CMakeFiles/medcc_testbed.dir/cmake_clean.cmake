file(REMOVE_RECURSE
  "CMakeFiles/medcc_testbed.dir/nimbus.cpp.o"
  "CMakeFiles/medcc_testbed.dir/nimbus.cpp.o.d"
  "CMakeFiles/medcc_testbed.dir/programs.cpp.o"
  "CMakeFiles/medcc_testbed.dir/programs.cpp.o.d"
  "CMakeFiles/medcc_testbed.dir/runner.cpp.o"
  "CMakeFiles/medcc_testbed.dir/runner.cpp.o.d"
  "CMakeFiles/medcc_testbed.dir/wrf_experiment.cpp.o"
  "CMakeFiles/medcc_testbed.dir/wrf_experiment.cpp.o.d"
  "libmedcc_testbed.a"
  "libmedcc_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
