
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/nimbus.cpp" "src/testbed/CMakeFiles/medcc_testbed.dir/nimbus.cpp.o" "gcc" "src/testbed/CMakeFiles/medcc_testbed.dir/nimbus.cpp.o.d"
  "/root/repo/src/testbed/programs.cpp" "src/testbed/CMakeFiles/medcc_testbed.dir/programs.cpp.o" "gcc" "src/testbed/CMakeFiles/medcc_testbed.dir/programs.cpp.o.d"
  "/root/repo/src/testbed/runner.cpp" "src/testbed/CMakeFiles/medcc_testbed.dir/runner.cpp.o" "gcc" "src/testbed/CMakeFiles/medcc_testbed.dir/runner.cpp.o.d"
  "/root/repo/src/testbed/wrf_experiment.cpp" "src/testbed/CMakeFiles/medcc_testbed.dir/wrf_experiment.cpp.o" "gcc" "src/testbed/CMakeFiles/medcc_testbed.dir/wrf_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/medcc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/medcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/medcc_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/medcc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/medcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/medcc_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
