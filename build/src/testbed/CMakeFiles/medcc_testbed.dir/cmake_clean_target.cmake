file(REMOVE_RECURSE
  "libmedcc_testbed.a"
)
