# Empty dependencies file for medcc_testbed.
# This may be replaced when dependencies are built.
