file(REMOVE_RECURSE
  "CMakeFiles/medcc_sim.dir/bandwidth.cpp.o"
  "CMakeFiles/medcc_sim.dir/bandwidth.cpp.o.d"
  "CMakeFiles/medcc_sim.dir/datacenter.cpp.o"
  "CMakeFiles/medcc_sim.dir/datacenter.cpp.o.d"
  "CMakeFiles/medcc_sim.dir/dynamic.cpp.o"
  "CMakeFiles/medcc_sim.dir/dynamic.cpp.o.d"
  "CMakeFiles/medcc_sim.dir/engine.cpp.o"
  "CMakeFiles/medcc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/medcc_sim.dir/executor.cpp.o"
  "CMakeFiles/medcc_sim.dir/executor.cpp.o.d"
  "CMakeFiles/medcc_sim.dir/gantt.cpp.o"
  "CMakeFiles/medcc_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/medcc_sim.dir/trace.cpp.o"
  "CMakeFiles/medcc_sim.dir/trace.cpp.o.d"
  "libmedcc_sim.a"
  "libmedcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
