# Empty compiler generated dependencies file for medcc_sim.
# This may be replaced when dependencies are built.
