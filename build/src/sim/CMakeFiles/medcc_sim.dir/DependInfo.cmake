
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bandwidth.cpp" "src/sim/CMakeFiles/medcc_sim.dir/bandwidth.cpp.o" "gcc" "src/sim/CMakeFiles/medcc_sim.dir/bandwidth.cpp.o.d"
  "/root/repo/src/sim/datacenter.cpp" "src/sim/CMakeFiles/medcc_sim.dir/datacenter.cpp.o" "gcc" "src/sim/CMakeFiles/medcc_sim.dir/datacenter.cpp.o.d"
  "/root/repo/src/sim/dynamic.cpp" "src/sim/CMakeFiles/medcc_sim.dir/dynamic.cpp.o" "gcc" "src/sim/CMakeFiles/medcc_sim.dir/dynamic.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/medcc_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/medcc_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/sim/CMakeFiles/medcc_sim.dir/executor.cpp.o" "gcc" "src/sim/CMakeFiles/medcc_sim.dir/executor.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/medcc_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/medcc_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/medcc_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/medcc_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/medcc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/medcc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/medcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/medcc_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/medcc_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
