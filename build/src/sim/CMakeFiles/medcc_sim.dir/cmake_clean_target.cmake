file(REMOVE_RECURSE
  "libmedcc_sim.a"
)
