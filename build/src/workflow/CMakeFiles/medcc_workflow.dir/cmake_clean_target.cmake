file(REMOVE_RECURSE
  "libmedcc_workflow.a"
)
