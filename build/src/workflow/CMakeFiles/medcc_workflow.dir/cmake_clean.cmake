file(REMOVE_RECURSE
  "CMakeFiles/medcc_workflow.dir/clustering.cpp.o"
  "CMakeFiles/medcc_workflow.dir/clustering.cpp.o.d"
  "CMakeFiles/medcc_workflow.dir/dax.cpp.o"
  "CMakeFiles/medcc_workflow.dir/dax.cpp.o.d"
  "CMakeFiles/medcc_workflow.dir/io.cpp.o"
  "CMakeFiles/medcc_workflow.dir/io.cpp.o.d"
  "CMakeFiles/medcc_workflow.dir/patterns.cpp.o"
  "CMakeFiles/medcc_workflow.dir/patterns.cpp.o.d"
  "CMakeFiles/medcc_workflow.dir/random_workflow.cpp.o"
  "CMakeFiles/medcc_workflow.dir/random_workflow.cpp.o.d"
  "CMakeFiles/medcc_workflow.dir/workflow.cpp.o"
  "CMakeFiles/medcc_workflow.dir/workflow.cpp.o.d"
  "CMakeFiles/medcc_workflow.dir/wrf.cpp.o"
  "CMakeFiles/medcc_workflow.dir/wrf.cpp.o.d"
  "libmedcc_workflow.a"
  "libmedcc_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
