
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/clustering.cpp" "src/workflow/CMakeFiles/medcc_workflow.dir/clustering.cpp.o" "gcc" "src/workflow/CMakeFiles/medcc_workflow.dir/clustering.cpp.o.d"
  "/root/repo/src/workflow/dax.cpp" "src/workflow/CMakeFiles/medcc_workflow.dir/dax.cpp.o" "gcc" "src/workflow/CMakeFiles/medcc_workflow.dir/dax.cpp.o.d"
  "/root/repo/src/workflow/io.cpp" "src/workflow/CMakeFiles/medcc_workflow.dir/io.cpp.o" "gcc" "src/workflow/CMakeFiles/medcc_workflow.dir/io.cpp.o.d"
  "/root/repo/src/workflow/patterns.cpp" "src/workflow/CMakeFiles/medcc_workflow.dir/patterns.cpp.o" "gcc" "src/workflow/CMakeFiles/medcc_workflow.dir/patterns.cpp.o.d"
  "/root/repo/src/workflow/random_workflow.cpp" "src/workflow/CMakeFiles/medcc_workflow.dir/random_workflow.cpp.o" "gcc" "src/workflow/CMakeFiles/medcc_workflow.dir/random_workflow.cpp.o.d"
  "/root/repo/src/workflow/workflow.cpp" "src/workflow/CMakeFiles/medcc_workflow.dir/workflow.cpp.o" "gcc" "src/workflow/CMakeFiles/medcc_workflow.dir/workflow.cpp.o.d"
  "/root/repo/src/workflow/wrf.cpp" "src/workflow/CMakeFiles/medcc_workflow.dir/wrf.cpp.o" "gcc" "src/workflow/CMakeFiles/medcc_workflow.dir/wrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dag/CMakeFiles/medcc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/medcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
