# Empty compiler generated dependencies file for medcc_workflow.
# This may be replaced when dependencies are built.
