file(REMOVE_RECURSE
  "libmedcc_util.a"
)
