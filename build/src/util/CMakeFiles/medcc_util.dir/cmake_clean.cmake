file(REMOVE_RECURSE
  "CMakeFiles/medcc_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/medcc_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/medcc_util.dir/error.cpp.o"
  "CMakeFiles/medcc_util.dir/error.cpp.o.d"
  "CMakeFiles/medcc_util.dir/log.cpp.o"
  "CMakeFiles/medcc_util.dir/log.cpp.o.d"
  "CMakeFiles/medcc_util.dir/prng.cpp.o"
  "CMakeFiles/medcc_util.dir/prng.cpp.o.d"
  "CMakeFiles/medcc_util.dir/stats.cpp.o"
  "CMakeFiles/medcc_util.dir/stats.cpp.o.d"
  "CMakeFiles/medcc_util.dir/table.cpp.o"
  "CMakeFiles/medcc_util.dir/table.cpp.o.d"
  "CMakeFiles/medcc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/medcc_util.dir/thread_pool.cpp.o.d"
  "libmedcc_util.a"
  "libmedcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
