# Empty dependencies file for medcc_util.
# This may be replaced when dependencies are built.
