file(REMOVE_RECURSE
  "CMakeFiles/medcc_expr.dir/compare.cpp.o"
  "CMakeFiles/medcc_expr.dir/compare.cpp.o.d"
  "CMakeFiles/medcc_expr.dir/instance_gen.cpp.o"
  "CMakeFiles/medcc_expr.dir/instance_gen.cpp.o.d"
  "CMakeFiles/medcc_expr.dir/robustness.cpp.o"
  "CMakeFiles/medcc_expr.dir/robustness.cpp.o.d"
  "libmedcc_expr.a"
  "libmedcc_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
