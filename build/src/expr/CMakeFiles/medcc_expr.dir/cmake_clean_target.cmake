file(REMOVE_RECURSE
  "libmedcc_expr.a"
)
