# Empty compiler generated dependencies file for medcc_expr.
# This may be replaced when dependencies are built.
