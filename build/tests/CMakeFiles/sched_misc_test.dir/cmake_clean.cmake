file(REMOVE_RECURSE
  "CMakeFiles/sched_misc_test.dir/sched_misc_test.cpp.o"
  "CMakeFiles/sched_misc_test.dir/sched_misc_test.cpp.o.d"
  "sched_misc_test"
  "sched_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
