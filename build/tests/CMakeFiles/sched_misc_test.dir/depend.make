# Empty dependencies file for sched_misc_test.
# This may be replaced when dependencies are built.
