# Empty compiler generated dependencies file for sched_vm_reuse_test.
# This may be replaced when dependencies are built.
