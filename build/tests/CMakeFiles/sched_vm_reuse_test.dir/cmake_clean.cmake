file(REMOVE_RECURSE
  "CMakeFiles/sched_vm_reuse_test.dir/sched_vm_reuse_test.cpp.o"
  "CMakeFiles/sched_vm_reuse_test.dir/sched_vm_reuse_test.cpp.o.d"
  "sched_vm_reuse_test"
  "sched_vm_reuse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_vm_reuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
