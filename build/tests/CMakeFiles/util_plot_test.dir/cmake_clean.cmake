file(REMOVE_RECURSE
  "CMakeFiles/util_plot_test.dir/util_plot_test.cpp.o"
  "CMakeFiles/util_plot_test.dir/util_plot_test.cpp.o.d"
  "util_plot_test"
  "util_plot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
