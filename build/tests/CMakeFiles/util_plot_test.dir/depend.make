# Empty dependencies file for util_plot_test.
# This may be replaced when dependencies are built.
