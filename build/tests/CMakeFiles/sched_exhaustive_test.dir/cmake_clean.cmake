file(REMOVE_RECURSE
  "CMakeFiles/sched_exhaustive_test.dir/sched_exhaustive_test.cpp.o"
  "CMakeFiles/sched_exhaustive_test.dir/sched_exhaustive_test.cpp.o.d"
  "sched_exhaustive_test"
  "sched_exhaustive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
