# Empty dependencies file for sched_exhaustive_test.
# This may be replaced when dependencies are built.
