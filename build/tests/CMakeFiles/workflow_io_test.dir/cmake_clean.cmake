file(REMOVE_RECURSE
  "CMakeFiles/workflow_io_test.dir/workflow_io_test.cpp.o"
  "CMakeFiles/workflow_io_test.dir/workflow_io_test.cpp.o.d"
  "workflow_io_test"
  "workflow_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
