# Empty compiler generated dependencies file for sched_cg_trace_test.
# This may be replaced when dependencies are built.
