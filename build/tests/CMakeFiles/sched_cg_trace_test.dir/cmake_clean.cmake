file(REMOVE_RECURSE
  "CMakeFiles/sched_cg_trace_test.dir/sched_cg_trace_test.cpp.o"
  "CMakeFiles/sched_cg_trace_test.dir/sched_cg_trace_test.cpp.o.d"
  "sched_cg_trace_test"
  "sched_cg_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_cg_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
