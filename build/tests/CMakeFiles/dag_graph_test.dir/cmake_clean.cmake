file(REMOVE_RECURSE
  "CMakeFiles/dag_graph_test.dir/dag_graph_test.cpp.o"
  "CMakeFiles/dag_graph_test.dir/dag_graph_test.cpp.o.d"
  "dag_graph_test"
  "dag_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
