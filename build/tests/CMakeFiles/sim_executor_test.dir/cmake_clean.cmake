file(REMOVE_RECURSE
  "CMakeFiles/sim_executor_test.dir/sim_executor_test.cpp.o"
  "CMakeFiles/sim_executor_test.dir/sim_executor_test.cpp.o.d"
  "sim_executor_test"
  "sim_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
