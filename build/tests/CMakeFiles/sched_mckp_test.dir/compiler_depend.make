# Empty compiler generated dependencies file for sched_mckp_test.
# This may be replaced when dependencies are built.
