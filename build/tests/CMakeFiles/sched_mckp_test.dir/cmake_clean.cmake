file(REMOVE_RECURSE
  "CMakeFiles/sched_mckp_test.dir/sched_mckp_test.cpp.o"
  "CMakeFiles/sched_mckp_test.dir/sched_mckp_test.cpp.o.d"
  "sched_mckp_test"
  "sched_mckp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_mckp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
