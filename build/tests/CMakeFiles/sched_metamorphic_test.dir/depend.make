# Empty dependencies file for sched_metamorphic_test.
# This may be replaced when dependencies are built.
