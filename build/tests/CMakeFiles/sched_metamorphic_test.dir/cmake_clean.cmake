file(REMOVE_RECURSE
  "CMakeFiles/sched_metamorphic_test.dir/sched_metamorphic_test.cpp.o"
  "CMakeFiles/sched_metamorphic_test.dir/sched_metamorphic_test.cpp.o.d"
  "sched_metamorphic_test"
  "sched_metamorphic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_metamorphic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
