# Empty compiler generated dependencies file for workflow_patterns_test.
# This may be replaced when dependencies are built.
