file(REMOVE_RECURSE
  "CMakeFiles/workflow_patterns_test.dir/workflow_patterns_test.cpp.o"
  "CMakeFiles/workflow_patterns_test.dir/workflow_patterns_test.cpp.o.d"
  "workflow_patterns_test"
  "workflow_patterns_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
