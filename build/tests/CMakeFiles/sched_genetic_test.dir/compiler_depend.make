# Empty compiler generated dependencies file for sched_genetic_test.
# This may be replaced when dependencies are built.
