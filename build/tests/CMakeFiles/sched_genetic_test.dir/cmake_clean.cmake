file(REMOVE_RECURSE
  "CMakeFiles/sched_genetic_test.dir/sched_genetic_test.cpp.o"
  "CMakeFiles/sched_genetic_test.dir/sched_genetic_test.cpp.o.d"
  "sched_genetic_test"
  "sched_genetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_genetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
