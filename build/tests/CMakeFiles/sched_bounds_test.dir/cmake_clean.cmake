file(REMOVE_RECURSE
  "CMakeFiles/sched_bounds_test.dir/sched_bounds_test.cpp.o"
  "CMakeFiles/sched_bounds_test.dir/sched_bounds_test.cpp.o.d"
  "sched_bounds_test"
  "sched_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
