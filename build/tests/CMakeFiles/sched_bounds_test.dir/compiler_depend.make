# Empty compiler generated dependencies file for sched_bounds_test.
# This may be replaced when dependencies are built.
