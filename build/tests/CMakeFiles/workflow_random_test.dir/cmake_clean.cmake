file(REMOVE_RECURSE
  "CMakeFiles/workflow_random_test.dir/workflow_random_test.cpp.o"
  "CMakeFiles/workflow_random_test.dir/workflow_random_test.cpp.o.d"
  "workflow_random_test"
  "workflow_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
