# Empty compiler generated dependencies file for workflow_random_test.
# This may be replaced when dependencies are built.
