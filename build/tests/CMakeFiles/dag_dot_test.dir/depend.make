# Empty dependencies file for dag_dot_test.
# This may be replaced when dependencies are built.
