file(REMOVE_RECURSE
  "CMakeFiles/dag_dot_test.dir/dag_dot_test.cpp.o"
  "CMakeFiles/dag_dot_test.dir/dag_dot_test.cpp.o.d"
  "dag_dot_test"
  "dag_dot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
