# Empty dependencies file for sched_gain_loss_test.
# This may be replaced when dependencies are built.
