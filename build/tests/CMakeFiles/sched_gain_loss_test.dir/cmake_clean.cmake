file(REMOVE_RECURSE
  "CMakeFiles/sched_gain_loss_test.dir/sched_gain_loss_test.cpp.o"
  "CMakeFiles/sched_gain_loss_test.dir/sched_gain_loss_test.cpp.o.d"
  "sched_gain_loss_test"
  "sched_gain_loss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_gain_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
