file(REMOVE_RECURSE
  "CMakeFiles/expr_robustness_test.dir/expr_robustness_test.cpp.o"
  "CMakeFiles/expr_robustness_test.dir/expr_robustness_test.cpp.o.d"
  "expr_robustness_test"
  "expr_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
