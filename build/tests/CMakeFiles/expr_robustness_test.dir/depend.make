# Empty dependencies file for expr_robustness_test.
# This may be replaced when dependencies are built.
