
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/expr_test.cpp" "tests/CMakeFiles/expr_test.dir/expr_test.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/medcc_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/medcc_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/medcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/multicloud/CMakeFiles/medcc_multicloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/medcc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/medcc_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/medcc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/medcc_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/medcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
