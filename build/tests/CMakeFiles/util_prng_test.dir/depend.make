# Empty dependencies file for util_prng_test.
# This may be replaced when dependencies are built.
