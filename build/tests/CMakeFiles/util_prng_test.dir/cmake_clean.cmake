file(REMOVE_RECURSE
  "CMakeFiles/util_prng_test.dir/util_prng_test.cpp.o"
  "CMakeFiles/util_prng_test.dir/util_prng_test.cpp.o.d"
  "util_prng_test"
  "util_prng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_prng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
