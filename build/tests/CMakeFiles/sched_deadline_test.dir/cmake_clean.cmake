file(REMOVE_RECURSE
  "CMakeFiles/sched_deadline_test.dir/sched_deadline_test.cpp.o"
  "CMakeFiles/sched_deadline_test.dir/sched_deadline_test.cpp.o.d"
  "sched_deadline_test"
  "sched_deadline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_deadline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
