# Empty dependencies file for sched_deadline_test.
# This may be replaced when dependencies are built.
