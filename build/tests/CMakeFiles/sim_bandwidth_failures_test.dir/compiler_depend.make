# Empty compiler generated dependencies file for sim_bandwidth_failures_test.
# This may be replaced when dependencies are built.
