file(REMOVE_RECURSE
  "CMakeFiles/sim_bandwidth_failures_test.dir/sim_bandwidth_failures_test.cpp.o"
  "CMakeFiles/sim_bandwidth_failures_test.dir/sim_bandwidth_failures_test.cpp.o.d"
  "sim_bandwidth_failures_test"
  "sim_bandwidth_failures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_bandwidth_failures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
