# Empty compiler generated dependencies file for workflow_dax_test.
# This may be replaced when dependencies are built.
