file(REMOVE_RECURSE
  "CMakeFiles/workflow_dax_test.dir/workflow_dax_test.cpp.o"
  "CMakeFiles/workflow_dax_test.dir/workflow_dax_test.cpp.o.d"
  "workflow_dax_test"
  "workflow_dax_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_dax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
