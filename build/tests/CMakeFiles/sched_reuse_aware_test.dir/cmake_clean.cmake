file(REMOVE_RECURSE
  "CMakeFiles/sched_reuse_aware_test.dir/sched_reuse_aware_test.cpp.o"
  "CMakeFiles/sched_reuse_aware_test.dir/sched_reuse_aware_test.cpp.o.d"
  "sched_reuse_aware_test"
  "sched_reuse_aware_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_reuse_aware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
