# Empty compiler generated dependencies file for sched_reuse_aware_test.
# This may be replaced when dependencies are built.
