# Empty compiler generated dependencies file for workflow_wrf_test.
# This may be replaced when dependencies are built.
