file(REMOVE_RECURSE
  "CMakeFiles/workflow_wrf_test.dir/workflow_wrf_test.cpp.o"
  "CMakeFiles/workflow_wrf_test.dir/workflow_wrf_test.cpp.o.d"
  "workflow_wrf_test"
  "workflow_wrf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_wrf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
