file(REMOVE_RECURSE
  "CMakeFiles/sched_annealing_test.dir/sched_annealing_test.cpp.o"
  "CMakeFiles/sched_annealing_test.dir/sched_annealing_test.cpp.o.d"
  "sched_annealing_test"
  "sched_annealing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_annealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
