file(REMOVE_RECURSE
  "CMakeFiles/workflow_model_test.dir/workflow_model_test.cpp.o"
  "CMakeFiles/workflow_model_test.dir/workflow_model_test.cpp.o.d"
  "workflow_model_test"
  "workflow_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
