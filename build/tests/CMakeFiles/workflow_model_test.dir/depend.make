# Empty dependencies file for workflow_model_test.
# This may be replaced when dependencies are built.
