file(REMOVE_RECURSE
  "CMakeFiles/sched_pcp_test.dir/sched_pcp_test.cpp.o"
  "CMakeFiles/sched_pcp_test.dir/sched_pcp_test.cpp.o.d"
  "sched_pcp_test"
  "sched_pcp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_pcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
