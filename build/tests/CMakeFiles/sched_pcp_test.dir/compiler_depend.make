# Empty compiler generated dependencies file for sched_pcp_test.
# This may be replaced when dependencies are built.
