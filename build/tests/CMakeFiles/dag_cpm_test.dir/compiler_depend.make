# Empty compiler generated dependencies file for dag_cpm_test.
# This may be replaced when dependencies are built.
