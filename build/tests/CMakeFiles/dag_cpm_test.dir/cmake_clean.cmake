file(REMOVE_RECURSE
  "CMakeFiles/dag_cpm_test.dir/dag_cpm_test.cpp.o"
  "CMakeFiles/dag_cpm_test.dir/dag_cpm_test.cpp.o.d"
  "dag_cpm_test"
  "dag_cpm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_cpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
