file(REMOVE_RECURSE
  "CMakeFiles/sched_instance_test.dir/sched_instance_test.cpp.o"
  "CMakeFiles/sched_instance_test.dir/sched_instance_test.cpp.o.d"
  "sched_instance_test"
  "sched_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
