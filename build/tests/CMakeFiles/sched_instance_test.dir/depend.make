# Empty dependencies file for sched_instance_test.
# This may be replaced when dependencies are built.
