file(REMOVE_RECURSE
  "CMakeFiles/sim_dynamic_test.dir/sim_dynamic_test.cpp.o"
  "CMakeFiles/sim_dynamic_test.dir/sim_dynamic_test.cpp.o.d"
  "sim_dynamic_test"
  "sim_dynamic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
