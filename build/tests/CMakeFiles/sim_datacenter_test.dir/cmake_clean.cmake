file(REMOVE_RECURSE
  "CMakeFiles/sim_datacenter_test.dir/sim_datacenter_test.cpp.o"
  "CMakeFiles/sim_datacenter_test.dir/sim_datacenter_test.cpp.o.d"
  "sim_datacenter_test"
  "sim_datacenter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_datacenter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
