# Empty dependencies file for sim_datacenter_test.
# This may be replaced when dependencies are built.
