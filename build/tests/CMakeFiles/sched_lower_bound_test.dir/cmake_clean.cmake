file(REMOVE_RECURSE
  "CMakeFiles/sched_lower_bound_test.dir/sched_lower_bound_test.cpp.o"
  "CMakeFiles/sched_lower_bound_test.dir/sched_lower_bound_test.cpp.o.d"
  "sched_lower_bound_test"
  "sched_lower_bound_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_lower_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
