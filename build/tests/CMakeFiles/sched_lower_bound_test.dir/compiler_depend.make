# Empty compiler generated dependencies file for sched_lower_bound_test.
# This may be replaced when dependencies are built.
