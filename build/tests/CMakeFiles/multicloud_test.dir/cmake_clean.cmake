file(REMOVE_RECURSE
  "CMakeFiles/multicloud_test.dir/multicloud_test.cpp.o"
  "CMakeFiles/multicloud_test.dir/multicloud_test.cpp.o.d"
  "multicloud_test"
  "multicloud_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicloud_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
