# Empty dependencies file for multicloud_test.
# This may be replaced when dependencies are built.
