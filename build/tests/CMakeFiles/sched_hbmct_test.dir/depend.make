# Empty dependencies file for sched_hbmct_test.
# This may be replaced when dependencies are built.
