file(REMOVE_RECURSE
  "CMakeFiles/sched_hbmct_test.dir/sched_hbmct_test.cpp.o"
  "CMakeFiles/sched_hbmct_test.dir/sched_hbmct_test.cpp.o.d"
  "sched_hbmct_test"
  "sched_hbmct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_hbmct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
