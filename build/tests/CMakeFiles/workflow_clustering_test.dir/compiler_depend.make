# Empty compiler generated dependencies file for workflow_clustering_test.
# This may be replaced when dependencies are built.
