file(REMOVE_RECURSE
  "CMakeFiles/workflow_clustering_test.dir/workflow_clustering_test.cpp.o"
  "CMakeFiles/workflow_clustering_test.dir/workflow_clustering_test.cpp.o.d"
  "workflow_clustering_test"
  "workflow_clustering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
