file(REMOVE_RECURSE
  "CMakeFiles/sim_gantt_test.dir/sim_gantt_test.cpp.o"
  "CMakeFiles/sim_gantt_test.dir/sim_gantt_test.cpp.o.d"
  "sim_gantt_test"
  "sim_gantt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_gantt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
