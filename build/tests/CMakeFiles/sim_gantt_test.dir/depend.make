# Empty dependencies file for sim_gantt_test.
# This may be replaced when dependencies are built.
