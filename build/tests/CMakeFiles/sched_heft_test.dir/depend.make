# Empty dependencies file for sched_heft_test.
# This may be replaced when dependencies are built.
