file(REMOVE_RECURSE
  "CMakeFiles/sched_heft_test.dir/sched_heft_test.cpp.o"
  "CMakeFiles/sched_heft_test.dir/sched_heft_test.cpp.o.d"
  "sched_heft_test"
  "sched_heft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_heft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
