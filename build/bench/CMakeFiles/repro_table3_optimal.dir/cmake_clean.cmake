file(REMOVE_RECURSE
  "CMakeFiles/repro_table3_optimal.dir/repro_table3_optimal.cpp.o"
  "CMakeFiles/repro_table3_optimal.dir/repro_table3_optimal.cpp.o.d"
  "repro_table3_optimal"
  "repro_table3_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table3_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
