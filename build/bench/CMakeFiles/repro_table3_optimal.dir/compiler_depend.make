# Empty compiler generated dependencies file for repro_table3_optimal.
# This may be replaced when dependencies are built.
