# Empty dependencies file for ablation_static_vs_dynamic.
# This may be replaced when dependencies are built.
