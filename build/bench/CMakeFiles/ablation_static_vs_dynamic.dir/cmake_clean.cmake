file(REMOVE_RECURSE
  "CMakeFiles/ablation_static_vs_dynamic.dir/ablation_static_vs_dynamic.cpp.o"
  "CMakeFiles/ablation_static_vs_dynamic.dir/ablation_static_vs_dynamic.cpp.o.d"
  "ablation_static_vs_dynamic"
  "ablation_static_vs_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_static_vs_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
