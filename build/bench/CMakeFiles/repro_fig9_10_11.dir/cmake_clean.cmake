file(REMOVE_RECURSE
  "CMakeFiles/repro_fig9_10_11.dir/repro_fig9_10_11.cpp.o"
  "CMakeFiles/repro_fig9_10_11.dir/repro_fig9_10_11.cpp.o.d"
  "repro_fig9_10_11"
  "repro_fig9_10_11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig9_10_11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
