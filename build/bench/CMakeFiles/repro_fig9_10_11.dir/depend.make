# Empty dependencies file for repro_fig9_10_11.
# This may be replaced when dependencies are built.
