file(REMOVE_RECURSE
  "CMakeFiles/ablation_billing_quantum.dir/ablation_billing_quantum.cpp.o"
  "CMakeFiles/ablation_billing_quantum.dir/ablation_billing_quantum.cpp.o.d"
  "ablation_billing_quantum"
  "ablation_billing_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_billing_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
