# Empty compiler generated dependencies file for ablation_billing_quantum.
# This may be replaced when dependencies are built.
