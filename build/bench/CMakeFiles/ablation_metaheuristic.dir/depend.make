# Empty dependencies file for ablation_metaheuristic.
# This may be replaced when dependencies are built.
