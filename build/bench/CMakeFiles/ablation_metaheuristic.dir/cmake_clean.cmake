file(REMOVE_RECURSE
  "CMakeFiles/ablation_metaheuristic.dir/ablation_metaheuristic.cpp.o"
  "CMakeFiles/ablation_metaheuristic.dir/ablation_metaheuristic.cpp.o.d"
  "ablation_metaheuristic"
  "ablation_metaheuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metaheuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
