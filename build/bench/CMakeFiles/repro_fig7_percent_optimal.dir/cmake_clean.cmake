file(REMOVE_RECURSE
  "CMakeFiles/repro_fig7_percent_optimal.dir/repro_fig7_percent_optimal.cpp.o"
  "CMakeFiles/repro_fig7_percent_optimal.dir/repro_fig7_percent_optimal.cpp.o.d"
  "repro_fig7_percent_optimal"
  "repro_fig7_percent_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig7_percent_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
