# Empty compiler generated dependencies file for repro_fig7_percent_optimal.
# This may be replaced when dependencies are built.
