file(REMOVE_RECURSE
  "CMakeFiles/ablation_robustness.dir/ablation_robustness.cpp.o"
  "CMakeFiles/ablation_robustness.dir/ablation_robustness.cpp.o.d"
  "ablation_robustness"
  "ablation_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
