file(REMOVE_RECURSE
  "CMakeFiles/repro_table4_fig8.dir/repro_table4_fig8.cpp.o"
  "CMakeFiles/repro_table4_fig8.dir/repro_table4_fig8.cpp.o.d"
  "repro_table4_fig8"
  "repro_table4_fig8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table4_fig8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
