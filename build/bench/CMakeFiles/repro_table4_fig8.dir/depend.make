# Empty dependencies file for repro_table4_fig8.
# This may be replaced when dependencies are built.
