# Empty compiler generated dependencies file for ablation_candidate_set.
# This may be replaced when dependencies are built.
