file(REMOVE_RECURSE
  "CMakeFiles/ablation_candidate_set.dir/ablation_candidate_set.cpp.o"
  "CMakeFiles/ablation_candidate_set.dir/ablation_candidate_set.cpp.o.d"
  "ablation_candidate_set"
  "ablation_candidate_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_candidate_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
