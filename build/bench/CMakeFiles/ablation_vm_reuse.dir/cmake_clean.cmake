file(REMOVE_RECURSE
  "CMakeFiles/ablation_vm_reuse.dir/ablation_vm_reuse.cpp.o"
  "CMakeFiles/ablation_vm_reuse.dir/ablation_vm_reuse.cpp.o.d"
  "ablation_vm_reuse"
  "ablation_vm_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vm_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
