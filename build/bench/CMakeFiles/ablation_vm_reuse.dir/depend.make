# Empty dependencies file for ablation_vm_reuse.
# This may be replaced when dependencies are built.
