# Empty compiler generated dependencies file for ablation_multicloud.
# This may be replaced when dependencies are built.
