file(REMOVE_RECURSE
  "CMakeFiles/ablation_multicloud.dir/ablation_multicloud.cpp.o"
  "CMakeFiles/ablation_multicloud.dir/ablation_multicloud.cpp.o.d"
  "ablation_multicloud"
  "ablation_multicloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multicloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
