# Empty dependencies file for repro_table7_fig15_wrf.
# This may be replaced when dependencies are built.
