# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for repro_table7_fig15_wrf.
