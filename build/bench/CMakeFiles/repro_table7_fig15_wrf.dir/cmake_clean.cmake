file(REMOVE_RECURSE
  "CMakeFiles/repro_table7_fig15_wrf.dir/repro_table7_fig15_wrf.cpp.o"
  "CMakeFiles/repro_table7_fig15_wrf.dir/repro_table7_fig15_wrf.cpp.o.d"
  "repro_table7_fig15_wrf"
  "repro_table7_fig15_wrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table7_fig15_wrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
