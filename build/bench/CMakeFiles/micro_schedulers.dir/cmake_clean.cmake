file(REMOVE_RECURSE
  "CMakeFiles/micro_schedulers.dir/micro_schedulers.cpp.o"
  "CMakeFiles/micro_schedulers.dir/micro_schedulers.cpp.o.d"
  "micro_schedulers"
  "micro_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
