# Empty compiler generated dependencies file for micro_schedulers.
# This may be replaced when dependencies are built.
