# Empty compiler generated dependencies file for repro_table2_fig6_example.
# This may be replaced when dependencies are built.
