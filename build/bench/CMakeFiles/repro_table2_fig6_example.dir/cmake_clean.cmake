file(REMOVE_RECURSE
  "CMakeFiles/repro_table2_fig6_example.dir/repro_table2_fig6_example.cpp.o"
  "CMakeFiles/repro_table2_fig6_example.dir/repro_table2_fig6_example.cpp.o.d"
  "repro_table2_fig6_example"
  "repro_table2_fig6_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table2_fig6_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
