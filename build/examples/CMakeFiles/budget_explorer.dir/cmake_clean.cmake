file(REMOVE_RECURSE
  "CMakeFiles/budget_explorer.dir/budget_explorer.cpp.o"
  "CMakeFiles/budget_explorer.dir/budget_explorer.cpp.o.d"
  "budget_explorer"
  "budget_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
