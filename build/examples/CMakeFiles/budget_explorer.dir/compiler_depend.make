# Empty compiler generated dependencies file for budget_explorer.
# This may be replaced when dependencies are built.
