file(REMOVE_RECURSE
  "CMakeFiles/resilience_drill.dir/resilience_drill.cpp.o"
  "CMakeFiles/resilience_drill.dir/resilience_drill.cpp.o.d"
  "resilience_drill"
  "resilience_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
