# Empty dependencies file for resilience_drill.
# This may be replaced when dependencies are built.
