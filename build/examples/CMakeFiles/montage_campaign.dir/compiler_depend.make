# Empty compiler generated dependencies file for montage_campaign.
# This may be replaced when dependencies are built.
