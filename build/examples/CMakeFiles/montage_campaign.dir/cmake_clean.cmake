file(REMOVE_RECURSE
  "CMakeFiles/montage_campaign.dir/montage_campaign.cpp.o"
  "CMakeFiles/montage_campaign.dir/montage_campaign.cpp.o.d"
  "montage_campaign"
  "montage_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montage_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
