# Empty dependencies file for wrf_forecast.
# This may be replaced when dependencies are built.
