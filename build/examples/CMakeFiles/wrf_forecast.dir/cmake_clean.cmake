file(REMOVE_RECURSE
  "CMakeFiles/wrf_forecast.dir/wrf_forecast.cpp.o"
  "CMakeFiles/wrf_forecast.dir/wrf_forecast.cpp.o.d"
  "wrf_forecast"
  "wrf_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrf_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
