file(REMOVE_RECURSE
  "CMakeFiles/medcc_cli.dir/medcc_cli.cpp.o"
  "CMakeFiles/medcc_cli.dir/medcc_cli.cpp.o.d"
  "medcc_cli"
  "medcc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medcc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
