# Empty dependencies file for medcc_cli.
# This may be replaced when dependencies are built.
