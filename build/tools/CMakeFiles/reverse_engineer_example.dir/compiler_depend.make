# Empty compiler generated dependencies file for reverse_engineer_example.
# This may be replaced when dependencies are built.
