file(REMOVE_RECURSE
  "CMakeFiles/reverse_engineer_example.dir/reverse_engineer_example.cpp.o"
  "CMakeFiles/reverse_engineer_example.dir/reverse_engineer_example.cpp.o.d"
  "reverse_engineer_example"
  "reverse_engineer_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_engineer_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
