#include "sched/hbmct.hpp"

#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::cloud::VmType;
using medcc::sched::hbmct;
using medcc::sched::Instance;

Instance pipeline_instance() {
  const std::vector<double> wl = {10.0, 20.0, 30.0};
  return Instance::from_model(medcc::workflow::pipeline(wl),
                              medcc::cloud::example_catalog());
}

TEST(Hbmct, EmptyPoolRejected) {
  EXPECT_THROW((void)hbmct(pipeline_instance(), {}), medcc::InvalidArgument);
}

TEST(Hbmct, PipelineIsSerialAndGroupsArePerModule) {
  const auto r = hbmct(pipeline_instance(), {VmType{"m", 10.0, 1.0}});
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  // A chain admits no independent pair: one group per module.
  EXPECT_EQ(r.groups, 3u);
}

TEST(Hbmct, IndependentTasksShareAGroupAndSpread) {
  medcc::util::Prng rng(1);
  const auto wf = medcc::workflow::fork_join(3, 1, 10.0, 10.0, rng);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  const std::vector<VmType> pool = {VmType{"a", 10.0, 1.0},
                                    VmType{"b", 10.0, 1.0},
                                    VmType{"c", 10.0, 1.0}};
  const auto r = hbmct(inst, pool);
  // entry group + one group with the 3 branches + exit group.
  EXPECT_EQ(r.groups, 3u);
  // All three branch tasks run in parallel on distinct machines.
  const auto branches = inst.workflow().computing_modules();
  std::set<std::size_t> machines;
  for (auto b : branches) machines.insert(r.placement[b].machine);
  EXPECT_EQ(machines.size(), 3u);
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

TEST(Hbmct, PrecedenceAndNoOverlap) {
  medcc::util::Prng rng(2);
  const auto inst = medcc::expr::make_instance({15, 40, 4}, rng);
  std::vector<VmType> pool;
  for (int k = 0; k < 3; ++k)
    pool.push_back(VmType{"m" + std::to_string(k),
                          static_cast<double>(3 + 4 * k), 1.0});
  const auto r = hbmct(inst, pool);
  const auto& g = inst.workflow().graph();
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_GE(r.placement[g.edge(e).dst].start + 1e-9,
              r.placement[g.edge(e).src].finish);
  for (std::size_t a = 0; a < r.placement.size(); ++a)
    for (std::size_t b = a + 1; b < r.placement.size(); ++b) {
      if (r.placement[a].machine != r.placement[b].machine) continue;
      const bool disjoint =
          r.placement[a].finish <= r.placement[b].start + 1e-9 ||
          r.placement[b].finish <= r.placement[a].start + 1e-9;
      EXPECT_TRUE(disjoint);
    }
}

TEST(Hbmct, ComparableToHeftOnRandomInstances) {
  // Neither dominates in general, but HBMCT should stay in HEFT's
  // ballpark (the papers report trade-offs within tens of percent).
  medcc::util::Prng root(3);
  for (int k = 0; k < 8; ++k) {
    auto rng = root.fork(static_cast<std::uint64_t>(k));
    const auto inst = medcc::expr::make_instance({20, 60, 4}, rng);
    std::vector<VmType> pool = {VmType{"s", 4.0, 1.0}, VmType{"m", 8.0, 1.0},
                                VmType{"l", 16.0, 1.0}};
    const auto a = hbmct(inst, pool);
    const auto b = medcc::sched::heft(inst, pool);
    EXPECT_LE(a.makespan, 1.5 * b.makespan) << "instance " << k;
    EXPECT_LE(b.makespan, 1.5 * a.makespan) << "instance " << k;
  }
}

TEST(Hbmct, RebalancingNeverHurts) {
  // The rebalance phase only accepts strictly improving moves, so the
  // makespan is no worse than the pure-MCT pass would give. We can't call
  // the internal MCT directly, but a zero-rebalance run (single machine)
  // must still be consistent.
  const auto r = hbmct(pipeline_instance(), {VmType{"only", 5.0, 1.0}});
  EXPECT_EQ(r.rebalance_moves, 0u);
}

}  // namespace
