#include "multicloud/multicloud.hpp"

#include <gtest/gtest.h>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"
#include "workflow/random_workflow.hpp"

namespace {

using medcc::multicloud::CloudSite;
using medcc::multicloud::critical_greedy_mc;
using medcc::multicloud::evaluate;
using medcc::multicloud::Federation;
using medcc::multicloud::InterCloudLink;
using medcc::multicloud::McInstance;
using medcc::multicloud::McSchedule;
using medcc::multicloud::Placement;

Federation two_sites(InterCloudLink link) {
  // Site A: the paper's Table I catalog. Site B: faster but pricier.
  return Federation(
      {CloudSite{"A", medcc::cloud::example_catalog()},
       CloudSite{"B", medcc::cloud::VmCatalog({{"B1", 30.0, 9.0},
                                               {"B2", 60.0, 20.0}})}},
      link);
}

McInstance example_mc(InterCloudLink link = {}) {
  return McInstance(medcc::workflow::example6(), two_sites(link));
}

TEST(Federation, Validation) {
  EXPECT_THROW(Federation({}, {}), medcc::InvalidArgument);
  InterCloudLink bad;
  bad.bandwidth = -1.0;
  EXPECT_THROW(
      Federation({CloudSite{"A", medcc::cloud::example_catalog()}}, bad),
      medcc::InvalidArgument);
}

TEST(Federation, IntraSiteTransfersFree) {
  InterCloudLink link;
  link.bandwidth = 1.0;
  link.cost_per_unit = 2.0;
  const auto fed = two_sites(link);
  EXPECT_DOUBLE_EQ(fed.transfer_time(0, 0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(fed.transfer_cost(1, 1, 100.0), 0.0);
}

TEST(Federation, InterSiteTransferModel) {
  InterCloudLink link;
  link.bandwidth = 10.0;
  link.delay = 0.5;
  link.cost_per_unit = 0.25;
  const auto fed = two_sites(link);
  EXPECT_DOUBLE_EQ(fed.transfer_time(0, 1, 100.0), 10.5);
  EXPECT_DOUBLE_EQ(fed.transfer_cost(0, 1, 100.0), 25.0);
  EXPECT_DOUBLE_EQ(fed.transfer_time(0, 1, 0.0), 0.0);
}

TEST(Federation, LinkOverridesArePerOrderedPair) {
  InterCloudLink slow;
  slow.bandwidth = 1.0;
  auto fed = two_sites(slow);
  InterCloudLink fast;
  fast.bandwidth = 100.0;
  fed.set_link(0, 1, fast);
  EXPECT_DOUBLE_EQ(fed.transfer_time(0, 1, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(fed.transfer_time(1, 0, 100.0), 100.0);  // unchanged
  EXPECT_THROW(fed.set_link(0, 0, fast), medcc::InvalidArgument);
}

TEST(McInstance, TimesAndCostsPerSite) {
  const auto inst = example_mc();
  // w5 (WL 40.2) on site A VT2: 2.68 h, $12; on site B B2 (VP 60): 0.67 h.
  EXPECT_NEAR(inst.time(5, Placement{0, 1}), 2.68, 1e-12);
  EXPECT_DOUBLE_EQ(inst.cost(5, Placement{0, 1}), 12.0);
  EXPECT_NEAR(inst.time(5, Placement{1, 1}), 0.67, 1e-12);
  EXPECT_DOUBLE_EQ(inst.cost(5, Placement{1, 1}), 20.0);
  // Fixed modules are free everywhere.
  EXPECT_DOUBLE_EQ(inst.cost(0, Placement{1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(inst.time(0, Placement{1, 0}), 1.0);
}

TEST(McEvaluation, SingleSiteMatchesSingleCloudModel) {
  // With every module on site A, the multi-cloud evaluation must equal
  // the single-cloud MED-CC evaluation of the same type assignment.
  const auto inst = example_mc();
  const auto sc_inst = medcc::sched::Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog());
  const auto least = medcc::sched::least_cost_schedule(sc_inst);
  McSchedule mc;
  mc.of.resize(least.type_of.size());
  for (std::size_t i = 0; i < least.type_of.size(); ++i)
    mc.of[i] = Placement{0, least.type_of[i]};
  const auto mc_eval = evaluate(inst, mc);
  const auto sc_eval = medcc::sched::evaluate(sc_inst, least);
  EXPECT_NEAR(mc_eval.med, sc_eval.med, 1e-12);
  EXPECT_NEAR(mc_eval.cost, sc_eval.cost, 1e-12);
  EXPECT_DOUBLE_EQ(mc_eval.transfer_cost, 0.0);
}

TEST(McEvaluation, CrossSiteEdgesAddTimeAndMoney) {
  InterCloudLink link;
  link.bandwidth = 0.5;  // 1.0-unit edges take 2 h
  link.cost_per_unit = 3.0;
  const auto inst = example_mc(link);
  McSchedule mc;
  mc.of.assign(8, Placement{0, 2});
  const auto same = evaluate(inst, mc);
  mc.of[5] = Placement{1, 0};  // w5 moves to site B
  const auto split = evaluate(inst, mc);
  // w5 has 3 incident edges (w3->w5, w4->w5, w5->w7): 3 data units cross.
  EXPECT_DOUBLE_EQ(split.transfer_cost, 9.0);
  EXPECT_GT(split.med, same.med);  // 2 h per crossing edge on the path
}

TEST(McLeastCost, PicksTheCheaperSite) {
  const auto inst = example_mc();
  const auto seed = medcc::multicloud::single_site_least_cost(inst);
  // Site A's least cost is 48; site B's cheapest is B1 with rate 9 --
  // far more expensive. All modules must sit on site A.
  for (const auto& p : seed.of) EXPECT_EQ(p.site, 0u);
  EXPECT_DOUBLE_EQ(evaluate(inst, seed).cost, 48.0);
}

TEST(McCriticalGreedy, InfeasibleThrows) {
  const auto inst = example_mc();
  EXPECT_THROW((void)critical_greedy_mc(inst, 47.0), medcc::Infeasible);
}

TEST(McCriticalGreedy, DegeneratesToSingleCloudWhenLinksAreTerrible) {
  // With prohibitive inter-cloud costs, the multi-cloud CG must never
  // leave site A and must match the single-cloud CG MED at each budget.
  InterCloudLink hostile;
  hostile.bandwidth = 1e-6;
  hostile.cost_per_unit = 1e6;
  const auto inst = example_mc(hostile);
  const auto sc_inst = medcc::sched::Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog());
  for (double budget : {48.0, 52.0, 57.0, 64.0}) {
    const auto mc = critical_greedy_mc(inst, budget);
    for (const auto& p : mc.schedule.of) EXPECT_EQ(p.site, 0u);
    const auto sc = medcc::sched::critical_greedy(sc_inst, budget);
    EXPECT_NEAR(mc.eval.med, sc.eval.med, 1e-9) << "budget " << budget;
  }
}

TEST(McCriticalGreedy, UsesTheFastCloudWhenLinksAreFree) {
  // Free, instant links: the faster site-B types become pure upgrades.
  const auto inst = example_mc(InterCloudLink{});
  const auto r = critical_greedy_mc(inst, 130.0);
  bool used_b = false;
  for (const auto& p : r.schedule.of) used_b = used_b || p.site == 1;
  EXPECT_TRUE(used_b);
  // And the result beats the best single-cloud CG at the same budget.
  const auto sc_inst = medcc::sched::Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog());
  const auto sc = medcc::sched::critical_greedy(sc_inst, 130.0);
  EXPECT_LT(r.eval.med, sc.eval.med);
}

TEST(McCriticalGreedy, TransferCostsChargeTheBudget) {
  InterCloudLink pricey;
  pricey.cost_per_unit = 5.0;  // every crossing edge costs 5
  const auto inst = example_mc(pricey);
  for (double budget : {60.0, 90.0, 120.0}) {
    const auto r = critical_greedy_mc(inst, budget);
    EXPECT_LE(r.eval.cost, budget + 1e-6);
    // Evaluation decomposes: cost includes the transfer share.
    EXPECT_GE(r.eval.cost, r.eval.transfer_cost);
  }
}

class McPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McPropertyTest, FeasibilityAndSeedDominanceOnRandomWorkflows) {
  medcc::util::Prng rng(GetParam());
  medcc::workflow::RandomWorkflowSpec spec;
  spec.modules = 10;
  spec.edges = 20;
  spec.data_size_min = 0.5;
  spec.data_size_max = 5.0;
  auto wf = medcc::workflow::random_workflow(spec, rng);
  InterCloudLink link;
  link.bandwidth = rng.uniform_real(0.5, 5.0);
  link.cost_per_unit = rng.uniform_real(0.0, 2.0);
  const McInstance inst(std::move(wf), two_sites(link));
  const auto seed = medcc::multicloud::single_site_least_cost(inst);
  const auto seed_eval = evaluate(inst, seed);
  for (double factor : {1.0, 1.2, 1.6, 2.5}) {
    const auto r = critical_greedy_mc(inst, seed_eval.cost * factor);
    EXPECT_LE(r.eval.cost, seed_eval.cost * factor + 1e-6);
    EXPECT_LE(r.eval.med, seed_eval.med + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
