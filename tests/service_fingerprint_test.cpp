// Canonical-fingerprint invariants: permuted duplicates hash equal, any
// semantic field change hashes different, and the per-module labels
// support schedule re-mapping between permuted twins.
#include "service/fingerprint.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <utility>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/vm_type.hpp"
#include "sched/instance.hpp"
#include "util/prng.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::service::fingerprint_instance;
using medcc::service::FingerprintDetail;
using medcc::sched::Instance;
using medcc::workflow::Workflow;

// The paper's example workflow (entry, w1..w6, exit) built in its natural
// module order.
Workflow diamond_forward() {
  Workflow wf;
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto a = wf.add_module("a", 30.0);
  const auto b = wf.add_module("b", 45.0);
  const auto c = wf.add_module("c", 75.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(entry, a, 2.0);
  wf.add_dependency(a, b, 3.0);
  wf.add_dependency(a, c, 4.0);
  wf.add_dependency(b, exit, 5.0);
  wf.add_dependency(c, exit, 6.0);
  return wf;
}

// The same DAG with modules inserted in a different order and the edges
// declared in a different sequence.
Workflow diamond_permuted() {
  Workflow wf;
  const auto c = wf.add_module("c-renamed", 75.0);  // names must not matter
  const auto exit = wf.add_fixed_module("exit", 1.0);
  const auto a = wf.add_module("a", 30.0);
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto b = wf.add_module("b", 45.0);
  wf.add_dependency(c, exit, 6.0);
  wf.add_dependency(b, exit, 5.0);
  wf.add_dependency(entry, a, 2.0);
  wf.add_dependency(a, c, 4.0);
  wf.add_dependency(a, b, 3.0);
  return wf;
}

VmCatalog catalog_forward() {
  return VmCatalog({VmType{"small", 3.0, 1.0}, VmType{"medium", 15.0, 4.0},
                    VmType{"large", 30.0, 8.0}});
}

VmCatalog catalog_permuted() {
  return VmCatalog({VmType{"L", 30.0, 8.0}, VmType{"S", 3.0, 1.0},
                    VmType{"M", 15.0, 4.0}});
}

FingerprintDetail fp(const Instance& inst, double budget = 50.0,
                     std::string_view solver = "cg",
                     std::string_view config = "") {
  return fingerprint_instance(inst, budget, solver, config);
}

TEST(Fingerprint, IdenticalInstancesHashEqual) {
  const auto a = Instance::from_model(diamond_forward(), catalog_forward());
  const auto b = Instance::from_model(diamond_forward(), catalog_forward());
  const auto fa = fp(a);
  const auto fb = fp(b);
  EXPECT_EQ(fa.canonical, fb.canonical);
  EXPECT_EQ(fa.exact, fb.exact);
  EXPECT_TRUE(fa.modules_distinct);
  EXPECT_TRUE(fa.types_distinct);
}

TEST(Fingerprint, PermutedModuleOrderHashesEqualButNotExact) {
  const auto a = Instance::from_model(diamond_forward(), catalog_forward());
  const auto b = Instance::from_model(diamond_permuted(), catalog_forward());
  const auto fa = fp(a);
  const auto fb = fp(b);
  EXPECT_EQ(fa.canonical, fb.canonical);
  EXPECT_NE(fa.exact, fb.exact);  // layouts differ index-for-index
}

TEST(Fingerprint, PermutedCatalogOrderHashesEqual) {
  const auto a = Instance::from_model(diamond_forward(), catalog_forward());
  const auto b = Instance::from_model(diamond_forward(), catalog_permuted());
  EXPECT_EQ(fp(a).canonical, fp(b).canonical);
  EXPECT_NE(fp(a).exact, fp(b).exact);
}

TEST(Fingerprint, BothPermutationsAtOnceHashEqual) {
  const auto a = Instance::from_model(diamond_forward(), catalog_forward());
  const auto b = Instance::from_model(diamond_permuted(), catalog_permuted());
  EXPECT_EQ(fp(a).canonical, fp(b).canonical);
}

TEST(Fingerprint, PermutedLabelsMatchModuleForModule) {
  // The canonical label of module "a" must be the same whatever its
  // NodeId is -- that is what re-mapping relies on.
  const auto a = Instance::from_model(diamond_forward(), catalog_forward());
  const auto b = Instance::from_model(diamond_permuted(), catalog_forward());
  const auto fa = fp(a);
  const auto fb = fp(b);
  ASSERT_TRUE(fa.modules_distinct);
  ASSERT_TRUE(fb.modules_distinct);
  // forward ids: entry=0 a=1 b=2 c=3 exit=4; permuted: c=0 exit=1 a=2
  // entry=3 b=4.
  EXPECT_EQ(fa.module_hash[0], fb.module_hash[3]);  // entry
  EXPECT_EQ(fa.module_hash[1], fb.module_hash[2]);  // a
  EXPECT_EQ(fa.module_hash[2], fb.module_hash[4]);  // b
  EXPECT_EQ(fa.module_hash[3], fb.module_hash[0]);  // c
  EXPECT_EQ(fa.module_hash[4], fb.module_hash[1]);  // exit
}

TEST(Fingerprint, WorkloadChangeHashesDifferent) {
  const auto base = Instance::from_model(diamond_forward(), catalog_forward());
  Workflow other;
  {
    const auto entry = other.add_fixed_module("entry", 1.0);
    const auto a = other.add_module("a", 31.0);  // 30 -> 31
    const auto b = other.add_module("b", 45.0);
    const auto c = other.add_module("c", 75.0);
    const auto exit = other.add_fixed_module("exit", 1.0);
    other.add_dependency(entry, a, 2.0);
    other.add_dependency(a, b, 3.0);
    other.add_dependency(a, c, 4.0);
    other.add_dependency(b, exit, 5.0);
    other.add_dependency(c, exit, 6.0);
  }
  const auto inst = Instance::from_model(std::move(other), catalog_forward());
  EXPECT_NE(fp(base).canonical, fp(inst).canonical);
}

TEST(Fingerprint, TopologyChangeHashesDifferent) {
  Workflow other;
  const auto entry = other.add_fixed_module("entry", 1.0);
  const auto a = other.add_module("a", 30.0);
  const auto b = other.add_module("b", 45.0);
  const auto c = other.add_module("c", 75.0);
  const auto exit = other.add_fixed_module("exit", 1.0);
  other.add_dependency(entry, a, 2.0);
  other.add_dependency(a, b, 3.0);
  other.add_dependency(b, c, 4.0);  // chain instead of fork
  other.add_dependency(b, exit, 5.0);
  other.add_dependency(c, exit, 6.0);
  const auto base = Instance::from_model(diamond_forward(), catalog_forward());
  const auto inst = Instance::from_model(std::move(other), catalog_forward());
  EXPECT_NE(fp(base).canonical, fp(inst).canonical);
}

TEST(Fingerprint, CatalogChangeHashesDifferent) {
  const auto base = Instance::from_model(diamond_forward(), catalog_forward());
  const auto faster = Instance::from_model(
      diamond_forward(),
      VmCatalog({VmType{"small", 3.0, 1.0}, VmType{"medium", 15.0, 4.0},
                 VmType{"large", 31.0, 8.0}}));  // 30 -> 31
  const auto pricier = Instance::from_model(
      diamond_forward(),
      VmCatalog({VmType{"small", 3.0, 1.5}, VmType{"medium", 15.0, 4.0},
                 VmType{"large", 30.0, 8.0}}));  // rate 1 -> 1.5
  EXPECT_NE(fp(base).canonical, fp(faster).canonical);
  EXPECT_NE(fp(base).canonical, fp(pricier).canonical);
}

TEST(Fingerprint, ScalarFieldChangesHashDifferent) {
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  const auto base = fp(inst);
  EXPECT_NE(base.canonical, fp(inst, 51.0).canonical);           // budget
  EXPECT_NE(base.canonical, fp(inst, 50.0, "gain3").canonical);  // solver
  EXPECT_NE(base.canonical,
            fp(inst, 50.0, "cg", "tuned").canonical);  // config tag
}

TEST(Fingerprint, BillingAndNetworkChangesHashDifferent) {
  const auto base = Instance::from_model(diamond_forward(), catalog_forward());
  const auto continuous =
      Instance::from_model(diamond_forward(), catalog_forward(),
                           medcc::cloud::BillingPolicy::continuous());
  medcc::cloud::NetworkModel net;
  net.bandwidth = 10.0;
  net.link_delay = 0.5;
  const auto networked = Instance::from_model(
      diamond_forward(), catalog_forward(),
      medcc::cloud::BillingPolicy::per_unit_time(), net);
  EXPECT_NE(fp(base).canonical, fp(continuous).canonical);
  EXPECT_NE(fp(base).canonical, fp(networked).canonical);
}

TEST(Fingerprint, EdgeDataSizeChangeHashesDifferent) {
  Workflow other;
  const auto entry = other.add_fixed_module("entry", 1.0);
  const auto a = other.add_module("a", 30.0);
  const auto b = other.add_module("b", 45.0);
  const auto c = other.add_module("c", 75.0);
  const auto exit = other.add_fixed_module("exit", 1.0);
  other.add_dependency(entry, a, 2.0);
  other.add_dependency(a, b, 3.5);  // 3.0 -> 3.5
  other.add_dependency(a, c, 4.0);
  other.add_dependency(b, exit, 5.0);
  other.add_dependency(c, exit, 6.0);
  const auto base = Instance::from_model(diamond_forward(), catalog_forward());
  const auto inst = Instance::from_model(std::move(other), catalog_forward());
  EXPECT_NE(fp(base).canonical, fp(inst).canonical);
}

TEST(Fingerprint, SymmetricModulesAreDetectedAsNonRemappable) {
  // Two structurally identical parallel branches: the WL labels of the
  // twin modules coincide, so modules_distinct must be false and the
  // cache will refuse to re-map (exact hits still work).
  Workflow wf;
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto a = wf.add_module("a", 30.0);
  const auto b = wf.add_module("b", 30.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(entry, a, 2.0);
  wf.add_dependency(entry, b, 2.0);
  wf.add_dependency(a, exit, 3.0);
  wf.add_dependency(b, exit, 3.0);
  const auto inst = Instance::from_model(std::move(wf), catalog_forward());
  EXPECT_FALSE(fp(inst).modules_distinct);
}

TEST(Fingerprint, DuplicateCatalogTypesAreDetected) {
  const auto inst = Instance::from_model(
      diamond_forward(),
      VmCatalog({VmType{"a", 3.0, 1.0}, VmType{"b", 3.0, 1.0}}));
  EXPECT_FALSE(fp(inst).types_distinct);
}

TEST(Fingerprint, LargerPatternPermutationProperty) {
  // montage_like from the same seed, then rebuilt with a rotated module
  // order via a manual copy, must canonically collide. Build the rotation
  // by re-adding modules in reverse id order.
  medcc::util::Prng rng(7);
  const auto wf = medcc::workflow::montage_like(4, rng);
  Workflow reversed;
  const std::size_t m = wf.module_count();
  std::vector<std::size_t> new_id(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto old_id = m - 1 - i;
    const auto& mod = wf.module(old_id);
    new_id[old_id] = mod.is_fixed()
                         ? reversed.add_fixed_module(mod.name, *mod.fixed_time)
                         : reversed.add_module(mod.name, mod.workload);
  }
  const auto& graph = wf.graph();
  for (std::size_t e = graph.edge_count(); e-- > 0;) {
    const auto& edge = graph.edge(e);
    reversed.add_dependency(new_id[edge.src], new_id[edge.dst],
                            wf.data_size(e));
  }
  const auto a = Instance::from_model(wf, catalog_forward());
  const auto b = Instance::from_model(std::move(reversed), catalog_forward());
  EXPECT_EQ(fp(a).canonical, fp(b).canonical);
  EXPECT_NE(fp(a).exact, fp(b).exact);
}

}  // namespace
