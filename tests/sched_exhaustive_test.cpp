#include "sched/exhaustive.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "analysis/verify.hpp"
#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::exhaustive_optimal;
using medcc::sched::Instance;

/// Plain full enumeration without pruning, for cross-checking.
double brute_force_med(const Instance& inst, double budget) {
  const auto modules = inst.workflow().computing_modules();
  medcc::sched::Schedule s;
  s.type_of.assign(inst.module_count(), 0);
  double best = std::numeric_limits<double>::infinity();
  std::function<void(std::size_t)> rec = [&](std::size_t k) {
    if (k == modules.size()) {
      const auto eval = medcc::sched::evaluate(inst, s);
      if (eval.cost <= budget + 1e-9) best = std::min(best, eval.med);
      return;
    }
    for (std::size_t j = 0; j < inst.type_count(); ++j) {
      s.type_of[modules[k]] = j;
      rec(k + 1);
    }
  };
  rec(0);
  return best;
}

TEST(Exhaustive, MatchesBruteForceOnExample6) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  for (double budget : {48.0, 52.0, 57.0, 64.0}) {
    const auto r = exhaustive_optimal(inst, budget);
    EXPECT_NEAR(r.eval.med, brute_force_med(inst, budget), 1e-9)
        << "budget " << budget;
    EXPECT_LE(r.eval.cost, budget + 1e-9);
    medcc::analysis::VerifyOptions vopts;
    vopts.budget = budget;
    const auto diag =
        medcc::analysis::verify_schedule(inst, r.schedule, r.eval, vopts);
    EXPECT_TRUE(diag.ok()) << diag.to_string();
  }
}

TEST(Exhaustive, OptimalNeverWorseThanCriticalGreedy) {
  medcc::util::Prng root(17);
  for (int k = 0; k < 10; ++k) {
    auto rng = root.fork(static_cast<std::uint64_t>(k));
    const auto inst = medcc::expr::make_instance({7, 14, 3}, rng);
    const auto bounds = medcc::sched::cost_bounds(inst);
    const double budget = 0.5 * (bounds.cmin + bounds.cmax);
    const auto opt = exhaustive_optimal(inst, budget);
    const auto cg = medcc::sched::critical_greedy(inst, budget);
    EXPECT_LE(opt.eval.med, cg.eval.med + 1e-9);
  }
}

TEST(Exhaustive, InfeasibleBudgetThrows) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  EXPECT_THROW((void)exhaustive_optimal(inst, 47.0), medcc::Infeasible);
}

TEST(Exhaustive, NodeBudgetGuardThrows) {
  medcc::util::Prng rng(3);
  const auto inst = medcc::expr::make_instance({12, 30, 5}, rng);
  medcc::sched::ExhaustiveOptions opts;
  opts.max_nodes = 10;
  EXPECT_THROW(
      (void)exhaustive_optimal(
          inst, medcc::sched::cost_bounds(inst).cmax, opts),
      medcc::Error);
}

TEST(Exhaustive, PruningVisitsFewerNodesThanFullTree) {
  medcc::util::Prng rng(5);
  const auto inst = medcc::expr::make_instance({8, 18, 3}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  const auto r =
      exhaustive_optimal(inst, 0.5 * (bounds.cmin + bounds.cmax));
  // Full tree has sum_{k<=8} 3^k ~ 9841 nodes; pruning must cut that.
  EXPECT_LT(r.nodes_visited, 9841u);
}

TEST(Exhaustive, TieBreaksTowardCheaperSchedule) {
  // Two types with identical times but different costs: the optimum picks
  // the cheaper one even though MED ties.
  medcc::workflow::Workflow wf;
  (void)wf.add_module("m", 10.0);
  const medcc::cloud::VmCatalog cat(
      {{"exp", 10.0, 5.0}, {"cheap", 10.0, 1.0}});
  const auto inst = Instance::from_model(wf, cat);
  const auto r = exhaustive_optimal(inst, 100.0);
  EXPECT_EQ(r.schedule.type_of[0], 1u);
}

TEST(Exhaustive, BudgetAtCminReturnsLeastCost) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = exhaustive_optimal(inst, 48.0);
  EXPECT_NEAR(r.eval.med, 16.77, 0.005);
}

class ExhaustivePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustivePropertyTest, MatchesBruteForceOnRandomInstances) {
  medcc::util::Prng rng(GetParam());
  const auto inst = medcc::expr::make_instance({6, 10, 3}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  for (double budget : medcc::sched::budget_levels(bounds, 4)) {
    const auto r = exhaustive_optimal(inst, budget);
    EXPECT_NEAR(r.eval.med, brute_force_med(inst, budget), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustivePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
