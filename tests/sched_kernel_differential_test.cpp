// Differential tests pinning the kernel-backed schedulers to the legacy
// dag::compute_cpm reference: evaluate()'s CpmResult must be bit-identical
// to a direct compute_cpm call, Critical-Greedy's incrementally maintained
// per-move makespans must replay exactly, the pooled genetic evaluation
// must match the sequential run gene for gene, and the delta-evaluated
// annealer must walk the same accept/reject trajectory as a from-scratch
// reference implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "dag/critical_path.hpp"
#include "expr/instance_gen.hpp"
#include "sched/annealing.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/genetic.hpp"
#include "sched/schedule.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::dag::NodeId;
using medcc::sched::durations;
using medcc::sched::Instance;
using medcc::sched::Schedule;
using medcc::sched::total_cost;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

Instance random_instance(std::uint64_t seed) {
  medcc::util::Prng rng(seed);
  return medcc::expr::make_instance({10, 20, 4}, rng);
}

double mid_budget(const Instance& inst) {
  const auto bounds = medcc::sched::cost_bounds(inst);
  return 0.5 * (bounds.cmin + bounds.cmax);
}

/// The legacy evaluation path: full compute_cpm on the mapped workflow.
medcc::dag::CpmResult legacy_cpm(const Instance& inst,
                                 const Schedule& schedule) {
  return medcc::dag::compute_cpm(inst.workflow().graph(),
                                 durations(inst, schedule),
                                 inst.edge_times());
}

class EvaluateDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvaluateDifferentialTest, EvaluateMatchesLegacyComputeCpmBitwise) {
  const auto inst = random_instance(GetParam());
  medcc::util::Prng rng(GetParam() * 31 + 7);

  auto schedule = medcc::sched::least_cost_schedule(inst);
  for (int round = 0; round < 8; ++round) {
    for (NodeId i : inst.workflow().computing_modules())
      schedule.type_of[i] = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(inst.type_count()) - 1));

    const auto eval = medcc::sched::evaluate(inst, schedule);
    const auto ref = legacy_cpm(inst, schedule);
    EXPECT_EQ(eval.cpm.est, ref.est);
    EXPECT_EQ(eval.cpm.eft, ref.eft);
    EXPECT_EQ(eval.cpm.lst, ref.lst);
    EXPECT_EQ(eval.cpm.lft, ref.lft);
    EXPECT_EQ(eval.cpm.buffer, ref.buffer);
    EXPECT_EQ(eval.cpm.critical, ref.critical);
    EXPECT_EQ(eval.cpm.critical_path, ref.critical_path);
    EXPECT_EQ(eval.cpm.makespan, ref.makespan);
    EXPECT_EQ(eval.med, ref.makespan);
  }
}

TEST_P(EvaluateDifferentialTest, CgTraceReplaysAgainstLegacyCpm) {
  const auto inst = random_instance(GetParam());
  const double budget = mid_budget(inst);
  const auto trace = medcc::sched::critical_greedy_trace(inst, budget);

  // Replay the move list from the least-cost start. After each applied
  // move, the trace's med_after (read straight off the incremental
  // workspace) must equal a full legacy recompute bit for bit, and the
  // chosen module must have been critical at selection time.
  auto schedule = medcc::sched::least_cost_schedule(inst);
  for (std::size_t k = 0; k < trace.moves.size(); ++k) {
    const auto& move = trace.moves[k];
    const auto before = legacy_cpm(inst, schedule);
    EXPECT_TRUE(before.critical[move.module]) << "move " << k;
    EXPECT_EQ(schedule.type_of[move.module], move.from_type) << "move " << k;
    schedule.type_of[move.module] = move.to_type;
    EXPECT_EQ(legacy_cpm(inst, schedule).makespan, move.med_after)
        << "move " << k;
    EXPECT_NEAR(total_cost(inst, schedule), move.cost_after,
                1e-9 * std::max(1.0, budget))
        << "move " << k;
  }
  EXPECT_EQ(schedule, trace.result.schedule);
}

TEST_P(EvaluateDifferentialTest, AnnealingMatchesFullRecomputeReference) {
  const auto inst = random_instance(GetParam());
  const double budget = mid_budget(inst);
  medcc::sched::AnnealingOptions opts;
  opts.iterations = 400;
  opts.seed = GetParam() + 11;

  // Reference annealer: the same search loop, every neighbour scored by a
  // full legacy dag::makespan. The production annealer delta-evaluates
  // through the incremental kernel; since that is bitwise-exact, both must
  // draw the same rng stream and end on the same schedule.
  const auto computing = inst.workflow().computing_modules();
  const auto repair = [&](Schedule& schedule) {
    double cost = total_cost(inst, schedule);
    while (cost > budget + 1e-9) {
      NodeId best_module = 0;
      std::size_t best_type = 0;
      double best_ratio = std::numeric_limits<double>::infinity();
      bool found = false;
      for (NodeId i : computing) {
        const std::size_t cur = schedule.type_of[i];
        for (std::size_t j = 0; j < inst.type_count(); ++j) {
          if (j == cur) continue;
          const double saving = inst.cost(i, cur) - inst.cost(i, j);
          if (saving <= 0.0) continue;
          const double loss = inst.time(i, j) - inst.time(i, cur);
          const double ratio =
              loss <= 0.0 ? -std::numeric_limits<double>::infinity()
                          : loss / saving;
          if (!found || ratio < best_ratio) {
            found = true;
            best_ratio = ratio;
            best_module = i;
            best_type = j;
          }
        }
      }
      ASSERT_TRUE(found);
      cost += inst.cost(best_module, best_type) -
              inst.cost(best_module, schedule.type_of[best_module]);
      schedule.type_of[best_module] = best_type;
    }
  };
  const auto med_of = [&](const Schedule& s) {
    return medcc::dag::makespan(inst.workflow().graph(), durations(inst, s),
                                inst.edge_times());
  };

  medcc::util::Prng rng(opts.seed);
  Schedule current = medcc::sched::critical_greedy(inst, budget).schedule;
  double current_med = med_of(current);
  Schedule best = current;
  double best_med = current_med;
  double temperature =
      std::max(1e-9, opts.initial_temperature_fraction * current_med);
  for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
    Schedule neighbour = current;
    const NodeId i = rng.choice(computing);
    neighbour.type_of[i] = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(inst.type_count()) - 1));
    repair(neighbour);
    const double med = med_of(neighbour);
    const double delta = med - current_med;
    if (delta <= 0.0 || rng.bernoulli(std::exp(-delta / temperature))) {
      current = std::move(neighbour);
      current_med = med;
      if (current_med < best_med) {
        best = current;
        best_med = current_med;
      }
    }
    temperature *= opts.cooling;
  }

  const auto got = medcc::sched::annealing(inst, budget, opts);
  EXPECT_EQ(got.schedule, best);
  EXPECT_EQ(got.eval.med, medcc::sched::evaluate(inst, best).med);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluateDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(KernelDifferential, CgOptionVariantsStayOnLegacyPath) {
  // The ablation variants exercise the same incremental workspace with a
  // different candidate scan; their traces must replay identically too.
  const auto inst = example_instance();
  for (const bool all_modules : {false, true}) {
    for (const bool ratio : {false, true}) {
      medcc::sched::CriticalGreedyOptions options;
      options.all_modules = all_modules;
      options.ratio_criterion = ratio;
      const auto trace =
          medcc::sched::critical_greedy_trace(inst, 57.0, options);
      auto schedule = medcc::sched::least_cost_schedule(inst);
      for (const auto& move : trace.moves) {
        schedule.type_of[move.module] = move.to_type;
        EXPECT_EQ(legacy_cpm(inst, schedule).makespan, move.med_after);
      }
      EXPECT_EQ(schedule, trace.result.schedule);
    }
  }
}

TEST(KernelDifferential, GeneticPoolMatchesSequentialExactly) {
  // Chromosomes are bred sequentially and scored in an rng-free batch, so
  // the pooled run must reproduce the sequential trajectory gene for gene.
  medcc::util::ThreadPool pool(4);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = random_instance(seed * 13);
    const double budget = mid_budget(inst);
    medcc::sched::GeneticOptions opts;
    opts.population = 12;
    opts.generations = 8;
    opts.seed = seed;

    const auto sequential = medcc::sched::genetic(inst, budget, opts);
    opts.pool = &pool;
    const auto pooled = medcc::sched::genetic(inst, budget, opts);
    EXPECT_EQ(pooled.schedule, sequential.schedule) << "seed " << seed;
    EXPECT_EQ(pooled.eval.med, sequential.eval.med) << "seed " << seed;
    EXPECT_EQ(pooled.eval.cost, sequential.eval.cost) << "seed " << seed;
  }
}

}  // namespace
