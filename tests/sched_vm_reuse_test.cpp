#include "sched/vm_reuse.hpp"

#include <gtest/gtest.h>

#include "analysis/verify.hpp"
#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;
using medcc::sched::plan_vm_reuse;
using medcc::sched::Schedule;

TEST(VmReuse, SequentialSameTypeModulesShareOneVm) {
  const std::vector<double> wl = {10.0, 20.0, 30.0};
  const auto inst = Instance::from_model(medcc::workflow::pipeline(wl),
                                         medcc::cloud::example_catalog());
  Schedule s;
  s.type_of.assign(3, 1);  // all on VT2
  const auto plan = plan_vm_reuse(inst, s);
  ASSERT_EQ(plan.instances.size(), 1u);
  EXPECT_EQ(plan.instances[0].modules.size(), 3u);
  EXPECT_EQ(plan.instances[0].type, 1u);
}

TEST(VmReuse, DifferentTypesNeverShare) {
  const std::vector<double> wl = {10.0, 20.0};
  const auto inst = Instance::from_model(medcc::workflow::pipeline(wl),
                                         medcc::cloud::example_catalog());
  Schedule s;
  s.type_of = {0, 2};
  const auto plan = plan_vm_reuse(inst, s);
  EXPECT_EQ(plan.instances.size(), 2u);
}

TEST(VmReuse, ParallelModulesNeedSeparateVms) {
  medcc::util::Prng rng(1);
  const auto wf = medcc::workflow::fork_join(3, 1, 10.0, 10.0, rng);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  Schedule s;
  s.type_of.assign(wf.module_count(), 1);
  const auto plan = plan_vm_reuse(inst, s);
  // Three simultaneous branch modules cannot overlap on one VM.
  EXPECT_EQ(plan.instances.size(), 3u);
}

TEST(VmReuse, BilledUptimeNeverExceedsPerModuleBilling) {
  // Sharing partial quanta can only reduce cost relative to rounding each
  // module separately.
  medcc::util::Prng root(2);
  for (int k = 0; k < 12; ++k) {
    auto rng = root.fork(static_cast<std::uint64_t>(k));
    const auto inst = medcc::expr::make_instance({12, 25, 4}, rng);
    const auto bounds = medcc::sched::cost_bounds(inst);
    const auto r = medcc::sched::critical_greedy(
        inst, 0.5 * (bounds.cmin + bounds.cmax));
    const auto plan = plan_vm_reuse(inst, r.schedule);
    EXPECT_LE(plan.billed_cost_uptime, plan.cost_without_reuse + 1e-6);
    const auto diag =
        medcc::analysis::verify_reuse_plan(inst, r.schedule, plan);
    EXPECT_TRUE(diag.ok()) << diag.to_string();
  }
}

TEST(VmReuse, InstanceCountNeverExceedsModuleCount) {
  medcc::util::Prng rng(3);
  const auto inst = medcc::expr::make_instance({20, 60, 4}, rng);
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto plan = plan_vm_reuse(inst, least);
  EXPECT_LE(plan.instances.size(),
            inst.workflow().computing_module_count());
  // Every computing module is assigned to exactly one instance.
  std::size_t assigned = 0;
  for (const auto& vm : plan.instances) assigned += vm.modules.size();
  EXPECT_EQ(assigned, inst.workflow().computing_module_count());
}

TEST(VmReuse, FixedModulesGetNoVm) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto plan = plan_vm_reuse(inst, least);
  EXPECT_EQ(plan.instance_of[0], static_cast<std::size_t>(-1));
  EXPECT_EQ(plan.instance_of[7], static_cast<std::size_t>(-1));
}

TEST(VmReuse, ModulesOnOneVmAreTimeDisjoint) {
  medcc::util::Prng rng(4);
  const auto inst = medcc::expr::make_instance({18, 50, 4}, rng);
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto eval = medcc::sched::evaluate(inst, least);
  const auto plan = plan_vm_reuse(inst, least);
  for (const auto& vm : plan.instances) {
    for (std::size_t k = 1; k < vm.modules.size(); ++k) {
      EXPECT_GE(eval.cpm.est[vm.modules[k]] + 1e-9,
                eval.cpm.eft[vm.modules[k - 1]]);
    }
  }
}

TEST(VmReuse, Example6Schedule1SuggestsReuse) {
  // Section V-B: "schedule 1 suggests a potential VM reuse" -- under the
  // fastest-style schedule several same-type modules are sequential.
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = medcc::sched::critical_greedy(inst, 60.0);
  const auto plan = plan_vm_reuse(inst, r.schedule);
  EXPECT_LT(plan.instances.size(),
            inst.workflow().computing_module_count());
}

}  // namespace
