// Trace propagation across a 3-replica in-process cluster: ONE trace
// id, minted once at the client edge, must name the whole journey --
// the solve on the tenant's primary, the replication apply on each
// peer, and (after the primary is hard-stopped) the client's failover
// retry onto a survivor. This is the acceptance scenario of the
// observability PR, driven in-process instead of via medcc_tracectl.
#include "net/cluster_client.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/replicator.hpp"
#include "net/client.hpp"
#include "net/endpoint.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::cluster::ClusterConfig;
using medcc::cluster::Replicator;
using medcc::net::Client;
using medcc::net::ClientConfig;
using medcc::net::ClusterClient;
using medcc::net::ClusterClientConfig;
using medcc::net::Endpoint;
using medcc::net::Server;
using medcc::net::ServerConfig;
using medcc::net::TraceDump;
using medcc::obs::Stage;
using medcc::obs::Span;
using medcc::obs::TraceId;
using medcc::obs::TraceRecord;
using medcc::obs::Tracer;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;

std::shared_ptr<const Instance> example_instance() {
  return std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
}

SchedulingRequest request_for(std::shared_ptr<const Instance> inst,
                              double budget, std::string tenant) {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = budget;
  req.solver = "cg";
  req.tenant = std::move(tenant);
  return req;
}

bool has_stage(const TraceRecord& record, Stage stage) {
  for (const Span& span : record.spans)
    if (span.stage == stage) return true;
  return false;
}

/// Records with the given id, from a tracer's retained ring.
std::vector<TraceRecord> records_with_id(const Tracer& tracer,
                                         const TraceId& id) {
  std::vector<TraceRecord> out;
  for (const TraceRecord& record : tracer.recent(256))
    if (record.id == id) out.push_back(record);
  return out;
}

/// The 3-replica fixture of cluster_failover_test, with a sample-every
/// tracer on every node so each request's journey is fully retained.
class TracedClusterFixture {
public:
  static constexpr std::size_t kNodes = 3;

  TracedClusterFixture() {
    Tracer::Config trace_config;
    trace_config.sample_every = 1;  // retain everything
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto& node = nodes_[i];
      node.tracer = std::make_unique<Tracer>(trace_config);
      node.repl_slot =
          std::make_shared<std::atomic<Replicator*>>(nullptr);
      ServiceConfig service_config;
      service_config.threads = 2;
      service_config.queue_capacity = 4096;
      service_config.tracer = node.tracer.get();
      service_config.on_cache_insert =
          [slot = node.repl_slot](std::string payload,
                                  medcc::obs::TraceContext trace) {
        if (auto* repl = slot->load(std::memory_order_acquire))
          repl->publish(payload, trace);
      };
      node.service =
          std::make_unique<SchedulingService>(std::move(service_config));
      ServerConfig server_config;
      server_config.io_threads = 1;
      server_config.node_id = "node" + std::to_string(i);
      server_config.tracer = node.tracer.get();
      server_config.repl_apply = [svc = node.service.get()](
                                     std::string_view payload) {
        return svc->apply_replicated_record(payload);
      };
      node.server =
          std::make_unique<Server>(*node.service, server_config);
      endpoints_.push_back({"127.0.0.1", node.server->port()});
    }
    for (std::size_t i = 0; i < kNodes; ++i) {
      ClusterConfig cluster_config;
      cluster_config.node_id = "node" + std::to_string(i);
      for (std::size_t j = 0; j < kNodes; ++j)
        if (j != i) cluster_config.peers.push_back(endpoints_[j]);
      nodes_[i].replicator =
          std::make_unique<Replicator>(std::move(cluster_config));
      nodes_[i].repl_slot->store(nodes_[i].replicator.get(),
                                 std::memory_order_release);
      nodes_[i].replicator->start();
    }
  }

  ~TracedClusterFixture() {
    for (auto& node : nodes_) {
      node.replicator->stop();
      node.server->stop();
      node.service->shutdown();
    }
  }

  [[nodiscard]] ClusterClientConfig client_config() const {
    ClusterClientConfig config;
    config.endpoints = endpoints_;
    config.down_cooldown_ms = 100.0;
    return config;
  }

  void await_settled() {
    for (int i = 0; i < 1000; ++i) {
      bool settled = true;
      for (const auto& node : nodes_)
        for (const auto& peer : node.replicator->status().peers)
          if (peer.queued != 0 || peer.sent != peer.acked) settled = false;
      if (settled) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FAIL() << "replication did not settle";
  }

  void stop_node(std::size_t index) { nodes_[index].server->stop(); }

  [[nodiscard]] const Tracer& tracer(std::size_t index) const {
    return *nodes_[index].tracer;
  }
  [[nodiscard]] std::uint16_t port(std::size_t index) const {
    return endpoints_[index].port;
  }

private:
  struct Node {
    std::unique_ptr<Tracer> tracer;
    std::shared_ptr<std::atomic<Replicator*>> repl_slot;
    std::unique_ptr<SchedulingService> service;
    std::unique_ptr<Server> server;
    std::unique_ptr<Replicator> replicator;
  };
  Node nodes_[kNodes];
  std::vector<Endpoint> endpoints_;
};

TEST(ClusterTrace, OneIdSpansClientSolveAndEveryReplicationApply) {
  TracedClusterFixture cluster;
  Tracer::Config client_trace_config;
  client_trace_config.sample_every = 1;
  Tracer client_tracer(client_trace_config);
  ClusterClientConfig config = cluster.client_config();
  config.tracer = &client_tracer;
  ClusterClient client(config);

  const std::string tenant = "traced-tenant";
  const auto response =
      client.solve(request_for(example_instance(), 57.0, tenant));
  ASSERT_TRUE(response.ok()) << response.error;
  cluster.await_settled();

  // The client minted exactly one context and retained its record.
  const std::vector<TraceRecord> minted = client_tracer.recent(8);
  ASSERT_EQ(minted.size(), 1u);
  const TraceId id = minted[0].id;
  ASSERT_TRUE(id.valid());
  EXPECT_TRUE(has_stage(minted[0], Stage::client_attempt));

  // The primary served the solve under the SAME id...
  const std::size_t primary = client.primary_index(tenant);
  const auto on_primary = records_with_id(cluster.tracer(primary), id);
  ASSERT_GE(on_primary.size(), 1u);
  bool primary_served = false;
  for (const TraceRecord& record : on_primary)
    primary_served |= has_stage(record, Stage::request);
  EXPECT_TRUE(primary_served);

  // ...and both peers adopted it when they applied the replicated
  // record: one id, three nodes, no correlation joins needed.
  for (std::size_t i = 0; i < TracedClusterFixture::kNodes; ++i) {
    if (i == primary) continue;
    const auto on_peer = records_with_id(cluster.tracer(i), id);
    ASSERT_GE(on_peer.size(), 1u)
        << "peer node" << i << " has no record of trace " << id.to_hex();
    bool applied = false;
    for (const TraceRecord& record : on_peer)
      applied |= has_stage(record, Stage::repl_apply);
    EXPECT_TRUE(applied) << "peer node" << i << " lacks a repl_apply span";
  }
}

TEST(ClusterTrace, FailoverRetryKeepsOneIdFromClientToSurvivor) {
  TracedClusterFixture cluster;
  Tracer::Config client_trace_config;
  client_trace_config.sample_every = 1;
  Tracer client_tracer(client_trace_config);
  ClusterClientConfig config = cluster.client_config();
  config.tracer = &client_tracer;
  ClusterClient client(config);

  const std::string tenant = "failover-tenant";
  const auto primed =
      client.solve(request_for(example_instance(), 57.0, tenant));
  ASSERT_TRUE(primed.ok()) << primed.error;
  cluster.await_settled();

  // Hard-stop the tenant's primary, then solve again: the ring walk
  // retries onto a survivor, and the whole detour must carry one id.
  const std::size_t primary = client.primary_index(tenant);
  cluster.stop_node(primary);
  const auto failed_over =
      client.solve(request_for(example_instance(), 57.0, tenant));
  ASSERT_TRUE(failed_over.ok()) << failed_over.error;

  const std::vector<TraceRecord> minted = client_tracer.recent(8);
  ASSERT_GE(minted.size(), 2u);  // primed + failed-over
  const TraceRecord& retry = minted[0];  // newest first
  const TraceId id = retry.id;
  EXPECT_TRUE(has_stage(retry, Stage::client_attempt));
  EXPECT_TRUE(has_stage(retry, Stage::client_failover))
      << "client retained no failover span for the retried solve";

  // Exactly one survivor answered, under the same id.
  std::size_t survivors_with_id = 0;
  for (std::size_t i = 0; i < TracedClusterFixture::kNodes; ++i) {
    if (i == primary) continue;
    for (const TraceRecord& record :
         records_with_id(cluster.tracer(i), id))
      if (has_stage(record, Stage::request) ||
          has_stage(record, Stage::wire_fastpath))
        ++survivors_with_id;
  }
  EXPECT_GE(survivors_with_id, 1u);

  // The same journey is visible over the wire, exactly as
  // medcc_tracectl would render it: dump each survivor and find the id.
  bool dumped = false;
  for (std::size_t i = 0; i < TracedClusterFixture::kNodes; ++i) {
    if (i == primary) continue;
    ClientConfig dump_config;
    dump_config.port = cluster.port(i);
    Client dump_client(dump_config);
    const TraceDump dump = dump_client.trace_dump(256);
    EXPECT_TRUE(dump.enabled);
    for (const TraceRecord& record : dump.traces)
      if (record.id == id) dumped = true;
  }
  EXPECT_TRUE(dumped)
      << "trace " << id.to_hex() << " absent from every survivor's dump";
}

}  // namespace
