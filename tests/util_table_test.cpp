#include "util/table.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

namespace {

using medcc::util::Align;
using medcc::util::Table;

TEST(Table, RendersHeaderSeparatorAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const auto out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, RightAlignsNumericColumns) {
  Table t({"k", "v"});
  t.add_row({"x", "1"});
  t.add_row({"y", "100"});
  const auto out = t.render();
  // "1" must be padded to width 3 (right aligned under "100").
  EXPECT_NE(out.find("  1\n"), std::string::npos);
}

TEST(Table, FirstColumnLeftAligned) {
  Table t({"label", "v"});
  t.add_row({"a", "1"});
  const auto out = t.render();
  EXPECT_NE(out.find("a    "), std::string::npos);
}

TEST(Table, CustomAlignment) {
  Table t({"a", "b"});
  t.set_alignment({Align::Right, Align::Left});
  t.add_row({"x", "y"});
  const auto out = t.render();
  EXPECT_NE(out.find("x  y"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), medcc::LogicError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), medcc::LogicError);
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), medcc::LogicError);
}

TEST(Table, AlignmentArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.set_alignment({Align::Left}), medcc::LogicError);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(medcc::util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(medcc::util::fmt(2.0, 1), "2.0");
  EXPECT_EQ(medcc::util::fmt(std::size_t{42}), "42");
  EXPECT_EQ(medcc::util::fmt(-7), "-7");
}

TEST(Fmt, RoundingBehaviour) {
  EXPECT_EQ(medcc::util::fmt(1.005, 2), "1.00");  // bankers-ish fp reality
  EXPECT_EQ(medcc::util::fmt(1.006, 2), "1.01");
}

}  // namespace
