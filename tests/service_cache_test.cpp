// ResultCache behaviour: exact vs isomorphic hits, schedule re-mapping
// across permuted twins, LRU eviction, sharding, and stats accounting.
#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cloud/vm_type.hpp"
#include "sched/instance.hpp"
#include "sched/schedule.hpp"
#include "service/fingerprint.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::sched::Instance;
using medcc::sched::Result;
using medcc::sched::Schedule;
using medcc::service::fingerprint_instance;
using medcc::service::FingerprintDetail;
using medcc::service::remap_schedule;
using medcc::service::ResultCache;
using medcc::workflow::Workflow;

// Asymmetric diamond whose WL labels are all distinct (entry=0 a=1 b=2
// c=3 exit=4 in this insertion order).
Workflow diamond_forward() {
  Workflow wf;
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto a = wf.add_module("a", 30.0);
  const auto b = wf.add_module("b", 45.0);
  const auto c = wf.add_module("c", 75.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(entry, a, 2.0);
  wf.add_dependency(a, b, 3.0);
  wf.add_dependency(a, c, 4.0);
  wf.add_dependency(b, exit, 5.0);
  wf.add_dependency(c, exit, 6.0);
  return wf;
}

// Same DAG, modules inserted as c=0 exit=1 a=2 entry=3 b=4.
Workflow diamond_permuted() {
  Workflow wf;
  const auto c = wf.add_module("c", 75.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  const auto a = wf.add_module("a", 30.0);
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto b = wf.add_module("b", 45.0);
  wf.add_dependency(c, exit, 6.0);
  wf.add_dependency(b, exit, 5.0);
  wf.add_dependency(entry, a, 2.0);
  wf.add_dependency(a, c, 4.0);
  wf.add_dependency(a, b, 3.0);
  return wf;
}

VmCatalog catalog_forward() {
  return VmCatalog({VmType{"small", 3.0, 1.0}, VmType{"medium", 15.0, 4.0},
                    VmType{"large", 30.0, 8.0}});
}

// Same three types in the order large, small, medium.
VmCatalog catalog_permuted() {
  return VmCatalog({VmType{"large", 30.0, 8.0}, VmType{"small", 3.0, 1.0},
                    VmType{"medium", 15.0, 4.0}});
}

FingerprintDetail fp_of(const Instance& inst, double budget) {
  return fingerprint_instance(inst, budget, "cg", "");
}

Result result_with(Schedule schedule, double med, double cost) {
  Result r;
  r.schedule = std::move(schedule);
  r.eval.med = med;
  r.eval.cost = cost;
  r.iterations = 3;
  return r;
}

TEST(ResultCache, MissThenExactHit) {
  ResultCache cache({.capacity = 8, .shards = 2});
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  const auto fp = fp_of(inst, 50.0);
  EXPECT_FALSE(cache.find(fp).has_value());

  const auto stored = result_with(Schedule{{0, 2, 1, 2, 0}}, 6.5, 48.0);
  cache.insert(fp, stored);
  const auto hit = cache.find(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->exact);
  EXPECT_EQ(hit->result.schedule, stored.schedule);
  EXPECT_EQ(hit->result.iterations, stored.iterations);
  EXPECT_TRUE(hit->remappable);
}

TEST(ResultCache, PermutedTwinHitsNonExactAndRemaps) {
  ResultCache cache({.capacity = 8, .shards = 2});
  const auto solved = Instance::from_model(diamond_forward(), catalog_forward());
  const auto asking =
      Instance::from_model(diamond_permuted(), catalog_permuted());
  const auto solved_fp = fp_of(solved, 50.0);
  const auto asking_fp = fp_of(asking, 50.0);
  ASSERT_EQ(solved_fp.canonical, asking_fp.canonical);

  // forward ids: entry=0 a=1 b=2 c=3 exit=4; assign a->small b->medium
  // c->large in the forward catalog (small=0 medium=1 large=2).
  cache.insert(solved_fp, result_with(Schedule{{0, 0, 1, 2, 0}}, 6.5, 48.0));
  const auto hit = cache.find(asking_fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->exact);
  ASSERT_TRUE(hit->remappable);

  const auto remapped = remap_schedule(*hit, asking_fp);
  ASSERT_TRUE(remapped.has_value());
  // permuted ids: c=0 exit=1 a=2 entry=3 b=4; permuted catalog:
  // large=0 small=1 medium=2.
  ASSERT_EQ(remapped->type_of.size(), 5u);
  EXPECT_EQ(remapped->type_of[2], 1u);  // a -> small
  EXPECT_EQ(remapped->type_of[4], 2u);  // b -> medium
  EXPECT_EQ(remapped->type_of[0], 0u);  // c -> large
}

TEST(ResultCache, SymmetricModulesAreNotRemappable) {
  // Two identical parallel branches: labels collide, so the entry must be
  // stored non-remappable and remap_schedule must refuse.
  Workflow wf;
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto a = wf.add_module("a", 30.0);
  const auto b = wf.add_module("b", 30.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(entry, a, 2.0);
  wf.add_dependency(entry, b, 2.0);
  wf.add_dependency(a, exit, 3.0);
  wf.add_dependency(b, exit, 3.0);
  const auto inst = Instance::from_model(std::move(wf), catalog_forward());
  const auto fp = fp_of(inst, 20.0);
  ASSERT_FALSE(fp.modules_distinct);

  ResultCache cache({.capacity = 4, .shards = 1});
  cache.insert(fp, result_with(Schedule{{0, 1, 2, 0}}, 4.0, 19.0));
  const auto hit = cache.find(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->exact);  // verbatim duplicates still work
  EXPECT_FALSE(hit->remappable);
  EXPECT_FALSE(remap_schedule(*hit, fp).has_value());
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache({.capacity = 2, .shards = 1});
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  const auto fp1 = fp_of(inst, 10.0);
  const auto fp2 = fp_of(inst, 20.0);
  const auto fp3 = fp_of(inst, 30.0);
  const auto r = result_with(Schedule{{0, 0, 0, 0, 0}}, 1.0, 1.0);
  cache.insert(fp1, r);
  cache.insert(fp2, r);
  ASSERT_TRUE(cache.find(fp1).has_value());  // refresh fp1; fp2 is now LRU
  cache.insert(fp3, r);                      // evicts fp2
  EXPECT_TRUE(cache.find(fp1).has_value());
  EXPECT_FALSE(cache.find(fp2).has_value());
  EXPECT_TRUE(cache.find(fp3).has_value());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(ResultCache, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache({.capacity = 4, .shards = 1});
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  const auto fp = fp_of(inst, 50.0);
  cache.insert(fp, result_with(Schedule{{0, 0, 0, 0, 0}}, 9.0, 10.0));
  cache.insert(fp, result_with(Schedule{{0, 2, 2, 2, 0}}, 3.0, 49.0));
  EXPECT_EQ(cache.stats().size, 1u);
  const auto hit = cache.find(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result.schedule, (Schedule{{0, 2, 2, 2, 0}}));
}

TEST(ResultCache, ShardCountClampedToCapacity) {
  ResultCache tiny({.capacity = 2, .shards = 16});
  EXPECT_LE(tiny.shard_count(), 2u);
  EXPECT_GE(tiny.capacity(), 2u);
}

TEST(ResultCache, TtlExpiresLazilyOnFind) {
  std::int64_t now = 0;
  std::size_t notified = 0;
  ResultCache cache({.capacity = 8,
                     .shards = 1,
                     .ttl_s = 10,
                     .clock = [&now] { return now; },
                     .on_expired = [&notified](std::size_t n) {
                       notified += n;
                     }});
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  const auto fp = fp_of(inst, 50.0);
  cache.insert(fp, result_with(Schedule{{0, 1, 1, 1, 0}}, 5.0, 40.0));

  now = 9;  // inside the TTL
  EXPECT_TRUE(cache.find(fp).has_value());
  now = 10;  // exactly the TTL: expired
  EXPECT_FALSE(cache.find(fp).has_value());
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(notified, 1u);
}

TEST(ResultCache, SweepExpiredDropsOnlyAgedEntries) {
  std::int64_t now = 0;
  ResultCache cache({.capacity = 16,
                     .shards = 2,
                     .ttl_s = 10,
                     .clock = [&now] { return now; }});
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  for (int b = 1; b <= 3; ++b)
    cache.insert(fp_of(inst, static_cast<double>(b)),
                 result_with(Schedule{{0, 0, 0, 0, 0}}, 1.0, 1.0));
  now = 5;
  cache.insert(fp_of(inst, 99.0),
               result_with(Schedule{{0, 0, 0, 0, 0}}, 1.0, 1.0));

  now = 12;  // the first three are >= 10s old, the fourth is 7s old
  EXPECT_EQ(cache.sweep_expired(), 3u);
  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(cache.stats().expired, 3u);
  EXPECT_TRUE(cache.find(fp_of(inst, 99.0)).has_value());
}

TEST(ResultCache, UpsertAndRestoreRestampTtl) {
  std::int64_t now = 0;
  ResultCache cache({.capacity = 8,
                     .shards = 1,
                     .ttl_s = 10,
                     .clock = [&now] { return now; }});
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  const auto fp = fp_of(inst, 50.0);
  cache.insert(fp, result_with(Schedule{{0, 1, 1, 1, 0}}, 5.0, 40.0));

  now = 8;  // refreshing restarts the clock
  cache.insert(fp, result_with(Schedule{{0, 1, 1, 1, 0}}, 5.0, 40.0));
  now = 12;
  EXPECT_TRUE(cache.find(fp).has_value());

  // A restored (replicated / warm-started) entry gets a fresh TTL at
  // the receiving node regardless of what its origin stamped.
  auto entry = ResultCache::make_entry(
      fp_of(inst, 60.0), result_with(Schedule{{0, 2, 2, 2, 0}}, 3.0, 49.0));
  entry.inserted_at = -1000;
  now = 20;
  cache.restore(std::move(entry));
  now = 29;
  EXPECT_TRUE(cache.find(fp_of(inst, 60.0)).has_value());
  now = 30;
  EXPECT_FALSE(cache.find(fp_of(inst, 60.0)).has_value());
}

TEST(ResultCache, ZeroTtlNeverExpires) {
  std::int64_t now = 0;
  ResultCache cache({.capacity = 8,
                     .shards = 1,
                     .ttl_s = 0,
                     .clock = [&now] { return now; }});
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  const auto fp = fp_of(inst, 50.0);
  cache.insert(fp, result_with(Schedule{{0, 1, 1, 1, 0}}, 5.0, 40.0));
  now = 1'000'000'000;
  EXPECT_EQ(cache.sweep_expired(), 0u);
  EXPECT_TRUE(cache.find(fp).has_value());
  EXPECT_EQ(cache.stats().expired, 0u);
}

TEST(ResultCache, ClearEmptiesEveryShard) {
  ResultCache cache({.capacity = 16, .shards = 4});
  const auto inst = Instance::from_model(diamond_forward(), catalog_forward());
  for (int b = 1; b <= 10; ++b)
    cache.insert(fp_of(inst, static_cast<double>(b)),
                 result_with(Schedule{{0, 0, 0, 0, 0}}, 1.0, 1.0));
  EXPECT_GT(cache.stats().size, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_FALSE(cache.find(fp_of(inst, 1.0)).has_value());
}

}  // namespace
