#include "dag/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "util/prng.hpp"

namespace {

using medcc::dag::Dag;
using medcc::dag::NodeId;

Dag diamond() {
  Dag g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Dag, EmptyGraph) {
  Dag g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Dag, AddNodesAndEdges) {
  Dag g(3);
  EXPECT_EQ(g.node_count(), 3u);
  const auto e = g.add_edge(0, 2);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).src, 0u);
  EXPECT_EQ(g.edge(e).dst, 2u);
  const auto n = g.add_node();
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(g.node_count(), 4u);
}

TEST(Dag, DegreesAndAdjacency) {
  const auto g = diamond();
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  const auto succ = g.successors(0);
  EXPECT_EQ(std::set<NodeId>(succ.begin(), succ.end()),
            (std::set<NodeId>{1, 2}));
  const auto pred = g.predecessors(3);
  EXPECT_EQ(std::set<NodeId>(pred.begin(), pred.end()),
            (std::set<NodeId>{1, 2}));
}

TEST(Dag, HasEdge) {
  const auto g = diamond();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Dag, SelfLoopRejected) {
  Dag g(2);
  EXPECT_THROW((void)g.add_edge(1, 1), medcc::InvalidArgument);
}

TEST(Dag, ParallelEdgeRejected) {
  Dag g(2);
  g.add_edge(0, 1);
  EXPECT_THROW((void)g.add_edge(0, 1), medcc::InvalidArgument);
}

TEST(Dag, OutOfRangeNodesRejected) {
  Dag g(2);
  EXPECT_THROW((void)g.add_edge(0, 5), medcc::LogicError);
}

TEST(Dag, SourcesAndSinks) {
  const auto g = diamond();
  EXPECT_EQ(g.sources(), std::vector<NodeId>{0});
  EXPECT_EQ(g.sinks(), std::vector<NodeId>{3});
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const auto g = diamond();
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(g.node_count());
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_LT(pos[g.edge(e).src], pos[g.edge(e).dst]);
}

TEST(Dag, CycleDetected) {
  Dag g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(Dag, Reachability) {
  const auto g = diamond();
  EXPECT_TRUE(g.reachable(0, 3));
  EXPECT_TRUE(g.reachable(0, 0));
  EXPECT_FALSE(g.reachable(1, 2));
  EXPECT_FALSE(g.reachable(3, 0));
}

TEST(Dag, ReachableSet) {
  const auto g = diamond();
  const auto from1 = g.reachable_set(1);
  EXPECT_TRUE(from1[1]);
  EXPECT_TRUE(from1[3]);
  EXPECT_FALSE(from1[0]);
  EXPECT_FALSE(from1[2]);
}

TEST(Dag, RedundantEdgeFound) {
  Dag g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto direct = g.add_edge(0, 2);  // implied by 0->1->2
  const auto redundant = g.redundant_edges();
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(redundant.front(), direct);
}

TEST(Dag, DiamondHasNoRedundantEdges) {
  EXPECT_TRUE(diamond().redundant_edges().empty());
}

// Property sweep over random forward DAGs.
class DagPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DagPropertyTest, RandomForwardDagInvariants) {
  medcc::util::Prng rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 30));
  Dag g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.3)) g.add_edge(i, j);

  // Forward construction is always acyclic and the topological order is a
  // permutation respecting every edge.
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), n);
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[(*order)[i]] = i;
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_LT(pos[g.edge(e).src], pos[g.edge(e).dst]);

  // Degree sums match the edge count.
  std::size_t in_sum = 0, out_sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    in_sum += g.in_degree(v);
    out_sum += g.out_degree(v);
  }
  EXPECT_EQ(in_sum, g.edge_count());
  EXPECT_EQ(out_sum, g.edge_count());

  // Reachability is transitive along sampled chains.
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_TRUE(g.reachable(g.edge(e).src, g.edge(e).dst));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// Regression for the topo-order memo under TSan: many readers hitting the
// first (cache-filling) call at once, with single-threaded add_edge
// invalidation between rounds -- the documented usage contract. Each
// reader validates its snapshot in full, so a torn or stale cache shows
// up as an ordering violation even without TSan.
TEST(Dag, TopologicalOrderConcurrentFirstCallAndInvalidation) {
  constexpr std::size_t kNodes = 64;
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 25;

  Dag g(kNodes);
  for (NodeId v = 0; v + 1 < kNodes; ++v) g.add_edge(v, v + 1);

  medcc::util::Prng rng(2013);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::thread> readers;
    readers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      readers.emplace_back([&g] {
        for (int call = 0; call < kCallsPerThread; ++call) {
          const auto order = g.topological_order();
          ASSERT_TRUE(order.has_value());
          ASSERT_EQ(order->size(), g.node_count());
          std::vector<std::size_t> pos(g.node_count());
          for (std::size_t i = 0; i < order->size(); ++i)
            pos[(*order)[i]] = i;
          for (std::size_t e = 0; e < g.edge_count(); ++e)
            ASSERT_LT(pos[g.edge(e).src], pos[g.edge(e).dst]);
        }
      });
    }
    for (auto& reader : readers) reader.join();

    // Mutate between rounds (readers joined: external synchronization as
    // documented on Dag). The next round's first reader repopulates the
    // invalidated memo concurrently with its peers.
    const NodeId fresh = g.add_node();
    const auto src = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<int>(g.node_count()) - 2));
    g.add_edge(src, fresh);  // an edge into a fresh sink is never parallel
  }
}

}  // namespace
