// Every scheduler's output is run through the analysis verifiers: the
// budget-constrained family (CG, GAIN3, LOSS, genetic, annealing,
// exhaustive, reuse-aware) through verify_schedule, the deadline family
// (PCP, deadline_loss, exact) through verify_schedule with a deadline,
// the bounded-pool family (HEFT, HBMCT) through verify_placement, and
// plan_vm_reuse through verify_reuse_plan. A scheduler whose result fails
// an invariant breaks here regardless of the MEDCC_CHECK_INVARIANTS
// build option.
#include <gtest/gtest.h>

#include "analysis/verify.hpp"
#include "sched/annealing.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/deadline.hpp"
#include "sched/exhaustive.hpp"
#include "sched/gain_loss.hpp"
#include "sched/genetic.hpp"
#include "sched/hbmct.hpp"
#include "sched/heft.hpp"
#include "sched/pcp.hpp"
#include "sched/reuse_aware.hpp"
#include "sched/vm_reuse.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::analysis::VerifyOptions;
using medcc::analysis::verify_placement;
using medcc::analysis::verify_reuse_plan;
using medcc::analysis::verify_schedule;
using medcc::cloud::VmType;
using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

/// A budget in the interesting middle of [Cmin, Cmax].
double mid_budget(const Instance& inst) {
  const auto bounds = medcc::sched::cost_bounds(inst);
  return bounds.cmin + 0.5 * (bounds.cmax - bounds.cmin);
}

void expect_clean(const medcc::analysis::Diagnostics& diag) {
  EXPECT_TRUE(diag.ok()) << diag.to_string();
}

void verify_budgeted(const Instance& inst, const medcc::sched::Schedule& s,
                     const medcc::sched::Evaluation& eval, double budget) {
  VerifyOptions options;
  options.budget = budget;
  expect_clean(verify_schedule(inst, s, eval, options));
}

TEST(AnalysisSchedulers, CriticalGreedy) {
  const auto inst = example_instance();
  const double budget = mid_budget(inst);
  const auto r = medcc::sched::critical_greedy(inst, budget);
  verify_budgeted(inst, r.schedule, r.eval, budget);
}

TEST(AnalysisSchedulers, Gain3) {
  const auto inst = example_instance();
  const double budget = mid_budget(inst);
  const auto r = medcc::sched::gain3(inst, budget);
  verify_budgeted(inst, r.schedule, r.eval, budget);
}

TEST(AnalysisSchedulers, Loss) {
  const auto inst = example_instance();
  const double budget = mid_budget(inst);
  const auto r = medcc::sched::loss(inst, budget);
  verify_budgeted(inst, r.schedule, r.eval, budget);
}

TEST(AnalysisSchedulers, Genetic) {
  const auto inst = example_instance();
  const double budget = mid_budget(inst);
  medcc::sched::GeneticOptions options;
  options.population = 16;
  options.generations = 12;
  const auto r = medcc::sched::genetic(inst, budget, options);
  verify_budgeted(inst, r.schedule, r.eval, budget);
}

TEST(AnalysisSchedulers, Annealing) {
  const auto inst = example_instance();
  const double budget = mid_budget(inst);
  medcc::sched::AnnealingOptions options;
  options.iterations = 500;
  const auto r = medcc::sched::annealing(inst, budget, options);
  verify_budgeted(inst, r.schedule, r.eval, budget);
}

TEST(AnalysisSchedulers, Exhaustive) {
  const auto inst = example_instance();
  const double budget = mid_budget(inst);
  const auto r = medcc::sched::exhaustive_optimal(inst, budget);
  verify_budgeted(inst, r.schedule, r.eval, budget);
}

TEST(AnalysisSchedulers, PcpDeadline) {
  const auto inst = example_instance();
  const auto fastest =
      medcc::sched::evaluate(inst, medcc::sched::fastest_schedule(inst));
  const double deadline = fastest.med * 1.25;
  const auto r = medcc::sched::pcp_deadline(inst, deadline);
  VerifyOptions options;
  options.deadline = deadline;
  expect_clean(verify_schedule(inst, r.schedule, r.eval, options));
}

TEST(AnalysisSchedulers, DeadlineLoss) {
  const auto inst = example_instance();
  const auto fastest =
      medcc::sched::evaluate(inst, medcc::sched::fastest_schedule(inst));
  const double deadline = fastest.med * 1.25;
  const auto r = medcc::sched::deadline_loss(inst, deadline);
  VerifyOptions options;
  options.deadline = deadline;
  expect_clean(verify_schedule(inst, r.schedule, r.eval, options));
}

TEST(AnalysisSchedulers, MinCostUnderDeadlineExact) {
  const auto inst = example_instance();
  const auto fastest =
      medcc::sched::evaluate(inst, medcc::sched::fastest_schedule(inst));
  const double deadline = fastest.med * 1.25;
  const auto r = medcc::sched::min_cost_under_deadline_exact(inst, deadline);
  VerifyOptions options;
  options.deadline = deadline;
  expect_clean(verify_schedule(inst, r.schedule, r.eval, options));
}

TEST(AnalysisSchedulers, Heft) {
  const auto inst = example_instance();
  const std::vector<VmType> pool = {VmType{"a", 5.0, 1.0},
                                    VmType{"b", 10.0, 2.0},
                                    VmType{"c", 20.0, 4.0}};
  const auto r = medcc::sched::heft(inst, pool);
  expect_clean(verify_placement(inst, pool, r.placement, r.makespan));
}

TEST(AnalysisSchedulers, Hbmct) {
  const auto inst = example_instance();
  const std::vector<VmType> pool = {VmType{"a", 5.0, 1.0},
                                    VmType{"b", 10.0, 2.0},
                                    VmType{"c", 20.0, 4.0}};
  const auto r = medcc::sched::hbmct(inst, pool);
  expect_clean(verify_placement(inst, pool, r.placement, r.makespan));
}

TEST(AnalysisSchedulers, VmReusePlan) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, mid_budget(inst));
  const auto plan = medcc::sched::plan_vm_reuse(inst, r.schedule);
  expect_clean(verify_reuse_plan(inst, r.schedule, plan));
}

TEST(AnalysisSchedulers, ReuseAwareCriticalGreedy) {
  const auto inst = example_instance();
  const auto r =
      medcc::sched::critical_greedy_reuse_aware(inst, mid_budget(inst));
  // The analytic cost may exceed the budget by design (feasibility is
  // billed-with-reuse), so verify without a budget bound, then check the
  // reuse plan against the billed cost.
  expect_clean(verify_schedule(inst, r.schedule, r.eval));
  const auto plan = medcc::sched::plan_vm_reuse(inst, r.schedule);
  expect_clean(verify_reuse_plan(inst, r.schedule, plan));
}

// Verifiers also hold on a larger random instance, not just the paper
// example.
TEST(AnalysisSchedulers, CriticalGreedyOnRandomInstance) {
  medcc::util::Prng rng(7);
  const auto wf = medcc::workflow::layered(4, 5, 5.0, 30.0, rng);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  const double budget = mid_budget(inst);
  const auto r = medcc::sched::critical_greedy(inst, budget);
  verify_budgeted(inst, r.schedule, r.eval, budget);
}

}  // namespace
