#include "sched/reuse_aware.hpp"

#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/vm_reuse.hpp"
#include "sim/executor.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::critical_greedy_reuse_aware;
using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(ReuseAware, InfeasibleBelowBilledFloor) {
  const auto inst = example_instance();
  // The least-cost schedule's billed cost is below 48 (quanta shared).
  const double floor = medcc::sched::plan_vm_reuse(
                           inst, medcc::sched::least_cost_schedule(inst))
                           .billed_cost_uptime;
  EXPECT_LT(floor, 48.0);
  EXPECT_THROW((void)critical_greedy_reuse_aware(inst, floor - 1.0),
               medcc::Infeasible);
  EXPECT_NO_THROW((void)critical_greedy_reuse_aware(inst, floor));
}

TEST(ReuseAware, BilledCostRespectsBudget) {
  const auto inst = example_instance();
  for (double budget : {47.0, 50.0, 57.0, 64.0}) {
    const auto r = critical_greedy_reuse_aware(inst, budget);
    EXPECT_LE(r.billed_cost, budget + 1e-6) << "budget " << budget;
    // The billed cost is what plan_vm_reuse reports for the schedule.
    EXPECT_NEAR(r.billed_cost,
                medcc::sched::plan_vm_reuse(inst, r.schedule)
                    .billed_cost_uptime,
                1e-9);
  }
}

TEST(ReuseAware, NeverSlowerThanPlainCgAtEqualBudget) {
  // Reuse-aware billing only widens the feasible move set relative to the
  // per-module CTotal, and both run the same greedy; at equal budget the
  // reuse-aware variant must reach an equal or faster schedule on the
  // example (where CG's greedy trajectory is optimal at every band).
  const auto inst = example_instance();
  for (double budget : {48.0, 52.0, 57.0, 60.0}) {
    const auto plain = medcc::sched::critical_greedy(inst, budget);
    const auto aware = critical_greedy_reuse_aware(inst, budget);
    EXPECT_LE(aware.eval.med, plain.eval.med + 1e-9) << "budget " << budget;
  }
}

TEST(ReuseAware, FeasibleBelowThePaperCminAndNeverWorseAbove) {
  // The reuse-aware billed floor on the example is 47 < Cmin = 48: the
  // planner schedules at budgets the per-module model calls infeasible,
  // and everywhere above it matches or beats plain CG's MED.
  const auto inst = example_instance();
  EXPECT_THROW((void)medcc::sched::critical_greedy(inst, 47.5),
               medcc::Infeasible);
  const auto below = critical_greedy_reuse_aware(inst, 47.5);
  EXPECT_NEAR(below.eval.med, 16.77, 0.005);
  for (double budget = 48.0; budget <= 64.0; budget += 0.5) {
    const auto plain = medcc::sched::critical_greedy(inst, budget);
    const auto aware = critical_greedy_reuse_aware(inst, budget);
    EXPECT_LE(aware.eval.med, plain.eval.med + 1e-9)
        << "budget " << budget;
  }
}

TEST(ReuseAware, SimulatedBilledCostMatchesPlan) {
  const auto inst = example_instance();
  const auto r = critical_greedy_reuse_aware(inst, 52.0);
  medcc::sim::ExecutorOptions opts;
  opts.reuse_vms = true;
  const auto sim = medcc::sim::execute(inst, r.schedule, opts);
  EXPECT_NEAR(sim.billed_cost, r.billed_cost, 1e-9);
  EXPECT_NEAR(sim.makespan, r.eval.med, 1e-9);
}

class ReuseAwarePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReuseAwarePropertyTest, DominatesOrMatchesPlainCgOnAverage) {
  medcc::util::Prng rng(GetParam());
  const auto inst = medcc::expr::make_instance({12, 30, 4}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  double plain_sum = 0.0, aware_sum = 0.0;
  for (double budget : medcc::sched::budget_levels(bounds, 6)) {
    plain_sum += medcc::sched::critical_greedy(inst, budget).eval.med;
    const auto aware = critical_greedy_reuse_aware(inst, budget);
    aware_sum += aware.eval.med;
    EXPECT_LE(aware.billed_cost, budget + 1e-6);
  }
  // Both are greedy, so per-budget dominance is not a theorem; on average
  // over the sweep the wider feasible set should not lose ground.
  EXPECT_LE(aware_sum, plain_sum * 1.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseAwarePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
