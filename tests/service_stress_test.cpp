// Multithreaded stress on the SchedulingService aimed at data races:
// concurrent clients over a duplicate-heavy request mix, metric readers
// racing the request path, and submissions racing shutdown. Run under
// -DMEDCC_SANITIZE=thread these must produce zero TSan reports.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/vm_type.hpp"
#include "sched/instance.hpp"
#include "sched/schedule.hpp"
#include "util/prng.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;
using medcc::service::RejectReason;
using medcc::service::ResponseStatus;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;

struct Problem {
  std::shared_ptr<const Instance> instance;
  double budget = 0.0;
};

std::vector<Problem> instance_pool(std::size_t n) {
  std::vector<Problem> pool;
  pool.reserve(n);
  medcc::util::Prng rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    auto wf = medcc::workflow::layered(/*layers=*/3, /*width=*/3,
                                       /*wl_min=*/10.0, /*wl_max=*/80.0, rng);
    auto inst = std::make_shared<const Instance>(Instance::from_model(
        std::move(wf), medcc::cloud::example_catalog()));
    // Cheapest-everywhere cost plus headroom keeps every request feasible.
    medcc::sched::Schedule cheapest;
    cheapest.type_of.assign(inst->module_count(),
                            inst->catalog().cheapest_rate_index());
    const double budget =
        medcc::sched::total_cost(*inst, cheapest) * 1.4 + 1.0;
    pool.push_back({std::move(inst), budget});
  }
  return pool;
}

SchedulingRequest make_request(const Problem& problem) {
  SchedulingRequest req;
  req.instance = problem.instance;
  req.budget = problem.budget;
  req.solver = "cg";
  return req;
}

TEST(ServiceStress, ConcurrentClientsDuplicateHeavyMix) {
  // 4 distinct instances, 4 clients x 50 requests each: most submissions
  // repeat an instance already solved, so the cache and its sharded LRU
  // lists see heavy concurrent hits alongside misses.
  const auto pool = instance_pool(4);
  ServiceConfig config;
  config.threads = 4;
  config.queue_capacity = 1024;  // accept everything: exact accounting
  SchedulingService service(std::move(config));

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 50;
  std::atomic<std::size_t> ok_count{0};
  std::atomic<std::size_t> other_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      medcc::util::Prng rng(100 + c);
      std::vector<std::future<SchedulingResponse>> futures;
      futures.reserve(kPerClient);
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const auto& problem = pool[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pool.size()) - 1))];
        futures.push_back(service.submit(make_request(problem)));
      }
      for (auto& f : futures) {
        const auto response = f.get();
        if (response.ok())
          ok_count.fetch_add(1, std::memory_order_relaxed);
        else
          other_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  service.drain();

  EXPECT_EQ(ok_count.load() + other_count.load(), kClients * kPerClient);
  EXPECT_EQ(other_count.load(), 0u);
  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.requests_total, kClients * kPerClient);
  EXPECT_EQ(snap.responses_ok, kClients * kPerClient);
  // Only the first solve of each of the 4 instances can miss; everything
  // else must be served from the cache (exact hits here).
  EXPECT_EQ(snap.cache_misses + snap.cache_hits_exact +
                snap.cache_hits_isomorphic,
            kClients * kPerClient);
  EXPECT_GE(snap.cache_misses, 1u);
  // Concurrent workers can race the first solve of one instance (both
  // miss before either inserts), so up to `threads` misses per distinct
  // instance are legitimate; after the first insert completes, every
  // later request hits.
  EXPECT_LE(snap.cache_misses, pool.size() * 4);
  EXPECT_EQ(snap.queue_depth, 0);
}

TEST(ServiceStress, MetricReadersRaceRequestPath) {
  const auto pool = instance_pool(2);
  SchedulingService service({.threads = 2, .queue_capacity = 1024});

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const auto snap = service.metrics().snapshot();
        ASSERT_LE(snap.responses_ok, snap.requests_total);
        ASSERT_FALSE(service.metrics().dump_text().empty());
        (void)service.cache_stats();
      }
    });
  }

  std::vector<std::future<SchedulingResponse>> futures;
  futures.reserve(100);
  for (std::size_t i = 0; i < 100; ++i)
    futures.push_back(service.submit(make_request(pool[i % 2])));
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
}

TEST(ServiceStress, SubmissionsRacingShutdown) {
  // Clients keep submitting while another thread shuts the service down.
  // Every future must resolve: either served or rejected shutting_down /
  // queue_full; nothing may hang or crash, and accounting must add up.
  for (int round = 0; round < 5; ++round) {
    const auto pool = instance_pool(2);
    auto service =
        std::make_unique<SchedulingService>(ServiceConfig{.threads = 2});
    constexpr std::size_t kClients = 3;
    constexpr std::size_t kPerClient = 60;
    std::atomic<std::size_t> resolved{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        medcc::util::Prng rng(7 * round + c);
        for (std::size_t i = 0; i < kPerClient; ++i) {
          auto future = service->submit(
              make_request(pool[static_cast<std::size_t>(
                  rng.uniform_int(0, 1))]));
          const auto response = future.get();
          if (!response.ok()) {
            ASSERT_EQ(response.status, ResponseStatus::rejected);
            ASSERT_TRUE(
                response.reject_reason == RejectReason::shutting_down ||
                response.reject_reason == RejectReason::queue_full);
          }
          resolved.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::thread stopper([&service] { service->shutdown(); });
    for (auto& t : clients) t.join();
    stopper.join();
    EXPECT_EQ(resolved.load(), kClients * kPerClient);
    const auto snap = service->metrics().snapshot();
    EXPECT_EQ(snap.requests_total, kClients * kPerClient);
    service.reset();  // destructor repeats shutdown; must be idempotent
  }
}

}  // namespace
