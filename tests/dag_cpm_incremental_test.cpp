// Differential and metamorphic tests for the allocation-free CPM kernel
// (dag/flat_dag.hpp + dag/cpm_kernel.hpp) against the legacy
// dag::compute_cpm reference:
//
//  * export_result() must match compute_cpm bit for bit on random DAGs,
//    including the extracted critical path;
//  * incremental update_weight / update_weight_full over random
//    weight-change sequences must stay bitwise-identical to a full
//    recompute after every step;
//  * rollback() must restore the pre-transaction state exactly;
//  * one workspace reused across graphs of different sizes must keep
//    producing reference results;
//  * steady-state kernel calls must not touch the heap (verified by a
//    counting global operator new).
#include "dag/cpm_kernel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "dag/critical_path.hpp"
#include "util/prng.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every global allocation in this binary bumps the
// counter. Tests snapshot it around a warmed-up op sequence to prove the
// kernels are allocation-free at steady state.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::size_t> g_alloc_count{0};

std::size_t allocation_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using medcc::dag::CpmWorkspace;
using medcc::dag::compute_cpm;
using medcc::dag::Dag;
using medcc::dag::FlatDag;
using medcc::dag::NodeId;

struct RandomCase {
  Dag graph{0};
  std::vector<double> weights;
  std::vector<double> edge_weights;  ///< empty for half the seeds
};

/// Seeded random DAG: upper-triangular edges, weights in [0, 10], edge
/// delays in [0, 3] (or the empty all-zero convention).
RandomCase random_case(std::uint64_t seed) {
  medcc::util::Prng rng(seed);
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 16));
  RandomCase c{Dag(n), {}, {}};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.3)) c.graph.add_edge(i, j);
  c.weights.resize(n);
  for (auto& w : c.weights) w = rng.uniform_real(0.0, 10.0);
  if (rng.bernoulli(0.5)) {
    c.edge_weights.resize(c.graph.edge_count());
    for (auto& w : c.edge_weights) w = rng.uniform_real(0.0, 3.0);
  }
  return c;
}

/// Bitwise comparison of kernel forward state vs the reference result.
void expect_forward_equal(const CpmWorkspace& ws,
                          const medcc::dag::CpmResult& ref) {
  ASSERT_EQ(ws.est.size(), ref.est.size());
  for (std::size_t v = 0; v < ref.est.size(); ++v) {
    EXPECT_EQ(ws.est[v], ref.est[v]) << "est mismatch at node " << v;
    EXPECT_EQ(ws.eft[v], ref.eft[v]) << "eft mismatch at node " << v;
  }
  EXPECT_EQ(ws.makespan, ref.makespan);
}

class KernelDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(KernelDifferentialTest, ExportMatchesComputeCpmBitwise) {
  const auto c = random_case(GetParam());
  const auto ref = compute_cpm(c.graph, c.weights, c.edge_weights);

  const FlatDag flat(c.graph, c.edge_weights);
  CpmWorkspace ws;
  medcc::dag::cpm_into(flat, c.weights, ws);
  const auto got = medcc::dag::export_result(flat, ws);

  EXPECT_EQ(got.est, ref.est);
  EXPECT_EQ(got.eft, ref.eft);
  EXPECT_EQ(got.lst, ref.lst);
  EXPECT_EQ(got.lft, ref.lft);
  EXPECT_EQ(got.buffer, ref.buffer);
  EXPECT_EQ(got.critical, ref.critical);
  EXPECT_EQ(got.critical_path, ref.critical_path);
  EXPECT_EQ(got.makespan, ref.makespan);

  // The forward-only fast path agrees with the full pass.
  CpmWorkspace ws2;
  EXPECT_EQ(medcc::dag::makespan_into(flat, c.weights, ws2), ref.makespan);
}

TEST_P(KernelDifferentialTest, IncrementalForwardMatchesFullRecompute) {
  const auto c = random_case(GetParam());
  const std::size_t n = c.graph.node_count();
  const FlatDag flat(c.graph, c.edge_weights);
  medcc::util::Prng rng(GetParam() * 7919 + 1);

  CpmWorkspace inc;
  medcc::dag::makespan_into(flat, c.weights, inc);
  auto current = c.weights;

  CpmWorkspace full;
  for (int step = 0; step < 40; ++step) {
    const auto v =
        static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const double w = rng.bernoulli(0.15) ? 0.0 : rng.uniform_real(0.0, 12.0);
    const double m = medcc::dag::update_weight(flat, inc, v, w);
    medcc::dag::commit(inc);
    current[v] = w;

    const double m_full = medcc::dag::makespan_into(flat, current, full);
    EXPECT_EQ(m, m_full) << "step " << step;
    expect_forward_equal(inc, compute_cpm(c.graph, current, c.edge_weights));
  }
}

TEST_P(KernelDifferentialTest, IncrementalFullMatchesCpmInto) {
  const auto c = random_case(GetParam());
  const std::size_t n = c.graph.node_count();
  const FlatDag flat(c.graph, c.edge_weights);
  medcc::util::Prng rng(GetParam() * 104729 + 3);

  CpmWorkspace inc;
  medcc::dag::cpm_into(flat, c.weights, inc);
  auto current = c.weights;

  for (int step = 0; step < 25; ++step) {
    const auto v =
        static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const double w = rng.uniform_real(0.0, 12.0);
    medcc::dag::update_weight_full(flat, inc, v, w);
    current[v] = w;

    // The maintained backward state must match both a fresh cpm_into and
    // the legacy reference, bit for bit -- including criticality flags.
    const auto ref = compute_cpm(c.graph, current, c.edge_weights);
    const auto got = medcc::dag::export_result(flat, inc);
    EXPECT_EQ(got.est, ref.est) << "step " << step;
    EXPECT_EQ(got.eft, ref.eft) << "step " << step;
    EXPECT_EQ(got.lst, ref.lst) << "step " << step;
    EXPECT_EQ(got.lft, ref.lft) << "step " << step;
    EXPECT_EQ(got.critical, ref.critical) << "step " << step;
    EXPECT_EQ(got.critical_path, ref.critical_path) << "step " << step;
    EXPECT_EQ(got.makespan, ref.makespan) << "step " << step;
  }
}

TEST_P(KernelDifferentialTest, RollbackRestoresStateExactly) {
  const auto c = random_case(GetParam());
  const std::size_t n = c.graph.node_count();
  const FlatDag flat(c.graph, c.edge_weights);
  medcc::util::Prng rng(GetParam() * 31 + 17);

  CpmWorkspace ws;
  medcc::dag::makespan_into(flat, c.weights, ws);
  const auto est0 = ws.est;
  const auto eft0 = ws.eft;
  const auto weights0 = ws.weights;
  const double makespan0 = ws.makespan;

  // Chain several updates in one transaction (possibly hitting the same
  // node twice), then abandon them all.
  for (int k = 0; k < 5; ++k) {
    const auto v =
        static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    medcc::dag::update_weight(flat, ws, v, rng.uniform_real(0.0, 20.0));
  }
  medcc::dag::rollback(ws);

  EXPECT_EQ(ws.est, est0);
  EXPECT_EQ(ws.eft, eft0);
  EXPECT_EQ(ws.weights, weights0);
  EXPECT_EQ(ws.makespan, makespan0);

  // The workspace is immediately reusable for further updates.
  const double m = medcc::dag::update_weight(flat, ws, 0, 1.5);
  medcc::dag::commit(ws);
  auto current = c.weights;
  current[0] = 1.5;
  EXPECT_EQ(m, compute_cpm(c.graph, current, c.edge_weights).makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(CpmKernel, WorkspaceReusableAcrossGraphs) {
  // One workspace, many graphs of different sizes, interleaved: prepare()
  // must resize correctly and never leak state from the previous graph.
  CpmWorkspace ws;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const auto c = random_case(seed);
    const FlatDag flat(c.graph, c.edge_weights);
    medcc::dag::cpm_into(flat, c.weights, ws);
    const auto ref = compute_cpm(c.graph, c.weights, c.edge_weights);
    const auto got = medcc::dag::export_result(flat, ws);
    EXPECT_EQ(got.est, ref.est) << "seed " << seed;
    EXPECT_EQ(got.lft, ref.lft) << "seed " << seed;
    EXPECT_EQ(got.critical_path, ref.critical_path) << "seed " << seed;
    EXPECT_EQ(got.makespan, ref.makespan) << "seed " << seed;
  }
}

TEST(CpmKernel, EmptyGraph) {
  const Dag g(0);
  const FlatDag flat(g);
  EXPECT_EQ(flat.node_count(), 0u);
  CpmWorkspace ws;
  EXPECT_EQ(medcc::dag::makespan_into(flat, std::vector<double>{}, ws), 0.0);
  medcc::dag::cpm_into(flat, std::vector<double>{}, ws);
  const auto got = medcc::dag::export_result(flat, ws);
  const auto ref = compute_cpm(g, std::vector<double>{});
  EXPECT_EQ(got.makespan, ref.makespan);
  EXPECT_EQ(got.critical_path, ref.critical_path);
}

TEST(CpmKernel, SingleNode) {
  const Dag g(1);
  const FlatDag flat(g);
  CpmWorkspace ws;
  medcc::dag::cpm_into(flat, std::vector<double>{3.0}, ws);
  EXPECT_EQ(ws.makespan, 3.0);
  EXPECT_EQ(medcc::dag::update_weight(flat, ws, 0, 7.5), 7.5);
  medcc::dag::rollback(ws);
  EXPECT_EQ(ws.makespan, 3.0);
  medcc::dag::update_weight_full(flat, ws, 0, 0.0);
  const auto got = medcc::dag::export_result(flat, ws);
  const auto ref = compute_cpm(g, std::vector<double>{0.0});
  EXPECT_EQ(got.critical, ref.critical);
  EXPECT_EQ(got.critical_path, ref.critical_path);
  EXPECT_EQ(got.makespan, 0.0);
}

TEST(CpmKernel, FlatDagRejectsBadInputs) {
  Dag cyc(2);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 0);
  EXPECT_THROW((void)FlatDag(cyc), medcc::InvalidArgument);

  Dag g(2);
  g.add_edge(0, 1);
  EXPECT_THROW((void)FlatDag(g, std::vector<double>{1.0, 2.0}),
               medcc::InvalidArgument);  // edge-weight size mismatch
  EXPECT_THROW((void)FlatDag(g, std::vector<double>{-1.0}),
               medcc::InvalidArgument);  // negative edge weight
}

TEST(CpmKernelAlloc, SteadyStateKernelsAreAllocationFree) {
  const auto c = random_case(42);
  const std::size_t n = c.graph.node_count();
  ASSERT_GE(n, 2u);
  const FlatDag flat(c.graph, c.edge_weights);
  CpmWorkspace ws;
  auto perturbed = c.weights;
  for (auto& w : perturbed) w *= 0.5;
  const NodeId a = 0;
  const auto b = static_cast<NodeId>(n - 1);

  // One deterministic op sequence covering every kernel entry point. The
  // first run warms the workspace to its high-water capacity; the second,
  // identical run must not allocate at all.
  const auto run_ops = [&] {
    double acc = medcc::dag::makespan_into(flat, c.weights, ws);
    acc += medcc::dag::makespan_into(flat, ws);  // in-place weights
    medcc::dag::update_weight(flat, ws, a, 5.0);
    medcc::dag::update_weight(flat, ws, b, 0.25);
    medcc::dag::rollback(ws);
    medcc::dag::update_weight(flat, ws, a, 2.0);
    medcc::dag::commit(ws);
    medcc::dag::cpm_into(flat, c.weights, ws);
    acc += medcc::dag::update_weight_full(flat, ws, b, 4.0);
    acc += medcc::dag::update_weight_full(flat, ws, a, 0.0);
    medcc::dag::cpm_into(flat, perturbed, ws);
    return acc + ws.makespan;
  };

  const double warm = run_ops();
  const std::size_t before = allocation_count();
  const double measured = run_ops();
  const std::size_t after = allocation_count();

  EXPECT_EQ(after, before) << "steady-state kernel calls touched the heap";
  EXPECT_EQ(warm, measured);
}

}  // namespace
