// Golden-file test for the Prometheus text exposition: a
// MetricsRegistry driven with a fixed, deterministic sequence of
// requests, responses and latency samples must render byte-for-byte
// the exposition checked in at tests/golden/metrics_prometheus.txt.
// Any format drift -- renamed series, reordered labels, changed
// histogram buckets -- breaks dashboards silently, so it must show up
// here as a diff instead.
//
// To regenerate after an INTENTIONAL format change:
//   MEDCC_UPDATE_GOLDEN=1 ./service_metrics_prometheus_test
#include "service/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "service/request.hpp"

namespace {

using medcc::service::CacheOutcome;
using medcc::service::MetricsRegistry;
using medcc::service::RejectReason;
using medcc::service::ResponseStatus;
using medcc::service::SchedulingResponse;

std::filesystem::path golden_path() {
  return std::filesystem::path(__FILE__).parent_path() / "golden" /
         "metrics_prometheus.txt";
}

SchedulingResponse response_with(ResponseStatus status, CacheOutcome cache,
                                 RejectReason reason = RejectReason::none) {
  SchedulingResponse response;
  response.status = status;
  response.cache = cache;
  response.reject_reason = reason;
  return response;
}

/// Drives every counter family at least once, with distinct values so
/// a transposed counter cannot cancel out in the rendered text.
void drive(MetricsRegistry& metrics) {
  for (int i = 0; i < 5; ++i) metrics.count_request("cg");
  for (int i = 0; i < 3; ++i) metrics.count_request("pcp");
  metrics.count_request("greedy");

  // ok: one exact hit, one isomorphic hit, two misses, one bypass.
  metrics.count_response(
      response_with(ResponseStatus::ok, CacheOutcome::hit_exact));
  metrics.count_response(
      response_with(ResponseStatus::ok, CacheOutcome::hit_isomorphic));
  metrics.count_response(
      response_with(ResponseStatus::ok, CacheOutcome::miss));
  metrics.count_response(
      response_with(ResponseStatus::ok, CacheOutcome::miss));
  metrics.count_response(
      response_with(ResponseStatus::ok, CacheOutcome::bypass));
  // One solver failure (still a cache miss).
  metrics.count_response(
      response_with(ResponseStatus::failed, CacheOutcome::miss));
  // One rejection of every reason the service can produce.
  for (const RejectReason reason :
       {RejectReason::queue_full, RejectReason::shutting_down,
        RejectReason::deadline_expired, RejectReason::unknown_solver,
        RejectReason::invalid_request, RejectReason::tenant_quota,
        RejectReason::flow_control})
    metrics.count_response(
        response_with(ResponseStatus::rejected, CacheOutcome::bypass, reason));

  // Latency samples at spread-out magnitudes: each lands in a distinct
  // histogram bucket, so bucket-edge drift shows as a diff.
  metrics.record_queue_delay(10e-6);
  metrics.record_queue_delay(250e-6);
  metrics.record_solve(1e-3);
  metrics.record_solve(30e-3);
  metrics.record_solve(1.5);
  metrics.record_total(2e-3);
  metrics.record_total(40e-3);
  metrics.record_solver_latency("cg", 1e-3);
  metrics.record_solver_latency("cg", 30e-3);
  metrics.record_solver_latency("pcp", 5e-3);

  metrics.note_wire_fastpath(true);
  metrics.note_wire_fastpath(true);
  metrics.note_wire_fastpath(false);

  metrics.add_persist_loaded(12);
  metrics.persist_load_error();
  metrics.record_persist_load(7e-3);
  for (int i = 0; i < 4; ++i) metrics.persist_append();
  metrics.add_persist_truncations(1);
  metrics.persist_flush(3e-3);
  metrics.add_cache_expired(2);

  metrics.repl_applied();
  metrics.repl_applied();
  metrics.repl_apply_error();

  // Leave a live queue gauge: 3 entered, 1 left -> depth 2, peak 3.
  metrics.queue_entered();
  metrics.queue_entered();
  metrics.queue_entered();
  metrics.queue_left();
}

TEST(MetricsPrometheus, ExpositionMatchesGoldenFile) {
  MetricsRegistry metrics;
  drive(metrics);
  const std::string actual = metrics.dump_prometheus();

  if (std::getenv("MEDCC_UPDATE_GOLDEN") != nullptr) {
    std::filesystem::create_directories(golden_path().parent_path());
    std::ofstream out(golden_path(), std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << golden_path();
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (run with MEDCC_UPDATE_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << in.rdbuf();

  if (actual != expected.str()) {
    // Point at the first diverging line -- a full 200-line dump diff is
    // unreadable in test output.
    std::istringstream a(actual);
    std::istringstream e(expected.str());
    std::string a_line;
    std::string e_line;
    int line = 0;
    while (true) {
      const bool a_more = static_cast<bool>(std::getline(a, a_line));
      const bool e_more = static_cast<bool>(std::getline(e, e_line));
      ++line;
      if (!a_more && !e_more) break;
      if (!a_more || !e_more || a_line != e_line) {
        FAIL() << "prometheus exposition diverges from golden at line "
               << line << "\n  expected: "
               << (e_more ? e_line : std::string("<eof>"))
               << "\n  actual:   "
               << (a_more ? a_line : std::string("<eof>"))
               << "\n(regenerate with MEDCC_UPDATE_GOLDEN=1 if intentional)";
      }
    }
  }
  SUCCEED();
}

// The golden file pins the full format; these pin the semantic bits a
// scraper relies on even if the golden is regenerated carelessly.
TEST(MetricsPrometheus, ExpositionCarriesTheDrivenValues) {
  MetricsRegistry metrics;
  drive(metrics);
  const std::string dump = metrics.dump_prometheus();

  EXPECT_NE(dump.find("medcc_requests_total 9"), std::string::npos);
  EXPECT_NE(dump.find("medcc_responses_total{status=\"ok\"} 5"),
            std::string::npos);
  EXPECT_NE(dump.find("medcc_responses_total{status=\"failed\"} 1"),
            std::string::npos);
  EXPECT_NE(dump.find("medcc_cache_events_total{outcome=\"miss\"} 3"),
            std::string::npos);
  EXPECT_NE(dump.find("medcc_wire_fastpath_total{outcome=\"hit\"} 2"),
            std::string::npos);
  EXPECT_NE(dump.find("medcc_rejected_total{reason=\"tenant_quota\"} 1"),
            std::string::npos);
  EXPECT_NE(dump.find("medcc_queue_depth 2"), std::string::npos);
  EXPECT_NE(dump.find("medcc_queue_depth_peak 3"), std::string::npos);
  EXPECT_NE(dump.find("medcc_requests_by_solver_total{solver=\"cg\"} 5"),
            std::string::npos);
  EXPECT_NE(dump.find("medcc_repl_applied_total 2"), std::string::npos);
  // Counter discipline: every medcc_* counter series ends in _total.
  EXPECT_EQ(dump.find("medcc_requests_by_solver{"), std::string::npos);
}

}  // namespace
