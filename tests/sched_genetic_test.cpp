#include "sched/genetic.hpp"

#include <gtest/gtest.h>

#include "analysis/verify.hpp"
#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/exhaustive.hpp"
#include "util/thread_pool.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::genetic;
using medcc::sched::GeneticOptions;
using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(Genetic, InfeasibleBudgetThrows) {
  EXPECT_THROW((void)genetic(example_instance(), 40.0), medcc::Infeasible);
}

TEST(Genetic, DeterministicGivenSeed) {
  const auto inst = example_instance();
  GeneticOptions opts;
  opts.seed = 7;
  const auto a = genetic(inst, 57.0, opts);
  const auto b = genetic(inst, 57.0, opts);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_DOUBLE_EQ(a.eval.med, b.eval.med);
}

TEST(Genetic, RespectsBudgetAcrossLevels) {
  const auto inst = example_instance();
  for (double budget : {48.0, 52.0, 57.0, 64.0}) {
    const auto r = genetic(inst, budget);
    EXPECT_LE(r.eval.cost, budget + 1e-6) << "budget " << budget;
    medcc::analysis::VerifyOptions vopts;
    vopts.budget = budget;
    const auto diag =
        medcc::analysis::verify_schedule(inst, r.schedule, r.eval, vopts);
    EXPECT_TRUE(diag.ok()) << diag.to_string();
  }
}

TEST(Genetic, NeverWorseThanCriticalGreedyWhenSeeded) {
  // CG is in the initial population and elitism preserves the best, so
  // the GA's MED can only match or improve it.
  medcc::util::Prng root(5);
  for (int k = 0; k < 6; ++k) {
    auto rng = root.fork(static_cast<std::uint64_t>(k));
    const auto inst = medcc::expr::make_instance({10, 20, 4}, rng);
    const auto bounds = medcc::sched::cost_bounds(inst);
    const double budget = 0.5 * (bounds.cmin + bounds.cmax);
    const auto cg = medcc::sched::critical_greedy(inst, budget);
    GeneticOptions opts;
    opts.generations = 30;
    opts.seed = static_cast<std::uint64_t>(k) + 1;
    const auto ga = genetic(inst, budget, opts);
    EXPECT_LE(ga.eval.med, cg.eval.med + 1e-9) << "instance " << k;
  }
}

TEST(Genetic, FindsOptimumOnTheExample) {
  // CG is optimal at B=57 on the example; the seeded GA must match it.
  const auto inst = example_instance();
  const auto ga = genetic(inst, 57.0);
  const auto opt = medcc::sched::exhaustive_optimal(inst, 57.0);
  EXPECT_NEAR(ga.eval.med, opt.eval.med, 1e-9);
}

TEST(Genetic, UnseededStillFeasibleAndSane) {
  medcc::util::Prng rng(3);
  const auto inst = medcc::expr::make_instance({8, 16, 3}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  GeneticOptions opts;
  opts.seed_with_cg = false;
  opts.generations = 40;
  const auto r = genetic(inst, bounds.cmax, opts);
  EXPECT_LE(r.eval.cost, bounds.cmax + 1e-6);
  // With the full budget, the fastest seed means the GA ends at the
  // fastest MED.
  const auto fastest = medcc::sched::evaluate(
      inst, medcc::sched::fastest_schedule(inst));
  EXPECT_NEAR(r.eval.med, fastest.med, 1e-9);
}

TEST(Genetic, PooledEvaluationMatchesSequential) {
  // Batch fitness evaluation is rng-free and each index writes only its
  // own slot, so a pooled run must reproduce the sequential trajectory
  // exactly. Sized to give TSan real concurrency over the per-worker CPM
  // workspaces.
  medcc::util::ThreadPool pool(8);
  medcc::util::Prng rng(17);
  const auto inst = medcc::expr::make_instance({12, 24, 4}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  GeneticOptions opts;
  opts.population = 32;
  opts.generations = 6;
  opts.seed = 9;
  const auto sequential = genetic(inst, budget, opts);
  opts.pool = &pool;
  const auto pooled = genetic(inst, budget, opts);
  EXPECT_EQ(pooled.schedule, sequential.schedule);
  EXPECT_DOUBLE_EQ(pooled.eval.med, sequential.eval.med);
}

TEST(Genetic, OptionValidation) {
  const auto inst = example_instance();
  GeneticOptions opts;
  opts.population = 1;
  EXPECT_THROW((void)genetic(inst, 57.0, opts), medcc::LogicError);
}

}  // namespace
