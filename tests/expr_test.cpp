#include "expr/compare.hpp"

#include <gtest/gtest.h>

namespace {

using medcc::expr::improvement_percent;

TEST(Improvement, Formula) {
  EXPECT_DOUBLE_EQ(improvement_percent(8.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(improvement_percent(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(12.0, 10.0), -20.0);
  EXPECT_DOUBLE_EQ(improvement_percent(1.0, 0.0), 0.0);  // guarded
}

TEST(Sizes, Table4ListMatchesPaper) {
  const auto& sizes = medcc::expr::table4_sizes();
  ASSERT_EQ(sizes.size(), 20u);
  EXPECT_EQ(sizes.front().modules, 5u);
  EXPECT_EQ(sizes.front().edges, 6u);
  EXPECT_EQ(sizes.front().types, 3u);
  EXPECT_EQ(sizes.back().modules, 100u);
  EXPECT_EQ(sizes.back().edges, 2344u);
  EXPECT_EQ(sizes.back().types, 9u);
  // Monotone in module count.
  for (std::size_t k = 1; k < sizes.size(); ++k)
    EXPECT_EQ(sizes[k].modules, sizes[k - 1].modules + 5);
}

TEST(Sizes, Fig7ListMatchesPaper) {
  const auto& sizes = medcc::expr::fig7_sizes();
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[3].modules, 8u);
  EXPECT_EQ(sizes[3].edges, 18u);
}

TEST(MakeInstance, DeterministicPerStream) {
  medcc::util::Prng a(5), b(5);
  const auto x = medcc::expr::make_instance({10, 20, 4}, a);
  const auto y = medcc::expr::make_instance({10, 20, 4}, b);
  for (std::size_t i = 0; i < x.module_count(); ++i)
    for (std::size_t j = 0; j < x.type_count(); ++j)
      EXPECT_DOUBLE_EQ(x.time(i, j), y.time(i, j));
}

TEST(MakeInstance, ShapeMatchesSize) {
  medcc::util::Prng rng(6);
  const auto inst = medcc::expr::make_instance({15, 65, 5}, rng);
  EXPECT_EQ(inst.module_count(), 15u);
  EXPECT_EQ(inst.workflow().dependency_count(), 65u);
  EXPECT_EQ(inst.type_count(), 5u);
}

TEST(SweepBudgets, CellsAreFeasibleAndOrdered) {
  medcc::util::Prng rng(7);
  const auto inst = medcc::expr::make_instance({12, 30, 4}, rng);
  const auto cells = medcc::expr::sweep_budgets(inst, 10);
  ASSERT_EQ(cells.size(), 10u);
  for (std::size_t k = 0; k < cells.size(); ++k) {
    EXPECT_LE(cells[k].cost_cg, cells[k].budget + 1e-6);
    EXPECT_LE(cells[k].cost_gain, cells[k].budget + 1e-6);
    if (k > 0) {
      EXPECT_GT(cells[k].budget, cells[k - 1].budget);
      // (No MED monotonicity check: CG is not budget-monotone in general;
      // see sched_cg_test GreedyCanBeNonMonotoneAcrossBudgets.)
    }
  }
}

TEST(Table4Sweep, ReducedScaleRunsAndIsDeterministic) {
  medcc::util::ThreadPool pool(2);
  const auto a = medcc::expr::table4_sweep(pool, 42, /*levels=*/3);
  const auto b = medcc::expr::table4_sweep(pool, 42, /*levels=*/3);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_DOUBLE_EQ(a[s].avg_med_cg, b[s].avg_med_cg);
    EXPECT_DOUBLE_EQ(a[s].avg_med_gain, b[s].avg_med_gain);
    EXPECT_GT(a[s].avg_med_cg, 0.0);
    // CG is a heuristic and can lose individual cells; at this reduced
    // scale (3 budget levels, 1 instance per size) just bound the damage.
    // The full-resolution sweep (bench/repro_table4_fig8) shows the
    // paper's CG-dominant shape.
    EXPECT_LE(a[s].ratio, 1.25);
  }
}

TEST(ImprovementGrid, ShapeAndAggregates) {
  medcc::util::ThreadPool pool(2);
  // Tiny grid: 2 instances x 4 levels over the 20 sizes would still be
  // slow; run with instances=1, levels=2 for shape checks only... the
  // grid API fixes sizes to the paper's 20, so keep parameters minimal.
  const auto grid = medcc::expr::improvement_grid(pool, 7, /*instances=*/1,
                                                  /*levels=*/2);
  ASSERT_EQ(grid.sizes.size(), 20u);
  ASSERT_EQ(grid.cell.size(), 20u);
  ASSERT_EQ(grid.cell.front().size(), 2u);
  ASSERT_EQ(grid.by_size.size(), 20u);
  ASSERT_EQ(grid.by_level.size(), 2u);
  // Aggregates are consistent with the cells.
  double total = 0.0;
  for (const auto& row : grid.cell)
    for (double v : row) total += v;
  EXPECT_NEAR(grid.overall, total / 40.0, 1e-9);
}

TEST(OptimalityStudy, SmallScaleCgDominatesGain) {
  medcc::util::ThreadPool pool(2);
  const std::vector<medcc::expr::ProblemSize> sizes = {{5, 6, 3}, {6, 11, 3}};
  const auto studies =
      medcc::expr::optimality_study(pool, sizes, /*instances=*/8, 11);
  ASSERT_EQ(studies.size(), 2u);
  for (const auto& study : studies) {
    EXPECT_GE(study.cg_percent_optimal, 0.0);
    EXPECT_LE(study.cg_percent_optimal, 100.0);
    // CG reaches the optimum at least as often as GAIN3 (Fig. 7's shape).
    EXPECT_GE(study.cg_percent_optimal, study.gain_percent_optimal);
    for (const auto& cell : study.cells) {
      EXPECT_LE(cell.med_optimal, cell.med_cg + 1e-9);
      EXPECT_LE(cell.med_optimal, cell.med_gain + 1e-9);
    }
  }
}

TEST(OptimalityStudy, RandomBudgetVariantRuns) {
  medcc::util::ThreadPool pool(2);
  const std::vector<medcc::expr::ProblemSize> sizes = {{5, 6, 3}};
  const auto studies = medcc::expr::optimality_study(
      pool, sizes, /*instances=*/4, 13, /*random_budget=*/true);
  EXPECT_EQ(studies.front().cells.size(), 4u);
}

}  // namespace
