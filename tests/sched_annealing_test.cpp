#include "sched/annealing.hpp"

#include <gtest/gtest.h>

#include "analysis/verify.hpp"
#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/exhaustive.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::annealing;
using medcc::sched::AnnealingOptions;
using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(Annealing, InfeasibleBudgetThrows) {
  EXPECT_THROW((void)annealing(example_instance(), 40.0), medcc::Infeasible);
}

TEST(Annealing, DeterministicGivenSeed) {
  const auto inst = example_instance();
  AnnealingOptions opts;
  opts.seed = 5;
  opts.iterations = 500;
  const auto a = annealing(inst, 57.0, opts);
  const auto b = annealing(inst, 57.0, opts);
  EXPECT_EQ(a.schedule, b.schedule);
}

TEST(Annealing, RespectsBudget) {
  const auto inst = example_instance();
  for (double budget : {48.0, 52.0, 57.0, 64.0}) {
    AnnealingOptions opts;
    opts.iterations = 300;
    const auto r = annealing(inst, budget, opts);
    EXPECT_LE(r.eval.cost, budget + 1e-6);
    medcc::analysis::VerifyOptions vopts;
    vopts.budget = budget;
    const auto diag =
        medcc::analysis::verify_schedule(inst, r.schedule, r.eval, vopts);
    EXPECT_TRUE(diag.ok()) << diag.to_string();
  }
}

TEST(Annealing, NeverWorseThanItsCgSeed) {
  medcc::util::Prng root(8);
  for (int k = 0; k < 5; ++k) {
    auto rng = root.fork(static_cast<std::uint64_t>(k));
    const auto inst = medcc::expr::make_instance({10, 20, 4}, rng);
    const auto bounds = medcc::sched::cost_bounds(inst);
    const double budget = 0.5 * (bounds.cmin + bounds.cmax);
    AnnealingOptions opts;
    opts.iterations = 800;
    opts.seed = static_cast<std::uint64_t>(k) + 1;
    const auto sa = annealing(inst, budget, opts);
    const auto cg = medcc::sched::critical_greedy(inst, budget);
    EXPECT_LE(sa.eval.med, cg.eval.med + 1e-9) << "instance " << k;
  }
}

TEST(Annealing, MatchesOptimumOnTheExampleAtB57) {
  const auto inst = example_instance();
  const auto sa = annealing(inst, 57.0);
  const auto opt = medcc::sched::exhaustive_optimal(inst, 57.0);
  EXPECT_NEAR(sa.eval.med, opt.eval.med, 1e-9);
}

TEST(Annealing, UnseededStartsFromLeastCostAndImproves) {
  const auto inst = example_instance();
  AnnealingOptions opts;
  opts.seed_with_cg = false;
  opts.iterations = 2000;
  const auto sa = annealing(inst, 60.0, opts);
  const auto least = medcc::sched::evaluate(
      inst, medcc::sched::least_cost_schedule(inst));
  EXPECT_LT(sa.eval.med, least.med);
}

}  // namespace
