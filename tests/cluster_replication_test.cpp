// The replication channel end-to-end, in process: a Replicator pushing
// locally solved cache records from an origin service into a real
// receiver server over loopback TCP -- hello negotiation, record
// delivery and byte-identical serving, the v1-peer downgrade path,
// down-peer bookkeeping, and bounded-queue overflow.
#include "cluster/replicator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/config.hpp"
#include "net/server.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::cluster::ClusterConfig;
using medcc::cluster::ClusterError;
using medcc::cluster::Replicator;
using medcc::net::Server;
using medcc::net::ServerConfig;
using medcc::sched::Instance;
using medcc::service::CacheOutcome;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;

std::shared_ptr<const Instance> example_instance() {
  return std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
}

SchedulingRequest request_for(std::shared_ptr<const Instance> inst,
                              double budget) {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = budget;
  req.solver = "cg";
  return req;
}

void expect_bits_equal(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

/// Polls `predicate` for up to ~5s.
template <typename Pred>
bool eventually(Pred predicate) {
  for (int i = 0; i < 1000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(ClusterReplication, PushesSolvedRecordsToPeerServedByteIdentically) {
  // Receiver: a real server applying replicated records.
  SchedulingService receiver({.threads = 1});
  ServerConfig receiver_config;
  receiver_config.node_id = "receiver";
  receiver_config.repl_apply = [&receiver](std::string_view payload) {
    return receiver.apply_replicated_record(payload);
  };
  Server server(receiver, receiver_config);

  // Origin: every locally solved miss is published to the replicator.
  ClusterConfig cluster_config;
  cluster_config.node_id = "origin";
  cluster_config.peers = {{"127.0.0.1", server.port()}};
  Replicator replicator(cluster_config);
  ServiceConfig origin_config;
  origin_config.threads = 1;
  origin_config.on_cache_insert = [&replicator](std::string payload,
                                               medcc::obs::TraceContext trace) {
    replicator.publish(payload, trace);
  };
  SchedulingService origin(std::move(origin_config));
  replicator.start();

  const auto inst = example_instance();
  const auto solved = origin.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(solved.ok()) << solved.error;

  ASSERT_TRUE(eventually([&] {
    return receiver.metrics().snapshot().repl_applied >= 1;
  }));

  // The channel handshook at v2 and every record is acked. (The
  // receiver can observe the apply before the sender books the ack, so
  // the sender-side counters are polled, not snapshotted.)
  ASSERT_TRUE(eventually([&] {
    const auto now = replicator.status();
    return now.peers[0].sent >= 1 && now.peers[0].acked >= 1;
  }));
  const auto status = replicator.status();
  EXPECT_EQ(status.node_id, "origin");
  ASSERT_EQ(status.peers.size(), 1u);
  EXPECT_EQ(status.peers[0].state, "connected");
  EXPECT_EQ(status.peers[0].peer_version, 2u);
  EXPECT_EQ(status.peers[0].dropped, 0u);

  // The receiver never solved, yet serves the duplicate byte-exactly.
  const auto hit = receiver.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(hit.ok()) << hit.error;
  EXPECT_EQ(hit.cache, CacheOutcome::hit_exact);
  EXPECT_EQ(hit.result.schedule, solved.result.schedule);
  expect_bits_equal(hit.result.eval.med, solved.result.eval.med);
  expect_bits_equal(hit.result.eval.cost, solved.result.eval.cost);

  replicator.stop();
}

TEST(ClusterReplication, PeerWithoutReplicationIsHeldAsV1Peer) {
  // A server with no repl_apply hook grants the hello but masks off the
  // replication feature -- the sender must park instead of pushing.
  SchedulingService plain({.threads = 1});
  Server server(plain);

  ClusterConfig cluster_config;
  cluster_config.node_id = "origin";
  cluster_config.peers = {{"127.0.0.1", server.port()}};
  Replicator replicator(cluster_config);
  replicator.start();

  ASSERT_TRUE(eventually([&] {
    return replicator.status().peers[0].state == "v1-peer";
  }));
  replicator.publish("some record");
  const auto status = replicator.status();
  EXPECT_EQ(status.peers[0].sent, 0u);
  EXPECT_GE(status.peers[0].queued, 1u);
  replicator.stop();
}

TEST(ClusterReplication, UnreachablePeerGoesDownAndQueuesStayBounded) {
  // Grab a port nobody listens on by binding a throwaway server first.
  std::uint16_t dead_port = 0;
  {
    SchedulingService scratch({.threads = 1});
    Server scratch_server(scratch);
    dead_port = scratch_server.port();
  }

  ClusterConfig cluster_config;
  cluster_config.node_id = "origin";
  cluster_config.peers = {{"127.0.0.1", dead_port}};
  cluster_config.queue_capacity = 2;
  cluster_config.connect_timeout_ms = 100.0;
  cluster_config.backoff_initial_ms = 10.0;
  cluster_config.backoff_cap_ms = 50.0;
  Replicator replicator(cluster_config);
  replicator.start();
  ASSERT_TRUE(eventually([&] {
    return replicator.status().peers[0].state == "down";
  }));

  // Overflow drops the OLDEST record in favour of the freshest.
  for (int i = 0; i < 5; ++i)
    replicator.publish("record-" + std::to_string(i));
  const auto status = replicator.status();
  EXPECT_LE(status.peers[0].queued, 2u);
  EXPECT_GE(status.peers[0].dropped, 3u);
  replicator.stop();
}

TEST(ClusterReplication, StartAndStopAreIdempotent) {
  ClusterConfig cluster_config;
  cluster_config.peers = {{"127.0.0.1", 1}};  // never contacted
  cluster_config.connect_timeout_ms = 50.0;
  Replicator replicator(cluster_config);
  EXPECT_EQ(replicator.peer_count(), 1u);
  replicator.start();
  replicator.start();
  replicator.stop();
  replicator.stop();  // second stop is a no-op; destructor another
}

TEST(ClusterReplication, ConstructorValidatesConfig) {
  ClusterConfig bad;
  bad.peers = {{"127.0.0.1", 1}, {"127.0.0.1", 1}};
  EXPECT_THROW(Replicator{bad}, ClusterError);
  ClusterConfig zero_queue;
  zero_queue.peers = {{"127.0.0.1", 1}};
  zero_queue.queue_capacity = 0;
  EXPECT_THROW(Replicator{zero_queue}, ClusterError);
}

}  // namespace
