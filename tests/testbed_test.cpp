#include <gtest/gtest.h>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "testbed/nimbus.hpp"
#include "testbed/programs.hpp"
#include "testbed/runner.hpp"
#include "testbed/wrf_experiment.hpp"

namespace {

using medcc::testbed::NimbusCloud;
using medcc::testbed::NimbusConfig;

TEST(Nimbus, ValidatesConfig) {
  NimbusConfig config;
  config.vmm_capacities = {};
  EXPECT_THROW(NimbusCloud(config, medcc::cloud::wrf_catalog()),
               medcc::InvalidArgument);
  config.vmm_capacities = {-1.0};
  EXPECT_THROW(NimbusCloud(config, medcc::cloud::wrf_catalog()),
               medcc::InvalidArgument);
  config.vmm_capacities = {6.0};
  config.repo_bandwidth_gbps = 0.0;
  EXPECT_THROW(NimbusCloud(config, medcc::cloud::wrf_catalog()),
               medcc::InvalidArgument);
}

TEST(Nimbus, FirstVmPaysImagePropagation) {
  NimbusConfig config;
  config.vmm_capacities = {6.0};
  config.image_size_gb = 6.8;
  config.repo_bandwidth_gbps = 1.0;
  config.xen_boot_seconds = 30.0;
  NimbusCloud cloud(config, medcc::cloud::wrf_catalog());
  const auto records = cloud.provision_cluster({0});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].ready_at, 36.8);
}

TEST(Nimbus, ImageCachedOnSecondVmSameNode) {
  NimbusConfig config;
  config.vmm_capacities = {6.0};
  NimbusCloud cloud(config, medcc::cloud::wrf_catalog());
  const auto records = cloud.provision_cluster({0, 0});
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].node, 0u);
  // Second VM on the node: no propagation, just boot after the first.
  EXPECT_DOUBLE_EQ(records[1].ready_at, records[0].ready_at + 30.0);
}

TEST(Nimbus, NoCacheRepaysPropagation) {
  NimbusConfig config;
  config.vmm_capacities = {6.0};
  config.image_cache = false;
  NimbusCloud cloud(config, medcc::cloud::wrf_catalog());
  const auto records = cloud.provision_cluster({0, 0});
  EXPECT_DOUBLE_EQ(records[1].ready_at, records[0].ready_at + 36.8);
}

TEST(Nimbus, SpreadsAcrossNodes) {
  NimbusConfig config;
  config.vmm_capacities = {3.0, 3.0};
  NimbusCloud cloud(config, medcc::cloud::wrf_catalog());
  // Two VT2 (2.93 units) VMs: one per node.
  const auto records = cloud.provision_cluster({1, 1});
  EXPECT_NE(records[0].node, records[1].node);
}

TEST(Nimbus, OverCapacityClusterRejected) {
  NimbusConfig config;
  config.vmm_capacities = {3.0};
  NimbusCloud cloud(config, medcc::cloud::wrf_catalog());
  EXPECT_THROW((void)cloud.provision_cluster({1, 1}), medcc::Infeasible);
}

TEST(Nimbus, ClusterReadyTimeIsMaxOverVms) {
  NimbusConfig config;
  config.vmm_capacities = {6.0, 6.0};
  NimbusCloud cloud(config, medcc::cloud::wrf_catalog());
  const auto records = cloud.provision_cluster({0, 0});
  double expected = 0.0;
  for (const auto& r : records) expected = std::max(expected, r.ready_at);
  EXPECT_DOUBLE_EQ(cloud.cluster_ready_time({0, 0}), expected);
}

TEST(Programs, CalibrationIsPositiveAndMemoized) {
  const double a = medcc::testbed::calibrate_kernel();
  const double b = medcc::testbed::calibrate_kernel();
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Programs, SleepModeTakesRoughlyRequestedTime) {
  const auto start = std::chrono::steady_clock::now();
  (void)medcc::testbed::run_program(0.05, medcc::testbed::ProgramMode::Sleep);
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(took, 0.045);
  EXPECT_LT(took, 0.6);  // generous: CI machines stall
}

TEST(Programs, ZeroSecondsReturnsImmediately) {
  EXPECT_EQ(medcc::testbed::run_program(0.0,
                                        medcc::testbed::ProgramMode::Compute),
            0.0);
}

TEST(Programs, WrfStageTableShape) {
  const auto& stages = medcc::testbed::wrf_stage_programs();
  EXPECT_EQ(stages.size(), 5u);
  EXPECT_EQ(stages[3].name, "wrf");
  EXPECT_GT(stages[3].nominal_seconds, stages[0].nominal_seconds);
}

TEST(WrfExperiment, InstanceReproducesPaperBounds) {
  const auto inst = medcc::testbed::wrf_instance();
  const auto bounds = medcc::sched::cost_bounds(inst);
  EXPECT_NEAR(bounds.cmin, 125.9, 1e-9);
  EXPECT_NEAR(bounds.cmax, 243.6, 1e-9);
}

TEST(WrfExperiment, CgAtLowestPaperBudgetMatchesTableVII) {
  // B = 147.5: S_CG = {w1..w4 -> VT1, w5 -> VT2, w6 -> VT1}, MED 468.6.
  const auto inst = medcc::testbed::wrf_instance();
  const auto r = medcc::sched::critical_greedy(inst, 147.5);
  EXPECT_EQ(r.schedule.type_of[1], 0u);
  EXPECT_EQ(r.schedule.type_of[2], 0u);
  EXPECT_EQ(r.schedule.type_of[3], 0u);
  EXPECT_EQ(r.schedule.type_of[4], 0u);
  EXPECT_EQ(r.schedule.type_of[5], 1u);
  EXPECT_EQ(r.schedule.type_of[6], 0u);
  EXPECT_NEAR(r.eval.med, 468.6, 0.05);
}

TEST(WrfExperiment, ComparisonRowsFeasibleAndCgWins) {
  const auto rows = medcc::testbed::run_wrf_comparison();
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_LE(row.cg.eval.cost, row.budget + 1e-9);
    EXPECT_LE(row.gain3.eval.cost, row.budget + 1e-9);
    // "the proposed CG algorithm consistently outperforms GAIN3 in all
    // the test cases we studied".
    EXPECT_LE(row.cg.eval.med, row.gain3.eval.med + 1e-9)
        << "budget " << row.budget;
  }
  // MED decreases as budget grows.
  for (std::size_t k = 1; k < rows.size(); ++k)
    EXPECT_LE(rows[k].cg.eval.med, rows[k - 1].cg.eval.med + 1e-9);
}

TEST(Runner, ThreadedReplayMatchesAnalyticMed) {
  const auto inst = medcc::testbed::wrf_instance();
  const auto r = medcc::sched::critical_greedy(inst, 174.9);
  medcc::testbed::RunnerOptions opts;
  opts.time_scale = 1e-3;  // ~hundreds of ms of wall time
  const auto run = medcc::testbed::run_threaded(inst, r.schedule, opts);
  // Scheduling jitter is a few ms of wall time; the box may be 1-core.
  EXPECT_NEAR(run.measured_makespan, run.analytic_med,
              0.25 * run.analytic_med);
  EXPECT_GE(run.measured_makespan, run.analytic_med - 1.0);
}

TEST(Runner, ModuleOrderRespectsPrecedence) {
  const auto inst = medcc::testbed::wrf_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  medcc::testbed::RunnerOptions opts;
  opts.time_scale = 5e-5;
  const auto run = medcc::testbed::run_threaded(inst, least, opts);
  const auto& g = inst.workflow().graph();
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_GE(run.modules[g.edge(e).dst].start + 5.0,  // jitter tolerance
              run.modules[g.edge(e).src].finish - 5.0);
}

TEST(Runner, ReuseSpawnsFewerThreads) {
  const auto inst = medcc::testbed::wrf_instance();
  const auto r = medcc::sched::critical_greedy(inst, 186.2);
  medcc::testbed::RunnerOptions reuse;
  reuse.time_scale = 5e-5;
  medcc::testbed::RunnerOptions no_reuse = reuse;
  no_reuse.reuse_vms = false;
  const auto a = medcc::testbed::run_threaded(inst, r.schedule, reuse);
  const auto b = medcc::testbed::run_threaded(inst, r.schedule, no_reuse);
  EXPECT_LE(a.threads_used, b.threads_used);
  EXPECT_EQ(b.threads_used, 6u);
}

TEST(Runner, RejectsBadScale) {
  const auto inst = medcc::testbed::wrf_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  medcc::testbed::RunnerOptions opts;
  opts.time_scale = 0.0;
  EXPECT_THROW((void)medcc::testbed::run_threaded(inst, least, opts),
               medcc::InvalidArgument);
}

}  // namespace
