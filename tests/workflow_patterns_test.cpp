#include "workflow/patterns.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/critical_path.hpp"

namespace {

using medcc::workflow::Workflow;

TEST(Pipeline, StructureAndWeights) {
  const std::vector<double> wl = {1.0, 2.0, 3.0};
  const auto wf = medcc::workflow::pipeline(wl, 0.5);
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.module_count(), 3u);
  EXPECT_EQ(wf.dependency_count(), 2u);
  EXPECT_DOUBLE_EQ(wf.data_size(0), 0.5);
  EXPECT_EQ(wf.entry(), 0u);
  EXPECT_EQ(wf.exit(), 2u);
}

TEST(Pipeline, RejectsEmpty) {
  EXPECT_THROW((void)medcc::workflow::pipeline({}), medcc::InvalidArgument);
}

TEST(Pipeline, SingleModuleAllowed) {
  const std::vector<double> wl = {4.0};
  const auto wf = medcc::workflow::pipeline(wl);
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.module_count(), 1u);
}

TEST(RandomPipeline, WorkloadsInRange) {
  medcc::util::Prng rng(1);
  const auto wf = medcc::workflow::random_pipeline(6, 5.0, 15.0, rng);
  EXPECT_EQ(wf.module_count(), 6u);
  for (std::size_t v = 0; v < 6; ++v) {
    EXPECT_GE(wf.module(v).workload, 5.0);
    EXPECT_LE(wf.module(v).workload, 15.0);
  }
}

TEST(ForkJoin, CountsAndShape) {
  medcc::util::Prng rng(2);
  const auto wf = medcc::workflow::fork_join(4, 3, 1.0, 2.0, rng);
  EXPECT_TRUE(wf.validate().ok());
  // entry + 4*3 branch modules + exit.
  EXPECT_EQ(wf.module_count(), 14u);
  EXPECT_EQ(wf.computing_module_count(), 12u);
  EXPECT_EQ(wf.graph().out_degree(wf.entry()), 4u);
  EXPECT_EQ(wf.graph().in_degree(wf.exit()), 4u);
}

TEST(ForkJoin, SingleBranchIsAPipeline) {
  medcc::util::Prng rng(3);
  const auto wf = medcc::workflow::fork_join(1, 5, 1.0, 1.0, rng);
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.module_count(), 7u);
}

TEST(Layered, EveryRankModuleConnected) {
  medcc::util::Prng rng(4);
  const auto wf = medcc::workflow::layered(4, 5, 1.0, 10.0, rng);
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.computing_module_count(), 20u);
}

TEST(MontageLike, ShapeCounts) {
  medcc::util::Prng rng(5);
  const auto wf = medcc::workflow::montage_like(4, rng);
  EXPECT_TRUE(wf.validate().ok());
  // 4 project + 3 diff + concat + bgmodel + 4 background + imgtbl + add +
  // jpeg = 16 computing modules.
  EXPECT_EQ(wf.computing_module_count(), 16u);
}

TEST(MontageLike, RejectsTooFewTiles) {
  medcc::util::Prng rng(6);
  EXPECT_THROW((void)medcc::workflow::montage_like(1, rng),
               medcc::LogicError);
}

TEST(EpigenomicsLike, ShapeCounts) {
  medcc::util::Prng rng(7);
  const auto wf = medcc::workflow::epigenomics_like(2, 3, rng);
  EXPECT_TRUE(wf.validate().ok());
  // per lane: split + 3 chunks * 4 stages + merge = 14; 2 lanes = 28;
  // + maqIndex + pileup = 30.
  EXPECT_EQ(wf.computing_module_count(), 30u);
}

TEST(CybershakeLike, ShapeCounts) {
  medcc::util::Prng rng(8);
  const auto wf = medcc::workflow::cybershake_like(5, rng);
  EXPECT_TRUE(wf.validate().ok());
  // preCVM + 2 gen + 5*(synth+peak) + 2 zip = 15.
  EXPECT_EQ(wf.computing_module_count(), 15u);
}

TEST(LigoLike, ShapeCounts) {
  medcc::util::Prng rng(10);
  const auto wf = medcc::workflow::ligo_like(2, 3, rng);
  EXPECT_TRUE(wf.validate().ok());
  // per group: TmpltBank + 3 Inspiral + Thinca + 3 TrigBank + Thinca2 = 9;
  // 2 groups + Coincidence = 19.
  EXPECT_EQ(wf.computing_module_count(), 19u);
}

TEST(SiphtLike, ShapeCountsAndSkew) {
  medcc::util::Prng rng(11);
  const auto wf = medcc::workflow::sipht_like(16, rng);
  EXPECT_TRUE(wf.validate().ok());
  // 16 searches + concat + SRNA + FFN + annotate = 20.
  EXPECT_EQ(wf.computing_module_count(), 20u);
  // The heavy searches dominate the light ones by an order of magnitude.
  double heaviest = 0.0, lightest = 1e18;
  for (auto m : wf.computing_modules()) {
    heaviest = std::max(heaviest, wf.module(m).workload);
    lightest = std::min(lightest, wf.module(m).workload);
  }
  EXPECT_GT(heaviest / lightest, 5.0);
}

TEST(Example6, MatchesReconstructedInstance) {
  const auto wf = medcc::workflow::example6();
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.module_count(), 8u);
  EXPECT_EQ(wf.computing_module_count(), 6u);
  EXPECT_TRUE(wf.module(0).is_fixed());
  EXPECT_DOUBLE_EQ(*wf.module(0).fixed_time, 1.0);
  EXPECT_TRUE(wf.module(7).is_fixed());
  // Reconstructed workloads.
  EXPECT_DOUBLE_EQ(wf.module(1).workload, 11.3);
  EXPECT_DOUBLE_EQ(wf.module(2).workload, 42.7);
  EXPECT_DOUBLE_EQ(wf.module(3).workload, 20.0);
  EXPECT_DOUBLE_EQ(wf.module(4).workload, 20.0);
  EXPECT_DOUBLE_EQ(wf.module(5).workload, 40.2);
  EXPECT_DOUBLE_EQ(wf.module(6).workload, 15.77);
  // Topology: w1->w3, w2->w4, w3->w5, w4->w5, w4->w6.
  EXPECT_TRUE(wf.graph().has_edge(1, 3));
  EXPECT_TRUE(wf.graph().has_edge(2, 4));
  EXPECT_TRUE(wf.graph().has_edge(3, 5));
  EXPECT_TRUE(wf.graph().has_edge(4, 5));
  EXPECT_TRUE(wf.graph().has_edge(4, 6));
}

TEST(Patterns, AllShapesAreSchedulableDags) {
  medcc::util::Prng rng(9);
  const std::vector<Workflow> shapes = {
      medcc::workflow::fork_join(3, 2, 1.0, 5.0, rng),
      medcc::workflow::layered(3, 3, 1.0, 5.0, rng),
      medcc::workflow::montage_like(3, rng),
      medcc::workflow::epigenomics_like(2, 2, rng),
      medcc::workflow::cybershake_like(3, rng),
      medcc::workflow::ligo_like(2, 2, rng),
      medcc::workflow::sipht_like(8, rng),
      medcc::workflow::example6(),
  };
  for (const auto& wf : shapes) {
    ASSERT_TRUE(wf.validate().ok());
    // CPM over unit weights must run without error.
    std::vector<double> w(wf.module_count(), 1.0);
    EXPECT_GT(medcc::dag::makespan(wf.graph(), w), 0.0);
  }
}

}  // namespace
