// Tests for the invariant-verification layer (src/analysis): a known-good
// Critical-Greedy schedule passes cleanly, and every violation class --
// cycle, over-budget, precedence violation, cost mismatch, dangling
// VM-type index -- is detected with Error severity under its stable rule
// id.
#include "analysis/verify.hpp"

#include <gtest/gtest.h>

#include "analysis/diagnostics.hpp"
#include "cloud/vm_type.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::analysis::Diagnostics;
using medcc::analysis::Severity;
using medcc::analysis::VerifyOptions;
using medcc::analysis::verify_schedule;
using medcc::analysis::verify_workflow;
using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

/// The rule must be present with Error severity.
void expect_error(const Diagnostics& diag, const std::string& rule) {
  ASSERT_TRUE(diag.has(rule)) << "missing rule " << rule << " in:\n"
                              << diag.to_string();
  for (const auto& d : diag.findings(rule))
    EXPECT_EQ(d.severity, Severity::Error) << diag.to_string();
  EXPECT_FALSE(diag.ok());
}

// ---------------------------------------------------------------------
// Diagnostics container semantics.
// ---------------------------------------------------------------------

TEST(Diagnostics, SeverityAccounting) {
  Diagnostics diag;
  EXPECT_TRUE(diag.ok());
  EXPECT_EQ(diag.to_string(), "no findings");

  diag.info("budget-slack", "unused budget 3");
  diag.warning("zero-workload", "module w2");
  EXPECT_TRUE(diag.ok());
  EXPECT_EQ(diag.warning_count(), 1u);
  EXPECT_EQ(diag.error_count(), 0u);

  diag.error("over-budget", "cost 60 exceeds budget 50");
  EXPECT_FALSE(diag.ok());
  EXPECT_EQ(diag.error_count(), 1u);
  EXPECT_TRUE(diag.has("over-budget"));
  EXPECT_FALSE(diag.has("cycle"));
  EXPECT_NE(diag.to_string().find("[over-budget]"), std::string::npos);
}

TEST(Diagnostics, ThrowIfErrorsListsOnlyErrors) {
  Diagnostics diag;
  diag.warning("zero-workload", "harmless");
  EXPECT_NO_THROW(diag.throw_if_errors("test"));

  diag.error("cost-mismatch", "reported 10 != derived 12");
  try {
    diag.throw_if_errors("unit-test-scheduler");
    FAIL() << "expected InvariantViolation";
  } catch (const medcc::analysis::InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit-test-scheduler"), std::string::npos);
    EXPECT_NE(what.find("cost-mismatch"), std::string::npos);
    EXPECT_EQ(what.find("zero-workload"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// verify_workflow violation classes.
// ---------------------------------------------------------------------

TEST(VerifyWorkflow, AcceptsThePaperExample) {
  const auto diag = verify_workflow(medcc::workflow::example6());
  EXPECT_TRUE(diag.ok()) << diag.to_string();
}

TEST(VerifyWorkflow, DetectsCycle) {
  medcc::workflow::Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 1.0);
  const auto c = wf.add_module("c", 1.0);
  wf.add_dependency(a, b);
  wf.add_dependency(b, c);
  wf.add_dependency(c, a);  // closes the cycle
  expect_error(verify_workflow(wf), "cycle");
}

TEST(VerifyWorkflow, DetectsMultipleSourcesAndSinks) {
  medcc::workflow::Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 1.0);
  const auto c = wf.add_module("c", 1.0);
  const auto d = wf.add_module("d", 1.0);
  wf.add_dependency(a, c);
  wf.add_dependency(b, d);
  const auto diag = verify_workflow(wf);
  expect_error(diag, "multi-source");
  expect_error(diag, "multi-sink");
}

TEST(VerifyWorkflow, NegativeQuantitiesRejectedAtConstruction) {
  // The builder enforces the non-negativity invariant up front, so
  // verify_workflow's negative-workload / negative-data-size rules are
  // defense-in-depth: unreachable through the public API.
  medcc::workflow::Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  EXPECT_THROW((void)wf.add_module("b", -2.0), medcc::InvalidArgument);
  EXPECT_THROW((void)wf.add_fixed_module("c", -1.0),
               medcc::InvalidArgument);
  const auto b = wf.add_module("b", 2.0);
  EXPECT_THROW((void)wf.add_dependency(a, b, -1.0), medcc::InvalidArgument);
}

TEST(VerifyWorkflow, WarnsOnZeroWorkload) {
  medcc::workflow::Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 0.0);
  wf.add_dependency(a, b);
  const auto diag = verify_workflow(wf);
  EXPECT_TRUE(diag.ok()) << diag.to_string();  // warning, not error
  ASSERT_TRUE(diag.has("zero-workload"));
  EXPECT_EQ(diag.findings("zero-workload").front().severity,
            Severity::Warning);
}

// ---------------------------------------------------------------------
// verify_schedule: a known-good CG run passes cleanly.
// ---------------------------------------------------------------------

TEST(VerifySchedule, AcceptsCriticalGreedyOutput) {
  const auto inst = example_instance();
  const double budget = 57.0;  // the Section V-B walkthrough budget
  const auto r = medcc::sched::critical_greedy(inst, budget);
  VerifyOptions options;
  options.budget = budget;
  const auto diag = verify_schedule(inst, r.schedule, r.eval, options);
  EXPECT_TRUE(diag.ok()) << diag.to_string();
  // The walkthrough leaves $1 unused; the slack must be reported.
  ASSERT_TRUE(diag.has("budget-slack"));
  EXPECT_EQ(diag.findings("budget-slack").front().severity, Severity::Info);
}

// ---------------------------------------------------------------------
// verify_schedule violation classes.
// ---------------------------------------------------------------------

TEST(VerifySchedule, DetectsOverBudget) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  VerifyOptions options;
  options.budget = r.eval.cost - 1.0;  // one dollar short
  expect_error(verify_schedule(inst, r.schedule, r.eval, options),
               "over-budget");
}

TEST(VerifySchedule, DetectsCostMismatch) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  auto tampered = r.eval;
  tampered.cost += 2.5;  // scheduler lies about CTotal
  expect_error(verify_schedule(inst, r.schedule, tampered), "cost-mismatch");
}

TEST(VerifySchedule, DetectsPrecedenceViolation) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  auto tampered = r.eval;
  // Start the exit module before its predecessors deliver.
  const auto exit_id = inst.workflow().exit();
  tampered.cpm.est[exit_id] = 0.0;
  tampered.cpm.eft[exit_id] =
      *inst.workflow().module(exit_id).fixed_time;
  expect_error(verify_schedule(inst, r.schedule, tampered),
               "precedence-violation");
}

TEST(VerifySchedule, DetectsMakespanMismatch) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  auto tampered = r.eval;
  tampered.med *= 0.5;  // report half the true end-to-end delay
  tampered.cpm.makespan = tampered.med;
  expect_error(verify_schedule(inst, r.schedule, tampered),
               "makespan-mismatch");
}

TEST(VerifySchedule, DetectsDanglingVmTypeIndex) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  auto tampered = r.schedule;
  tampered.type_of[1] = inst.type_count() + 7;  // w1 -> nonexistent type
  expect_error(verify_schedule(inst, tampered, r.eval), "dangling-vm-type");
}

TEST(VerifySchedule, DetectsMappingSizeMismatch) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  auto tampered = r.schedule;
  tampered.type_of.pop_back();
  expect_error(verify_schedule(inst, tampered, r.eval), "mapping-size");
}

TEST(VerifySchedule, DetectsMissedDeadline) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  VerifyOptions options;
  options.deadline = r.eval.med * 0.5;
  expect_error(verify_schedule(inst, r.schedule, r.eval, options),
               "missed-deadline");
}

TEST(VerifySchedule, FlagsBillingPolicyDisagreement) {
  // A cost computed under hourly billing cannot pass verification against
  // an instance billed continuously: the verifier re-derives every module
  // cost from the *instance's* billing policy, so the reported CTotal no
  // longer matches.
  const auto wf = medcc::workflow::example6();
  const auto catalog = medcc::cloud::example_catalog();
  const auto inst =
      Instance::from_model(wf, catalog, medcc::cloud::BillingPolicy(1.0));
  const auto r = medcc::sched::critical_greedy(inst, 57.0);

  const auto continuous = Instance::from_model(
      wf, catalog, medcc::cloud::BillingPolicy::continuous());
  const auto diag = verify_schedule(continuous, r.schedule, r.eval);
  EXPECT_FALSE(diag.ok());
  EXPECT_TRUE(diag.has("cost-mismatch")) << diag.to_string();
}

}  // namespace
