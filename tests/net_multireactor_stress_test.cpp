// Concurrency stress for the multi-reactor server, aimed at TSan: many
// client threads sharded across several reactors, traffic mixing
// verbatim duplicates (wire-cache fast path), permuted twins
// (isomorphic result-cache hits) and distinct instances (misses), a
// mid-flight stop racing live traffic, and byte-identity of responses
// against a single-threaded in-process reference.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/vm_type.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "util/prng.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::net::Client;
using medcc::net::ClientConfig;
using medcc::net::LoadStats;
using medcc::net::MultiClient;
using medcc::net::MultiClientConfig;
using medcc::net::NetError;
using medcc::net::Server;
using medcc::net::ServerConfig;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;
using medcc::util::Prng;
using medcc::workflow::Workflow;

/// Rebuilds `wf` with modules and edges inserted in a shuffled order:
/// the same problem under a different index layout, which the service
/// answers via an isomorphic cache hit.
Workflow permute_workflow(const Workflow& wf, Prng& rng) {
  std::vector<std::size_t> order(wf.module_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::size_t> new_id(wf.module_count());
  Workflow out;
  for (const auto old_id : order) {
    const auto& mod = wf.module(old_id);
    new_id[old_id] = mod.is_fixed()
                         ? out.add_fixed_module(mod.name, *mod.fixed_time)
                         : out.add_module(mod.name, mod.workload);
  }
  std::vector<std::size_t> edges(wf.graph().edge_count());
  for (std::size_t e = 0; e < edges.size(); ++e) edges[e] = e;
  rng.shuffle(edges);
  for (const auto e : edges) {
    const auto& edge = wf.graph().edge(e);
    out.add_dependency(new_id[edge.src], new_id[edge.dst], wf.data_size(e));
  }
  return out;
}

struct Problem {
  std::shared_ptr<const Instance> instance;
  double budget = 0.0;
};

Problem problem_from(Workflow wf) {
  auto instance = std::make_shared<const Instance>(
      Instance::from_model(std::move(wf), medcc::cloud::example_catalog()));
  medcc::sched::Schedule cheapest;
  cheapest.type_of.assign(instance->module_count(),
                          instance->catalog().cheapest_rate_index());
  const double budget =
      medcc::sched::total_cost(*instance, cheapest) * 1.35 + 1.0;
  return {std::move(instance), budget};
}

SchedulingRequest request_for(const Problem& problem) {
  SchedulingRequest request;
  request.instance = problem.instance;
  request.budget = problem.budget;
  request.solver = "cg";
  return request;
}

void expect_bits_equal(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

TEST(NetMultiReactorStress, DuplicateBlastByteIdenticalToInProcess) {
  Prng rng(20130801);
  const Problem alpha = problem_from(medcc::workflow::montage_like(3, rng));
  const Problem beta = problem_from(medcc::workflow::montage_like(5, rng));

  SchedulingService service({.threads = 2});
  ServerConfig config;
  config.io_threads = 3;
  Server server(service, config);

  // 4 client threads x 2 connections across 3 reactors, each thread
  // alternating verbatim duplicates of two structurally distinct
  // problems: concurrent misses on first arrival, then a mix of
  // result-cache and wire-cache hits from every reactor at once.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 24;
  std::vector<std::vector<SchedulingResponse>> alpha_got(kThreads);
  std::vector<std::vector<SchedulingResponse>> beta_got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      ClientConfig client_config;
      client_config.port = server.port();
      Client client(client_config);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const bool pick_alpha = (t + i) % 2 == 0;
        const SchedulingResponse response =
            client.solve(request_for(pick_alpha ? alpha : beta));
        (pick_alpha ? alpha_got : beta_got)[t].push_back(response);
      }
    });
  for (auto& thread : threads) thread.join();

  // Single-threaded in-process references on fresh services.
  SchedulingService reference({.threads = 1});
  const SchedulingResponse alpha_ref =
      reference.submit(request_for(alpha)).get();
  const SchedulingResponse beta_ref =
      reference.submit(request_for(beta)).get();
  ASSERT_TRUE(alpha_ref.ok()) << alpha_ref.error;
  ASSERT_TRUE(beta_ref.ok()) << beta_ref.error;

  std::size_t checked = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (const auto& [got, ref] :
         {std::make_pair(&alpha_got[t], &alpha_ref),
          std::make_pair(&beta_got[t], &beta_ref)}) {
      for (const SchedulingResponse& response : *got) {
        ASSERT_TRUE(response.ok()) << response.error;
        EXPECT_EQ(response.result.schedule, ref->result.schedule);
        EXPECT_EQ(response.result.iterations, ref->result.iterations);
        expect_bits_equal(response.result.eval.med, ref->result.eval.med);
        expect_bits_equal(response.result.eval.cost, ref->result.eval.cost);
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, kThreads * kPerThread);

  const auto counters = server.counters();
  EXPECT_EQ(counters.frames_in, kThreads * kPerThread);
  EXPECT_EQ(counters.frames_out, kThreads * kPerThread);
  // First arrivals (and duplicates racing the first solve) miss; under
  // TSan that window widens, so only require a majority on the fast path.
  EXPECT_GE(counters.fastpath_hits, kThreads * kPerThread / 2);

  server.stop();
  EXPECT_EQ(server.counters().connections_active, 0u);
}

TEST(NetMultiReactorStress, MixedExactPermutedMissTraffic) {
  Prng rng(424242);
  const Workflow base_wf = medcc::workflow::montage_like(3, rng);
  const Problem base = problem_from(base_wf);
  Prng twin_rng(99);
  const Problem twin = {
      problem_from(permute_workflow(base_wf, twin_rng)).instance,
      base.budget};

  SchedulingService service({.threads = 2});
  ServerConfig config;
  config.io_threads = 2;
  Server server(service, config);

  // Each thread interleaves exact duplicates of the base, its permuted
  // twin (isomorphic result-cache hits), and a fresh distinct instance
  // per thread (guaranteed misses), pipelined via solve_batch.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 6;
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      Prng thread_rng(1000 + t);
      const Problem own =
          problem_from(medcc::workflow::cybershake_like(3 + t % 2,
                                                        thread_rng));
      ClientConfig client_config;
      client_config.port = server.port();
      Client client(client_config);
      for (std::size_t round = 0; round < kRounds; ++round) {
        const auto responses = client.solve_batch(
            {request_for(base), request_for(twin), request_for(own)});
        for (const SchedulingResponse& response : responses) {
          ASSERT_TRUE(response.ok()) << response.error;
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        // Budgets hold regardless of which cache path answered.
        EXPECT_LE(responses[0].result.eval.cost, base.budget + 1e-6);
        EXPECT_LE(responses[1].result.eval.cost, twin.budget + 1e-6);
      }
    });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(answered.load(), kThreads * kRounds * 3);
  const auto snap = service.metrics().snapshot();
  // The permuted twin and the base are isomorphic: between them at
  // least one isomorphic hit must have happened (whichever was solved
  // first seeds the other), unless the wire cache absorbed every
  // repeat -- so assert over the union of hit kinds instead.
  EXPECT_GT(snap.cache_hits_exact + snap.cache_hits_isomorphic +
                snap.wire_fastpath_hits,
            0u);
  server.stop();
}

TEST(NetMultiReactorStress, MidFlightStopUnderLoadShutsDownCleanly) {
  Prng rng(7);
  const Problem problem = problem_from(medcc::workflow::montage_like(3, rng));

  SchedulingService service({.threads = 2});
  ServerConfig config;
  config.io_threads = 3;
  config.drain_grace_ms = 2000.0;
  auto server = std::make_unique<Server>(service, config);

  // Clients hammer the fast path from several threads while the main
  // thread stops the server mid-flight. Every response that arrives
  // must be valid; after stop() the connection dying is expected.
  constexpr std::size_t kThreads = 4;
  std::atomic<bool> keep_going{true};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      ClientConfig client_config;
      client_config.port = server->port();
      client_config.connect_attempts = 1;
      try {
        Client client(client_config);
        while (keep_going.load(std::memory_order_relaxed)) {
          const SchedulingResponse response =
              client.solve(request_for(problem));
          // During drain the server answers rejected/shutting_down
          // rather than ok; both are valid frames.
          if (response.ok()) completed.fetch_add(1);
        }
      } catch (const NetError&) {
        // Connection torn down by stop(): the expected exit.
      }
    });

  // Let traffic build across all reactors, then stop under load.
  while (completed.load() < 50)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server->stop();
  keep_going.store(false, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();

  const auto counters = server->counters();
  EXPECT_EQ(counters.connections_active, 0u);
  EXPECT_GE(completed.load(), 50u);
  server.reset();

  // The service survives its front end and still solves.
  const SchedulingResponse after =
      service.submit(request_for(problem)).get();
  EXPECT_TRUE(after.ok()) << after.error;
}

TEST(NetMultiReactorStress, MultiClientBlastAcrossReactors) {
  Prng rng(31337);
  const Problem problem = problem_from(medcc::workflow::montage_like(3, rng));

  SchedulingService service({.threads = 2});
  ServerConfig config;
  config.io_threads = 2;
  Server server(service, config);

  MultiClientConfig client_config;
  client_config.port = server.port();
  client_config.connections = 4;  // spans both reactors
  client_config.window = 8;
  MultiClient client(client_config);
  // Prime the wire cache first; otherwise the pipelined burst races
  // its own first solve and the early duplicates miss.
  const LoadStats primed = client.run(request_for(problem), 1);
  ASSERT_EQ(primed.ok, 1u);
  const LoadStats stats = client.run(request_for(problem), 300);

  EXPECT_EQ(stats.ok, 300u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.latency_seconds.size(), 300u);
  EXPECT_GT(stats.latency_quantile(50.0), 0.0);
  EXPECT_GE(server.counters().fastpath_hits, 300u);
  server.stop();
}

}  // namespace
