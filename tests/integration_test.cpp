// End-to-end integration tests: full pipelines from workflow generation
// through scheduling, simulation, reuse planning and the testbed runner.
#include <gtest/gtest.h>

#include "expr/compare.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/exhaustive.hpp"
#include "sched/gain_loss.hpp"
#include "sched/mckp.hpp"
#include "sched/vm_reuse.hpp"
#include "sim/executor.hpp"
#include "testbed/runner.hpp"
#include "testbed/wrf_experiment.hpp"
#include "workflow/clustering.hpp"
#include "workflow/patterns.hpp"
#include "workflow/wrf.hpp"

namespace {

using medcc::sched::Instance;

TEST(Integration, Example6FullStory) {
  // The complete numerical-example narrative of Section V-B.
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto bounds = medcc::sched::cost_bounds(inst);
  EXPECT_DOUBLE_EQ(bounds.cmin, 48.0);
  EXPECT_DOUBLE_EQ(bounds.cmax, 64.0);

  // CG at B=57, validated by simulation (analytic == simulated).
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  const auto sim = medcc::sim::execute(inst, r.schedule);
  EXPECT_NEAR(sim.makespan, r.eval.med, 1e-9);

  // The exhaustive optimum at 57 cannot beat CG here (CG is optimal on
  // this instance at this budget).
  const auto opt = medcc::sched::exhaustive_optimal(inst, 57.0);
  EXPECT_NEAR(opt.eval.med, r.eval.med, 1e-9);

  // Fig. 6: the MED staircase is non-increasing over integer budgets.
  double previous = std::numeric_limits<double>::infinity();
  for (double budget = 48.0; budget <= 64.0; budget += 1.0) {
    const auto step = medcc::sched::critical_greedy(inst, budget);
    EXPECT_LE(step.eval.med, previous + 1e-9);
    previous = step.eval.med;
  }
}

TEST(Integration, WrfFullStory) {
  // Table VII end-to-end: schedule, simulate, reuse, threaded replay.
  const auto inst = medcc::testbed::wrf_instance();
  const auto r = medcc::sched::critical_greedy(inst, 155.0);

  // Simulated execution reproduces the analytic MED.
  medcc::sim::ExecutorOptions opts;
  opts.reuse_vms = true;
  const auto sim = medcc::sim::execute(inst, r.schedule, opts);
  EXPECT_NEAR(sim.makespan, r.eval.med, 1e-9);

  // VM reuse shrinks the fleet ("w4 and w6 are executed on the same VM").
  const auto plan = medcc::sched::plan_vm_reuse(inst, r.schedule);
  EXPECT_LT(plan.instances.size(), 6u);

  // Scaled threaded replay lands near the analytic MED. The tolerance is
  // generous because wall-clock jitter on a loaded single-core box can
  // reach tens of milliseconds against a ~90 ms replay.
  medcc::testbed::RunnerOptions ropts;
  ropts.time_scale = 2e-4;
  const auto run = medcc::testbed::run_threaded(inst, r.schedule, ropts);
  EXPECT_NEAR(run.measured_makespan, run.analytic_med,
              0.4 * run.analytic_med);
  EXPECT_GE(run.measured_makespan, 0.9 * run.analytic_med);
}

TEST(Integration, ClusteredWorkflowSchedulesEndToEnd) {
  // Cluster an ungrouped WRF-style workflow, then schedule and simulate
  // the aggregate -- the paper's full preprocessing + scheduling chain.
  const auto raw = medcc::workflow::wrf_experiment_ungrouped();
  const auto clustering =
      medcc::workflow::transfer_aware_clustering(raw, 700.0);
  EXPECT_LT(clustering.aggregated.module_count(), raw.module_count());

  const auto inst = Instance::from_model(clustering.aggregated,
                                         medcc::cloud::wrf_catalog());
  const auto bounds = medcc::sched::cost_bounds(inst);
  const auto r = medcc::sched::critical_greedy(
      inst, 0.5 * (bounds.cmin + bounds.cmax));
  const auto sim = medcc::sim::execute(inst, r.schedule);
  EXPECT_NEAR(sim.makespan, r.eval.med, 1e-9);
}

TEST(Integration, PipelineStoryMckpEqualsSearchEqualsSim) {
  // The Section-IV special case end-to-end.
  const std::vector<double> wl = {12.0, 47.0, 8.0, 33.0};
  const auto inst = Instance::from_model(medcc::workflow::pipeline(wl),
                                         medcc::cloud::example_catalog());
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  const auto via_mckp = medcc::sched::pipeline_optimal(inst, budget);
  const auto via_search = medcc::sched::exhaustive_optimal(inst, budget);
  EXPECT_NEAR(via_mckp.eval.med, via_search.eval.med, 1e-9);
  const auto sim = medcc::sim::execute(inst, via_mckp.schedule);
  EXPECT_NEAR(sim.makespan, via_mckp.eval.med, 1e-9);
}

TEST(Integration, AllSchedulersAgreeOnDegenerateCatalog) {
  // With a single VM type every scheduler must produce the same schedule.
  medcc::util::Prng rng(21);
  const auto inst = medcc::expr::make_instance({10, 20, 1}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  EXPECT_DOUBLE_EQ(bounds.cmin, bounds.cmax);
  const auto cg = medcc::sched::critical_greedy(inst, bounds.cmin);
  const auto g3 = medcc::sched::gain3(inst, bounds.cmin);
  const auto ls = medcc::sched::loss(inst, bounds.cmin);
  const auto opt = medcc::sched::exhaustive_optimal(inst, bounds.cmin);
  EXPECT_EQ(cg.schedule, g3.schedule);
  EXPECT_EQ(cg.schedule, ls.schedule);
  EXPECT_EQ(cg.schedule, opt.schedule);
}

TEST(Integration, MontageCampaignSmall) {
  // A non-paper workload (Montage-like) through the whole stack: the
  // library is not WRF-specific.
  medcc::util::Prng rng(33);
  const auto wf = medcc::workflow::montage_like(5, rng);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  const auto cells = medcc::expr::sweep_budgets(inst, 6);
  for (const auto& cell : cells) {
    EXPECT_LE(cell.cost_cg, cell.budget + 1e-6);
    EXPECT_GT(cell.med_cg, 0.0);
  }
  // CG beats or ties GAIN3 on the median budget.
  EXPECT_LE(cells[3].med_cg, cells[3].med_gain + 1e-9);
}

TEST(Integration, BudgetBoundaryBehaviourConsistent) {
  medcc::util::Prng rng(44);
  const auto inst = medcc::expr::make_instance({9, 16, 3}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  // Below Cmin everything refuses identically.
  EXPECT_THROW((void)medcc::sched::critical_greedy(inst, bounds.cmin - 1.0),
               medcc::Infeasible);
  EXPECT_THROW((void)medcc::sched::gain3(inst, bounds.cmin - 1.0),
               medcc::Infeasible);
  EXPECT_THROW((void)medcc::sched::loss(inst, bounds.cmin - 1.0),
               medcc::Infeasible);
  EXPECT_THROW(
      (void)medcc::sched::exhaustive_optimal(inst, bounds.cmin - 1.0),
      medcc::Infeasible);
  // At Cmax and beyond, CG and LOSS both reach the fastest MED.
  const auto fastest = medcc::sched::evaluate(
      inst, medcc::sched::fastest_schedule(inst));
  EXPECT_NEAR(medcc::sched::critical_greedy(inst, bounds.cmax).eval.med,
              fastest.med, 1e-9);
  EXPECT_NEAR(medcc::sched::loss(inst, bounds.cmax).eval.med, fastest.med,
              1e-9);
}

}  // namespace
