#include "sched/mckp.hpp"

#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/exhaustive.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::MckpInstance;
using medcc::sched::MckpItem;
using medcc::sched::solve_mckp_bb;
using medcc::sched::solve_mckp_dp;

MckpInstance small_mckp() {
  MckpInstance mckp;
  mckp.classes = {
      {{10.0, 2.0}, {7.0, 1.0}},           // class 0
      {{4.0, 3.0}, {9.0, 5.0}, {1.0, 1.0}}, // class 1
  };
  mckp.capacity = 6.0;
  return mckp;
}

TEST(MckpDp, SolvesSmallInstance) {
  const auto sol = solve_mckp_dp(small_mckp());
  ASSERT_TRUE(sol.feasible);
  // Best: item 0 of class 0 (p10,w2) + item 0 of class 1 (p4,w3) = 14/5;
  // alternative 7+9 = 16 needs w 1+5 = 6 <= 6 -> 16 is better!
  EXPECT_DOUBLE_EQ(sol.total_profit, 16.0);
  EXPECT_EQ(sol.pick[0], 1u);
  EXPECT_EQ(sol.pick[1], 1u);
  EXPECT_DOUBLE_EQ(sol.total_weight, 6.0);
}

TEST(MckpDp, InfeasibleWhenNothingFits) {
  MckpInstance mckp;
  mckp.classes = {{{1.0, 10.0}}};
  mckp.capacity = 5.0;
  const auto sol = solve_mckp_dp(mckp);
  EXPECT_FALSE(sol.feasible);
}

TEST(MckpDp, EmptyInstanceTriviallyFeasible) {
  MckpInstance mckp;
  mckp.capacity = 0.0;
  const auto sol = solve_mckp_dp(mckp);
  EXPECT_TRUE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.total_profit, 0.0);
}

TEST(MckpDp, EmptyClassRejected) {
  MckpInstance mckp;
  mckp.classes = {{}};
  mckp.capacity = 1.0;
  EXPECT_THROW((void)solve_mckp_dp(mckp), medcc::InvalidArgument);
}

TEST(MckpDp, FractionalWeightsNeedScale) {
  MckpInstance mckp;
  mckp.classes = {{{1.0, 0.1}}};
  mckp.capacity = 1.0;
  EXPECT_THROW((void)solve_mckp_dp(mckp, 1.0), medcc::InvalidArgument);
  const auto sol = solve_mckp_dp(mckp, 10.0);  // WRF-style rate scale
  EXPECT_TRUE(sol.feasible);
}

TEST(MckpDp, NegativeWeightRejected) {
  MckpInstance mckp;
  mckp.classes = {{{1.0, -1.0}}};
  mckp.capacity = 1.0;
  EXPECT_THROW((void)solve_mckp_dp(mckp), medcc::InvalidArgument);
}

TEST(MckpBb, MatchesDpOnSmallInstance) {
  const auto dp = solve_mckp_dp(small_mckp());
  const auto bb = solve_mckp_bb(small_mckp());
  ASSERT_TRUE(bb.feasible);
  EXPECT_DOUBLE_EQ(bb.total_profit, dp.total_profit);
}

TEST(MckpBb, NodeGuardThrows) {
  MckpInstance mckp;
  for (int k = 0; k < 12; ++k)
    mckp.classes.push_back({{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}});
  mckp.capacity = 24.0;
  EXPECT_THROW((void)solve_mckp_bb(mckp, 5), medcc::Error);
}

class MckpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MckpPropertyTest, BbMatchesDpOnRandomIntegerInstances) {
  medcc::util::Prng rng(GetParam());
  MckpInstance mckp;
  const auto classes = static_cast<std::size_t>(rng.uniform_int(1, 6));
  for (std::size_t k = 0; k < classes; ++k) {
    std::vector<MckpItem> cls;
    const auto items = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t i = 0; i < items; ++i)
      cls.push_back(MckpItem{
          static_cast<double>(rng.uniform_int(0, 20)),
          static_cast<double>(rng.uniform_int(1, 10))});
    mckp.classes.push_back(std::move(cls));
  }
  mckp.capacity = static_cast<double>(rng.uniform_int(
      static_cast<std::int64_t>(classes),
      static_cast<std::int64_t>(classes) * 10));
  const auto dp = solve_mckp_dp(mckp);
  const auto bb = solve_mckp_bb(mckp);
  EXPECT_EQ(dp.feasible, bb.feasible);
  if (dp.feasible) {
    EXPECT_DOUBLE_EQ(dp.total_profit, bb.total_profit);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MckpPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 16));

// ---------------------------------------------------------------------
// The Section-IV reduction: MED-CC-Pipeline == MCKP.
// ---------------------------------------------------------------------

TEST(PipelineReduction, DetectsPipelines) {
  medcc::util::Prng rng(2);
  const auto pipe = medcc::sched::Instance::from_model(
      medcc::workflow::random_pipeline(5, 10.0, 50.0, rng),
      medcc::cloud::example_catalog());
  EXPECT_TRUE(medcc::sched::is_pipeline(pipe));
  const auto dag = medcc::sched::Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog());
  EXPECT_FALSE(medcc::sched::is_pipeline(dag));
  EXPECT_THROW((void)medcc::sched::pipeline_to_mckp(dag, 100.0),
               medcc::InvalidArgument);
}

TEST(PipelineReduction, FixedEndpointsStillAPipeline) {
  medcc::workflow::Workflow wf;
  const auto e = wf.add_fixed_module("entry", 1.0);
  const auto a = wf.add_module("a", 10.0);
  const auto b = wf.add_module("b", 20.0);
  const auto x = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(e, a);
  wf.add_dependency(a, b);
  wf.add_dependency(b, x);
  const auto inst = medcc::sched::Instance::from_model(
      wf, medcc::cloud::example_catalog());
  EXPECT_TRUE(medcc::sched::is_pipeline(inst));
}

TEST(PipelineReduction, MckpShapeMatchesTheorem) {
  medcc::util::Prng rng(3);
  const auto inst = medcc::sched::Instance::from_model(
      medcc::workflow::random_pipeline(4, 10.0, 60.0, rng),
      medcc::cloud::example_catalog());
  const auto mckp = medcc::sched::pipeline_to_mckp(inst, 40.0);
  // m classes of n items; capacity = budget; profits K - T >= 0.
  EXPECT_EQ(mckp.classes.size(), 4u);
  for (const auto& cls : mckp.classes) {
    EXPECT_EQ(cls.size(), 3u);
    for (const auto& item : cls) EXPECT_GE(item.profit, 0.0);
  }
  EXPECT_DOUBLE_EQ(mckp.capacity, 40.0);
}

class PipelineOptimalTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineOptimalTest, MckpDpEqualsExhaustiveOnPipelines) {
  medcc::util::Prng rng(GetParam());
  // Integer workloads ensure integer costs under the example catalog.
  std::vector<double> wl;
  const auto m = static_cast<std::size_t>(rng.uniform_int(2, 6));
  for (std::size_t i = 0; i < m; ++i)
    wl.push_back(static_cast<double>(rng.uniform_int(5, 90)));
  const auto inst = medcc::sched::Instance::from_model(
      medcc::workflow::pipeline(wl), medcc::cloud::example_catalog());
  const auto bounds = medcc::sched::cost_bounds(inst);
  for (double budget : medcc::sched::budget_levels(bounds, 4)) {
    const auto via_mckp = medcc::sched::pipeline_optimal(inst, budget);
    const auto via_search = medcc::sched::exhaustive_optimal(inst, budget);
    EXPECT_NEAR(via_mckp.eval.med, via_search.eval.med, 1e-9)
        << "budget " << budget;
    EXPECT_LE(via_mckp.eval.cost, budget + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineOptimalTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(PipelineOptimal, InfeasibleThrows) {
  const std::vector<double> wl = {30.0, 30.0};
  const auto inst = medcc::sched::Instance::from_model(
      medcc::workflow::pipeline(wl), medcc::cloud::example_catalog());
  EXPECT_THROW((void)medcc::sched::pipeline_optimal(inst, 1.0),
               medcc::Infeasible);
}

}  // namespace
