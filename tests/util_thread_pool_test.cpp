#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/prng.hpp"

namespace {

using medcc::util::parallel_for_index;
using medcc::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ThreadCountHonored) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ExceptionPropagatesToWaiter) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, NullTaskRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), medcc::LogicError);
  EXPECT_THROW((void)pool.try_submit(nullptr), medcc::LogicError);
}

TEST(ThreadPool, TrySubmitRunsTasksBeforeStop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_FALSE(pool.stop_requested());
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(pool.try_submit(
        [&] { counter.fetch_add(1, std::memory_order_relaxed); }));
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TrySubmitRefusesAfterRequestStop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.request_stop();
  EXPECT_TRUE(pool.stop_requested());
  // Non-blocking refusal; nothing enqueued, no throw, no deadlock.
  EXPECT_FALSE(pool.try_submit([&] { counter.fetch_add(100); }));
  // submit() keeps its documented throwing contract.
  EXPECT_THROW(pool.submit([] {}), medcc::LogicError);
  // Tasks queued before the stop still drain.
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, RequestStopIsIdempotent) {
  ThreadPool pool(1);
  pool.request_stop();
  pool.request_stop();
  pool.wait_idle();
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_index(pool, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for_index(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelFor, GrainBatchesStillCoverAll) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(103);  // not divisible by grain
  parallel_for_index(
      pool, hits.size(),
      [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/10);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, DeterministicWithForkedStreams) {
  // The canonical experiment pattern: index-forked PRNG streams make the
  // result independent of scheduling.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    medcc::util::Prng root(1234);
    std::vector<double> out(64);
    parallel_for_index(pool, out.size(), [&](std::size_t i) {
      auto rng = root.fork(i);
      out[i] = rng.uniform_real(0.0, 1.0);
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelFor, ExceptionFromBodySurfaces) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_index(pool, 10,
                                  [&](std::size_t i) {
                                    if (i == 5)
                                      throw std::runtime_error("bad index");
                                  }),
               std::runtime_error);
}

TEST(GlobalPool, IsSingletonAndUsable) {
  auto& a = medcc::util::global_pool();
  auto& b = medcc::util::global_pool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  parallel_for_index(a, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
