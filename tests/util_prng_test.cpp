#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace {

using medcc::util::Prng;

TEST(Prng, SameSeedSameStream) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Prng, ReseedRestartsStream) {
  Prng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Prng, ForkIsIndependentOfParentConsumption) {
  Prng parent(99);
  Prng child_before = parent.fork(3);
  // Consuming the parent must not change what fork(3) yields.
  Prng parent2(99);
  (void)parent2();
  // fork derives from state; the contract is same-state -> same child.
  Prng child_again = Prng(99).fork(3);
  EXPECT_EQ(child_before(), child_again());
}

TEST(Prng, ForkedStreamsDiffer) {
  Prng parent(5);
  Prng a = parent.fork(0);
  Prng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Prng, UniformIntInRange) {
  Prng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Prng, UniformIntDegenerateRange) {
  Prng rng(11);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Prng, UniformIntRejectsInvertedRange) {
  Prng rng(1);
  EXPECT_THROW((void)rng.uniform_int(3, 2), medcc::LogicError);
}

TEST(Prng, UniformIntCoversAllValues) {
  Prng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, UniformRealInRange) {
  Prng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Prng, UniformRealMeanRoughlyCentered) {
  Prng rng(19);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform_real(0.0, 1.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Prng, BernoulliExtremes) {
  Prng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Prng, ChoicePicksExistingElement) {
  Prng rng(29);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.choice(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Prng, ShuffleIsPermutation) {
  Prng rng(31);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<std::size_t>(i)] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // 50! permutations; identity is ~impossible
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(Prng, SampleIndicesDistinctAndInRange) {
  Prng rng(37);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Prng, SampleIndicesFullPopulation) {
  Prng rng(41);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Prng, SampleIndicesRejectsOversample) {
  Prng rng(43);
  EXPECT_THROW((void)rng.sample_indices(5, 6), medcc::LogicError);
}

// Property sweep: bounded sampling stays unbiased-ish across many spans.
class PrngSpanTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PrngSpanTest, BoundedSamplingHitsEndpoints) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  const std::int64_t hi = GetParam();
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000 && !(saw_lo && saw_hi); ++i) {
    const auto v = rng.uniform_int(0, hi);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, hi);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == hi;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

INSTANTIATE_TEST_SUITE_P(Spans, PrngSpanTest,
                         ::testing::Values(1, 2, 3, 7, 10, 63, 64, 100, 255));

}  // namespace
