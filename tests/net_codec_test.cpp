// Robustness and round-trip correctness of the MED-CC wire codec:
// frame-header parsing against truncation, bad magic/version/type and
// oversized length prefixes; decode(encode(x)) field-identical (doubles
// compared bit-for-bit) for handcrafted and randomized instances; byte
// chop/flip and random-bytes fuzz loops that must always surface as
// CodecError, never UB (the ASan+UBSan CI leg runs this binary).
#include "net/codec.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/vm_type.hpp"
#include "sched/instance.hpp"
#include "service/request.hpp"
#include "util/prng.hpp"
#include "workflow/patterns.hpp"
#include "workflow/random_workflow.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::net::CodecError;
using medcc::net::FrameHeader;
using medcc::net::FrameType;
using medcc::net::StatsFormat;
using medcc::net::WireError;
using medcc::net::WireReader;
using medcc::net::WireWriter;
using medcc::sched::Instance;
using medcc::service::CacheOutcome;
using medcc::service::RejectReason;
using medcc::service::ResponseStatus;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;

void expect_bits_equal(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

SchedulingRequest example_request() {
  SchedulingRequest req;
  req.instance = std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
  req.budget = 57.0;
  req.solver = "cg";
  req.config = "trace=1";
  req.tenant = "tenant-a";
  req.deadline_ms = 125.5;
  return req;
}

/// Field-identical comparison of two instances, doubles bit-for-bit.
void expect_instances_identical(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.module_count(), b.module_count());
  ASSERT_EQ(a.type_count(), b.type_count());
  for (std::size_t i = 0; i < a.module_count(); ++i) {
    const auto& ma = a.workflow().module(i);
    const auto& mb = b.workflow().module(i);
    EXPECT_EQ(ma.name, mb.name);
    ASSERT_EQ(ma.is_fixed(), mb.is_fixed());
    if (ma.is_fixed())
      expect_bits_equal(*ma.fixed_time, *mb.fixed_time);
    else
      expect_bits_equal(ma.workload, mb.workload);
  }
  for (std::size_t j = 0; j < a.type_count(); ++j) {
    EXPECT_EQ(a.catalog().type(j).name, b.catalog().type(j).name);
    expect_bits_equal(a.catalog().type(j).processing_power,
                      b.catalog().type(j).processing_power);
    expect_bits_equal(a.catalog().type(j).cost_rate,
                      b.catalog().type(j).cost_rate);
  }
  ASSERT_EQ(a.workflow().graph().edge_count(),
            b.workflow().graph().edge_count());
  for (std::size_t e = 0; e < a.workflow().graph().edge_count(); ++e) {
    EXPECT_EQ(a.workflow().graph().edge(e).src,
              b.workflow().graph().edge(e).src);
    EXPECT_EQ(a.workflow().graph().edge(e).dst,
              b.workflow().graph().edge(e).dst);
    expect_bits_equal(a.workflow().data_size(e), b.workflow().data_size(e));
    expect_bits_equal(a.edge_time(e), b.edge_time(e));
  }
  expect_bits_equal(a.billing().quantum(), b.billing().quantum());
  expect_bits_equal(a.network().bandwidth, b.network().bandwidth);
  expect_bits_equal(a.network().link_delay, b.network().link_delay);
  expect_bits_equal(a.network().transfer_cost_rate,
                    b.network().transfer_cost_rate);
  // The decoded TE/CE tables must be bit-identical: this is what makes
  // remote solves byte-identical to in-process ones.
  for (std::size_t i = 0; i < a.module_count(); ++i)
    for (std::size_t j = 0; j < a.type_count(); ++j) {
      expect_bits_equal(a.time(i, j), b.time(i, j));
      expect_bits_equal(a.cost(i, j), b.cost(i, j));
    }
}

// -- frame header ---------------------------------------------------------

TEST(NetCodec, FrameHeaderRoundTrips) {
  const std::string frame =
      medcc::net::encode_frame(FrameType::solve_request, 42, "abc");
  ASSERT_EQ(frame.size(), medcc::net::kHeaderSize + 3);
  const auto header = medcc::net::parse_frame_header(frame);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, FrameType::solve_request);
  EXPECT_EQ(header->request_id, 42u);
  EXPECT_EQ(header->body_size, 3u);
}

TEST(NetCodec, ShortBufferAsksForMoreBytes) {
  const std::string frame =
      medcc::net::encode_frame(FrameType::stats_request, 1, "");
  for (std::size_t len = 0; len < medcc::net::kHeaderSize; ++len)
    EXPECT_FALSE(medcc::net::parse_frame_header(
                     std::string_view(frame).substr(0, len))
                     .has_value())
        << "prefix length " << len;
}

TEST(NetCodec, BadMagicRejected) {
  std::string frame = medcc::net::encode_frame(FrameType::error, 0, "");
  frame[0] = 'X';
  try {
    (void)medcc::net::parse_frame_header(frame);
    FAIL() << "expected CodecError";
  } catch (const CodecError& err) {
    EXPECT_EQ(err.code(), WireError::bad_magic);
  }
}

TEST(NetCodec, BadVersionRejected) {
  std::string frame = medcc::net::encode_frame(FrameType::error, 0, "");
  frame[4] = 99;  // version lives at offset 4
  try {
    (void)medcc::net::parse_frame_header(frame);
    FAIL() << "expected CodecError";
  } catch (const CodecError& err) {
    EXPECT_EQ(err.code(), WireError::bad_version);
  }
}

TEST(NetCodec, BadFrameTypeRejected) {
  // 15 is the first value past the v2 cluster + tracing types (6-14).
  for (const std::uint8_t type : {std::uint8_t{0}, std::uint8_t{15},
                                  std::uint8_t{200}}) {
    std::string frame = medcc::net::encode_frame(FrameType::error, 0, "");
    frame[6] = static_cast<char>(type);  // frame type lives at offset 6
    try {
      (void)medcc::net::parse_frame_header(frame);
      FAIL() << "expected CodecError for type " << int(type);
    } catch (const CodecError& err) {
      EXPECT_EQ(err.code(), WireError::bad_frame_type);
    }
  }
}

TEST(NetCodec, VersionTypePairingEnforced) {
  // A v1 header on a v2-only type (and vice versa) is rejected from
  // the header alone, as a version fault -- a v1 peer can never be
  // handed a cluster frame it cannot parse.
  std::string v1_cluster = medcc::net::encode_frame(FrameType::error, 0, "");
  v1_cluster[6] = 6;  // hello_request under version 1
  try {
    (void)medcc::net::parse_frame_header(v1_cluster);
    FAIL() << "expected CodecError";
  } catch (const CodecError& err) {
    EXPECT_EQ(err.code(), WireError::bad_version);
  }

  std::string v2_legacy = medcc::net::encode_frame(FrameType::error, 0, "");
  v2_legacy[4] = 2;  // error frame stamped with the cluster version
  try {
    (void)medcc::net::parse_frame_header(v2_legacy);
    FAIL() << "expected CodecError";
  } catch (const CodecError& err) {
    EXPECT_EQ(err.code(), WireError::bad_version);
  }
}

TEST(NetCodec, OversizedLengthPrefixRejectedBeforeBuffering) {
  std::string frame = medcc::net::encode_frame(FrameType::solve_request, 7, "");
  // Patch the length prefix (offset 16, little-endian u32) to 4 GiB-ish.
  frame[16] = static_cast<char>(0xFF);
  frame[17] = static_cast<char>(0xFF);
  frame[18] = static_cast<char>(0xFF);
  frame[19] = static_cast<char>(0x7F);
  try {
    (void)medcc::net::parse_frame_header(frame, /*max_body=*/1 << 20);
    FAIL() << "expected CodecError";
  } catch (const CodecError& err) {
    EXPECT_EQ(err.code(), WireError::oversized_frame);
  }
}

// -- solve round trips ----------------------------------------------------

TEST(NetCodec, SolveRequestRoundTripsFieldIdentical) {
  const SchedulingRequest original = example_request();
  const std::string frame = medcc::net::encode_solve_request(original, 9);
  const auto header = medcc::net::parse_frame_header(frame);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, FrameType::solve_request);
  EXPECT_EQ(header->request_id, 9u);

  const SchedulingRequest decoded = medcc::net::decode_solve_request(
      std::string_view(frame).substr(medcc::net::kHeaderSize));
  expect_bits_equal(decoded.budget, original.budget);
  expect_bits_equal(decoded.deadline_ms, original.deadline_ms);
  EXPECT_EQ(decoded.solver, original.solver);
  EXPECT_EQ(decoded.config, original.config);
  EXPECT_EQ(decoded.tenant, original.tenant);
  ASSERT_NE(decoded.instance, nullptr);
  expect_instances_identical(*decoded.instance, *original.instance);
}

TEST(NetCodec, RandomizedInstancesRoundTripDifferential) {
  medcc::util::Prng rng(0xC0DECu);
  for (int round = 0; round < 20; ++round) {
    medcc::workflow::RandomWorkflowSpec spec;
    spec.modules = static_cast<std::size_t>(rng.uniform_int(2, 12));
    spec.edges = static_cast<std::size_t>(rng.uniform_int(1, 30));
    spec.data_size_min = 0.5;
    spec.data_size_max = 20.0;
    spec.weighted_endpoints = (round % 2) == 0;
    auto wf = medcc::workflow::random_workflow(spec, rng);
    const std::size_t types = static_cast<std::size_t>(rng.uniform_int(1, 5));
    std::vector<VmType> catalog;
    for (std::size_t j = 0; j < types; ++j)
      catalog.push_back(VmType{"vt" + std::to_string(j),
                               rng.uniform_real(1.0, 30.0),
                               rng.uniform_real(0.5, 8.0)});
    SchedulingRequest req;
    req.instance = std::make_shared<const Instance>(Instance::from_model(
        std::move(wf), VmCatalog(std::move(catalog)),
        medcc::cloud::BillingPolicy(rng.uniform_real(0.1, 2.0)),
        medcc::cloud::NetworkModel{rng.uniform_real(1.0, 10.0),
                                   rng.uniform_real(0.0, 1.0),
                                   rng.uniform_real(0.0, 0.2)}));
    req.budget = rng.uniform_real(1.0, 500.0);
    req.solver = (round % 3 == 0) ? "gain3" : "cg";
    req.tenant = "t" + std::to_string(round % 4);

    const std::string frame = medcc::net::encode_solve_request(req, 1);
    const auto decoded = medcc::net::decode_solve_request(
        std::string_view(frame).substr(medcc::net::kHeaderSize));
    expect_bits_equal(decoded.budget, req.budget);
    EXPECT_EQ(decoded.solver, req.solver);
    EXPECT_EQ(decoded.tenant, req.tenant);
    expect_instances_identical(*decoded.instance, *req.instance);

    // Re-encoding the decoded request must reproduce the exact bytes.
    EXPECT_EQ(medcc::net::encode_solve_request(decoded, 1), frame);
  }
}

TEST(NetCodec, SolveResponseRoundTripsFieldIdentical) {
  SchedulingResponse original;
  original.status = ResponseStatus::ok;
  original.reject_reason = RejectReason::none;
  original.solver = "gain3";
  original.cache = CacheOutcome::hit_isomorphic;
  original.queue_delay_ms = 0.125;
  original.solve_ms = 3.875;
  original.result.iterations = 17;
  original.result.eval.med = 6.77215;
  original.result.eval.cost = 56.0000001;
  original.result.schedule.type_of = {2, 1, 0, 2, 2, 1};

  const std::string frame = medcc::net::encode_solve_response(original, 5);
  const auto header = medcc::net::parse_frame_header(frame);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, FrameType::solve_response);

  const SchedulingResponse decoded = medcc::net::decode_solve_response(
      std::string_view(frame).substr(medcc::net::kHeaderSize));
  EXPECT_EQ(decoded.status, original.status);
  EXPECT_EQ(decoded.reject_reason, original.reject_reason);
  EXPECT_EQ(decoded.solver, original.solver);
  EXPECT_EQ(decoded.cache, original.cache);
  EXPECT_EQ(decoded.error, original.error);
  EXPECT_EQ(decoded.result.iterations, original.result.iterations);
  EXPECT_EQ(decoded.result.schedule.type_of, original.result.schedule.type_of);
  expect_bits_equal(decoded.result.eval.med, original.result.eval.med);
  expect_bits_equal(decoded.result.eval.cost, original.result.eval.cost);
  expect_bits_equal(decoded.queue_delay_ms, original.queue_delay_ms);
  expect_bits_equal(decoded.solve_ms, original.solve_ms);
}

TEST(NetCodec, RejectionAndFailureResponsesRoundTrip) {
  SchedulingResponse rejected;
  rejected.status = ResponseStatus::rejected;
  rejected.reject_reason = RejectReason::tenant_quota;
  rejected.solver = "cg";
  {
    const std::string frame = medcc::net::encode_solve_response(rejected, 1);
    const auto decoded = medcc::net::decode_solve_response(
        std::string_view(frame).substr(medcc::net::kHeaderSize));
    EXPECT_EQ(decoded.status, ResponseStatus::rejected);
    EXPECT_EQ(decoded.reject_reason, RejectReason::tenant_quota);
  }

  SchedulingResponse failed;
  failed.status = ResponseStatus::failed;
  failed.error = "critical_greedy: budget 1 below least-cost schedule";
  {
    const std::string frame = medcc::net::encode_solve_response(failed, 2);
    const auto decoded = medcc::net::decode_solve_response(
        std::string_view(frame).substr(medcc::net::kHeaderSize));
    EXPECT_EQ(decoded.status, ResponseStatus::failed);
    EXPECT_EQ(decoded.error, failed.error);
  }
}

// -- stats / error frames -------------------------------------------------

TEST(NetCodec, StatsFramesRoundTrip) {
  const std::string req = medcc::net::encode_stats_request(StatsFormat::csv, 3);
  EXPECT_EQ(medcc::net::decode_stats_request(
                std::string_view(req).substr(medcc::net::kHeaderSize)),
            StatsFormat::csv);

  const std::string dump = "requests_total 7\ncache_hit_rate 0.4\n";
  const std::string resp = medcc::net::encode_stats_response(dump, 3);
  EXPECT_EQ(medcc::net::decode_stats_response(
                std::string_view(resp).substr(medcc::net::kHeaderSize)),
            dump);
}

TEST(NetCodec, ErrorFrameRoundTrips) {
  const std::string frame = medcc::net::encode_error(
      WireError::limit_exceeded, "module count 9999999 over limit", 11);
  const auto header = medcc::net::parse_frame_header(frame);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, FrameType::error);
  const auto fault = medcc::net::decode_error(
      std::string_view(frame).substr(medcc::net::kHeaderSize));
  EXPECT_EQ(fault.code, WireError::limit_exceeded);
  EXPECT_EQ(fault.message, "module count 9999999 over limit");
}

// -- hostile bytes --------------------------------------------------------

TEST(NetCodec, EveryTruncationOfAValidBodyThrowsCodecError) {
  const std::string frame =
      medcc::net::encode_solve_request(example_request(), 1);
  const std::string_view body =
      std::string_view(frame).substr(medcc::net::kHeaderSize);
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_THROW((void)medcc::net::decode_solve_request(body.substr(0, len)),
                 CodecError)
        << "prefix length " << len;
  }
}

TEST(NetCodec, TrailingBytesRejected) {
  const std::string frame =
      medcc::net::encode_solve_request(example_request(), 1);
  std::string body(std::string_view(frame).substr(medcc::net::kHeaderSize));
  body.push_back('\0');
  try {
    (void)medcc::net::decode_solve_request(body);
    FAIL() << "expected CodecError";
  } catch (const CodecError& err) {
    EXPECT_EQ(err.code(), WireError::trailing_bytes);
  }
}

TEST(NetCodec, HostileElementCountsDoNotAllocate) {
  // A body claiming 2^20-1 modules backed by only a handful of bytes
  // must die in expect_fits, not in an allocation.
  WireWriter w;
  w.f64(10.0);   // budget
  w.f64(0.0);    // deadline
  w.str("cg");   // solver
  w.str("");     // config
  w.str("");     // tenant
  w.f64(1.0);    // billing quantum
  w.f64(0.0);    // bandwidth
  w.f64(0.0);    // link delay
  w.f64(0.0);    // transfer cost rate
  w.u32(1);      // catalog size
  w.str("vt0");
  w.f64(1.0);
  w.f64(1.0);
  w.u32((1u << 20) - 1);  // hostile module count
  EXPECT_THROW((void)medcc::net::decode_solve_request(w.bytes()), CodecError);
}

TEST(NetCodec, RandomBytesNeverCrashDecoders) {
  medcc::util::Prng rng(0xFAFFu);
  for (int round = 0; round < 2000; ++round) {
    std::string bytes(static_cast<std::size_t>(rng.uniform_int(0, 256)), '\0');
    for (auto& c : bytes)
      c = static_cast<char>(rng.uniform_int(0, 255));
    // Any outcome but a CodecError (or clean success) is a bug.
    try { (void)medcc::net::parse_frame_header(bytes); }
    catch (const CodecError&) {}
    try { (void)medcc::net::decode_solve_request(bytes); }
    catch (const CodecError&) {}
    try { (void)medcc::net::decode_solve_response(bytes); }
    catch (const CodecError&) {}
    try { (void)medcc::net::decode_stats_request(bytes); }
    catch (const CodecError&) {}
    try { (void)medcc::net::decode_stats_response(bytes); }
    catch (const CodecError&) {}
    try { (void)medcc::net::decode_error(bytes); }
    catch (const CodecError&) {}
  }
}

TEST(NetCodec, ByteFlipsOfAValidRequestNeverCrash) {
  const std::string frame =
      medcc::net::encode_solve_request(example_request(), 1);
  const std::string_view body =
      std::string_view(frame).substr(medcc::net::kHeaderSize);
  medcc::util::Prng rng(0xF11Bu);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated(body);
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    try {
      const auto decoded = medcc::net::decode_solve_request(mutated);
      // A mutation may survive decoding; the result must still be a
      // coherent request object.
      ASSERT_NE(decoded.instance, nullptr);
    } catch (const CodecError&) {
      // structured rejection: exactly what the codec promises
    }
  }
}

// -- primitives -----------------------------------------------------------

TEST(NetCodec, WireReaderBoundsChecksEveryRead) {
  const std::string three_bytes = "abc";
  WireReader r(three_bytes);
  EXPECT_THROW((void)r.u32(), CodecError);

  WireWriter w;
  w.u32(100);  // string claims 100 bytes; only 2 follow
  std::string claim = w.take() + "ab";
  WireReader r2(claim);
  EXPECT_THROW((void)r2.str(1 << 20), CodecError);

  WireWriter w3;
  w3.str("0123456789");
  WireReader r3(w3.bytes());
  EXPECT_THROW((void)r3.str(4), CodecError);  // over the caller's max_len
}

TEST(NetCodec, DoublesTravelBitExactly) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::denorm_min(),
                           6.772151898734177};
  WireWriter w;
  for (const double v : values) w.f64(v);
  WireReader r(w.bytes());
  for (const double v : values) expect_bits_equal(r.f64(), v);
  r.expect_done();
}

}  // namespace
