// Multi-client stress on the net/ stack, meant for the TSan CI leg:
// many client threads hammer one epoll server with single solves,
// pipelined batches, stats polls, and connection churn, all racing the
// service's worker pool; every response must come back ok and
// correctly correlated, and shutdown must stay graceful with
// connections still open.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::net::Client;
using medcc::net::ClientConfig;
using medcc::net::Server;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingService;

constexpr std::size_t kClientThreads = 6;
constexpr std::size_t kRoundsPerThread = 12;
constexpr std::size_t kBatchSize = 4;

SchedulingRequest request_for(std::shared_ptr<const Instance> inst,
                              double budget, std::string solver,
                              std::string tenant) {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = budget;
  req.solver = std::move(solver);
  req.tenant = std::move(tenant);
  return req;
}

TEST(NetStress, ManyClientsManyBatchesAllCorrelated) {
  SchedulingService service(
      {.threads = 4, .queue_capacity = 1024, .cache_capacity = 64});
  Server server(service);

  const auto inst = std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
  const std::vector<std::string> solvers = {"cg", "gain3", "loss2"};

  std::atomic<std::uint64_t> ok_responses{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads + 1);
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      ClientConfig config;
      config.port = server.port();
      Client client(config);
      const std::string tenant = "stress-" + std::to_string(t);
      for (std::size_t round = 0; round < kRoundsPerThread; ++round) {
        // Budgets vary per thread so the cache sees misses alongside
        // hits; all of them are feasible.
        const double budget = 57.0 + static_cast<double>((t + round) % 5);
        const auto& solver = solvers[(t + round) % solvers.size()];
        if (round % 3 == 0) {
          std::vector<SchedulingRequest> batch;
          for (std::size_t i = 0; i < kBatchSize; ++i)
            batch.push_back(request_for(inst, budget, solver, tenant));
          for (const auto& response : client.solve_batch(batch)) {
            if (response.ok())
              ++ok_responses;
            else
              ++failures;
          }
        } else {
          if (client.solve(request_for(inst, budget, solver, tenant)).ok())
            ++ok_responses;
          else
            ++failures;
          if (round % 4 == 1) client.close();  // churn: reconnects next round
        }
      }
    });
  }
  // One thread polls stats concurrently with the solve traffic.
  std::atomic<bool> stop_polling{false};
  threads.emplace_back([&] {
    ClientConfig config;
    config.port = server.port();
    Client client(config);
    while (!stop_polling.load()) {
      EXPECT_NE(client.stats().find("requests_total"), std::string::npos);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::size_t t = 0; t < kClientThreads; ++t) threads[t].join();
  stop_polling.store(true);
  threads.back().join();

  const std::uint64_t expected =
      kClientThreads *
      (kRoundsPerThread / 3 * kBatchSize + (kRoundsPerThread -
                                            kRoundsPerThread / 3));
  EXPECT_EQ(ok_responses.load(), expected);
  EXPECT_EQ(failures.load(), 0u);

  const auto counters = server.counters();
  EXPECT_EQ(counters.protocol_errors, 0u);
  EXPECT_EQ(counters.frames_in, counters.frames_out);

  // Graceful stop with (possibly) open-but-idle connections.
  server.stop();
  EXPECT_EQ(server.counters().connections_active, 0u);
}

}  // namespace
