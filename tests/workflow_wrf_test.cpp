#include "workflow/wrf.hpp"

#include <gtest/gtest.h>

namespace {

TEST(WrfTeMatrix, MatchesTableVI) {
  const auto& te = medcc::workflow::wrf_te_matrix();
  // Spot-check the published values (seconds).
  EXPECT_DOUBLE_EQ(te[0][0], 43.8);   // w1 on VT1
  EXPECT_DOUBLE_EQ(te[0][4], 752.6);  // w5 on VT1
  EXPECT_DOUBLE_EQ(te[1][4], 241.6);  // w5 on VT2
  EXPECT_DOUBLE_EQ(te[2][4], 143.2);  // w5 on VT3
  EXPECT_DOUBLE_EQ(te[2][5], 119.7);  // w6 on VT3
  EXPECT_DOUBLE_EQ(te[1][2], 7.0);    // w3 on VT2
}

TEST(WrfTeMatrix, FasterTypesNeverSlowerOnMostModules) {
  const auto& te = medcc::workflow::wrf_te_matrix();
  // VT2 dominates VT1 on every module (real measurement).
  for (std::size_t i = 0; i < 6; ++i) EXPECT_LT(te[1][i], te[0][i]);
  // VT3 vs VT2 is NOT uniformly faster (w2, w3 regress slightly in the
  // paper's measurements) -- the schedulers must handle that.
  EXPECT_GT(te[2][1], te[1][1]);
  EXPECT_GT(te[2][2], te[1][2]);
}

TEST(WrfPipeline, ValidAndOrdered) {
  const auto wf = medcc::workflow::wrf_pipeline();
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.computing_module_count(), 7u);
}

TEST(WrfUngrouped, ThreePipelinesShareGeogrid) {
  const auto wf = medcc::workflow::wrf_experiment_ungrouped();
  EXPECT_TRUE(wf.validate().ok());
  // geogrid + 3 * (ungrib, metgrid, real, wrf, ARWpost) = 16 computing.
  EXPECT_EQ(wf.computing_module_count(), 16u);
}

TEST(WrfGrouped, StructureMatchesReconstruction) {
  const auto wf = medcc::workflow::wrf_experiment_grouped();
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.module_count(), 8u);
  EXPECT_EQ(wf.computing_module_count(), 6u);
  // w0 -> {w1,w2,w3} -> w4 -> {w5,w6} -> w7.
  EXPECT_TRUE(wf.graph().has_edge(0, 1));
  EXPECT_TRUE(wf.graph().has_edge(0, 2));
  EXPECT_TRUE(wf.graph().has_edge(0, 3));
  EXPECT_TRUE(wf.graph().has_edge(1, 4));
  EXPECT_TRUE(wf.graph().has_edge(2, 4));
  EXPECT_TRUE(wf.graph().has_edge(3, 4));
  EXPECT_TRUE(wf.graph().has_edge(4, 5));
  EXPECT_TRUE(wf.graph().has_edge(4, 6));
  EXPECT_TRUE(wf.graph().has_edge(5, 7));
  EXPECT_TRUE(wf.graph().has_edge(6, 7));
  // Entry/exit free and instantaneous.
  EXPECT_TRUE(wf.module(0).is_fixed());
  EXPECT_DOUBLE_EQ(*wf.module(0).fixed_time, 0.0);
}

TEST(WrfGrouped, WorkloadsReproduceVt1Column) {
  const auto wf = medcc::workflow::wrf_experiment_grouped();
  const auto& te = medcc::workflow::wrf_te_matrix();
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_DOUBLE_EQ(wf.module(i + 1).workload, te[0][i]);
}

}  // namespace
