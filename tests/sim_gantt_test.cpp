#include "sim/gantt.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"
#include "util/table.hpp"

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "testbed/runner.hpp"
#include "testbed/wrf_experiment.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;

TEST(Gantt, RendersLanesAndAxis) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  medcc::sim::ExecutorOptions opts;
  opts.reuse_vms = true;
  const auto report = medcc::sim::execute(inst, r.schedule, opts);
  const auto chart = medcc::sim::gantt(inst, report);
  // One labelled lane per VM plus the staging lane.
  for (std::size_t v = 0; v < report.vms.size(); ++v)
    EXPECT_NE(chart.find("vm" + std::to_string(v)), std::string::npos);
  EXPECT_NE(chart.find("staging"), std::string::npos);
  // Bars and the time axis are present.
  EXPECT_NE(chart.find('='), std::string::npos);
  EXPECT_NE(chart.find(medcc::util::fmt(report.makespan, 1)),
            std::string::npos);
}

TEST(Gantt, LabelsModulesThatFit) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto report = medcc::sim::execute(inst, least);
  const auto chart = medcc::sim::gantt(inst, report);
  // The long-running w4 bar is wide enough to carry its name.
  EXPECT_NE(chart.find("w4"), std::string::npos);
}

TEST(Gantt, RejectsTinyWidth) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto report = medcc::sim::execute(inst, least);
  medcc::sim::GanttOptions opts;
  opts.width = 4;
  EXPECT_THROW((void)medcc::sim::gantt(inst, report, opts),
               medcc::LogicError);
}

TEST(RunnerNoise, ZeroNoiseIsExact) {
  const auto inst = medcc::testbed::wrf_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  medcc::testbed::RunnerOptions opts;
  opts.time_scale = 2e-5;
  opts.noise = 0.0;
  const auto run = medcc::testbed::run_threaded(inst, least, opts);
  EXPECT_GT(run.measured_makespan, 0.0);
}

TEST(RunnerNoise, NoisePerturbsDeterministically) {
  const auto inst = medcc::testbed::wrf_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  medcc::testbed::RunnerOptions opts;
  opts.time_scale = 1e-4;  // ~85 ms wall: large vs scheduler jitter
  opts.noise = 0.05;
  opts.noise_seed = 7;
  const auto a = medcc::testbed::run_threaded(inst, least, opts);
  const auto b = medcc::testbed::run_threaded(inst, least, opts);
  // The same seed perturbs the same way: both runs see the same module
  // durations. Wall-clock jitter on loaded 1-core machines can still be
  // tens of ms, so the tolerances stay loose; the structural claim is
  // that the two seeded runs agree with each other at least as well as
  // with a generous absolute band around the analytic value.
  EXPECT_NEAR(a.measured_makespan, b.measured_makespan,
              0.35 * a.analytic_med);
  EXPECT_NEAR(a.measured_makespan, a.analytic_med, 0.5 * a.analytic_med);
  EXPECT_GE(a.measured_makespan, a.analytic_med * 0.8);
}

TEST(PrngNormal, MomentsRoughlyCorrect) {
  medcc::util::Prng rng(99);
  medcc::util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(PrngNormal, RejectsNegativeStddev) {
  medcc::util::Prng rng(1);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), medcc::LogicError);
}

}  // namespace
