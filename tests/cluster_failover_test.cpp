// Failover across a 3-replica in-process cluster: tenant-sharded
// ClusterClient traffic, one replica hard-stopped while load is
// running, zero lost responses, and byte-identical results from the
// survivors' replicated caches. The multi-threaded kill-mid-load test
// doubles as the TSan stress for the cluster subsystem.
#include "net/cluster_client.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <latch>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/replicator.hpp"
#include "net/endpoint.hpp"
#include "net/server.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::cluster::ClusterConfig;
using medcc::cluster::Replicator;
using medcc::net::ClusterClient;
using medcc::net::ClusterClientConfig;
using medcc::net::Endpoint;
using medcc::net::Server;
using medcc::net::ServerConfig;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;

std::shared_ptr<const Instance> example_instance() {
  return std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
}

SchedulingRequest request_for(std::shared_ptr<const Instance> inst,
                              double budget, std::string tenant) {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = budget;
  req.solver = "cg";
  req.tenant = std::move(tenant);
  return req;
}

void expect_identical(const SchedulingResponse& a,
                      const SchedulingResponse& b) {
  EXPECT_EQ(a.result.schedule, b.result.schedule);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.result.eval.med),
            std::bit_cast<std::uint64_t>(b.result.eval.med));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.result.eval.cost),
            std::bit_cast<std::uint64_t>(b.result.eval.cost));
}

/// A full-mesh 3-replica cluster living in this process.
class ClusterFixture {
public:
  static constexpr std::size_t kNodes = 3;

  ClusterFixture() {
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto& node = nodes_[i];
      node.repl_slot =
          std::make_shared<std::atomic<Replicator*>>(nullptr);
      ServiceConfig service_config;
      service_config.threads = 2;
      service_config.queue_capacity = 4096;
      service_config.on_cache_insert =
          [slot = node.repl_slot](std::string payload,
                                  medcc::obs::TraceContext trace) {
        if (auto* repl = slot->load(std::memory_order_acquire))
          repl->publish(payload, trace);
      };
      node.service =
          std::make_unique<SchedulingService>(std::move(service_config));
      ServerConfig server_config;
      server_config.io_threads = 1;
      server_config.node_id = "node" + std::to_string(i);
      server_config.repl_apply = [svc = node.service.get()](
                                     std::string_view payload) {
        return svc->apply_replicated_record(payload);
      };
      node.server =
          std::make_unique<Server>(*node.service, server_config);
      endpoints_.push_back({"127.0.0.1", node.server->port()});
    }
    for (std::size_t i = 0; i < kNodes; ++i) {
      ClusterConfig cluster_config;
      cluster_config.node_id = "node" + std::to_string(i);
      for (std::size_t j = 0; j < kNodes; ++j)
        if (j != i) cluster_config.peers.push_back(endpoints_[j]);
      nodes_[i].replicator =
          std::make_unique<Replicator>(std::move(cluster_config));
      nodes_[i].repl_slot->store(nodes_[i].replicator.get(),
                                 std::memory_order_release);
      nodes_[i].replicator->start();
    }
  }

  ~ClusterFixture() {
    for (auto& node : nodes_) {
      node.replicator->stop();
      node.server->stop();
      node.service->shutdown();
    }
  }

  [[nodiscard]] ClusterClientConfig client_config() const {
    ClusterClientConfig config;
    config.endpoints = endpoints_;
    config.down_cooldown_ms = 100.0;
    return config;
  }

  /// True when every replication queue is drained and acked.
  [[nodiscard]] bool replication_settled() const {
    for (const auto& node : nodes_)
      for (const auto& peer : node.replicator->status().peers)
        if (peer.queued != 0 || peer.sent != peer.acked) return false;
    return true;
  }

  void await_settled() {
    for (int i = 0; i < 1000; ++i) {
      if (replication_settled()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FAIL() << "replication did not settle";
  }

  void stop_node(std::size_t index) { nodes_[index].server->stop(); }

  [[nodiscard]] const SchedulingService& service(std::size_t index) const {
    return *nodes_[index].service;
  }

private:
  struct Node {
    std::shared_ptr<std::atomic<Replicator*>> repl_slot;
    std::unique_ptr<SchedulingService> service;
    std::unique_ptr<Server> server;
    std::unique_ptr<Replicator> replicator;
  };
  Node nodes_[kNodes];
  std::vector<Endpoint> endpoints_;
};

TEST(ClusterFailover, SurvivorServesByteIdenticalReplicatedHit) {
  ClusterFixture cluster;
  ClusterClient client(cluster.client_config());
  const auto inst = example_instance();

  const std::string tenant = "tenant-of-interest";
  const auto primed = client.solve(request_for(inst, 57.0, tenant));
  ASSERT_TRUE(primed.ok()) << primed.error;
  cluster.await_settled();

  // Hard-stop the tenant's primary; the ring walk must land on a
  // survivor whose replicated cache answers identically.
  const std::size_t primary = client.primary_index(tenant);
  cluster.stop_node(primary);
  const auto failed_over = client.solve(request_for(inst, 57.0, tenant));
  ASSERT_TRUE(failed_over.ok()) << failed_over.error;
  expect_identical(failed_over, primed);

  std::uint64_t failovers = 0;
  for (const auto& stat : client.stats()) failovers += stat.failovers;
  EXPECT_GE(failovers, 1u);
  EXPECT_TRUE(client.stats()[primary].down);

  // Subsequent solves for the tenant keep working without the primary.
  for (int i = 0; i < 3; ++i) {
    const auto again = client.solve(request_for(inst, 57.0, tenant));
    ASSERT_TRUE(again.ok());
    expect_identical(again, primed);
  }
}

TEST(ClusterFailover, KillMidLoadLosesNoResponses) {
  ClusterFixture cluster;
  const auto inst = example_instance();
  constexpr std::size_t kTenants = 8;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 40;  // half before the kill, half after

  // Prime every tenant and record the reference result to compare
  // against (solves are deterministic, so every later answer -- cached,
  // replicated, or re-solved -- must be bit-identical).
  std::vector<SchedulingResponse> reference;
  {
    ClusterClient primer(cluster.client_config());
    for (std::size_t t = 0; t < kTenants; ++t) {
      reference.push_back(
          primer.solve(request_for(inst, 57.0, "tenant-" + std::to_string(t))));
      ASSERT_TRUE(reference.back().ok()) << reference.back().error;
    }
  }
  cluster.await_settled();

  // Every thread arrives at the latch halfway through its quota; the
  // main thread then stops node 0 while the second halves are still in
  // flight -- a genuine kill under load.
  std::latch halfway(kThreads);
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClusterClient client(cluster.client_config());
      bool arrived = false;
      for (std::size_t k = 0; k < kPerThread; ++k) {
        if (!arrived && k >= kPerThread / 2) {
          halfway.count_down();
          arrived = true;
        }
        const std::size_t tenant = (t + k) % kTenants;
        try {
          const auto response = client.solve(
              request_for(inst, 57.0, "tenant-" + std::to_string(tenant)));
          if (!response.ok()) {
            ADD_FAILURE() << "lost response: " << response.error;
            failed.store(true);
            return;
          }
          expect_identical(response, reference[tenant]);
        } catch (const std::exception& ex) {
          ADD_FAILURE() << "lost response: " << ex.what();
          failed.store(true);
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      if (!arrived) halfway.count_down();
    });
  }
  halfway.wait();
  cluster.stop_node(0);
  for (auto& thread : threads) thread.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(completed.load(), kThreads * kPerThread);
}

}  // namespace
