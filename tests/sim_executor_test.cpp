#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;
using medcc::sim::execute;
using medcc::sim::ExecutorOptions;
using medcc::sim::TraceKind;

Instance example_instance(medcc::cloud::NetworkModel net = {}) {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog(),
                              medcc::cloud::BillingPolicy::per_unit_time(),
                              net);
}

TEST(Executor, SimulatedMakespanEqualsAnalyticMed) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  const auto report = execute(inst, r.schedule);
  EXPECT_NEAR(report.makespan, report.analytic_med, 1e-9);
  EXPECT_NEAR(report.makespan, 6.77, 0.005);
}

TEST(Executor, EveryModuleRunsExactlyOnce) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 52.0);
  const auto report = execute(inst, r.schedule);
  EXPECT_EQ(report.trace.count(TraceKind::ModuleStart), 8u);
  EXPECT_EQ(report.trace.count(TraceKind::ModuleDone), 8u);
  EXPECT_EQ(report.trace.count(TraceKind::TransferStart),
            inst.workflow().dependency_count());
}

TEST(Executor, PrecedenceRespected) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto report = execute(inst, least);
  const auto& g = inst.workflow().graph();
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_GE(report.modules[g.edge(e).dst].start + 1e-12,
              report.modules[g.edge(e).src].finish);
}

TEST(Executor, OneVmPerModuleWithoutReuse) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto report = execute(inst, least);
  EXPECT_EQ(report.vms.size(), 6u);
}

TEST(Executor, ReusePreservesMakespanAndSavesMoney) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 60.0);
  ExecutorOptions no_reuse;
  ExecutorOptions reuse;
  reuse.reuse_vms = true;
  const auto a = execute(inst, r.schedule, no_reuse);
  const auto b = execute(inst, r.schedule, reuse);
  EXPECT_NEAR(a.makespan, b.makespan, 1e-9);
  EXPECT_LT(b.vms.size(), a.vms.size());
  EXPECT_LE(b.billed_cost, a.billed_cost + 1e-9);
}

TEST(Executor, BilledCostMatchesAnalyticWithoutReuse) {
  // One VM per module, uptime = module duration -> identical rounding.
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  const auto report = execute(inst, r.schedule);
  EXPECT_NEAR(report.billed_cost, report.analytic_cost, 1e-9);
}

TEST(Executor, UpFrontProvisioningHidesBootUnderEntry) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  ExecutorOptions opts;
  opts.provisioning = medcc::sim::Provisioning::UpFront;
  opts.datacenter.vm_boot_time = 0.5;  // under the 1-hour entry module
  const auto report = execute(inst, least, opts);
  EXPECT_NEAR(report.makespan, report.analytic_med, 1e-9);
  opts.datacenter.vm_boot_time = 2.0;  // boot dominates the entry
  const auto delayed = execute(inst, least, opts);
  EXPECT_GT(delayed.makespan, report.makespan);
}

TEST(Executor, JustInTimeProvisioningPaysBootOnPath) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  ExecutorOptions opts;
  opts.datacenter.vm_boot_time = 0.5;
  const auto report = execute(inst, least, opts);  // JIT default
  EXPECT_GT(report.makespan, report.analytic_med);
}

TEST(Executor, TransferTimesExtendMakespan) {
  medcc::cloud::NetworkModel net;
  net.bandwidth = 0.5;  // each 1.0-unit edge takes 2h
  const auto inst = example_instance(net);
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto report = execute(inst, least);
  // Simulation must still agree with the CPM analytic value, which now
  // includes edge weights.
  EXPECT_NEAR(report.makespan, report.analytic_med, 1e-9);
  const auto no_net = example_instance();
  const auto fast = execute(no_net, least);
  EXPECT_GT(report.makespan, fast.makespan);
}

TEST(Executor, ThrowsWhenVmCanNeverBePlaced) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  ExecutorOptions opts;
  // Least-cost uses VT2 (VP 15); a 10-unit host can never hold it.
  opts.datacenter.hosts = {{10.0}};
  EXPECT_THROW((void)execute(inst, least, opts), medcc::Error);
}

TEST(Executor, BoundedButSufficientCapacitySucceeds) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  ExecutorOptions opts;
  opts.datacenter.hosts = {{60.0}};  // 3xVT2 (45) + 3xVT1 (9) fits
  const auto report = execute(inst, least, opts);
  EXPECT_NEAR(report.makespan, report.analytic_med, 1e-9);
}

TEST(Executor, CapacityContentionDelaysButCompletes) {
  // Host fits one VT2 at a time; parallel same-type modules serialize
  // behind VM churn, so the makespan exceeds the analytic MED.
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  ExecutorOptions opts;
  opts.datacenter.hosts = {{18.0}};  // one VT2 (15) + one VT1 (3)
  const auto report = execute(inst, least, opts);
  EXPECT_GT(report.makespan, report.analytic_med);
}

class ExecutorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExecutorPropertyTest, SimulationValidatesAnalyticModelOnRandomDags) {
  medcc::util::Prng rng(GetParam());
  const auto inst = medcc::expr::make_instance({14, 30, 4}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  const auto r = medcc::sched::critical_greedy(
      inst, 0.5 * (bounds.cmin + bounds.cmax));
  for (bool reuse : {false, true}) {
    ExecutorOptions opts;
    opts.reuse_vms = reuse;
    const auto report = execute(inst, r.schedule, opts);
    EXPECT_NEAR(report.makespan, report.analytic_med, 1e-9)
        << "reuse=" << reuse;
    if (!reuse)
      EXPECT_NEAR(report.billed_cost, report.analytic_cost, 1e-9);
    else
      EXPECT_LE(report.billed_cost, report.analytic_cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
