#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace {

using medcc::InvalidArgument;
using medcc::util::parse_flag_double;
using medcc::util::parse_flag_port;
using medcc::util::parse_flag_size;

TEST(ParseFlagSize, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_flag_size("0"), 0u);
  EXPECT_EQ(parse_flag_size("42"), 42u);
  EXPECT_EQ(parse_flag_size("007"), 7u);
  EXPECT_EQ(parse_flag_size(
                std::to_string(std::numeric_limits<std::size_t>::max())),
            std::numeric_limits<std::size_t>::max());
}

TEST(ParseFlagSize, RejectsEmpty) {
  EXPECT_THROW((void)parse_flag_size(""), InvalidArgument);
}

TEST(ParseFlagSize, RejectsTrailingJunk) {
  // std::stoul would silently accept all of these.
  EXPECT_THROW((void)parse_flag_size("12x"), InvalidArgument);
  EXPECT_THROW((void)parse_flag_size("12 "), InvalidArgument);
  EXPECT_THROW((void)parse_flag_size("1.5"), InvalidArgument);
}

TEST(ParseFlagSize, RejectsSignsAndWhitespace) {
  EXPECT_THROW((void)parse_flag_size("+5"), InvalidArgument);
  EXPECT_THROW((void)parse_flag_size("-1"), InvalidArgument);
  EXPECT_THROW((void)parse_flag_size(" 12"), InvalidArgument);
}

TEST(ParseFlagSize, RejectsOverflow) {
  // 2^64 * 10: too big for any std::size_t, and stoul-style wraparound
  // must not slip through.
  EXPECT_THROW((void)parse_flag_size("184467440737095516160"), InvalidArgument);
}

TEST(ParseFlagPort, AcceptsPortRange) {
  EXPECT_EQ(parse_flag_port("0"), std::uint16_t{0});
  EXPECT_EQ(parse_flag_port("8080"), std::uint16_t{8080});
  EXPECT_EQ(parse_flag_port("65535"), std::uint16_t{65535});
}

TEST(ParseFlagPort, RejectsOutOfRange) {
  EXPECT_THROW((void)parse_flag_port("65536"), InvalidArgument);
  EXPECT_THROW((void)parse_flag_port("999999"), InvalidArgument);
}

TEST(ParseFlagDouble, AcceptsDecimalsAndExponents) {
  EXPECT_DOUBLE_EQ(parse_flag_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_flag_double("-1"), -1.0);
  EXPECT_DOUBLE_EQ(parse_flag_double("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(parse_flag_double("0"), 0.0);
}

TEST(ParseFlagDouble, RejectsEmptyAndJunk) {
  EXPECT_THROW((void)parse_flag_double(""), InvalidArgument);
  EXPECT_THROW((void)parse_flag_double("12.5ms"), InvalidArgument);
  EXPECT_THROW((void)parse_flag_double(" 1.0"), InvalidArgument);
  EXPECT_THROW((void)parse_flag_double("budget"), InvalidArgument);
}

TEST(ParseFlagDouble, RejectsNonFinite) {
  EXPECT_THROW((void)parse_flag_double("inf"), InvalidArgument);
  EXPECT_THROW((void)parse_flag_double("nan"), InvalidArgument);
  EXPECT_THROW((void)parse_flag_double("1e400"), InvalidArgument);
}

TEST(ParseFlagDouble, MessageNamesTheOffendingText) {
  try {
    (void)parse_flag_double("12.5ms");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("12.5ms"), std::string::npos);
  }
}

}  // namespace
