#include "sched/bounds.hpp"

#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "testbed/wrf_experiment.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::budget_levels;
using medcc::sched::cost_bounds;
using medcc::sched::fastest_schedule;
using medcc::sched::Instance;
using medcc::sched::least_cost_schedule;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(Bounds, Example6LeastCostMatchesPaper) {
  const auto inst = example_instance();
  const auto s = least_cost_schedule(inst);
  // {w1,w2,w5} -> VT2 (index 1), {w3,w4,w6} -> VT1 (index 0).
  EXPECT_EQ(s.type_of[1], 1u);
  EXPECT_EQ(s.type_of[2], 1u);
  EXPECT_EQ(s.type_of[3], 0u);
  EXPECT_EQ(s.type_of[4], 0u);
  EXPECT_EQ(s.type_of[5], 1u);
  EXPECT_EQ(s.type_of[6], 0u);
  EXPECT_DOUBLE_EQ(medcc::sched::total_cost(inst, s), 48.0);
  const auto eval = medcc::sched::evaluate(inst, s);
  EXPECT_NEAR(eval.med, 16.77, 0.005);  // "total delay of 16.77 hours"
}

TEST(Bounds, Example6FastestMatchesPaper) {
  const auto inst = example_instance();
  const auto s = fastest_schedule(inst);
  for (std::size_t i = 1; i <= 6; ++i) EXPECT_EQ(s.type_of[i], 2u);
  EXPECT_DOUBLE_EQ(medcc::sched::total_cost(inst, s), 64.0);
  const auto eval = medcc::sched::evaluate(inst, s);
  EXPECT_NEAR(eval.med, 5.43, 0.005);
}

TEST(Bounds, Example6CostBounds) {
  const auto bounds = cost_bounds(example_instance());
  EXPECT_DOUBLE_EQ(bounds.cmin, 48.0);
  EXPECT_DOUBLE_EQ(bounds.cmax, 64.0);
}

TEST(Bounds, WrfCostBoundsMatchPaper) {
  const auto inst = medcc::testbed::wrf_instance();
  const auto bounds = cost_bounds(inst);
  EXPECT_NEAR(bounds.cmin, 125.9, 1e-9);
  EXPECT_NEAR(bounds.cmax, 243.6, 1e-9);
}

TEST(Bounds, LeastCostTieBreaksTowardsFaster) {
  // Equal billed cost (0.5*2 = 1 vs 1*1 = 1), different speed: Alg. 1
  // line 2 picks the faster type.
  medcc::workflow::Workflow wf;
  (void)wf.add_module("m", 10.0);
  const medcc::cloud::VmCatalog forced(
      {{"slow", 5.0, 0.5}, {"fast", 10.0, 1.0}});
  const auto inst = medcc::sched::Instance::from_model(wf, forced);
  const auto s = least_cost_schedule(inst);
  EXPECT_EQ(s.type_of[0], 1u);
}

TEST(Bounds, FastestTieBreaksTowardsCheaper) {
  medcc::workflow::Workflow wf;
  (void)wf.add_module("m", 10.0);
  const medcc::cloud::VmCatalog cat(
      {{"exp", 10.0, 5.0}, {"cheap", 10.0, 1.0}});
  const auto inst = medcc::sched::Instance::from_model(wf, cat);
  const auto s = fastest_schedule(inst);
  EXPECT_EQ(s.type_of[0], 1u);
}

TEST(Bounds, BudgetLevelsSpanRange) {
  const medcc::sched::CostBounds bounds{48.0, 64.0};
  const auto budgets = budget_levels(bounds, 20);
  ASSERT_EQ(budgets.size(), 20u);
  EXPECT_NEAR(budgets.front(), 48.8, 1e-12);
  EXPECT_NEAR(budgets.back(), 64.0, 1e-12);
  for (std::size_t k = 1; k < budgets.size(); ++k)
    EXPECT_GT(budgets[k], budgets[k - 1]);
}

TEST(Bounds, BudgetLevelsDegenerateRange) {
  const medcc::sched::CostBounds bounds{10.0, 10.0};
  const auto budgets = budget_levels(bounds, 5);
  for (double b : budgets) EXPECT_DOUBLE_EQ(b, 10.0);
}

TEST(Bounds, CminNeverExceedsCmax) {
  medcc::util::Prng rng(123);
  for (int k = 0; k < 20; ++k) {
    auto sub = rng.fork(static_cast<std::uint64_t>(k));
    const auto inst =
        medcc::expr::make_instance({12, 30, 4}, sub);
    const auto bounds = cost_bounds(inst);
    EXPECT_LE(bounds.cmin, bounds.cmax + 1e-9);
  }
}

}  // namespace
