// Tests for the shared-bandwidth contention model and VM failure
// injection -- the simulator features beyond the paper's fixed-time
// transfer model.
#include <gtest/gtest.h>

#include "sim/bandwidth.hpp"
#include "sim/executor.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;
using medcc::sim::SharedBandwidth;
using medcc::sim::SimEngine;

// ---------------------------------------------------------------------
// SharedBandwidth unit behaviour.
// ---------------------------------------------------------------------

TEST(SharedBandwidth, SingleTransferFullRate) {
  SimEngine engine;
  SharedBandwidth bw(engine, 10.0);
  double done_at = -1.0;
  bw.start_transfer(50.0, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(SharedBandwidth, TwoConcurrentTransfersShareEqually) {
  SimEngine engine;
  SharedBandwidth bw(engine, 10.0);
  double a = -1.0, b = -1.0;
  bw.start_transfer(50.0, [&] { a = engine.now(); });
  bw.start_transfer(50.0, [&] { b = engine.now(); });
  engine.run();
  // Both proceed at 5 units/s: each 50-unit transfer takes 10 s.
  EXPECT_DOUBLE_EQ(a, 10.0);
  EXPECT_DOUBLE_EQ(b, 10.0);
}

TEST(SharedBandwidth, LateArrivalSlowsTheFirst) {
  SimEngine engine;
  SharedBandwidth bw(engine, 10.0);
  double a = -1.0, b = -1.0;
  bw.start_transfer(50.0, [&] { a = engine.now(); });
  engine.schedule_at(2.0, [&] {
    bw.start_transfer(15.0, [&] { b = engine.now(); });
  });
  engine.run();
  // First: 20 units by t=2 at full rate; then both at 5/s. Second needs
  // 3 s (done t=5); first has 30 left at t=2, 15 by t=5, then full rate:
  // 1.5 s more -> t=6.5.
  EXPECT_NEAR(b, 5.0, 1e-9);
  EXPECT_NEAR(a, 6.5, 1e-9);
}

TEST(SharedBandwidth, ZeroDataCompletesImmediately) {
  SimEngine engine;
  SharedBandwidth bw(engine, 1.0);
  double done_at = -1.0;
  bw.start_transfer(0.0, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(SharedBandwidth, Validation) {
  SimEngine engine;
  EXPECT_THROW(SharedBandwidth(engine, 0.0), medcc::InvalidArgument);
  SharedBandwidth bw(engine, 1.0);
  EXPECT_THROW(bw.start_transfer(-1.0, [] {}), medcc::InvalidArgument);
  EXPECT_THROW(bw.start_transfer(1.0, nullptr), medcc::LogicError);
}

// ---------------------------------------------------------------------
// Executor integration: contention.
// ---------------------------------------------------------------------

TEST(ExecutorContention, ParallelTransfersSerializeUnderSharedStorage) {
  // Fan-out of 3 one-unit edges from the entry: with aggregate bandwidth 1
  // the three transfers share and all finish at t=3; with the fixed
  // per-edge model (bandwidth 1 per edge) they finish at t=1.
  medcc::workflow::Workflow wf;
  const auto entry = wf.add_fixed_module("entry", 0.0);
  std::vector<medcc::workflow::NodeId> mids;
  const auto exit = wf.add_fixed_module("exit", 0.0);
  for (int k = 0; k < 3; ++k) {
    const auto mid = wf.add_module("m" + std::to_string(k), 30.0);
    wf.add_dependency(entry, mid, 1.0);
    wf.add_dependency(mid, exit, 0.0);
    mids.push_back(mid);
  }
  medcc::cloud::NetworkModel per_edge;
  per_edge.bandwidth = 1.0;
  const auto inst = Instance::from_model(
      wf, medcc::cloud::example_catalog(),
      medcc::cloud::BillingPolicy::per_unit_time(), per_edge);
  const auto fastest = medcc::sched::fastest_schedule(inst);

  const auto fixed = medcc::sim::execute(inst, fastest);
  medcc::sim::ExecutorOptions shared;
  shared.shared_storage_bandwidth = 1.0;
  const auto contended = medcc::sim::execute(inst, fastest, shared);
  // Fixed model: transfers overlap freely -> makespan 1 + 1 = 2.
  EXPECT_NEAR(fixed.makespan, 2.0, 1e-9);
  // Shared model: 3 units through a 1-unit pipe -> all inputs at t=3.
  EXPECT_NEAR(contended.makespan, 4.0, 1e-9);
}

TEST(ExecutorContention, NoTransfersMeansNoEffect) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  medcc::sim::ExecutorOptions shared;
  shared.shared_storage_bandwidth = 1e-3;  // tiny, but edges carry data...
  const auto report = medcc::sim::execute(inst, r.schedule, shared);
  // example6 edges carry 1.0 data units each; the schedule's makespan now
  // exceeds the analytic zero-transfer MED.
  EXPECT_GT(report.makespan, report.analytic_med);
}

// ---------------------------------------------------------------------
// Executor integration: failure injection.
// ---------------------------------------------------------------------

TEST(ExecutorFailures, ZeroMtbfDisablesInjection) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  const auto report = medcc::sim::execute(inst, r.schedule);
  EXPECT_EQ(report.vm_failures, 0u);
  EXPECT_NEAR(report.makespan, report.analytic_med, 1e-9);
}

TEST(ExecutorFailures, CrashesExtendMakespanAndBillFailedWork) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  medcc::sim::ExecutorOptions opts;
  opts.failures.mtbf = 2.0;  // module times are ~0.7-2.7h: frequent crashes
  opts.failures.seed = 11;
  opts.failures.max_retries_per_module = 200;
  const auto report = medcc::sim::execute(inst, r.schedule, opts);
  const auto clean = medcc::sim::execute(inst, r.schedule);
  EXPECT_GT(report.vm_failures, 0u);
  EXPECT_GT(report.makespan, clean.makespan);
  EXPECT_GT(report.billed_cost, clean.billed_cost);
  // Every module still completed exactly once.
  EXPECT_EQ(report.trace.count(medcc::sim::TraceKind::ModuleDone),
            inst.module_count());
  EXPECT_EQ(report.trace.count(medcc::sim::TraceKind::VmFailed),
            report.vm_failures);
}

TEST(ExecutorFailures, DeterministicGivenSeed) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  medcc::sim::ExecutorOptions opts;
  opts.failures.mtbf = 3.0;
  opts.failures.seed = 21;
  opts.failures.max_retries_per_module = 200;
  const auto a = medcc::sim::execute(inst, r.schedule, opts);
  const auto b = medcc::sim::execute(inst, r.schedule, opts);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.vm_failures, b.vm_failures);
}

TEST(ExecutorFailures, RetryCapThrows) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  medcc::sim::ExecutorOptions opts;
  opts.failures.mtbf = 0.01;  // essentially nothing ever completes
  opts.failures.max_retries_per_module = 3;
  EXPECT_THROW((void)medcc::sim::execute(inst, r.schedule, opts),
               medcc::Error);
}

TEST(ExecutorFailures, NegativeMtbfRejected) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto least = medcc::sched::least_cost_schedule(inst);
  medcc::sim::ExecutorOptions opts;
  opts.failures.mtbf = -1.0;
  EXPECT_THROW((void)medcc::sim::execute(inst, least, opts),
               medcc::InvalidArgument);
}

TEST(ExecutorFailures, WorksWithReuseLanes) {
  const auto inst = Instance::from_model(medcc::workflow::example6(),
                                         medcc::cloud::example_catalog());
  const auto r = medcc::sched::critical_greedy(inst, 60.0);
  medcc::sim::ExecutorOptions opts;
  opts.reuse_vms = true;
  opts.failures.mtbf = 2.0;
  opts.failures.seed = 31;
  opts.failures.max_retries_per_module = 200;
  const auto report = medcc::sim::execute(inst, r.schedule, opts);
  EXPECT_EQ(report.trace.count(medcc::sim::TraceKind::ModuleDone),
            inst.module_count());
  // Replacement VMs mean more usage records than lanes when crashes hit.
  if (report.vm_failures > 0) {
    EXPECT_GT(report.vms.size(),
              medcc::sched::plan_vm_reuse(inst, r.schedule).instances.size() -
                  1);
  }
}

}  // namespace
