// Coverage for small schedule helpers and remaining edge paths.
#include <gtest/gtest.h>

#include "multicloud/multicloud.hpp"
#include "sched/bounds.hpp"
#include "sched/schedule.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(ScheduleToString, ListsComputingModulesOnly) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto text = medcc::sched::to_string(inst, least);
  EXPECT_EQ(text,
            "w1->VT2 w2->VT2 w3->VT1 w4->VT1 w5->VT2 w6->VT1");
  EXPECT_EQ(text.find("w0"), std::string::npos);
  EXPECT_EQ(text.find("w7"), std::string::npos);
}

TEST(ScheduleDurations, MatchTimeMatrix) {
  const auto inst = example_instance();
  const auto fastest = medcc::sched::fastest_schedule(inst);
  const auto d = medcc::sched::durations(inst, fastest);
  ASSERT_EQ(d.size(), inst.module_count());
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_DOUBLE_EQ(d[i], inst.time(i, fastest.type_of[i]));
}

TEST(ScheduleEquality, DetectsDifferences) {
  const auto inst = example_instance();
  auto a = medcc::sched::least_cost_schedule(inst);
  auto b = a;
  EXPECT_EQ(a, b);
  b.type_of[1] = (b.type_of[1] + 1) % inst.type_count();
  EXPECT_FALSE(a == b);
}

TEST(MulticloudLink, OverrideUpdateReplacesPreviousOverride) {
  using namespace medcc::multicloud;
  Federation fed(
      {CloudSite{"A", medcc::cloud::example_catalog()},
       CloudSite{"B", medcc::cloud::example_catalog()}},
      InterCloudLink{});
  InterCloudLink first;
  first.cost_per_unit = 1.0;
  fed.set_link(0, 1, first);
  EXPECT_DOUBLE_EQ(fed.transfer_cost(0, 1, 10.0), 10.0);
  InterCloudLink second;
  second.cost_per_unit = 2.0;
  fed.set_link(0, 1, second);  // update, not append
  EXPECT_DOUBLE_EQ(fed.transfer_cost(0, 1, 10.0), 20.0);
}

TEST(EvaluateValidation, RejectsWrongArity) {
  const auto inst = example_instance();
  medcc::sched::Schedule bad;
  bad.type_of.assign(3, 0);  // wrong length
  EXPECT_THROW((void)medcc::sched::evaluate(inst, bad), medcc::LogicError);
  medcc::sched::Schedule out_of_range;
  out_of_range.type_of.assign(inst.module_count(), 99);
  EXPECT_THROW((void)medcc::sched::evaluate(inst, out_of_range),
               medcc::LogicError);
}

}  // namespace
