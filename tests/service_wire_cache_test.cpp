// WireCache: exact-byte keying, LRU eviction per shard, replacement,
// shared-ownership of served frames, and stats accounting.
#include "service/wire_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

using medcc::service::WireCache;

TEST(WireCache, FindReturnsExactInsertedFrame) {
  WireCache cache;
  EXPECT_EQ(cache.find("request-a"), nullptr);
  cache.insert("request-a", "frame-a");
  const auto hit = cache.find("request-a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "frame-a");
  // A single differing byte is a different request.
  EXPECT_EQ(cache.find("request-b"), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(WireCache, InsertReplacesExistingEntry) {
  WireCache cache;
  cache.insert("key", "old");
  cache.insert("key", "new");
  const auto hit = cache.find("key");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(WireCache, ServedFrameSurvivesEviction) {
  WireCache::Config config;
  config.capacity = 1;
  config.shards = 1;
  WireCache cache(config);

  cache.insert("first", "frame-1");
  const auto held = cache.find("first");
  ASSERT_NE(held, nullptr);

  // Evict "first" by inserting into the full single-entry shard. The
  // shared_ptr handed out above must keep the bytes alive (the server
  // may still be splicing them into an outbuf).
  cache.insert("second", "frame-2");
  EXPECT_EQ(cache.find("first"), nullptr);
  EXPECT_EQ(*held, "frame-1");
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(WireCache, LruPrefersRecentlyFoundEntries) {
  WireCache::Config config;
  config.capacity = 2;
  config.shards = 1;
  WireCache cache(config);

  cache.insert("a", "fa");
  cache.insert("b", "fb");
  // Touch "a" so "b" is the least recently used.
  ASSERT_NE(cache.find("a"), nullptr);
  cache.insert("c", "fc");
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
}

TEST(WireCache, TtlExpiresAndRestamps) {
  std::int64_t now = 0;
  WireCache::Config config;
  config.capacity = 8;
  config.shards = 1;
  config.ttl_s = 10;
  config.clock = [&now] { return now; };
  WireCache cache(config);

  cache.insert("key", "frame");
  now = 9;
  EXPECT_NE(cache.find("key"), nullptr);
  now = 10;  // aged out: fast path must not outlive the result cache
  EXPECT_EQ(cache.find("key"), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.size, 0u);

  // Re-inserting restarts the clock.
  now = 20;
  cache.insert("key", "frame");
  now = 29;
  EXPECT_NE(cache.find("key"), nullptr);
}

TEST(WireCache, ClearEmptiesEveryShard) {
  WireCache cache;
  for (int i = 0; i < 32; ++i)
    cache.insert("key-" + std::to_string(i), "frame");
  EXPECT_EQ(cache.stats().size, 32u);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.find("key-0"), nullptr);
}

TEST(WireCache, CapacityFloorsAtOneAndBoundsSize) {
  WireCache::Config config;
  config.capacity = 0;  // floored to 1
  WireCache floored(config);
  EXPECT_EQ(floored.capacity(), 1u);

  WireCache::Config small;
  small.capacity = 8;
  small.shards = 4;
  WireCache cache(small);
  for (int i = 0; i < 100; ++i)
    cache.insert("key-" + std::to_string(i), "frame");
  // Per-shard LRU: total occupancy never exceeds ceil(capacity/shards)
  // per shard, i.e. capacity overall.
  EXPECT_LE(cache.stats().size, 8u);
}

TEST(WireCache, ConcurrentMixedTrafficIsSafe) {
  WireCache::Config config;
  config.capacity = 64;
  WireCache cache(config);
  constexpr int kThreads = 4;
  constexpr int kIterations = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::string key = "key-" + std::to_string((t * 7 + i) % 96);
        if (i % 3 == 0) {
          cache.insert(key, "frame-" + key);
        } else if (const auto hit = cache.find(key)) {
          EXPECT_EQ(*hit, "frame-" + key);
        }
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.stats().size, 64u);
}

}  // namespace
