#include "workflow/dax.hpp"

#include <gtest/gtest.h>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"

namespace {

using medcc::workflow::DaxOptions;
using medcc::workflow::workflow_from_dax;

// A miniature Montage-flavoured DAX (Pegasus 3.x syntax).
const char* kSampleDax = R"(<?xml version="1.0" encoding="UTF-8"?>
<!-- generated for medcc tests -->
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1" name="mini">
  <job id="ID00000" namespace="montage" name="mProjectPP" runtime="13.59">
    <uses file="region.hdr" link="input" size="304"/>
    <uses file="p1.fits" link="output" size="4000000"/>
  </job>
  <job id="ID00001" name="mProjectPP" runtime="11.20">
    <uses file="region.hdr" link="input" size="304"/>
    <uses file="p2.fits" link="output" size="2000000"/>
  </job>
  <job id="ID00002" name="mDiffFit" runtime="5.05">
    <uses file="p1.fits" link="input" size="4000000"/>
    <uses file="p2.fits" link="input" size="2000000"/>
    <uses file="d12.fits" link="output" size="1000000"/>
  </job>
  <job id="ID00003" name="mConcatFit" runtime="62.00">
    <uses file="d12.fits" link="input" size="1000000"/>
  </job>
  <child ref="ID00002">
    <parent ref="ID00000"/>
    <parent ref="ID00001"/>
  </child>
  <child ref="ID00003">
    <parent ref="ID00002"/>
  </child>
</adag>
)";

TEST(Dax, ParsesJobsEdgesAndRuntimes) {
  const auto wf = workflow_from_dax(kSampleDax);
  // 4 jobs + staging endpoints (two sources: ID00000, ID00001).
  EXPECT_EQ(wf.computing_module_count(), 4u);
  EXPECT_EQ(wf.module_count(), 6u);
  EXPECT_TRUE(wf.validate().ok());
  // Workload = runtime * reference_power (default 1).
  EXPECT_DOUBLE_EQ(wf.module(0).workload, 13.59);
  EXPECT_DOUBLE_EQ(wf.module(3).workload, 62.00);
  EXPECT_EQ(wf.module(0).name, "mProjectPP_ID00000");
}

TEST(Dax, EdgeDataFromFileOverlap) {
  const auto wf = workflow_from_dax(kSampleDax);
  // ID00000 -> ID00002 carries p1.fits: 4 MB at the default 1e6 scale.
  bool found = false;
  for (std::size_t e = 0; e < wf.dependency_count(); ++e) {
    const auto& edge = wf.graph().edge(e);
    if (wf.module(edge.src).name == "mProjectPP_ID00000" &&
        wf.module(edge.dst).name == "mDiffFit_ID00002") {
      EXPECT_DOUBLE_EQ(wf.data_size(e), 4.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dax, ReferencePowerScalesWorkloads) {
  DaxOptions opts;
  opts.reference_power = 2.93;  // the testbed's VT2 CPU
  const auto wf = workflow_from_dax(kSampleDax, opts);
  EXPECT_NEAR(wf.module(0).workload, 13.59 * 2.93, 1e-12);
}

TEST(Dax, NoStagingWhenAlreadySingleEnded) {
  const char* chain = R"(<adag>
    <job id="A" runtime="1"/>
    <job id="B" runtime="2"/>
    <child ref="B"><parent ref="A"/></child>
  </adag>)";
  const auto wf = workflow_from_dax(chain);
  EXPECT_EQ(wf.module_count(), 2u);  // no endpoints added
  EXPECT_EQ(wf.module(0).name, "A");  // name falls back to the id
}

TEST(Dax, SchedulableEndToEnd) {
  const auto wf = workflow_from_dax(kSampleDax);
  const auto inst = medcc::sched::Instance::from_model(
      wf, medcc::cloud::example_catalog());
  const auto bounds = medcc::sched::cost_bounds(inst);
  const auto r = medcc::sched::critical_greedy(
      inst, 0.5 * (bounds.cmin + bounds.cmax));
  EXPECT_GT(r.eval.med, 0.0);
}

TEST(Dax, ParseErrors) {
  EXPECT_THROW((void)workflow_from_dax("<adag></adag>"),
               medcc::InvalidArgument);  // no jobs
  EXPECT_THROW((void)workflow_from_dax("<adag><job runtime='1'/></adag>"),
               medcc::InvalidArgument);  // job without id
  EXPECT_THROW((void)workflow_from_dax(
                   "<adag><job id='A' runtime='1'/>"
                   "<job id='A' runtime='2'/></adag>"),
               medcc::InvalidArgument);  // duplicate id
  EXPECT_THROW((void)workflow_from_dax(
                   "<adag><job id='A' runtime='1'/>"
                   "<child ref='Z'><parent ref='A'/></child></adag>"),
               medcc::InvalidArgument);  // unknown child
  EXPECT_THROW((void)workflow_from_dax(
                   "<adag><job id='A' runtime='1'/>"
                   "<parent ref='A'/></adag>"),
               medcc::InvalidArgument);  // parent outside child
  EXPECT_THROW((void)workflow_from_dax("<adag><job id='A' runtime='x'/>"
                                       "</adag>"),
               medcc::InvalidArgument);  // bad number
  EXPECT_THROW((void)workflow_from_dax("<adag><!-- unterminated"),
               medcc::InvalidArgument);
  EXPECT_THROW((void)workflow_from_dax("<adag><job id='A' runtime=1/></adag>"),
               medcc::InvalidArgument);  // unquoted attribute
}

TEST(Dax, SingleQuotesAndSelfClosingAccepted) {
  const auto wf = workflow_from_dax(
      "<adag><job id='solo' runtime='3.5'/></adag>");
  // Single job: staging endpoints are added (module_count == 1 branch).
  EXPECT_EQ(wf.computing_module_count(), 1u);
  EXPECT_DOUBLE_EQ(wf.module(0).workload, 3.5);
}

TEST(Dax, MissingFileThrows) {
  EXPECT_THROW((void)medcc::workflow::load_dax("/nonexistent.dax"),
               medcc::Error);
}

}  // namespace
