// util::File and util::atomic_write_file: RAII handles, whole-file
// round trips, and the temp + fsync + rename publication contract.
#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/error.hpp"

namespace medcc::util {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("medcc_atomic_file_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(AtomicFileTest, CreateWriteReadRoundTrip) {
  const fs::path path = dir_ / "data.bin";
  {
    File f = File::create(path);
    ASSERT_TRUE(f.is_open());
    f.write_all("hello ");
    f.write_all(std::string("\0world", 6));  // embedded NUL survives
    f.sync();
  }  // destructor closes
  EXPECT_TRUE(file_exists(path));
  EXPECT_EQ(read_file(path), std::string("hello \0world", 12));
}

TEST_F(AtomicFileTest, AppendExtendsExisting) {
  const fs::path path = dir_ / "log.bin";
  {
    File f = File::create(path);
    f.write_all("abc");
  }
  {
    File f = File::append(path);
    f.write_all("def");
    EXPECT_EQ(f.size(), 6u);
  }
  EXPECT_EQ(read_file(path), "abcdef");
}

TEST_F(AtomicFileTest, AppendCreatesWhenMissing) {
  const fs::path path = dir_ / "fresh.bin";
  {
    File f = File::append(path);
    f.write_all("x");
  }
  EXPECT_EQ(read_file(path), "x");
}

TEST_F(AtomicFileTest, TruncateCutsTail) {
  const fs::path path = dir_ / "cut.bin";
  File f = File::append(path);
  f.write_all("0123456789");
  f.truncate(4);
  EXPECT_EQ(f.size(), 4u);
  f.write_all("XY");  // appends behind the cut
  f.close();
  EXPECT_EQ(read_file(path), "0123XY");
}

TEST_F(AtomicFileTest, OpenReadReadAll) {
  const fs::path path = dir_ / "r.bin";
  { File::create(path).write_all("payload"); }
  const File f = File::open_read(path);
  EXPECT_EQ(f.read_all(), "payload");
}

TEST_F(AtomicFileTest, MoveTransfersOwnership) {
  const fs::path path = dir_ / "mv.bin";
  File a = File::create(path);
  a.write_all("1");
  File b = std::move(a);
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.is_open());
  b.write_all("2");
  b.close();
  EXPECT_EQ(read_file(path), "12");
}

TEST_F(AtomicFileTest, ErrorsThrowIoError) {
  EXPECT_THROW((void)File::open_read(dir_ / "absent"), IoError);
  EXPECT_THROW((void)read_file(dir_ / "absent"), IoError);
  EXPECT_THROW((void)File::create(dir_ / "no_such_subdir" / "f"), IoError);
  EXPECT_FALSE(file_exists(dir_ / "absent"));
}

TEST_F(AtomicFileTest, AtomicWriteCreatesAndReplaces) {
  const fs::path path = dir_ / "state.bin";
  atomic_write_file(path, "v1");
  EXPECT_EQ(read_file(path), "v1");
  atomic_write_file(path, "version-two");
  EXPECT_EQ(read_file(path), "version-two");
  // No temp residue after a successful publication.
  EXPECT_FALSE(file_exists(dir_ / "state.bin.tmp"));
}

TEST_F(AtomicFileTest, AtomicWriteSurvivesStaleTmp) {
  const fs::path path = dir_ / "state.bin";
  // A crash between write and rename leaves a stale .tmp; the next
  // publication must overwrite it and still land atomically.
  { File::create(dir_ / "state.bin.tmp").write_all("torn garbage"); }
  atomic_write_file(path, "good");
  EXPECT_EQ(read_file(path), "good");
}

TEST_F(AtomicFileTest, AtomicWriteFailureLeavesTargetUntouched) {
  const fs::path path = dir_ / "missing_dir" / "state.bin";
  EXPECT_THROW(atomic_write_file(path, "x"), IoError);
  EXPECT_FALSE(file_exists(path));
}

}  // namespace
}  // namespace medcc::util
