#include "sched/deadline.hpp"

#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::budget_for_deadline;
using medcc::sched::deadline_loss;
using medcc::sched::Instance;
using medcc::sched::min_cost_under_deadline_exact;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(DeadlineLoss, ImpossibleDeadlineThrows) {
  const auto inst = example_instance();
  // Fastest achievable MED is 5.43.
  EXPECT_THROW((void)deadline_loss(inst, 5.0), medcc::Infeasible);
}

TEST(DeadlineLoss, GenerousDeadlineReachesLeastCost) {
  const auto inst = example_instance();
  const auto r = deadline_loss(inst, 100.0);
  // With no binding deadline, everything downgrades to its cheapest type.
  EXPECT_DOUBLE_EQ(r.eval.cost, 48.0);
}

TEST(DeadlineLoss, TightDeadlineKeepsFastestSchedule) {
  const auto inst = example_instance();
  const auto r = deadline_loss(inst, 5.43 + 1e-6);
  EXPECT_NEAR(r.eval.med, 5.43, 0.005);
  // No downgrade is possible without violating: cost stays near Cmax...
  // (w1 may downgrade freely since it is off the critical path).
  EXPECT_LE(r.eval.cost, 64.0);
  EXPECT_GE(r.eval.cost, 60.0);
}

TEST(DeadlineLoss, MeetsIntermediateDeadlines) {
  const auto inst = example_instance();
  for (double deadline : {6.0, 6.77, 8.0, 10.0, 12.5, 16.77}) {
    const auto r = deadline_loss(inst, deadline);
    EXPECT_LE(r.eval.med, deadline + 1e-9) << "deadline " << deadline;
  }
}

TEST(DeadlineLoss, CostMonotoneInDeadline) {
  // A looser deadline can never force a more expensive schedule out of
  // this greedy (it only adds feasible downgrades).
  const auto inst = example_instance();
  double previous = std::numeric_limits<double>::infinity();
  for (double deadline : {5.5, 6.0, 7.0, 9.0, 12.0, 17.0}) {
    const auto r = deadline_loss(inst, deadline);
    EXPECT_LE(r.eval.cost, previous + 1e-9);
    previous = r.eval.cost;
  }
}

TEST(DeadlineExact, MatchesBruteForceIntuition) {
  const auto inst = example_instance();
  // At deadline 6.77, Table II says cost 56 suffices; the exact optimum
  // can be no more expensive.
  const auto r = min_cost_under_deadline_exact(inst, 6.77 + 1e-6);
  EXPECT_LE(r.eval.cost, 56.0 + 1e-9);
  EXPECT_LE(r.eval.med, 6.77 + 1e-6);
}

TEST(DeadlineExact, InfeasibleAndGuards) {
  const auto inst = example_instance();
  EXPECT_THROW((void)min_cost_under_deadline_exact(inst, 1.0),
               medcc::Infeasible);
  EXPECT_THROW((void)min_cost_under_deadline_exact(inst, 10.0, 3),
               medcc::Error);
}

class DeadlinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DeadlinePropertyTest, HeuristicSoundAndNearExactOnSmallInstances) {
  medcc::util::Prng rng(GetParam());
  const auto inst = medcc::expr::make_instance({7, 14, 3}, rng);
  const auto fastest = medcc::sched::evaluate(
      inst, medcc::sched::fastest_schedule(inst));
  const auto least = medcc::sched::evaluate(
      inst, medcc::sched::least_cost_schedule(inst));
  for (double frac : {0.1, 0.4, 0.8}) {
    const double deadline =
        fastest.med + frac * (least.med - fastest.med) + 1e-9;
    const auto heuristic = deadline_loss(inst, deadline);
    const auto exact = min_cost_under_deadline_exact(inst, deadline);
    // Soundness.
    EXPECT_LE(heuristic.eval.med, deadline + 1e-9);
    EXPECT_LE(exact.eval.med, deadline + 1e-9);
    // Exactness relation.
    EXPECT_LE(exact.eval.cost, heuristic.eval.cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlinePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(BudgetForDeadline, ReturnsAchievingBudget) {
  const auto inst = example_instance();
  // Deadline 6.77 requires the band-5 schedule: CG cost 56.
  const double budget = budget_for_deadline(inst, 6.77 + 1e-6);
  EXPECT_NEAR(budget, 56.0, 1e-9);
  // The returned budget indeed achieves the deadline via CG.
  const auto r = medcc::sched::critical_greedy(inst, budget);
  EXPECT_LE(r.eval.med, 6.77 + 1e-6);
}

TEST(BudgetForDeadline, LooseDeadlineCostsCmin) {
  const auto inst = example_instance();
  EXPECT_NEAR(budget_for_deadline(inst, 1000.0), 48.0, 1e-9);
}

TEST(BudgetForDeadline, ImpossibleDeadlineThrows) {
  const auto inst = example_instance();
  EXPECT_THROW((void)budget_for_deadline(inst, 5.0), medcc::Infeasible);
}

}  // namespace
