// Durable-cache warm start through the SchedulingService: restart the
// service on the same directory and the warmed cache must answer
// byte-identically to the live solves that produced it, tolerate a
// journal torn by SIGKILL, and skip (not misread) records from a newer
// build.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/vm_type.hpp"
#include "persist/record_file.hpp"
#include "persist/wire.hpp"
#include "sched/instance.hpp"
#include "service/persistence.hpp"
#include "util/atomic_file.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

namespace fs = std::filesystem;

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::sched::Instance;
using medcc::service::CacheEntry;
using medcc::service::CacheOutcome;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;
using medcc::workflow::Workflow;

VmCatalog catalog() {
  return VmCatalog({VmType{"small", 3.0, 1.0}, VmType{"medium", 15.0, 4.0},
                    VmType{"large", 30.0, 8.0}});
}

// The paper's Fig. 2 example (entry, w1..w6, exit).
std::shared_ptr<const Instance> example_instance() {
  return std::make_shared<const Instance>(
      Instance::from_model(medcc::workflow::example6(), catalog()));
}

// An asymmetric diamond and its module/catalog-permuted twin.
std::shared_ptr<const Instance> diamond(bool permuted) {
  Workflow wf;
  if (permuted) {
    const auto c = wf.add_module("c", 75.0);
    const auto exit = wf.add_fixed_module("exit", 1.0);
    const auto a = wf.add_module("a", 30.0);
    const auto entry = wf.add_fixed_module("entry", 1.0);
    const auto b = wf.add_module("b", 45.0);
    wf.add_dependency(c, exit, 6.0);
    wf.add_dependency(b, exit, 5.0);
    wf.add_dependency(entry, a, 2.0);
    wf.add_dependency(a, c, 4.0);
    wf.add_dependency(a, b, 3.0);
    return std::make_shared<const Instance>(Instance::from_model(
        std::move(wf), VmCatalog({VmType{"large", 30.0, 8.0},
                                  VmType{"small", 3.0, 1.0},
                                  VmType{"medium", 15.0, 4.0}})));
  }
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto a = wf.add_module("a", 30.0);
  const auto b = wf.add_module("b", 45.0);
  const auto c = wf.add_module("c", 75.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(entry, a, 2.0);
  wf.add_dependency(a, b, 3.0);
  wf.add_dependency(a, c, 4.0);
  wf.add_dependency(b, exit, 5.0);
  wf.add_dependency(c, exit, 6.0);
  return std::make_shared<const Instance>(
      Instance::from_model(std::move(wf), catalog()));
}

SchedulingRequest request_for(std::shared_ptr<const Instance> inst,
                              double budget, std::string solver = "cg") {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = budget;
  req.solver = std::move(solver);
  return req;
}

/// Serializes the full result (schedule, iterations, eval doubles, CPM
/// timing vectors) through the persistence codec, so equal strings mean
/// bit-for-bit identical responses.
std::string result_bytes(const SchedulingResponse& response) {
  CacheEntry entry;
  entry.result = response.result;
  return medcc::service::encode_cache_record(entry);
}

class ServicePersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("medcc_service_persist_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServiceConfig config() const {
    ServiceConfig c;
    c.threads = 1;
    c.cache_dir = dir_.string();
    c.snapshot_interval_s = 0.0;  // flushes only on demand / shutdown
    c.persist_fsync = false;      // keep the unit tests fast
    return c;
  }

  fs::path dir_;
};

TEST_F(ServicePersistTest, WarmStartServesByteIdenticalExactHits) {
  SchedulingResponse live_a;
  SchedulingResponse live_b;
  {
    SchedulingService service(config());
    ASSERT_TRUE(service.persistence_enabled());
    live_a = service.submit(request_for(example_instance(), 57.0)).get();
    live_b = service.submit(request_for(diamond(false), 50.0)).get();
    ASSERT_TRUE(live_a.ok()) << live_a.error;
    ASSERT_TRUE(live_b.ok()) << live_b.error;
    EXPECT_EQ(service.persist_stats().appends, 2u);
  }  // destructor shuts down and folds the journal into the snapshot

  SchedulingService warmed(config());
  const auto snap = warmed.metrics().snapshot();
  EXPECT_EQ(snap.persist_loaded_entries, 2u);
  EXPECT_EQ(snap.persist_load_errors, 0u);
  EXPECT_EQ(snap.persist_replay_truncations, 0u);

  const auto warm_a = warmed.submit(request_for(example_instance(), 57.0)).get();
  const auto warm_b = warmed.submit(request_for(diamond(false), 50.0)).get();
  ASSERT_TRUE(warm_a.ok());
  ASSERT_TRUE(warm_b.ok());
  EXPECT_EQ(warm_a.cache, CacheOutcome::hit_exact);
  EXPECT_EQ(warm_b.cache, CacheOutcome::hit_exact);
  EXPECT_EQ(result_bytes(warm_a), result_bytes(live_a));
  EXPECT_EQ(result_bytes(warm_b), result_bytes(live_b));
  EXPECT_EQ(warmed.metrics().snapshot().cache_misses, 0u);

  const auto text = warmed.metrics().dump_text();
  EXPECT_NE(text.find("persist_loaded_entries 2"), std::string::npos);
  EXPECT_NE(text.find("persist_load_seconds"), std::string::npos);
}

TEST_F(ServicePersistTest, IsomorphicHitSurvivesRestart) {
  SchedulingResponse solved;
  {
    SchedulingService service(config());
    solved = service.submit(request_for(diamond(false), 50.0)).get();
    ASSERT_TRUE(solved.ok());
  }
  SchedulingService warmed(config());
  const auto twin = warmed.submit(request_for(diamond(true), 50.0)).get();
  ASSERT_TRUE(twin.ok());
  // The persisted assignment + remappable flag drive the re-mapping.
  EXPECT_EQ(twin.cache, CacheOutcome::hit_isomorphic);
  EXPECT_DOUBLE_EQ(twin.result.eval.med, solved.result.eval.med);
  EXPECT_DOUBLE_EQ(twin.result.eval.cost, solved.result.eval.cost);
}

TEST_F(ServicePersistTest, ShutdownFoldsJournalIntoSnapshot) {
  {
    SchedulingService service(config());
    const auto miss = service.submit(request_for(example_instance(), 57.0)).get();
    const auto hit = service.submit(request_for(example_instance(), 57.0)).get();
    ASSERT_EQ(miss.cache, CacheOutcome::miss);
    ASSERT_EQ(hit.cache, CacheOutcome::hit_exact);
    service.shutdown();
  }
  const auto snapshot = medcc::persist::read_record_file(
      dir_ / medcc::persist::kSnapshotFileName, medcc::persist::kSnapshotMagic);
  const auto journal = medcc::persist::read_record_file(
      dir_ / medcc::persist::kJournalFileName, medcc::persist::kJournalMagic);
  ASSERT_EQ(snapshot.payloads.size(), 1u);
  EXPECT_FALSE(snapshot.truncated);
  EXPECT_TRUE(journal.payloads.empty());  // rotated into the snapshot
  EXPECT_FALSE(journal.truncated);

  const CacheEntry entry =
      medcc::service::decode_cache_record(snapshot.payloads.front());
  EXPECT_EQ(entry.solver, "cg");
  EXPECT_EQ(entry.hits, 1u);  // the exact hit above is in the metadata
}

TEST_F(ServicePersistTest, TornJournalTailToleratedAndCounted) {
  {
    SchedulingService service(config());
    ASSERT_TRUE(
        service.submit(request_for(example_instance(), 57.0)).get().ok());
  }
  // SIGKILL mid-append: a partial record (too short for even its own
  // header) sits at the journal tail.
  {
    medcc::util::File journal =
        medcc::util::File::append(dir_ / medcc::persist::kJournalFileName);
    journal.write_all(medcc::persist::frame_record("torn").substr(0, 5));
  }

  SchedulingService warmed(config());
  const auto snap = warmed.metrics().snapshot();
  EXPECT_EQ(snap.persist_replay_truncations, 1u);
  EXPECT_EQ(snap.persist_loaded_entries, 1u);
  EXPECT_NE(
      warmed.metrics().dump_text().find("persist_replay_truncations 1"),
      std::string::npos);

  // The snapshot survived the torn journal: still an exact hit.
  const auto warm = warmed.submit(request_for(example_instance(), 57.0)).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cache, CacheOutcome::hit_exact);
}

TEST_F(ServicePersistTest, FutureVersionedRecordSkippedAsLoadError) {
  {
    SchedulingService service(config());
    ASSERT_TRUE(
        service.submit(request_for(example_instance(), 57.0)).get().ok());
  }
  // Simulate a rollback: a record written by a newer build (version 99)
  // sits in the snapshot next to one this build understands.
  auto snapshot = medcc::persist::read_record_file(
      dir_ / medcc::persist::kSnapshotFileName, medcc::persist::kSnapshotMagic);
  ASSERT_EQ(snapshot.payloads.size(), 1u);
  medcc::persist::Writer future;
  future.u16(99);
  snapshot.payloads.push_back(future.take());
  medcc::persist::write_record_file(dir_ / medcc::persist::kSnapshotFileName,
                                    medcc::persist::kSnapshotMagic,
                                    snapshot.payloads);

  SchedulingService warmed(config());
  const auto snap = warmed.metrics().snapshot();
  EXPECT_EQ(snap.persist_loaded_entries, 1u);
  EXPECT_EQ(snap.persist_load_errors, 1u);
  const auto warm = warmed.submit(request_for(example_instance(), 57.0)).get();
  EXPECT_EQ(warm.cache, CacheOutcome::hit_exact);
}

TEST_F(ServicePersistTest, FlushPersistenceSnapshotsOnDemand) {
  SchedulingService service(config());
  ASSERT_TRUE(
      service.submit(request_for(example_instance(), 57.0)).get().ok());
  EXPECT_EQ(service.persist_stats().appends, 1u);
  service.flush_persistence();
  const auto stats = service.persist_stats();
  EXPECT_GE(stats.flushes, 1u);
  EXPECT_EQ(stats.snapshot_records, 1u);
  EXPECT_EQ(stats.journal_bytes, medcc::persist::kFileHeaderSize);
  EXPECT_GE(service.metrics().snapshot().persist_flushes, 1u);
}

TEST_F(ServicePersistTest, PersistenceDisabledWithoutDir) {
  ServiceConfig c;
  c.threads = 1;
  SchedulingService service(std::move(c));
  EXPECT_FALSE(service.persistence_enabled());
  EXPECT_EQ(service.persist_stats().appends, 0u);
  ASSERT_TRUE(
      service.submit(request_for(example_instance(), 57.0)).get().ok());
  EXPECT_EQ(service.metrics().snapshot().persist_journal_appends, 0u);
}

}  // namespace
