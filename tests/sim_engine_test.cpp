#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using medcc::sim::SimEngine;

TEST(SimEngine, StartsAtZeroAndIdle) {
  SimEngine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.idle());
  EXPECT_DOUBLE_EQ(engine.run(), 0.0);
}

TEST(SimEngine, EventsFireInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(engine.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngine, SimultaneousEventsFifo) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, NestedSchedulingAdvancesClock) {
  SimEngine engine;
  std::vector<double> times;
  engine.schedule_in(1.0, [&] {
    times.push_back(engine.now());
    engine.schedule_in(2.0, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(SimEngine, NegativeDelayRejected) {
  SimEngine engine;
  EXPECT_THROW(engine.schedule_in(-1.0, [] {}), medcc::InvalidArgument);
}

TEST(SimEngine, PastEventRejected) {
  SimEngine engine;
  engine.schedule_at(5.0, [&] {
    EXPECT_THROW(engine.schedule_at(4.0, [] {}), medcc::InvalidArgument);
  });
  engine.run();
}

TEST(SimEngine, NullHandlerRejected) {
  SimEngine engine;
  EXPECT_THROW(engine.schedule_at(1.0, nullptr), medcc::LogicError);
}

TEST(SimEngine, EventLimitGuards) {
  SimEngine engine;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { engine.schedule_in(1.0, loop); };
  engine.schedule_in(0.0, loop);
  EXPECT_THROW((void)engine.run(100), medcc::Error);
}

TEST(SimEngine, ProcessedCountTracked) {
  SimEngine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_in(1.0, [] {});
  engine.run();
  EXPECT_EQ(engine.events_processed(), 7u);
}

TEST(SimEngine, ZeroDelayEventsRunAtCurrentTime) {
  SimEngine engine;
  double seen = -1.0;
  engine.schedule_at(2.0, [&] {
    engine.schedule_in(0.0, [&] { seen = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 2.0);
}

}  // namespace
