#include "util/log.hpp"

#include <gtest/gtest.h>

namespace {

using medcc::util::LogLevel;

// The logger is process-global; each test restores the default threshold.
struct ThresholdGuard {
  LogLevel saved = medcc::util::log_threshold();
  ~ThresholdGuard() { medcc::util::set_log_threshold(saved); }
};

TEST(Log, DefaultThresholdIsWarn) {
  EXPECT_EQ(medcc::util::log_threshold(), LogLevel::Warn);
}

TEST(Log, ThresholdRoundTrips) {
  ThresholdGuard guard;
  for (auto level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                     LogLevel::Error, LogLevel::Off}) {
    medcc::util::set_log_threshold(level);
    EXPECT_EQ(medcc::util::log_threshold(), level);
  }
}

TEST(Log, EmissionRespectsThreshold) {
  ThresholdGuard guard;
  // Capture stderr around emission.
  medcc::util::set_log_threshold(LogLevel::Error);
  testing::internal::CaptureStderr();
  medcc::util::log_debug("hidden ", 1);
  medcc::util::log_info("hidden ", 2);
  medcc::util::log_warn("hidden ", 3);
  medcc::util::log_error("visible ", 4);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("[medcc:ERROR] visible 4"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  ThresholdGuard guard;
  medcc::util::set_log_threshold(LogLevel::Off);
  testing::internal::CaptureStderr();
  medcc::util::log_error("nope");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, ConcatenatesHeterogeneousArguments) {
  ThresholdGuard guard;
  medcc::util::set_log_threshold(LogLevel::Debug);
  testing::internal::CaptureStderr();
  medcc::util::log_debug("x=", 3, " y=", 2.5, " z=", "s");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("x=3 y=2.5 z=s"), std::string::npos);
}

}  // namespace
