#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using medcc::util::LogLevel;

// The logger is process-global; each test restores the default threshold.
struct ThresholdGuard {
  LogLevel saved = medcc::util::log_threshold();
  ~ThresholdGuard() { medcc::util::set_log_threshold(saved); }
};

TEST(Log, DefaultThresholdIsWarn) {
  EXPECT_EQ(medcc::util::log_threshold(), LogLevel::Warn);
}

TEST(Log, ThresholdRoundTrips) {
  ThresholdGuard guard;
  for (auto level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                     LogLevel::Error, LogLevel::Off}) {
    medcc::util::set_log_threshold(level);
    EXPECT_EQ(medcc::util::log_threshold(), level);
  }
}

TEST(Log, EmissionRespectsThreshold) {
  ThresholdGuard guard;
  // Capture stderr around emission (gtest redirects the fd, so the raw
  // write(2) emission path is captured too).
  medcc::util::set_log_threshold(LogLevel::Error);
  testing::internal::CaptureStderr();
  medcc::util::log_debug("hidden ", 1);
  medcc::util::log_info("hidden ", 2);
  medcc::util::log_warn("hidden ", 3);
  medcc::util::log_error("visible ", 4);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("level=ERROR msg=\"visible 4\""), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  ThresholdGuard guard;
  medcc::util::set_log_threshold(LogLevel::Off);
  testing::internal::CaptureStderr();
  medcc::util::log_error("nope");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, ConcatenatesHeterogeneousArguments) {
  ThresholdGuard guard;
  medcc::util::set_log_threshold(LogLevel::Debug);
  testing::internal::CaptureStderr();
  medcc::util::log_debug("x=", 3, " y=", 2.5, " z=", "s");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("msg=\"x=3 y=2.5 z=s\""), std::string::npos);
}

TEST(Log, QuotesAndEscapesTheMessage) {
  ThresholdGuard guard;
  medcc::util::set_log_threshold(LogLevel::Debug);
  testing::internal::CaptureStderr();
  medcc::util::log_debug("say \"hi\"", " back\\slash", "\nnewline");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(
      err.find("msg=\"say \\\"hi\\\" back\\\\slash\\nnewline\""),
      std::string::npos);
  // One escaped line: no raw newline before the terminator.
  EXPECT_EQ(err.find('\n'), err.size() - 1);
}

TEST(Log, TraceScopeStampsAndRestores) {
  ThresholdGuard guard;
  medcc::util::set_log_threshold(LogLevel::Debug);
  testing::internal::CaptureStderr();
  {
    medcc::util::LogTraceScope outer("aaaa");
    medcc::util::log_debug("outer");
    {
      medcc::util::LogTraceScope inner("bbbb");
      medcc::util::log_debug("inner");
    }
    medcc::util::log_debug("outer again");
  }
  medcc::util::log_debug("no trace");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("level=DEBUG trace=aaaa msg=\"outer\""),
            std::string::npos);
  EXPECT_NE(err.find("level=DEBUG trace=bbbb msg=\"inner\""),
            std::string::npos);
  EXPECT_NE(err.find("level=DEBUG trace=aaaa msg=\"outer again\""),
            std::string::npos);
  EXPECT_NE(err.find("level=DEBUG msg=\"no trace\""), std::string::npos);
}

// Regression for the documented-unsafe set_log_threshold and for
// mid-line interleaving: many threads log while another thread flips
// the threshold. Under TSan this is the data-race check; everywhere it
// also proves every emitted line arrived intact (single-write
// emission), never spliced with another thread's bytes.
TEST(Log, ConcurrentLoggingAndThresholdFlipsKeepLinesIntact) {
  ThresholdGuard guard;
  medcc::util::set_log_threshold(LogLevel::Debug);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const std::string tag(16, static_cast<char>('a' + t));
      medcc::util::LogTraceScope scope(tag);
      for (int i = 0; i < kLines; ++i)
        medcc::util::log_error("thread ", t, " line ", i, " ", tag);
    });
  }
  threads.emplace_back([] {
    for (int i = 0; i < 500; ++i)
      medcc::util::set_log_threshold(i % 2 == 0 ? LogLevel::Debug
                                                : LogLevel::Error);
  });
  for (auto& thread : threads) thread.join();
  medcc::util::set_log_threshold(LogLevel::Debug);
  const std::string err = testing::internal::GetCapturedStderr();

  // Every captured line must be exactly one well-formed record whose
  // trace tag matches the tag inside its own message.
  std::istringstream lines(err);
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    ASSERT_EQ(line.rfind("level=ERROR trace=", 0), 0u) << line;
    const std::string tag = line.substr(18, 16);
    ASSERT_EQ(tag.find_first_not_of(tag[0]), std::string::npos) << line;
    ASSERT_NE(line.find("msg=\""), std::string::npos) << line;
    ASSERT_NE(line.find(" " + tag + "\""), std::string::npos) << line;
    ++parsed;
  }
  // The threshold flipper makes the exact count nondeterministic, but
  // at least the lines sent while the threshold rested at Error got out.
  EXPECT_GT(parsed, 0);
  EXPECT_LE(parsed, kThreads * kLines);
}

}  // namespace
