#include "sched/gain_loss.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/verify.hpp"
#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::gain;
using medcc::sched::gain3;
using medcc::sched::GainLossVariant;
using medcc::sched::Instance;
using medcc::sched::loss;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

/// Asserts the result passes the analysis invariants under `budget`.
void expect_verified(const Instance& inst, const medcc::sched::Result& r,
                     double budget) {
  medcc::analysis::VerifyOptions vopts;
  vopts.budget = budget;
  const auto diag =
      medcc::analysis::verify_schedule(inst, r.schedule, r.eval, vopts);
  EXPECT_TRUE(diag.ok()) << diag.to_string();
}

TEST(Gain, InfeasibleBudgetThrows) {
  const auto inst = example_instance();
  EXPECT_THROW((void)gain3(inst, 40.0), medcc::Infeasible);
}

TEST(Gain, MinimumBudgetIsLeastCost) {
  const auto inst = example_instance();
  const auto r = gain3(inst, 48.0);
  EXPECT_EQ(r.schedule, medcc::sched::least_cost_schedule(inst));
}

TEST(Gain, UnlimitedBudgetReachesFastestTimes) {
  const auto inst = example_instance();
  // With ample budget every task upgrades to its fastest type, so GAIN
  // matches the fastest schedule's MED.
  const auto r = gain3(inst, 10'000.0);
  const auto fastest =
      medcc::sched::evaluate(inst, medcc::sched::fastest_schedule(inst));
  EXPECT_NEAR(r.eval.med, fastest.med, 1e-9);
}

TEST(Gain, GainWeightOrderingOnExample) {
  // From the least-cost schedule, GainWeights (dT/dC) on example6:
  //   w4 VT1->VT3: dT=6.0,   dC=1 -> 6.0   (largest)
  //   w3 VT1->VT3: dT=6.0,   dC=1 -> 6.0   (tie, lower dT? equal)
  //   w6 VT1->VT3: dT=4.731, dC=2 -> 2.37
  // GAIN3 must spend its first two upgrades on w3/w4.
  const auto inst = example_instance();
  const auto r = gain3(inst, 50.0);
  EXPECT_EQ(r.schedule.type_of[3], 2u);
  EXPECT_EQ(r.schedule.type_of[4], 2u);
  EXPECT_LE(r.eval.cost, 50.0);
  expect_verified(inst, r, 50.0);
}

TEST(Loss, StartsFastWhenBudgetAmple) {
  const auto inst = example_instance();
  const auto r = loss(inst, 64.0);
  EXPECT_EQ(r.schedule, medcc::sched::fastest_schedule(inst));
  EXPECT_EQ(r.iterations, 0u);
}

TEST(Loss, InfeasibleBudgetThrows) {
  const auto inst = example_instance();
  EXPECT_THROW((void)loss(inst, 47.0), medcc::Infeasible);
}

TEST(Loss, TightBudgetDowngradesWithinBudget) {
  const auto inst = example_instance();
  for (double budget : {48.0, 52.0, 56.0, 60.0}) {
    for (auto variant : {GainLossVariant::V1, GainLossVariant::V2,
                         GainLossVariant::V3}) {
      const auto r = loss(inst, budget, variant);
      EXPECT_LE(r.eval.cost, budget + 1e-6)
          << "budget " << budget << " variant " << static_cast<int>(variant);
      expect_verified(inst, r, budget);
    }
  }
}

class GainLossPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<GainLossVariant, std::uint64_t>> {};

TEST_P(GainLossPropertyTest, GainInvariants) {
  const auto [variant, seed] = GetParam();
  medcc::util::Prng rng(seed);
  const auto inst = medcc::expr::make_instance({12, 28, 4}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  const auto least_eval = medcc::sched::evaluate(
      inst, medcc::sched::least_cost_schedule(inst));
  for (double budget : medcc::sched::budget_levels(bounds, 6)) {
    const auto r = gain(inst, budget, variant);
    EXPECT_LE(r.eval.cost, budget + 1e-6);
    // GAIN only ever applies task-time-improving upgrades, so the sum of
    // task times shrinks; but the *makespan* may not: only V2 (global
    // criterion) guarantees monotone improvement over the seed.
    if (variant == GainLossVariant::V2) {
      EXPECT_LE(r.eval.med, least_eval.med + 1e-9);
    }
  }
}

TEST_P(GainLossPropertyTest, LossInvariants) {
  const auto [variant, seed] = GetParam();
  medcc::util::Prng rng(seed ^ 0xABCDEF);
  const auto inst = medcc::expr::make_instance({12, 28, 4}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  for (double budget : medcc::sched::budget_levels(bounds, 6)) {
    const auto r = loss(inst, budget, variant);
    EXPECT_LE(r.eval.cost, budget + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GainLossPropertyTest,
    ::testing::Combine(::testing::Values(GainLossVariant::V1,
                                         GainLossVariant::V2,
                                         GainLossVariant::V3),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4)));

TEST(GainVsLoss, BothFeasibleAtEveryLevel) {
  medcc::util::Prng rng(55);
  const auto inst = medcc::expr::make_instance({18, 60, 5}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  for (double budget : medcc::sched::budget_levels(bounds, 10)) {
    EXPECT_LE(gain3(inst, budget).eval.cost, budget + 1e-6);
    EXPECT_LE(loss(inst, budget).eval.cost, budget + 1e-6);
  }
}

TEST(Gain, NoFreeUpgradesExistFromLeastCost) {
  // By construction of the least-cost seed (per-module minimal cost, ties
  // to the faster type), every time-improving move from it strictly costs
  // money -- so GAIN at budget Cmin can never move.
  medcc::util::Prng rng(77);
  const auto inst = medcc::expr::make_instance({10, 20, 5}, rng);
  const auto least = medcc::sched::least_cost_schedule(inst);
  for (auto i : inst.workflow().computing_modules()) {
    for (std::size_t j = 0; j < inst.type_count(); ++j) {
      const double dt = inst.time(i, least.type_of[i]) - inst.time(i, j);
      const double dc = inst.cost(i, j) - inst.cost(i, least.type_of[i]);
      if (dt > 0.0) {
        EXPECT_GT(dc, 0.0);
      }
    }
  }
  const auto r = gain3(inst, medcc::sched::cost_bounds(inst).cmin);
  EXPECT_EQ(r.iterations, 0u);
}

}  // namespace
