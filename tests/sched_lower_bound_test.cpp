#include "sched/lower_bound.hpp"

#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/exhaustive.hpp"
#include "testbed/wrf_experiment.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;
using medcc::sched::med_lower_bound;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(LowerBound, InfeasibleBelowCmin) {
  EXPECT_THROW((void)med_lower_bound(example_instance(), 40.0),
               medcc::Infeasible);
}

TEST(LowerBound, NeverExceedsTheOptimumOnTheExample) {
  const auto inst = example_instance();
  for (double budget : {48.0, 52.0, 57.0, 60.0, 64.0}) {
    const double lb = med_lower_bound(inst, budget);
    const double opt =
        medcc::sched::exhaustive_optimal(inst, budget).eval.med;
    EXPECT_LE(lb, opt + 1e-9) << "budget " << budget;
    EXPECT_GT(lb, 0.0);
  }
}

TEST(LowerBound, TightAtTheExtremes) {
  const auto inst = example_instance();
  const auto bounds = medcc::sched::cost_bounds(inst);
  // At Cmax the optimum is the fastest MED and the fastest critical path
  // certifies it exactly.
  EXPECT_NEAR(med_lower_bound(inst, bounds.cmax), 5.43, 0.005);
}

TEST(LowerBound, CertifiesCgOptimalityAtB57) {
  // CG is optimal at B=57 (MED 6.77); the path bound proves at least
  // part of that gap-freeness without enumerating anything.
  const auto inst = example_instance();
  const double lb = med_lower_bound(inst, 57.0);
  const double cg = medcc::sched::critical_greedy(inst, 57.0).eval.med;
  EXPECT_LE(lb, cg + 1e-9);
  EXPECT_GT(lb, 0.5 * cg);  // a non-trivial bound, not zero
}

TEST(LowerBound, MonotoneNonIncreasingInBudget) {
  const auto inst = example_instance();
  double previous = std::numeric_limits<double>::infinity();
  for (double budget = 48.0; budget <= 64.0; budget += 2.0) {
    const double lb = med_lower_bound(inst, budget);
    EXPECT_LE(lb, previous + 1e-9);
    previous = lb;
  }
}

TEST(LowerBound, WrfInstanceWithRateScale) {
  const auto inst = medcc::testbed::wrf_instance();
  medcc::sched::LowerBoundOptions opts;
  opts.weight_scale = 10.0;  // rates {0.1, 0.4, 0.8}
  const double lb = med_lower_bound(inst, 155.0, opts);
  const double cg = medcc::sched::critical_greedy(inst, 155.0).eval.med;
  EXPECT_LE(lb, cg + 1e-9);
  EXPECT_GT(lb, 100.0);  // the w5/w6 chain keeps the bound meaningful
}

class LowerBoundPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LowerBoundPropertyTest, ValidAgainstExhaustiveOnSmallInstances) {
  medcc::util::Prng rng(GetParam());
  const auto inst = medcc::expr::make_instance({7, 14, 3}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  for (double frac : {0.0, 0.4, 1.0}) {
    const double budget =
        bounds.cmin + frac * (bounds.cmax - bounds.cmin);
    const double lb = med_lower_bound(inst, budget);
    const double opt =
        medcc::sched::exhaustive_optimal(inst, budget).eval.med;
    EXPECT_LE(lb, opt + 1e-9) << "budget " << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
