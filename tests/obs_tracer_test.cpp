// Unit behaviour of the obs:: tracing layer: id minting and hex
// round-trips, deterministic id-derived head sampling, the span-buffer
// open/record/finish lifecycle with its slow-outlier gate, bounded
// ring retention, the allocation-free single-span path, remote span
// adoption, and aggregate snapshots. The final tests hammer one Tracer
// (and one shared Trace) from many threads and double as the TSan
// stress for the subsystem.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace {

using medcc::obs::Stage;
using medcc::obs::Trace;
using medcc::obs::TraceContext;
using medcc::obs::TraceId;
using medcc::obs::TraceRecord;
using medcc::obs::Tracer;
using medcc::obs::TracerSnapshot;

Tracer::Config sampled_config() {
  Tracer::Config config;
  config.sample_every = 1;  // every mint head-sampled
  config.slow_ms = 0.0;     // slow gate off
  return config;
}

Tracer::Config slow_gate_config(double slow_ms = 25.0) {
  Tracer::Config config;
  config.sample_every = 0;  // head sampling off
  config.slow_ms = slow_ms;
  return config;
}

TEST(TraceId, HexRoundTripAndJunkRejection) {
  const TraceId id{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string hex = id.to_hex();
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(TraceId::from_hex(hex), id);
  // Uppercase digits parse too.
  EXPECT_EQ(TraceId::from_hex("0123456789ABCDEFFEDCBA9876543210"), id);

  EXPECT_FALSE(TraceId::from_hex("").valid());
  EXPECT_FALSE(TraceId::from_hex("0123").valid());                // short
  EXPECT_FALSE(TraceId::from_hex(hex + "0").valid());             // long
  std::string junk = hex;
  junk[7] = 'g';
  EXPECT_FALSE(TraceId::from_hex(junk).valid());                  // non-hex
  EXPECT_FALSE(TraceId{}.valid());
  EXPECT_EQ(TraceId{}.to_hex(), std::string(32, '0'));
}

TEST(Tracer, MintsUniqueValidIds) {
  Tracer tracer(sampled_config());
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const TraceContext context = tracer.new_context();
    ASSERT_TRUE(context.valid());
    EXPECT_TRUE(context.sampled);  // sample_every == 1
    seen.insert(context.id.to_hex());
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(tracer.snapshot().started, 1000u);
  EXPECT_EQ(tracer.snapshot().sampled, 1000u);
}

TEST(Tracer, TwoTracersMintDisjointIds) {
  // Two edge tracers in one process (e.g. a client and a server in the
  // same test binary) must not collide even when minting on one thread.
  Tracer a(sampled_config());
  Tracer b(sampled_config());
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(a.new_context().id.to_hex());
    seen.insert(b.new_context().id.to_hex());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Tracer, SamplingIsDerivedFromTheIdItself) {
  Tracer::Config config;
  config.sample_every = 4;
  config.slow_ms = 0.0;
  Tracer tracer(config);
  std::uint64_t sampled = 0;
  for (int i = 0; i < 4000; ++i) {
    const TraceContext context = tracer.new_context();
    // The verdict is a pure function of the id, so every hop that sees
    // the id agrees with the minting edge.
    EXPECT_EQ(context.sampled, context.id.lo % 4 == 0);
    if (context.sampled) ++sampled;
  }
  // Unbiased 1-in-4 over uniform ids: expect roughly 1000, and the
  // counter must agree exactly with the per-context verdicts.
  EXPECT_GT(sampled, 700u);
  EXPECT_LT(sampled, 1300u);
  EXPECT_EQ(tracer.snapshot().sampled, sampled);
}

TEST(Tracer, NonPowerOfTwoSamplingStillWorks) {
  Tracer::Config config;
  config.sample_every = 3;  // exercises the modulo fallback path
  Tracer tracer(config);
  for (int i = 0; i < 300; ++i) {
    const TraceContext context = tracer.new_context();
    EXPECT_EQ(context.sampled, context.id.lo % 3 == 0);
  }
}

TEST(Tracer, DisabledTracerMintsNothing) {
  Tracer::Config config;
  config.enabled = false;
  Tracer tracer(config);
  const TraceContext context = tracer.new_context();
  EXPECT_FALSE(context.valid());
  EXPECT_EQ(tracer.open(TraceContext{TraceId{1, 2}, true}), nullptr);
  tracer.note_stage(Stage::solve, 1000);
  const TracerSnapshot snap = tracer.snapshot();
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.started, 0u);
  EXPECT_EQ(snap.stages[static_cast<std::size_t>(Stage::solve)].count, 0u);
}

TEST(Tracer, OpenGatesOnSamplingAndSlowGate) {
  Tracer no_capture(slow_gate_config(0.0));  // neither gate armed
  EXPECT_EQ(no_capture.open(TraceContext{TraceId{1, 1}, false}), nullptr);
  EXPECT_EQ(no_capture.open(TraceContext{}), nullptr);  // invalid context

  Tracer slow_armed(slow_gate_config(25.0));
  EXPECT_NE(slow_armed.open(TraceContext{TraceId{1, 1}, false}), nullptr);

  Tracer sampling(sampled_config());
  EXPECT_NE(sampling.open(TraceContext{TraceId{1, 1}, true}), nullptr);
}

TEST(Tracer, SampledTraceIsRetainedWithItsSpans) {
  Tracer tracer(sampled_config());
  const TraceContext context = tracer.new_context();
  const std::shared_ptr<Trace> trace = tracer.open(context);
  ASSERT_NE(trace, nullptr);
  const std::int64_t t0 = trace->started_ns();
  tracer.record(trace, Stage::decode, t0, t0 + 1000);
  tracer.record(trace, Stage::queue_wait, t0 + 1000, t0 + 5000);
  tracer.record(trace, Stage::request, t0, t0 + 9000);
  tracer.finish(trace, "node-a");

  const std::vector<TraceRecord> recent = tracer.recent(4);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].id, context.id);
  EXPECT_EQ(recent[0].origin, "node-a");
  EXPECT_FALSE(recent[0].slow);  // retained by sampling, not the gate
  EXPECT_EQ(recent[0].total_ns, 9000);
  ASSERT_EQ(recent[0].spans.size(), 3u);
  EXPECT_EQ(recent[0].spans[0].stage, Stage::decode);
  EXPECT_EQ(recent[0].spans[1].duration_ns(), 4000);
  EXPECT_EQ(tracer.snapshot().completed, 1u);
}

TEST(Tracer, SlowGateKeepsUnsampledOutliersAndDropsFastOnes) {
  Tracer tracer(slow_gate_config(25.0));
  const TraceContext fast_context{TraceId{7, 1}, false};  // lo % N != 0 moot
  const std::shared_ptr<Trace> fast = tracer.open(fast_context);
  ASSERT_NE(fast, nullptr);  // slow candidate: gate armed
  tracer.record(fast, Stage::request, fast->started_ns(),
                fast->started_ns() + 1'000'000);  // 1 ms: under the gate
  tracer.finish(fast, "node-a");
  EXPECT_EQ(tracer.recent(8).size(), 0u);
  EXPECT_EQ(tracer.snapshot().dropped, 1u);

  const TraceContext slow_context{TraceId{7, 2}, false};
  const std::shared_ptr<Trace> slow = tracer.open(slow_context);
  ASSERT_NE(slow, nullptr);
  tracer.record(slow, Stage::request, slow->started_ns(),
                slow->started_ns() + 60'000'000);  // 60 ms: over the gate
  tracer.finish(slow, "node-a");
  const std::vector<TraceRecord> recent = tracer.recent(8);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].id, slow_context.id);
  EXPECT_TRUE(recent[0].slow);
}

TEST(Tracer, FinishWithNullTraceIsSafe) {
  Tracer tracer(sampled_config());
  tracer.record(nullptr, Stage::solve, 0, 500);  // aggregate-only
  tracer.finish(nullptr, "node-a");
  EXPECT_EQ(tracer.snapshot().stages[static_cast<std::size_t>(Stage::solve)]
                .count,
            1u);
  EXPECT_EQ(tracer.recent(4).size(), 0u);
}

TEST(Tracer, RingEvictsOldestBeyondCapacity) {
  Tracer::Config config = sampled_config();
  config.ring_capacity = 2;
  Tracer tracer(config);
  std::vector<TraceId> ids;
  for (int i = 0; i < 3; ++i) {
    const TraceContext context = tracer.new_context();
    ids.push_back(context.id);
    const std::shared_ptr<Trace> trace = tracer.open(context);
    ASSERT_NE(trace, nullptr);
    tracer.record(trace, Stage::request, trace->started_ns(),
                  trace->started_ns() + 100);
    tracer.finish(trace, "node-a");
  }
  const std::vector<TraceRecord> recent = tracer.recent(8);
  ASSERT_EQ(recent.size(), 2u);  // capacity bound
  EXPECT_EQ(recent[0].id, ids[2]);  // newest first
  EXPECT_EQ(recent[1].id, ids[1]);  // ids[0] evicted
}

TEST(Tracer, SpanBufferOverflowIsCountedNotGrown) {
  Tracer::Config config = sampled_config();
  config.max_spans = 2;
  Tracer tracer(config);
  const std::shared_ptr<Trace> trace =
      tracer.open(TraceContext{TraceId{3, 3}, true});
  ASSERT_NE(trace, nullptr);
  for (int i = 0; i < 5; ++i)
    trace->add(Stage::solve, i * 10, i * 10 + 5);
  EXPECT_EQ(trace->spans().size(), 2u);
  EXPECT_EQ(trace->overflow(), 3u);
}

TEST(Tracer, RecordSpanRetainsSampledAndSlowOnly) {
  Tracer::Config config;
  config.sample_every = 0;
  config.slow_ms = 25.0;
  Tracer tracer(config);

  // Fast and unsampled: aggregates only, nothing retained.
  tracer.record_span(TraceContext{TraceId{1, 1}, false}, Stage::wire_fastpath,
                     0, 1000, "node-a");
  EXPECT_EQ(tracer.recent(8).size(), 0u);
  EXPECT_EQ(tracer.snapshot()
                .stages[static_cast<std::size_t>(Stage::wire_fastpath)]
                .count,
            1u);

  // Sampled: retained as a one-span record.
  tracer.record_span(TraceContext{TraceId{1, 2}, true}, Stage::wire_fastpath,
                     0, 1000, "node-a");
  ASSERT_EQ(tracer.recent(8).size(), 1u);
  EXPECT_EQ(tracer.recent(8)[0].id, (TraceId{1, 2}));
  EXPECT_FALSE(tracer.recent(8)[0].slow);

  // Unsampled but over the slow gate: retained and marked slow.
  tracer.record_span(TraceContext{TraceId{1, 3}, false}, Stage::wire_fastpath,
                     0, 60'000'000, "node-a");
  ASSERT_EQ(tracer.recent(8).size(), 2u);
  EXPECT_EQ(tracer.recent(8)[0].id, (TraceId{1, 3}));
  EXPECT_TRUE(tracer.recent(8)[0].slow);

  // Invalid context: aggregates only.
  tracer.record_span(TraceContext{}, Stage::wire_fastpath, 0, 60'000'000,
                     "node-a");
  EXPECT_EQ(tracer.recent(8).size(), 2u);
}

TEST(Tracer, RecordRemoteAdoptsTheOriginalId) {
  Tracer tracer(sampled_config());
  const TraceContext remote{TraceId{0xabc, 0xdef}, true};
  tracer.record_remote(remote, Stage::repl_apply, 1000, 4000, "node-b");
  const std::vector<TraceRecord> recent = tracer.recent(4);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].id, remote.id);  // correlates across nodes
  EXPECT_EQ(recent[0].origin, "node-b");
  ASSERT_EQ(recent[0].spans.size(), 1u);
  EXPECT_EQ(recent[0].spans[0].stage, Stage::repl_apply);
  EXPECT_EQ(recent[0].total_ns, 3000);
}

TEST(Tracer, SlowestOrdersByTotalDuration) {
  Tracer tracer(sampled_config());
  const std::int64_t durations[] = {5000, 9000, 1000};
  std::vector<TraceId> ids;
  for (const std::int64_t d : durations) {
    const TraceContext context = tracer.new_context();
    ids.push_back(context.id);
    const std::shared_ptr<Trace> trace = tracer.open(context);
    ASSERT_NE(trace, nullptr);
    tracer.record(trace, Stage::request, trace->started_ns(),
                  trace->started_ns() + d);
    tracer.finish(trace, "node-a");
  }
  const std::vector<TraceRecord> slowest = tracer.slowest(2);
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].id, ids[1]);  // 9000
  EXPECT_EQ(slowest[1].id, ids[0]);  // 5000
}

// -- concurrency stress (TSan target) --------------------------------------

TEST(TracerStress, ConcurrentMintRecordFinishStaysConsistent) {
  Tracer::Config config = sampled_config();
  config.ring_capacity = 64;
  Tracer tracer(config);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        const TraceContext context = tracer.new_context();
        const std::shared_ptr<Trace> trace = tracer.open(context);
        ASSERT_NE(trace, nullptr);
        const std::int64_t t0 = trace->started_ns();
        tracer.record(trace, Stage::decode, t0, t0 + 10);
        tracer.record(trace, Stage::solve, t0 + 10, t0 + 90);
        tracer.record(trace, Stage::request, t0, t0 + 100);
        tracer.finish(trace, "stress");
        tracer.note_stage(Stage::queue_wait, 42);
        tracer.record_span(TraceContext{TraceId{1, 1}, false},
                           Stage::wire_fastpath, 0, 10, "stress");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const TracerSnapshot snap = tracer.snapshot();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(snap.started, kTotal);
  EXPECT_EQ(snap.sampled, kTotal);
  EXPECT_EQ(snap.completed, kTotal);  // every trace head-sampled
  EXPECT_EQ(snap.stages[static_cast<std::size_t>(Stage::decode)].count,
            kTotal);
  EXPECT_EQ(snap.stages[static_cast<std::size_t>(Stage::queue_wait)].count,
            kTotal);
  EXPECT_EQ(
      snap.stages[static_cast<std::size_t>(Stage::wire_fastpath)].count,
      kTotal);
  EXPECT_EQ(snap.stages[static_cast<std::size_t>(Stage::request)].total_ns,
            kTotal * 100);
  EXPECT_EQ(tracer.recent(256).size(), 64u);  // ring capacity
}

TEST(TracerStress, ManyThreadsAppendToOneSharedTrace) {
  Tracer::Config config = sampled_config();
  config.max_spans = 64;
  Tracer tracer(config);
  const std::shared_ptr<Trace> trace =
      tracer.open(TraceContext{TraceId{9, 9}, true});
  ASSERT_NE(trace, nullptr);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;  // 160 attempts into 64 slots
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kPerThread; ++i)
        trace->add(Stage::solve, i, i + 1);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(trace->spans().size(), 64u);
  EXPECT_EQ(trace->overflow(),
            static_cast<std::uint64_t>(kThreads) * kPerThread - 64);
  tracer.finish(trace, "stress");
  ASSERT_EQ(tracer.recent(2).size(), 1u);
  EXPECT_EQ(tracer.recent(2)[0].spans.size(), 64u);
}

}  // namespace
