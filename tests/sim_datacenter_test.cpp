#include "sim/datacenter.hpp"

#include <gtest/gtest.h>

namespace {

using medcc::sim::Datacenter;
using medcc::sim::DatacenterConfig;
using medcc::sim::SimEngine;
using medcc::sim::Trace;
using medcc::sim::TraceKind;
using medcc::sim::VmState;

TEST(Datacenter, UnlimitedBootsImmediatelyWithLatency) {
  SimEngine engine;
  Trace trace;
  DatacenterConfig config;
  config.vm_boot_time = 5.0;
  const auto catalog = medcc::cloud::example_catalog();
  Datacenter dc(engine, trace, config, catalog);
  bool ready = false;
  const auto vm = dc.request_vm(0, [&] { ready = true; });
  EXPECT_EQ(dc.state(vm), VmState::Booting);
  engine.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(dc.state(vm), VmState::Ready);
  EXPECT_DOUBLE_EQ(dc.ready_at(vm), 5.0);
  EXPECT_FALSE(dc.host_of(vm).has_value());  // unlimited: no host binding
}

TEST(Datacenter, BoundedPlacementFirstFit) {
  SimEngine engine;
  Trace trace;
  DatacenterConfig config;
  config.hosts = {{10.0}, {40.0}};
  const auto catalog = medcc::cloud::example_catalog();  // VP 3/15/30
  Datacenter dc(engine, trace, config, catalog);
  const auto small = dc.request_vm(0, [] {});   // VP 3 -> host 0
  const auto large = dc.request_vm(2, [] {});   // VP 30 -> host 1
  engine.run();
  EXPECT_EQ(dc.host_of(small).value(), 0u);
  EXPECT_EQ(dc.host_of(large).value(), 1u);
}

TEST(Datacenter, RequestsQueueWhenFull) {
  SimEngine engine;
  Trace trace;
  DatacenterConfig config;
  config.hosts = {{15.0}};
  config.vm_boot_time = 1.0;
  const auto catalog = medcc::cloud::example_catalog();
  Datacenter dc(engine, trace, config, catalog);
  bool second_ready = false;
  const auto first = dc.request_vm(1, [] {});  // VP 15 fills the host
  const auto second = dc.request_vm(1, [&] { second_ready = true; });
  engine.run();
  EXPECT_EQ(dc.state(first), VmState::Ready);
  EXPECT_EQ(dc.state(second), VmState::Requested);
  EXPECT_FALSE(second_ready);
  // Stopping the first frees capacity and boots the second.
  dc.stop_vm(first);
  engine.run();
  EXPECT_TRUE(second_ready);
  EXPECT_EQ(dc.state(second), VmState::Ready);
  EXPECT_DOUBLE_EQ(dc.ready_at(second), 2.0);  // stop at 1.0 + boot 1.0
}

TEST(Datacenter, StopRecordsTimeAndTrace) {
  SimEngine engine;
  Trace trace;
  const auto catalog = medcc::cloud::example_catalog();
  Datacenter dc(engine, trace, DatacenterConfig{}, catalog);
  const auto vm = dc.request_vm(0, [] {});
  engine.run();
  dc.stop_vm(vm);
  EXPECT_EQ(dc.state(vm), VmState::Stopped);
  EXPECT_EQ(trace.count(TraceKind::VmRequested), 1u);
  EXPECT_EQ(trace.count(TraceKind::VmBooted), 1u);
  EXPECT_EQ(trace.count(TraceKind::VmStopped), 1u);
}

TEST(Datacenter, StopRequiresReadyState) {
  SimEngine engine;
  Trace trace;
  const auto catalog = medcc::cloud::example_catalog();
  Datacenter dc(engine, trace, DatacenterConfig{}, catalog);
  const auto vm = dc.request_vm(0, [] {});
  // Still booting.
  EXPECT_THROW(dc.stop_vm(vm), medcc::LogicError);
  engine.run();
  dc.stop_vm(vm);
  EXPECT_THROW(dc.stop_vm(vm), medcc::LogicError);  // double stop
}

TEST(Datacenter, BadHostCapacityRejected) {
  SimEngine engine;
  Trace trace;
  DatacenterConfig config;
  config.hosts = {{0.0}};
  const auto catalog = medcc::cloud::example_catalog();
  EXPECT_THROW(Datacenter(engine, trace, config, catalog),
               medcc::InvalidArgument);
}

TEST(Datacenter, InvalidTypeRejected) {
  SimEngine engine;
  Trace trace;
  const auto catalog = medcc::cloud::example_catalog();
  Datacenter dc(engine, trace, DatacenterConfig{}, catalog);
  EXPECT_THROW((void)dc.request_vm(99, [] {}), medcc::LogicError);
}

TEST(Trace, RenderIsHumanReadable) {
  Trace trace;
  trace.record(1.5, TraceKind::ModuleStart, 3, "w3");
  const auto out = trace.render();
  EXPECT_NE(out.find("MODULE_START"), std::string::npos);
  EXPECT_NE(out.find("#3"), std::string::npos);
  EXPECT_NE(out.find("w3"), std::string::npos);
}

}  // namespace
