// End-to-end behaviour of the SchedulingService: solving through the
// registry, cache hit/miss accounting, byte-identical cached responses,
// bounded-queue rejection, deadline expiry under a frozen clock,
// rejection taxonomy, and metrics dumps.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <future>
#include <latch>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/verify.hpp"
#include "cloud/vm_type.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/instance.hpp"
#include "sched/solver_registry.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::sched::Instance;
using medcc::service::CacheOutcome;
using medcc::service::RejectReason;
using medcc::service::ResponseStatus;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;
using medcc::workflow::Workflow;

VmCatalog catalog() {
  return VmCatalog({VmType{"small", 3.0, 1.0}, VmType{"medium", 15.0, 4.0},
                    VmType{"large", 30.0, 8.0}});
}

// The paper's Fig. 2 example (entry, w1..w6, exit).
std::shared_ptr<const Instance> example_instance() {
  return std::make_shared<const Instance>(
      Instance::from_model(medcc::workflow::example6(), catalog()));
}

// An asymmetric diamond and its module/catalog-permuted twin.
std::shared_ptr<const Instance> diamond(bool permuted) {
  Workflow wf;
  if (permuted) {
    const auto c = wf.add_module("c", 75.0);
    const auto exit = wf.add_fixed_module("exit", 1.0);
    const auto a = wf.add_module("a", 30.0);
    const auto entry = wf.add_fixed_module("entry", 1.0);
    const auto b = wf.add_module("b", 45.0);
    wf.add_dependency(c, exit, 6.0);
    wf.add_dependency(b, exit, 5.0);
    wf.add_dependency(entry, a, 2.0);
    wf.add_dependency(a, c, 4.0);
    wf.add_dependency(a, b, 3.0);
    return std::make_shared<const Instance>(Instance::from_model(
        std::move(wf), VmCatalog({VmType{"large", 30.0, 8.0},
                                  VmType{"small", 3.0, 1.0},
                                  VmType{"medium", 15.0, 4.0}})));
  }
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto a = wf.add_module("a", 30.0);
  const auto b = wf.add_module("b", 45.0);
  const auto c = wf.add_module("c", 75.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(entry, a, 2.0);
  wf.add_dependency(a, b, 3.0);
  wf.add_dependency(a, c, 4.0);
  wf.add_dependency(b, exit, 5.0);
  wf.add_dependency(c, exit, 6.0);
  return std::make_shared<const Instance>(
      Instance::from_model(std::move(wf), catalog()));
}

SchedulingRequest request_for(std::shared_ptr<const Instance> inst,
                              double budget, std::string solver = "cg") {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = budget;
  req.solver = std::move(solver);
  return req;
}

// Bit-level equality for doubles without a floating-point comparison.
void expect_bits_equal(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

void expect_identical(const medcc::sched::Result& a,
                      const medcc::sched::Result& b) {
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.iterations, b.iterations);
  expect_bits_equal(a.eval.med, b.eval.med);
  expect_bits_equal(a.eval.cost, b.eval.cost);
}

TEST(Service, SolvesMatchingDirectSolverCall) {
  const auto inst = example_instance();
  SchedulingService service({.threads = 2});
  auto response = service.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(response.cache, CacheOutcome::miss);
  EXPECT_EQ(response.solver, "cg");

  const auto direct = medcc::sched::critical_greedy(*inst, 57.0);
  expect_identical(response.result, direct);

  medcc::analysis::VerifyOptions vopts;
  vopts.budget = 57.0;
  EXPECT_TRUE(medcc::analysis::verify_schedule(*inst, response.result.schedule,
                                               response.result.eval, vopts)
                  .ok());
}

TEST(Service, ExactDuplicateIsByteIdenticalCacheHit) {
  const auto inst = example_instance();
  SchedulingService service({.threads = 2});
  const auto first = service.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.cache, CacheOutcome::miss);

  const auto second = service.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.cache, CacheOutcome::hit_exact);
  expect_identical(second.result, first.result);

  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.cache_hits_exact, 1u);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate(), 0.5);
}

TEST(Service, PermutedDuplicateServedIsomorphically) {
  SchedulingService service({.threads = 1});
  const auto solved = service.submit(request_for(diamond(false), 50.0)).get();
  ASSERT_TRUE(solved.ok());
  ASSERT_EQ(solved.cache, CacheOutcome::miss);

  const auto twin_inst = diamond(true);
  const auto twin = service.submit(request_for(twin_inst, 50.0)).get();
  ASSERT_TRUE(twin.ok());
  EXPECT_EQ(twin.cache, CacheOutcome::hit_isomorphic);
  // Same problem, so the re-mapped schedule must reproduce the same
  // delay and cost, and be feasible against the twin instance.
  EXPECT_DOUBLE_EQ(twin.result.eval.med, solved.result.eval.med);
  EXPECT_DOUBLE_EQ(twin.result.eval.cost, solved.result.eval.cost);
  EXPECT_EQ(twin.result.iterations, solved.result.iterations);

  medcc::analysis::VerifyOptions vopts;
  vopts.budget = 50.0;
  EXPECT_TRUE(medcc::analysis::verify_schedule(*twin_inst,
                                               twin.result.schedule,
                                               twin.result.eval, vopts)
                  .ok());
  EXPECT_EQ(service.metrics().snapshot().cache_hits_isomorphic, 1u);
}

TEST(Service, CacheDisabledBypasses) {
  SchedulingService service({.threads = 1, .cache_capacity = 0});
  EXPECT_FALSE(service.cache_enabled());
  const auto inst = example_instance();
  for (int i = 0; i < 2; ++i) {
    const auto response = service.submit(request_for(inst, 57.0)).get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.cache, CacheOutcome::bypass);
  }
  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.cache_bypass, 2u);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate(), 0.0);
}

TEST(Service, DistinctBudgetsDoNotShareEntries) {
  SchedulingService service({.threads = 1});
  const auto inst = example_instance();
  // The tightest feasible budget: every computing module on the
  // cheapest-rate type.
  medcc::sched::Schedule cheapest;
  cheapest.type_of.assign(inst->module_count(),
                          inst->catalog().cheapest_rate_index());
  const double cmin = medcc::sched::total_cost(*inst, cheapest);
  const auto cheap = service.submit(request_for(inst, cmin)).get();
  const auto rich = service.submit(request_for(inst, 4.0 * cmin)).get();
  ASSERT_TRUE(cheap.ok()) << cheap.error;
  ASSERT_TRUE(rich.ok()) << rich.error;
  EXPECT_EQ(cheap.cache, CacheOutcome::miss);
  EXPECT_EQ(rich.cache, CacheOutcome::miss);
  EXPECT_LE(cheap.result.eval.cost, cmin + 1e-9);
  EXPECT_GE(rich.result.eval.med + 1e-9, 0.0);
  EXPECT_LE(rich.result.eval.med, cheap.result.eval.med + 1e-9);
}

TEST(Service, UnknownSolverRejectedImmediately) {
  SchedulingService service({.threads = 1});
  const auto response =
      service.submit(request_for(example_instance(), 57.0, "no-such-solver"))
          .get();
  EXPECT_EQ(response.status, ResponseStatus::rejected);
  EXPECT_EQ(response.reject_reason, RejectReason::unknown_solver);
  EXPECT_EQ(service.metrics().snapshot().rejected_unknown_solver, 1u);
}

TEST(Service, InvalidRequestsRejected) {
  SchedulingService service({.threads = 1});
  SchedulingRequest null_instance;
  null_instance.budget = 57.0;
  EXPECT_EQ(service.submit(std::move(null_instance)).get().reject_reason,
            RejectReason::invalid_request);

  auto negative_budget = request_for(example_instance(), -1.0);
  EXPECT_EQ(service.submit(std::move(negative_budget)).get().reject_reason,
            RejectReason::invalid_request);

  auto nan_budget = request_for(example_instance(),
                                std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(service.submit(std::move(nan_budget)).get().reject_reason,
            RejectReason::invalid_request);

  auto negative_deadline = request_for(example_instance(), 57.0);
  negative_deadline.deadline_ms = -5.0;
  EXPECT_EQ(service.submit(std::move(negative_deadline)).get().reject_reason,
            RejectReason::invalid_request);
  EXPECT_EQ(service.metrics().snapshot().rejected_invalid, 4u);
}

TEST(Service, InfeasibleBudgetFailsWithSolverError) {
  SchedulingService service({.threads = 1});
  const auto response =
      service.submit(request_for(example_instance(), 1.0)).get();
  EXPECT_EQ(response.status, ResponseStatus::failed);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.metrics().snapshot().responses_failed, 1u);
}

TEST(Service, ShutdownRejectsNewSubmissions) {
  SchedulingService service({.threads = 1});
  service.shutdown();
  const auto response =
      service.submit(request_for(example_instance(), 57.0)).get();
  EXPECT_EQ(response.status, ResponseStatus::rejected);
  EXPECT_EQ(response.reject_reason, RejectReason::shutting_down);
  service.shutdown();  // idempotent
}

// A registry whose "block" solver parks on a latch, for queue tests.
class BlockingRegistryFixture {
public:
  BlockingRegistryFixture() {
    registry_.register_solver(
        "block", [this](const Instance& inst, double budget) {
          started_.count_down();
          release_future_.wait();
          return medcc::sched::critical_greedy(inst, budget);
        });
    for (const auto& name : medcc::sched::SolverRegistry::built_in().names())
      registry_.register_solver(
          std::string(name),
          *medcc::sched::SolverRegistry::built_in().find(name));
  }

  void wait_until_blocked() { started_.wait(); }
  void release() { release_.set_value(); }
  [[nodiscard]] const medcc::sched::SolverRegistry& registry() const {
    return registry_;
  }

private:
  std::latch started_{1};
  std::promise<void> release_;
  std::shared_future<void> release_future_{release_.get_future().share()};
  medcc::sched::SolverRegistry registry_;
};

TEST(Service, BoundedQueueRejectsWhenFull) {
  BlockingRegistryFixture fixture;
  ServiceConfig config;
  config.threads = 1;
  config.queue_capacity = 2;
  config.registry = &fixture.registry();
  SchedulingService service(std::move(config));

  // Occupy the single worker, then fill the two queue slots.
  auto blocked =
      service.submit(request_for(example_instance(), 57.0, "block"));
  fixture.wait_until_blocked();
  std::vector<std::future<SchedulingResponse>> queued;
  queued.push_back(service.submit(request_for(example_instance(), 57.0)));
  queued.push_back(service.submit(request_for(example_instance(), 57.0)));

  // The queue is full now: further submissions bounce without blocking.
  const auto bounced =
      service.submit(request_for(example_instance(), 57.0)).get();
  EXPECT_EQ(bounced.status, ResponseStatus::rejected);
  EXPECT_EQ(bounced.reject_reason, RejectReason::queue_full);

  fixture.release();
  EXPECT_TRUE(blocked.get().ok());
  for (auto& f : queued) EXPECT_TRUE(f.get().ok());
  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.rejected_queue_full, 1u);
  EXPECT_EQ(snap.queue_depth, 0);
  EXPECT_GE(snap.queue_depth_peak, 2);
}

TEST(Service, DeadlineExpiryUnderFrozenClock) {
  BlockingRegistryFixture fixture;
  std::atomic<std::int64_t> now_ns{0};
  ServiceConfig config;
  config.threads = 1;
  config.registry = &fixture.registry();
  config.clock = [&now_ns] {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(now_ns.load()));
  };
  SchedulingService service(std::move(config));

  auto blocked =
      service.submit(request_for(example_instance(), 57.0, "block"));
  fixture.wait_until_blocked();

  auto tight = request_for(example_instance(), 57.0);
  tight.deadline_ms = 5.0;
  auto tight_future = service.submit(std::move(tight));

  auto loose = request_for(example_instance(), 57.0);
  loose.deadline_ms = 50.0;
  auto loose_future = service.submit(std::move(loose));

  // 10 ms pass while both requests sit behind the blocked worker.
  now_ns.store(10'000'000);
  fixture.release();
  EXPECT_TRUE(blocked.get().ok());

  const auto expired = tight_future.get();
  EXPECT_EQ(expired.status, ResponseStatus::rejected);
  EXPECT_EQ(expired.reject_reason, RejectReason::deadline_expired);
  EXPECT_GE(expired.queue_delay_ms, 10.0);

  const auto served = loose_future.get();
  EXPECT_TRUE(served.ok());
  EXPECT_EQ(service.metrics().snapshot().rejected_deadline, 1u);
}

TEST(Service, DefaultDeadlineAppliesWhenRequestHasNone) {
  BlockingRegistryFixture fixture;
  std::atomic<std::int64_t> now_ns{0};
  ServiceConfig config;
  config.threads = 1;
  config.default_deadline_ms = 5.0;
  config.registry = &fixture.registry();
  config.clock = [&now_ns] {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(now_ns.load()));
  };
  SchedulingService service(std::move(config));

  auto blocked =
      service.submit(request_for(example_instance(), 57.0, "block"));
  fixture.wait_until_blocked();
  auto queued = service.submit(request_for(example_instance(), 57.0));
  now_ns.store(10'000'000);
  fixture.release();
  EXPECT_TRUE(blocked.get().ok());
  EXPECT_EQ(queued.get().reject_reason, RejectReason::deadline_expired);
}

TEST(Service, TenantQuotaBoundsInflightPerTenant) {
  BlockingRegistryFixture fixture;
  ServiceConfig config;
  config.threads = 1;
  config.queue_capacity = 16;
  config.max_inflight_per_tenant = 2;
  config.registry = &fixture.registry();
  SchedulingService service(std::move(config));

  const auto tenant_request = [](std::string tenant, std::string solver) {
    auto req = request_for(example_instance(), 57.0, std::move(solver));
    req.tenant = std::move(tenant);
    return req;
  };

  // Tenant "a" fills its quota: one solving, one queued.
  auto blocked = service.submit(tenant_request("a", "block"));
  fixture.wait_until_blocked();
  auto queued = service.submit(tenant_request("a", "cg"));

  // The third "a" request bounces; tenant "b" is unaffected.
  const auto bounced = service.submit(tenant_request("a", "cg")).get();
  EXPECT_EQ(bounced.status, ResponseStatus::rejected);
  EXPECT_EQ(bounced.reject_reason, RejectReason::tenant_quota);
  auto other = service.submit(tenant_request("b", "cg"));

  fixture.release();
  EXPECT_TRUE(blocked.get().ok());
  EXPECT_TRUE(queued.get().ok());
  EXPECT_TRUE(other.get().ok());

  // Completions released the slots: "a" may submit again.
  EXPECT_TRUE(service.submit(tenant_request("a", "cg")).get().ok());

  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.tenant_quota_rejections, 1u);
  EXPECT_NE(service.metrics().dump_text().find("tenant_quota_rejections 1"),
            std::string::npos);
}

TEST(Service, TenantQuotaDisabledByDefault) {
  SchedulingService service({.threads = 1});
  const auto inst = example_instance();
  std::vector<std::future<SchedulingResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    auto req = request_for(inst, 57.0);
    req.tenant = "same-tenant";
    futures.push_back(service.submit(std::move(req)));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(service.metrics().snapshot().tenant_quota_rejections, 0u);
}

TEST(Service, SubmitBatchAdmitsEachRequestIndependently) {
  SchedulingService service({.threads = 2});
  const auto inst = example_instance();
  std::vector<SchedulingRequest> batch;
  batch.push_back(request_for(inst, 57.0, "cg"));
  batch.push_back(request_for(inst, 57.0, "no-such-solver"));
  batch.push_back(request_for(inst, 57.0, "gain3"));

  auto futures = service.submit_batch(std::move(batch));
  ASSERT_EQ(futures.size(), 3u);
  EXPECT_TRUE(futures[0].get().ok());
  const auto rejected = futures[1].get();
  EXPECT_EQ(rejected.status, ResponseStatus::rejected);
  EXPECT_EQ(rejected.reject_reason, RejectReason::unknown_solver);
  EXPECT_TRUE(futures[2].get().ok());
}

TEST(Service, SubmitAsyncDeliversCallbackExactlyOnce) {
  SchedulingService service({.threads = 1});
  std::promise<SchedulingResponse> delivered;
  service.submit_async(request_for(example_instance(), 57.0),
                       [&delivered](SchedulingResponse response) {
                         delivered.set_value(std::move(response));
                       });
  const auto response = delivered.get_future().get();
  EXPECT_TRUE(response.ok()) << response.error;

  // Admission rejections invoke the callback synchronously.
  bool called = false;
  SchedulingRequest invalid;
  service.submit_async(std::move(invalid), [&called](SchedulingResponse r) {
    called = true;
    EXPECT_EQ(r.reject_reason, RejectReason::invalid_request);
  });
  EXPECT_TRUE(called);
}

TEST(Service, MetricsDumpContainsKeyLines) {
  SchedulingService service({.threads = 1});
  (void)service.submit(request_for(example_instance(), 57.0)).get();
  (void)service.submit(request_for(example_instance(), 57.0)).get();

  const auto text = service.metrics().dump_text();
  EXPECT_NE(text.find("requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("cache_hit_rate"), std::string::npos);
  EXPECT_NE(text.find("requests_solver_cg 2"), std::string::npos);
  EXPECT_NE(text.find("latency_total_seconds_p95"), std::string::npos);

  const auto csv = service.metrics().dump_csv();
  EXPECT_EQ(csv.rfind("metric,value\n", 0), 0u);
  EXPECT_NE(csv.find("responses_ok,2"), std::string::npos);
}

TEST(Service, CacheTtlExpiresEntriesUnderInjectedClock) {
  const auto inst = example_instance();
  std::int64_t now = 0;
  ServiceConfig config;
  config.threads = 1;
  config.cache_ttl_s = 10;
  config.cache_clock = [&now] { return now; };
  SchedulingService service(std::move(config));

  const auto first = service.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.cache, CacheOutcome::miss);

  now = 9;  // still fresh
  const auto warm = service.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cache, CacheOutcome::hit_exact);
  expect_identical(warm.result, first.result);

  now = 25;  // aged out: the duplicate is solved afresh
  const auto aged = service.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(aged.ok());
  EXPECT_EQ(aged.cache, CacheOutcome::miss);
  expect_identical(aged.result, first.result);  // solvers are deterministic

  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.cache_misses, 2u);
  EXPECT_GE(snap.cache_expired, 1u);
  EXPECT_NE(service.metrics().dump_text().find("cache_expired"),
            std::string::npos);
}

TEST(Service, SweepExpiredDropsAgedEntriesInBulk) {
  std::int64_t now = 0;
  ServiceConfig config;
  config.threads = 1;
  config.cache_ttl_s = 5;
  config.cache_clock = [&now] { return now; };
  SchedulingService service(std::move(config));

  ASSERT_TRUE(service.submit(request_for(example_instance(), 57.0)).get().ok());
  ASSERT_TRUE(service.submit(request_for(example_instance(), 58.0)).get().ok());
  EXPECT_EQ(service.sweep_expired(), 0u);
  now = 5;
  EXPECT_EQ(service.sweep_expired(), 2u);
  EXPECT_GE(service.metrics().snapshot().cache_expired, 2u);
}

TEST(Service, OnCacheInsertFiresOnlyForLocalMisses) {
  const auto inst = example_instance();
  std::vector<std::string> published;
  ServiceConfig config;
  config.threads = 1;
  config.on_cache_insert = [&published](std::string payload,
                                        medcc::obs::TraceContext) {
    published.push_back(std::move(payload));
  };
  SchedulingService service(std::move(config));

  ASSERT_TRUE(service.submit(request_for(inst, 57.0)).get().ok());
  ASSERT_EQ(published.size(), 1u);  // the miss
  ASSERT_TRUE(service.submit(request_for(inst, 57.0)).get().ok());
  EXPECT_EQ(published.size(), 1u);  // the hit publishes nothing

  // Applying a replicated record must not re-publish either (that is
  // what keeps origin-pushes-to-full-mesh replication loop-free).
  SchedulingService receiver({.threads = 1});
  ASSERT_TRUE(receiver.apply_replicated_record(published.front()));
  EXPECT_EQ(published.size(), 1u);
}

TEST(Service, ApplyReplicatedRecordServesByteIdenticalHit) {
  const auto inst = example_instance();
  std::vector<std::string> published;
  ServiceConfig origin_config;
  origin_config.threads = 1;
  origin_config.on_cache_insert = [&published](std::string payload,
                                               medcc::obs::TraceContext) {
    published.push_back(std::move(payload));
  };
  SchedulingService origin(std::move(origin_config));
  const auto solved = origin.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(solved.ok());
  ASSERT_EQ(published.size(), 1u);

  SchedulingService receiver({.threads = 1});
  ASSERT_TRUE(receiver.apply_replicated_record(published.front()));
  const auto snap = receiver.metrics().snapshot();
  EXPECT_EQ(snap.repl_applied, 1u);
  EXPECT_EQ(snap.repl_apply_errors, 0u);

  // The receiver never solved, yet answers the duplicate exactly.
  const auto hit = receiver.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.cache, CacheOutcome::hit_exact);
  expect_identical(hit.result, solved.result);
}

TEST(Service, ApplyReplicatedRecordRejectsGarbage) {
  SchedulingService service({.threads = 1});
  EXPECT_FALSE(service.apply_replicated_record("not a cache record"));
  EXPECT_FALSE(service.apply_replicated_record(""));
  EXPECT_EQ(service.metrics().snapshot().repl_apply_errors, 2u);

  // A cache-disabled service cannot apply records at all.
  SchedulingService uncached({.threads = 1, .cache_capacity = 0});
  EXPECT_FALSE(uncached.apply_replicated_record("anything"));
  EXPECT_EQ(uncached.metrics().snapshot().repl_apply_errors, 1u);
}

TEST(Service, PerSolverCountsTracked) {
  SchedulingService service({.threads = 1});
  (void)service.submit(request_for(example_instance(), 57.0, "cg")).get();
  (void)service.submit(request_for(example_instance(), 57.0, "gain3")).get();
  (void)service.submit(request_for(example_instance(), 57.0, "gain3")).get();
  const auto snap = service.metrics().snapshot();
  ASSERT_TRUE(snap.per_solver.contains("cg"));
  ASSERT_TRUE(snap.per_solver.contains("gain3"));
  EXPECT_EQ(snap.per_solver.at("cg"), 1u);
  EXPECT_EQ(snap.per_solver.at("gain3"), 2u);
}

TEST(Service, EverySolverInRegistryServes) {
  SchedulingService service({.threads = 2});
  const auto inst = example_instance();
  std::vector<std::future<SchedulingResponse>> futures;
  const auto names = medcc::sched::SolverRegistry::built_in().names();
  futures.reserve(names.size());
  for (const auto& name : names)
    futures.push_back(service.submit(request_for(inst, 57.0, name)));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto response = futures[i].get();
    EXPECT_TRUE(response.ok())
        << names[i] << ": " << response.error;
    EXPECT_LE(response.result.eval.cost, 57.0 + 1e-9) << names[i];
  }
}

}  // namespace
