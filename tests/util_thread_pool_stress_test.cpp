// Stress tests for util::ThreadPool / parallel_for_index aimed at data
// races: many short tasks, submissions racing from several producer
// threads, rapid pool construction/destruction, and exception delivery
// under load. Run under -DMEDCC_SANITIZE=thread these must produce zero
// TSan reports.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace {

using medcc::util::parallel_for_index;
using medcc::util::ThreadPool;

TEST(ThreadPoolStress, ManyShortTasks) {
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  constexpr std::size_t kTasks = 2000;
  for (std::size_t i = 0; i < kTasks; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStress, ConcurrentProducers) {
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &done] {
      for (std::size_t i = 0; i < kPerProducer; ++i)
        pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), kProducers * kPerProducer);
}

TEST(ThreadPoolStress, RapidCreateDestroy) {
  // The destructor must drain the queue and join cleanly; odd rounds skip
  // wait_idle so destruction races with tasks still queued.
  for (std::size_t round = 0; round < 50; ++round) {
    std::atomic<std::size_t> done{0};
    {
      ThreadPool pool(3);
      for (std::size_t i = 0; i < 20; ++i)
        pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); });
      if (round % 2 == 0) pool.wait_idle();
    }
    EXPECT_EQ(done.load(), 20u);
  }
}

TEST(ThreadPoolStress, ParallelForWritesDisjointSlots) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 5000;
  std::vector<std::size_t> out(kCount, 0);
  parallel_for_index(pool, kCount,
                     [&out](std::size_t i) { out[i] = i * 2 + 1; });
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(out[i], i * 2 + 1);
}

TEST(ThreadPoolStress, ParallelForWithGrainAndReuse) {
  // Reuse one pool across many parallel_for rounds with a coarse grain;
  // each round must see a fully quiescent pool.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 512;
  std::vector<double> out(kCount, 0.0);
  for (std::size_t round = 1; round <= 20; ++round) {
    parallel_for_index(
        pool, kCount,
        [&out, round](std::size_t i) {
          out[i] = static_cast<double>(round) + static_cast<double>(i);
        },
        /*grain=*/32);
    const double expected =
        static_cast<double>(kCount) * static_cast<double>(round) +
        static_cast<double>(kCount) * (static_cast<double>(kCount) - 1.0) /
            2.0;
    const double sum = std::accumulate(out.begin(), out.end(), 0.0);
    ASSERT_DOUBLE_EQ(sum, expected);
  }
}

TEST(ThreadPoolStress, FirstExceptionIsRethrown) {
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < 200; ++i) {
    pool.submit([&done, i] {
      if (i == 137) throw medcc::Error("task 137 failed");
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(pool.wait_idle(), medcc::Error);
  // The pool stays usable after an exception was delivered.
  pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPoolStress, ParallelForExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_index(pool, 1000,
                         [](std::size_t i) {
                           if (i == 900)
                             throw medcc::Error("index 900 failed");
                         }),
      medcc::Error);
}

TEST(ThreadPoolStress, TrySubmitRacingRequestStop) {
  // The admission-control scenario: several producers try_submit while a
  // stopper thread initiates shutdown mid-stream. Every accepted task must
  // run, every refused submission must return false without blocking, and
  // under -DMEDCC_SANITIZE=thread the interleavings must be race-free.
  for (std::size_t round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<std::size_t> accepted{0};
    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> refused{0};
    constexpr std::size_t kProducers = 4;
    constexpr std::size_t kPerProducer = 200;
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          if (pool.try_submit([&executed] {
                executed.fetch_add(1, std::memory_order_relaxed);
              })) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          } else {
            refused.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::thread stopper([&pool] { pool.request_stop(); });
    for (auto& t : producers) t.join();
    stopper.join();
    pool.wait_idle();
    EXPECT_EQ(executed.load(), accepted.load());
    EXPECT_EQ(accepted.load() + refused.load(), kProducers * kPerProducer);
  }
}

TEST(ThreadPoolStress, SingleThreadPoolStillParallelSafe) {
  ThreadPool pool(1);
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&pool, &done] {
      for (std::size_t i = 0; i < 100; ++i)
        pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), 300u);
}

}  // namespace
