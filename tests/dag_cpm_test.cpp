#include "dag/critical_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "util/prng.hpp"

namespace {

using medcc::dag::compute_cpm;
using medcc::dag::Dag;
using medcc::dag::NodeId;

TEST(Cpm, SingleNode) {
  Dag g(1);
  const auto r = compute_cpm(g, std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  EXPECT_DOUBLE_EQ(r.est[0], 0.0);
  EXPECT_DOUBLE_EQ(r.eft[0], 3.0);
  EXPECT_TRUE(r.critical[0]);
  EXPECT_EQ(r.critical_path, std::vector<NodeId>{0});
}

TEST(Cpm, Chain) {
  Dag g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto r = compute_cpm(g, std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.est[2], 3.0);
  EXPECT_DOUBLE_EQ(r.lft[0], 1.0);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_TRUE(r.critical[v]);
    EXPECT_NEAR(r.buffer[v], 0.0, 1e-12);
  }
  EXPECT_EQ(r.critical_path, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Cpm, DiamondBufferOnShortBranch) {
  Dag g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto r = compute_cpm(g, std::vector<double>{1.0, 5.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(r.makespan, 7.0);
  EXPECT_TRUE(r.critical[0]);
  EXPECT_TRUE(r.critical[1]);
  EXPECT_FALSE(r.critical[2]);
  EXPECT_TRUE(r.critical[3]);
  EXPECT_DOUBLE_EQ(r.buffer[2], 3.0);
  EXPECT_EQ(r.critical_path, (std::vector<NodeId>{0, 1, 3}));
}

TEST(Cpm, EdgeWeightsExtendPaths) {
  Dag g(2);
  g.add_edge(0, 1);
  const std::vector<double> nodes = {1.0, 1.0};
  const std::vector<double> edges = {2.5};
  const auto r = compute_cpm(g, nodes, edges);
  EXPECT_DOUBLE_EQ(r.makespan, 4.5);
  EXPECT_DOUBLE_EQ(r.est[1], 3.5);
}

TEST(Cpm, ParallelComponentsIndependent) {
  Dag g(2);  // two isolated nodes
  const auto r = compute_cpm(g, std::vector<double>{2.0, 5.0});
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_FALSE(r.critical[0]);  // buffer 3
  EXPECT_TRUE(r.critical[1]);
}

TEST(Cpm, ZeroWeightsAllCritical) {
  Dag g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto r = compute_cpm(g, std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  for (NodeId v = 0; v < 3; ++v) EXPECT_TRUE(r.critical[v]);
}

TEST(Cpm, RejectsBadInputs) {
  Dag g(2);
  g.add_edge(0, 1);
  EXPECT_THROW((void)compute_cpm(g, std::vector<double>{1.0}),
               medcc::InvalidArgument);  // size mismatch
  EXPECT_THROW((void)compute_cpm(g, std::vector<double>{1.0, -1.0}),
               medcc::InvalidArgument);  // negative
  EXPECT_THROW((void)compute_cpm(g, std::vector<double>{1.0, 1.0},
                                 std::vector<double>{1.0, 2.0}),
               medcc::InvalidArgument);  // edge size mismatch
}

TEST(Cpm, RejectsCycle) {
  Dag g(2);
  g.add_edge(0, 1);
  // Build a cyclic graph directly.
  Dag cyc(2);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 0);
  EXPECT_THROW((void)compute_cpm(cyc, std::vector<double>{1.0, 1.0}),
               medcc::InvalidArgument);
}

TEST(Cpm, MakespanHelperMatches) {
  Dag g(2);
  g.add_edge(0, 1);
  const std::vector<double> w = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(medcc::dag::makespan(g, w),
                   compute_cpm(g, w).makespan);
}

/// Brute-force longest path for cross-checking (small graphs only).
double brute_force_longest(const Dag& g, const std::vector<double>& w,
                           const std::vector<double>& ew) {
  double best = 0.0;
  // DFS from every node.
  std::function<void(NodeId, double)> dfs = [&](NodeId v, double len) {
    len += w[v];
    best = std::max(best, len);
    for (auto e : g.out_edges(v))
      dfs(g.edge(e).dst, len + (ew.empty() ? 0.0 : ew[e]));
  };
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (g.in_degree(v) == 0) dfs(v, 0.0);
  return best;
}

class CpmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpmPropertyTest, RandomDagInvariants) {
  medcc::util::Prng rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 14));
  Dag g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.35)) g.add_edge(i, j);
  std::vector<double> w(n), ew(g.edge_count());
  for (auto& x : w) x = rng.uniform_real(0.0, 10.0);
  const bool with_edges = rng.bernoulli(0.5);
  for (auto& x : ew) x = with_edges ? rng.uniform_real(0.0, 3.0) : 0.0;

  const auto r = compute_cpm(g, w, ew);

  // 1. Makespan equals the brute-force longest path.
  EXPECT_NEAR(r.makespan, brute_force_longest(g, w, ew), 1e-9);

  // 2. Buffers are non-negative; critical nodes have zero buffer.
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_GE(r.buffer[v], -1e-9);
    EXPECT_NEAR(r.buffer[v], r.lft[v] - r.eft[v], 1e-9);
    if (r.critical[v]) {
      EXPECT_LE(r.buffer[v], 1e-6 * std::max(1.0, r.makespan));
    }
  }

  // 3. est/eft consistency along every edge.
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    EXPECT_GE(r.est[edge.dst] + 1e-9, r.eft[edge.src] + ew[e]);
  }

  // 4. The extracted critical path is a real path whose length equals the
  //    makespan.
  ASSERT_FALSE(r.critical_path.empty());
  double len = 0.0;
  for (std::size_t k = 0; k < r.critical_path.size(); ++k) {
    len += w[r.critical_path[k]];
    if (k + 1 < r.critical_path.size()) {
      const NodeId a = r.critical_path[k], b = r.critical_path[k + 1];
      ASSERT_TRUE(g.has_edge(a, b));
      if (!ew.empty()) {
        for (auto e : g.out_edges(a))
          if (g.edge(e).dst == b) len += ew[e];
      }
    }
  }
  EXPECT_NEAR(len, r.makespan, 1e-6 * std::max(1.0, r.makespan));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpmPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
