#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/prng.hpp"

namespace {

using medcc::util::RunningStats;

TEST(RunningStats, EmptyStateQueries) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW((void)s.mean(), medcc::LogicError);
  EXPECT_THROW((void)s.min(), medcc::LogicError);
  EXPECT_THROW((void)s.max(), medcc::LogicError);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  medcc::util::Prng rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10.0, 10.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(medcc::util::mean(xs), 2.5);
  EXPECT_NEAR(medcc::util::stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(BatchStats, MeanRejectsEmpty) {
  EXPECT_THROW((void)medcc::util::mean({}), medcc::LogicError);
}

TEST(BatchStats, StddevShortInputsAreZero) {
  const std::vector<double> one = {5.0};
  EXPECT_EQ(medcc::util::stddev(one), 0.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(medcc::util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(medcc::util::percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(medcc::util::median(xs), 3.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(medcc::util::percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(medcc::util::percentile(xs, 75.0), 7.5);
}

TEST(Percentile, RejectsBadArguments) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)medcc::util::percentile({}, 50.0), medcc::LogicError);
  EXPECT_THROW((void)medcc::util::percentile(xs, -1.0), medcc::LogicError);
  EXPECT_THROW((void)medcc::util::percentile(xs, 101.0), medcc::LogicError);
}

TEST(Histogram, CountsAndClamping) {
  const std::vector<double> xs = {-1.0, 0.1, 0.9, 1.1, 5.0};
  const auto h = medcc::util::histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -1.0 clamped in, 0.1
  EXPECT_EQ(h[1], 3u);  // 0.9, 1.1 and 5.0 clamped in
}

TEST(Histogram, RejectsBadArguments) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)medcc::util::histogram(xs, 0.0, 1.0, 0),
               medcc::LogicError);
  EXPECT_THROW((void)medcc::util::histogram(xs, 1.0, 0.0, 2),
               medcc::LogicError);
}

using medcc::util::Histogram;

TEST(HistogramClass, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), medcc::LogicError);           // < 2 edges
  EXPECT_THROW(Histogram({1.0, 1.0}), medcc::LogicError);      // not increasing
  EXPECT_THROW(Histogram({1.0, 2.0, 1.5}), medcc::LogicError);
  EXPECT_THROW(Histogram::uniform(1.0, 0.0, 4), medcc::LogicError);
  EXPECT_THROW(Histogram::uniform(0.0, 1.0, 0), medcc::LogicError);
  EXPECT_THROW(Histogram::exponential(0.0, 2.0, 4), medcc::LogicError);
  EXPECT_THROW(Histogram::exponential(1.0, 1.0, 4), medcc::LogicError);
}

TEST(HistogramClass, EmptyQuantileThrows) {
  Histogram h({0.0, 1.0});
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_THROW((void)h.quantile(50.0), medcc::LogicError);
  EXPECT_THROW((void)h.min(), medcc::LogicError);
  EXPECT_THROW((void)h.max(), medcc::LogicError);
}

TEST(HistogramClass, SingleSampleIsExactForEveryPercentile) {
  Histogram h = Histogram::uniform(0.0, 100.0, 10);
  h.add(37.5);
  for (const double p : {0.0, 25.0, 50.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(h.quantile(p), 37.5);
  EXPECT_DOUBLE_EQ(h.min(), 37.5);
  EXPECT_DOUBLE_EQ(h.max(), 37.5);
}

TEST(HistogramClass, MidpointRankInterpolation) {
  // Two samples in one [0,10) bucket: rank(p=25) = 0.25, estimate
  // 0 + 10*(0.25+0.5)/2 = 3.75 (documented mid-point-rank formula).
  Histogram h({0.0, 10.0});
  h.add(0.0);
  h.add(10.0);  // clamped into the single bucket
  EXPECT_DOUBLE_EQ(h.quantile(25.0), 3.75);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.5);    // (0+0.5)/2 * 10
  EXPECT_DOUBLE_EQ(h.quantile(100.0), 7.5);  // (1+0.5)/2 * 10
}

TEST(HistogramClass, QuantileTracksTruePercentileWithinBucketWidth) {
  Histogram h = Histogram::uniform(0.0, 1.0, 100);
  medcc::util::Prng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform_real(0.0, 1.0);
    xs.push_back(x);
    h.add(x);
  }
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_NEAR(h.quantile(p), medcc::util::percentile(xs, p), 0.02)
        << "p=" << p;
  }
  // Monotone in p.
  EXPECT_LE(h.quantile(50.0), h.quantile(95.0));
  EXPECT_LE(h.quantile(95.0), h.quantile(99.0));
}

TEST(HistogramClass, ClampsOutOfRangeSamplesIntoEdgeBuckets) {
  Histogram h = Histogram::uniform(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  // min/max still reflect the raw samples, so quantiles clamp to them.
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(HistogramClass, ExponentialEdges) {
  const Histogram h = Histogram::exponential(1e-6, 2.0, 4);
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_DOUBLE_EQ(h.edges().front(), 1e-6);
  EXPECT_DOUBLE_EQ(h.edges().back(), 16e-6);
}

TEST(HistogramClass, AddBucketWidensRangeToBucketEdges) {
  Histogram h = Histogram::uniform(0.0, 10.0, 10);
  h.add_bucket(3, 4);  // four samples somewhere in [3,4)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  const double q = h.quantile(50.0);
  EXPECT_GE(q, 3.0);
  EXPECT_LE(q, 4.0);
}

TEST(HistogramClass, MergeMatchesSequentialFill) {
  Histogram a = Histogram::uniform(0.0, 1.0, 8);
  Histogram b = Histogram::uniform(0.0, 1.0, 8);
  Histogram whole = Histogram::uniform(0.0, 1.0, 8);
  medcc::util::Prng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform_real(0.0, 1.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (std::size_t bkt = 0; bkt < whole.bucket_count(); ++bkt)
    EXPECT_EQ(a.bucket(bkt), whole.bucket(bkt));
  EXPECT_DOUBLE_EQ(a.quantile(95.0), whole.quantile(95.0));
  // Merging mismatched edges is rejected.
  Histogram other = Histogram::uniform(0.0, 2.0, 8);
  EXPECT_THROW(a.merge(other), medcc::LogicError);
}

// Property: streaming variance equals two-pass variance across seeds.
class StatsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertyTest, WelfordMatchesTwoPass) {
  medcc::util::Prng rng(GetParam());
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform_real(-100.0, 100.0);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), medcc::util::mean(xs), 1e-9);
  EXPECT_NEAR(s.stddev(), medcc::util::stddev(xs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
