#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/prng.hpp"

namespace {

using medcc::util::RunningStats;

TEST(RunningStats, EmptyStateQueries) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW((void)s.mean(), medcc::LogicError);
  EXPECT_THROW((void)s.min(), medcc::LogicError);
  EXPECT_THROW((void)s.max(), medcc::LogicError);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  medcc::util::Prng rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10.0, 10.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(medcc::util::mean(xs), 2.5);
  EXPECT_NEAR(medcc::util::stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(BatchStats, MeanRejectsEmpty) {
  EXPECT_THROW((void)medcc::util::mean({}), medcc::LogicError);
}

TEST(BatchStats, StddevShortInputsAreZero) {
  const std::vector<double> one = {5.0};
  EXPECT_EQ(medcc::util::stddev(one), 0.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(medcc::util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(medcc::util::percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(medcc::util::median(xs), 3.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(medcc::util::percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(medcc::util::percentile(xs, 75.0), 7.5);
}

TEST(Percentile, RejectsBadArguments) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)medcc::util::percentile({}, 50.0), medcc::LogicError);
  EXPECT_THROW((void)medcc::util::percentile(xs, -1.0), medcc::LogicError);
  EXPECT_THROW((void)medcc::util::percentile(xs, 101.0), medcc::LogicError);
}

TEST(Histogram, CountsAndClamping) {
  const std::vector<double> xs = {-1.0, 0.1, 0.9, 1.1, 5.0};
  const auto h = medcc::util::histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -1.0 clamped in, 0.1
  EXPECT_EQ(h[1], 3u);  // 0.9, 1.1 and 5.0 clamped in
}

TEST(Histogram, RejectsBadArguments) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)medcc::util::histogram(xs, 0.0, 1.0, 0),
               medcc::LogicError);
  EXPECT_THROW((void)medcc::util::histogram(xs, 1.0, 0.0, 2),
               medcc::LogicError);
}

// Property: streaming variance equals two-pass variance across seeds.
class StatsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertyTest, WelfordMatchesTwoPass) {
  medcc::util::Prng rng(GetParam());
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform_real(-100.0, 100.0);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), medcc::util::mean(xs), 1e-9);
  EXPECT_NEAR(s.stddev(), medcc::util::stddev(xs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
