#include <gtest/gtest.h>

#include "cloud/billing.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/vm_type.hpp"
#include "util/prng.hpp"

namespace {

using medcc::cloud::BillingPolicy;
using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;

TEST(VmCatalog, ValidationRejectsBadTypes) {
  EXPECT_THROW(VmCatalog(std::vector<VmType>{}), medcc::InvalidArgument);
  EXPECT_THROW(VmCatalog({{"z", 0.0, 1.0}}), medcc::InvalidArgument);
  EXPECT_THROW(VmCatalog({{"n", 1.0, -1.0}}), medcc::InvalidArgument);
}

TEST(VmCatalog, FastestAndCheapestIndices) {
  const VmCatalog cat({{"s", 1.0, 1.0}, {"m", 4.0, 3.0}, {"l", 8.0, 9.0}});
  EXPECT_EQ(cat.fastest_index(), 2u);
  EXPECT_EQ(cat.cheapest_rate_index(), 0u);
}

TEST(VmCatalog, TieBreaks) {
  // Equal power: fastest prefers the cheaper one; equal rate: cheapest
  // prefers the more powerful one.
  const VmCatalog cat({{"a", 8.0, 9.0}, {"b", 8.0, 7.0}, {"c", 2.0, 7.0}});
  EXPECT_EQ(cat.fastest_index(), 1u);
  EXPECT_EQ(cat.cheapest_rate_index(), 1u);
}

TEST(VmCatalog, ExampleCatalogMatchesTableI) {
  const auto cat = medcc::cloud::example_catalog();
  ASSERT_EQ(cat.size(), 3u);
  EXPECT_DOUBLE_EQ(cat.type(0).processing_power, 3.0);
  EXPECT_DOUBLE_EQ(cat.type(1).processing_power, 15.0);
  EXPECT_DOUBLE_EQ(cat.type(2).processing_power, 30.0);
  EXPECT_DOUBLE_EQ(cat.type(0).cost_rate, 1.0);
  EXPECT_DOUBLE_EQ(cat.type(1).cost_rate, 4.0);
  EXPECT_DOUBLE_EQ(cat.type(2).cost_rate, 8.0);
}

TEST(VmCatalog, WrfCatalogMatchesTableV) {
  const auto cat = medcc::cloud::wrf_catalog();
  ASSERT_EQ(cat.size(), 3u);
  EXPECT_DOUBLE_EQ(cat.type(0).cost_rate, 0.1);
  EXPECT_DOUBLE_EQ(cat.type(2).cost_rate, 0.8);
  EXPECT_DOUBLE_EQ(cat.type(2).processing_power, 5.86);
}

TEST(VmCatalog, LinearCatalogPricing) {
  const auto cat = medcc::cloud::linear_catalog({1.0, 2.0, 8.0}, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(cat.type(1).processing_power, 6.0);
  EXPECT_DOUBLE_EQ(cat.type(1).cost_rate, 1.0);
  EXPECT_DOUBLE_EQ(cat.type(2).processing_power, 24.0);
  EXPECT_DOUBLE_EQ(cat.type(2).cost_rate, 4.0);
}

TEST(VmCatalog, LinearCatalogRejectsBadInput) {
  EXPECT_THROW((void)medcc::cloud::linear_catalog({}), medcc::InvalidArgument);
  EXPECT_THROW((void)medcc::cloud::linear_catalog({0.0}),
               medcc::InvalidArgument);
  EXPECT_THROW((void)medcc::cloud::linear_catalog({1.0}, -1.0),
               medcc::InvalidArgument);
}

TEST(VmCatalog, RandomLinearCatalogDistinctAscending) {
  medcc::util::Prng rng(4);
  const auto cat = medcc::cloud::random_linear_catalog(5, 20, rng);
  ASSERT_EQ(cat.size(), 5u);
  EXPECT_DOUBLE_EQ(cat.type(0).processing_power, 1.0);  // baseline included
  for (std::size_t j = 1; j < cat.size(); ++j) {
    EXPECT_GT(cat.type(j).processing_power, cat.type(j - 1).processing_power);
    // Linear pricing: rate proportional to power.
    EXPECT_NEAR(cat.type(j).cost_rate / cat.type(j).processing_power, 1.0,
                1e-12);
  }
}

TEST(VmCatalog, RandomLinearCatalogRejectsImpossible) {
  medcc::util::Prng rng(5);
  EXPECT_THROW((void)medcc::cloud::random_linear_catalog(10, 5, rng),
               medcc::InvalidArgument);
  EXPECT_THROW((void)medcc::cloud::random_linear_catalog(0, 5, rng),
               medcc::InvalidArgument);
}

TEST(Billing, RoundsUpPartialQuanta) {
  const BillingPolicy hourly(1.0);
  EXPECT_DOUBLE_EQ(hourly.billed_time(0.2), 1.0);
  EXPECT_DOUBLE_EQ(hourly.billed_time(1.0), 1.0);
  EXPECT_DOUBLE_EQ(hourly.billed_time(1.0001), 2.0);
  EXPECT_DOUBLE_EQ(hourly.billed_time(6.6667), 7.0);
  EXPECT_DOUBLE_EQ(hourly.billed_time(0.0), 0.0);
}

TEST(Billing, ExactBoundaryDoesNotRoundUp) {
  // Table VI's 7.0 s module bills 7 s, not 8 s -- fp-noise tolerance.
  const BillingPolicy per_second(1.0);
  EXPECT_DOUBLE_EQ(per_second.billed_time(7.0), 7.0);
  EXPECT_DOUBLE_EQ(per_second.billed_time(7.0 - 1e-12), 7.0);
  EXPECT_DOUBLE_EQ(per_second.billed_time(43.8), 44.0);
}

TEST(Billing, CostScalesWithRate) {
  const BillingPolicy hourly(1.0);
  EXPECT_DOUBLE_EQ(hourly.cost(6.6667, 1.0), 7.0);   // w4 on VT1 (example)
  EXPECT_DOUBLE_EQ(hourly.cost(1.3333, 4.0), 8.0);   // 2 quanta at rate 4
}

TEST(Billing, QuantumScaling) {
  const BillingPolicy minutes(1.0 / 60.0);
  EXPECT_NEAR(minutes.billed_time(0.5), 0.5, 1e-12);      // 30 min exact
  EXPECT_NEAR(minutes.billed_time(0.5001), 0.5 + 1.0 / 60.0, 1e-9);
}

TEST(Billing, RejectsBadArguments) {
  EXPECT_THROW(BillingPolicy(0.0), medcc::InvalidArgument);
  EXPECT_THROW(BillingPolicy(-1.0), medcc::InvalidArgument);
  const BillingPolicy hourly(1.0);
  EXPECT_THROW((void)hourly.billed_time(-1.0), medcc::InvalidArgument);
}

TEST(CostModel, ExecutionTimeEq6) {
  const VmType vm{"t", 15.0, 4.0};
  EXPECT_DOUBLE_EQ(medcc::cloud::execution_time(40.2, vm), 2.68);
  EXPECT_THROW((void)medcc::cloud::execution_time(-1.0, vm),
               medcc::InvalidArgument);
}

TEST(CostModel, ExecutionCostEq7) {
  const VmType vm{"t", 15.0, 4.0};
  const BillingPolicy hourly(1.0);
  // T = 2.68 -> T' = 3 -> C = 12.
  EXPECT_DOUBLE_EQ(medcc::cloud::execution_cost(
                       medcc::cloud::execution_time(40.2, vm), vm, hourly),
                   12.0);
}

TEST(CostModel, TransferTimeEq5) {
  medcc::cloud::NetworkModel net;
  EXPECT_TRUE(net.instantaneous());
  EXPECT_DOUBLE_EQ(medcc::cloud::transfer_time(100.0, net), 0.0);
  net.bandwidth = 10.0;
  net.link_delay = 0.5;
  EXPECT_DOUBLE_EQ(medcc::cloud::transfer_time(100.0, net), 10.5);
  EXPECT_DOUBLE_EQ(medcc::cloud::transfer_time(0.0, net), 0.0);
  EXPECT_THROW((void)medcc::cloud::transfer_time(-1.0, net),
               medcc::InvalidArgument);
}

TEST(CostModel, TransferCostEq4) {
  medcc::cloud::NetworkModel net;
  net.transfer_cost_rate = 0.25;
  EXPECT_DOUBLE_EQ(medcc::cloud::transfer_cost(8.0, net), 2.0);
  net.transfer_cost_rate = 0.0;  // intra-cloud: CR = 0
  EXPECT_DOUBLE_EQ(medcc::cloud::transfer_cost(8.0, net), 0.0);
}

TEST(CostModel, ProgramTimeAndCostEq1And2) {
  const VmType vm{"t", 10.0, 2.0};
  medcc::cloud::NetworkModel net;
  net.bandwidth = 5.0;
  medcc::cloud::VmLifecycleModel lifecycle;
  lifecycle.startup_time = 0.5;
  lifecycle.startup_cost = 1.0;
  lifecycle.storage_cost = 0.25;
  const BillingPolicy hourly(1.0);
  // T = 0.5 + 20/10 + 10/5 = 4.5.
  EXPECT_DOUBLE_EQ(
      medcc::cloud::program_time(20.0, 10.0, vm, net, lifecycle), 4.5);
  // C = 1.0 + 2*ceil(2.0) + 0 + 0.25 = 5.25.
  EXPECT_DOUBLE_EQ(medcc::cloud::program_cost(20.0, 10.0, vm, net, lifecycle,
                                              hourly),
                   5.25);
}

}  // namespace
