#include "workflow/random_workflow.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace {

using medcc::workflow::max_feasible_edges;
using medcc::workflow::min_feasible_edges;
using medcc::workflow::random_workflow;
using medcc::workflow::RandomWorkflowSpec;

TEST(RandomWorkflow, FeasibleEdgeBounds) {
  EXPECT_EQ(min_feasible_edges(2), 1u);
  EXPECT_EQ(max_feasible_edges(2), 1u);
  EXPECT_EQ(min_feasible_edges(5), 4u);
  EXPECT_EQ(max_feasible_edges(5), 10u);
  EXPECT_EQ(max_feasible_edges(100), 4950u);
}

TEST(RandomWorkflow, RejectsDegenerateSpecs) {
  medcc::util::Prng rng(1);
  RandomWorkflowSpec spec;
  spec.modules = 1;
  EXPECT_THROW((void)random_workflow(spec, rng), medcc::InvalidArgument);
  spec.modules = 5;
  spec.workload_min = -1.0;
  EXPECT_THROW((void)random_workflow(spec, rng), medcc::InvalidArgument);
  spec.workload_min = 10.0;
  spec.workload_max = 5.0;
  EXPECT_THROW((void)random_workflow(spec, rng), medcc::InvalidArgument);
  spec.workload_max = 20.0;
  spec.data_size_min = 3.0;
  spec.data_size_max = 1.0;
  EXPECT_THROW((void)random_workflow(spec, rng), medcc::InvalidArgument);
}

TEST(RandomWorkflow, EdgeTargetClampedToFeasible) {
  medcc::util::Prng rng(2);
  RandomWorkflowSpec spec;
  spec.modules = 6;
  spec.edges = 0;  // below minimum -> clamped up to 5 (pipeline)
  auto wf = random_workflow(spec, rng);
  EXPECT_EQ(wf.dependency_count(), 5u);
  spec.edges = 1000;  // above maximum -> clamped down to 15
  wf = random_workflow(spec, rng);
  EXPECT_EQ(wf.dependency_count(), 15u);
}

TEST(RandomWorkflow, MinimumEdgesYieldsPipeline) {
  medcc::util::Prng rng(3);
  RandomWorkflowSpec spec;
  spec.modules = 8;
  spec.edges = 7;
  const auto wf = random_workflow(spec, rng);
  // A connected single-entry/single-exit DAG with m-1 edges is a path.
  for (medcc::workflow::NodeId v = 0; v < 8; ++v) {
    EXPECT_LE(wf.graph().out_degree(v), 1u);
    EXPECT_LE(wf.graph().in_degree(v), 1u);
  }
}

TEST(RandomWorkflow, DeterministicGivenSeed) {
  RandomWorkflowSpec spec;
  spec.modules = 12;
  spec.edges = 25;
  medcc::util::Prng a(77), b(77);
  const auto wa = random_workflow(spec, a);
  const auto wb = random_workflow(spec, b);
  ASSERT_EQ(wa.dependency_count(), wb.dependency_count());
  for (std::size_t e = 0; e < wa.dependency_count(); ++e) {
    EXPECT_EQ(wa.graph().edge(e).src, wb.graph().edge(e).src);
    EXPECT_EQ(wa.graph().edge(e).dst, wb.graph().edge(e).dst);
  }
  for (std::size_t m = 0; m < wa.module_count(); ++m)
    EXPECT_DOUBLE_EQ(wa.module(m).workload, wb.module(m).workload);
}

TEST(RandomWorkflow, FixedEndpointsWhenRequested) {
  medcc::util::Prng rng(5);
  RandomWorkflowSpec spec;
  spec.modules = 10;
  spec.edges = 20;
  spec.weighted_endpoints = false;
  const auto wf = random_workflow(spec, rng);
  EXPECT_TRUE(wf.module(0).is_fixed());
  EXPECT_TRUE(wf.module(9).is_fixed());
  EXPECT_EQ(wf.computing_module_count(), 8u);
}

// Property sweep across the paper's problem-size shapes.
class RandomWorkflowPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(RandomWorkflowPropertyTest, StructuralInvariants) {
  const auto [m, edges, seed] = GetParam();
  medcc::util::Prng rng(seed);
  RandomWorkflowSpec spec;
  spec.modules = m;
  spec.edges = edges;
  spec.workload_min = 10.0;
  spec.workload_max = 100.0;
  const auto wf = random_workflow(spec, rng);

  // Exact edge count (after clamping).
  const std::size_t target =
      std::clamp(edges, min_feasible_edges(m), max_feasible_edges(m));
  EXPECT_EQ(wf.dependency_count(), target);

  // Valid single-entry/single-exit DAG with w0 / w_{m-1} as endpoints.
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.entry(), 0u);
  EXPECT_EQ(wf.exit(), m - 1);

  // All edges forward in id order (the paper's successor rule).
  for (std::size_t e = 0; e < wf.dependency_count(); ++e)
    EXPECT_LT(wf.graph().edge(e).src, wf.graph().edge(e).dst);

  // Workloads within the spec range.
  for (std::size_t v = 0; v < m; ++v) {
    EXPECT_GE(wf.module(v).workload, 10.0);
    EXPECT_LE(wf.module(v).workload, 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizes, RandomWorkflowPropertyTest,
    ::testing::Values(std::make_tuple(5u, 6u, 1u), std::make_tuple(10u, 17u, 2u),
                      std::make_tuple(15u, 65u, 3u),
                      std::make_tuple(25u, 201u, 4u),
                      std::make_tuple(50u, 503u, 5u),
                      std::make_tuple(100u, 2344u, 6u),
                      std::make_tuple(7u, 14u, 7u), std::make_tuple(8u, 18u, 8u),
                      std::make_tuple(40u, 434u, 9u),
                      std::make_tuple(90u, 1825u, 10u),
                      std::make_tuple(13u, 12u, 11u),   // sparse
                      std::make_tuple(13u, 78u, 12u))); // complete

}  // namespace
