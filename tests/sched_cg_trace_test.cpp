// Reproduces the Section V-B prose walkthrough move by move and checks
// the trace facility's invariants.
#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::critical_greedy;
using medcc::sched::critical_greedy_trace;
using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(CgTrace, ReproducesTheB57Walkthrough) {
  // "we first reschedule module w4 to a VM of type VT3 ... we recalculate
  //  a new critical path, and reschedule module w3 to type VT3 ... This
  //  process ... is repeated for w6 mapped to VT3 and w2 mapped to VT3"
  const auto trace = critical_greedy_trace(example_instance(), 57.0);
  ASSERT_EQ(trace.moves.size(), 4u);
  EXPECT_EQ(trace.moves[0].module, 4u);  // w4
  EXPECT_EQ(trace.moves[1].module, 3u);  // w3
  EXPECT_EQ(trace.moves[2].module, 6u);  // w6
  EXPECT_EQ(trace.moves[3].module, 2u);  // w2
  for (const auto& move : trace.moves) EXPECT_EQ(move.to_type, 2u);  // VT3

  // "which decreases the execution time of w4 by 6 and decreases the
  //  current total time TTotal to 12.1"
  EXPECT_NEAR(trace.moves[0].dt, 6.0, 1e-9);
  EXPECT_NEAR(trace.moves[0].med_after, 12.10, 0.005);
  // "resulting in an updated total time TTotal = 10.77"
  EXPECT_NEAR(trace.moves[1].med_after, 10.77, 0.005);
  // "the minimal end-to-end delay of 6.77 hours under the budget of 57
  //  with one unit of budget left unused"
  EXPECT_NEAR(trace.moves[3].med_after, 6.77, 0.005);
  EXPECT_DOUBLE_EQ(trace.moves[3].cost_after, 56.0);
}

TEST(CgTrace, TraceMatchesPlainRun) {
  const auto inst = example_instance();
  for (double budget : {48.0, 52.0, 60.0, 64.0}) {
    const auto plain = critical_greedy(inst, budget);
    const auto traced = critical_greedy_trace(inst, budget);
    EXPECT_EQ(traced.result.schedule, plain.schedule);
    EXPECT_EQ(traced.moves.size(), plain.iterations);
  }
}

TEST(CgTrace, MoveInvariants) {
  medcc::util::Prng rng(12);
  const auto inst = medcc::expr::make_instance({15, 40, 4}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  const double budget = 0.7 * bounds.cmin + 0.3 * bounds.cmax;
  const auto trace = critical_greedy_trace(inst, budget);
  double previous_med = medcc::sched::evaluate(
                            inst, medcc::sched::least_cost_schedule(inst))
                            .med;
  double previous_cost = bounds.cmin;
  for (const auto& move : trace.moves) {
    EXPECT_GT(move.dt, 0.0);
    EXPECT_NE(move.from_type, move.to_type);
    // Each move can only shrink or keep the makespan and grows the cost
    // by exactly its dc.
    EXPECT_LE(move.med_after, previous_med + 1e-9);
    EXPECT_NEAR(move.cost_after, previous_cost + move.dc, 1e-9);
    EXPECT_LE(move.cost_after, budget + 1e-9);
    previous_med = move.med_after;
    previous_cost = move.cost_after;
  }
  if (!trace.moves.empty()) {
    EXPECT_NEAR(trace.moves.back().med_after, trace.result.eval.med, 1e-9);
    EXPECT_NEAR(trace.moves.back().cost_after, trace.result.eval.cost,
                1e-9);
  }
}

}  // namespace
