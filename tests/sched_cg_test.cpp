#include "sched/critical_greedy.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/verify.hpp"
#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::cost_bounds;
using medcc::sched::critical_greedy;
using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

// ---------------------------------------------------------------------
// Table II reproduction: budget bands, schedules and MEDs.
// ---------------------------------------------------------------------

struct Table2Row {
  double budget;                 // a budget inside the band
  std::array<std::size_t, 6> types;  // VT index (0-based) for w1..w6
  double med;
  double cost;                   // schedule cost (band lower edge)
};

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Test, CriticalGreedyReproducesRow) {
  const auto row = GetParam();
  const auto inst = example_instance();
  const auto r = critical_greedy(inst, row.budget);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(r.schedule.type_of[i + 1], row.types[i])
        << "module w" << i + 1 << " at budget " << row.budget;
  EXPECT_NEAR(r.eval.med, row.med, 0.005);
  EXPECT_DOUBLE_EQ(r.eval.cost, row.cost);
  EXPECT_LE(r.eval.cost, row.budget);

  medcc::analysis::VerifyOptions vopts;
  vopts.budget = row.budget;
  const auto diag =
      medcc::analysis::verify_schedule(inst, r.schedule, r.eval, vopts);
  EXPECT_TRUE(diag.ok()) << diag.to_string();
}

// The six bands of Table II, probed at both edges of each band. The row
// with printed MED 8.10 is reproduced at its consistent value 8.19(3);
// the reconstruction proof (tools/reverse_engineer_example.cpp) shows no
// instance satisfies 8.10 together with the rest of the table.
INSTANTIATE_TEST_SUITE_P(
    Bands, Table2Test,
    ::testing::Values(
        Table2Row{48.0, {1, 1, 0, 0, 1, 0}, 16.77, 48.0},
        Table2Row{48.9, {1, 1, 0, 0, 1, 0}, 16.77, 48.0},
        Table2Row{49.0, {1, 1, 0, 2, 1, 0}, 12.10, 49.0},
        Table2Row{49.9, {1, 1, 0, 2, 1, 0}, 12.10, 49.0},
        Table2Row{50.0, {1, 1, 2, 2, 1, 0}, 10.77, 50.0},
        Table2Row{51.9, {1, 1, 2, 2, 1, 0}, 10.77, 50.0},
        Table2Row{52.0, {1, 1, 2, 2, 1, 2}, 8.193, 52.0},
        Table2Row{55.9, {1, 1, 2, 2, 1, 2}, 8.193, 52.0},
        Table2Row{56.0, {1, 2, 2, 2, 1, 2}, 6.77, 56.0},
        Table2Row{57.0, {1, 2, 2, 2, 1, 2}, 6.77, 56.0},  // prose B=57
        Table2Row{59.9, {1, 2, 2, 2, 1, 2}, 6.77, 56.0},
        Table2Row{60.0, {1, 2, 2, 2, 2, 2}, 5.43, 60.0},
        Table2Row{64.0, {1, 2, 2, 2, 2, 2}, 5.43, 60.0},
        Table2Row{1000.0, {1, 2, 2, 2, 2, 2}, 5.43, 60.0}));

TEST(CriticalGreedy, InfeasibleBudgetThrows) {
  const auto inst = example_instance();
  EXPECT_THROW((void)critical_greedy(inst, 47.99), medcc::Infeasible);
  EXPECT_THROW((void)critical_greedy(inst, 0.0), medcc::Infeasible);
}

TEST(CriticalGreedy, ExactCminIsLeastCostSchedule) {
  const auto inst = example_instance();
  const auto r = critical_greedy(inst, 48.0);
  EXPECT_EQ(r.schedule, medcc::sched::least_cost_schedule(inst));
  EXPECT_EQ(r.iterations, 0u);
}

TEST(CriticalGreedy, IterationsBoundedByUpgrades) {
  const auto inst = example_instance();
  const auto r = critical_greedy(inst, 1000.0);
  // At most (n-1) upgrades per module.
  EXPECT_LE(r.iterations, 6u * 2u);
}

TEST(CriticalGreedy, B57WalkthroughLeavesOneUnit) {
  // Prose: "we finally achieve the minimal end-to-end delay of 6.77 hours
  // under the budget of 57 with one unit of budget left unused".
  const auto inst = example_instance();
  const auto r = critical_greedy(inst, 57.0);
  EXPECT_NEAR(r.eval.med, 6.77, 0.005);
  EXPECT_DOUBLE_EQ(57.0 - r.eval.cost, 1.0);
}

// ---------------------------------------------------------------------
// Invariants on random instances.
// ---------------------------------------------------------------------

class CgPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(CgPropertyTest, FeasibilityAndDominance) {
  const auto [m, seed] = GetParam();
  medcc::util::Prng rng(seed);
  const auto inst = medcc::expr::make_instance(
      {m, m * (m - 1) / 3, 4}, rng);
  const auto bounds = cost_bounds(inst);
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto least_eval = medcc::sched::evaluate(inst, least);

  for (double budget : medcc::sched::budget_levels(bounds, 8)) {
    const auto r = critical_greedy(inst, budget);
    // 1. Never exceeds the budget.
    EXPECT_LE(r.eval.cost, budget + 1e-6);
    // 2. Never worse than the least-cost seed (each applied reassignment
    //    strictly shrinks a critical module's time, so the makespan can
    //    only go down along one run). Note MED is NOT guaranteed to be
    //    monotone across *budgets*: a bigger budget can afford a larger
    //    first upgrade that greedily leads to a worse end state -- see
    //    GreedyCanBeNonMonotoneAcrossBudgets below.
    EXPECT_LE(r.eval.med, least_eval.med + 1e-9);
    // 3. The evaluation is self-consistent.
    EXPECT_NEAR(r.eval.med, r.eval.cpm.makespan, 1e-12);
  }

  // 5. With an unlimited budget the MED equals the fastest schedule's.
  const auto unlimited = critical_greedy(inst, bounds.cmax * 10.0);
  const auto fastest =
      medcc::sched::evaluate(inst, medcc::sched::fastest_schedule(inst));
  EXPECT_NEAR(unlimited.eval.med, fastest.med, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CgPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(5, 8, 12, 20, 35),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(CriticalGreedy, GreedyCanBeNonMonotoneAcrossBudgets) {
  // Documented behaviour: Critical-Greedy is a heuristic and its MED is
  // not necessarily non-increasing in the budget (unlike the paper's
  // hand-picked example) -- a larger budget can unlock a large-dT upgrade
  // whose cost starves later rounds. This deterministic instance (size
  // (5,6,3), seed 2 of our generator) exhibits an increase.
  medcc::util::Prng rng(2);
  const auto inst = medcc::expr::make_instance({5, 6, 3}, rng);
  const auto bounds = cost_bounds(inst);
  bool increased = false;
  double previous = std::numeric_limits<double>::infinity();
  for (double budget : medcc::sched::budget_levels(bounds, 8)) {
    const double med = critical_greedy(inst, budget).eval.med;
    if (med > previous + 1e-9) increased = true;
    previous = med;
  }
  EXPECT_TRUE(increased);
}

// ---------------------------------------------------------------------
// Ablation options.
// ---------------------------------------------------------------------

TEST(CriticalGreedyOptions, AllModulesVariantStillFeasible) {
  medcc::util::Prng rng(9);
  const auto inst = medcc::expr::make_instance({15, 40, 4}, rng);
  const auto bounds = cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  medcc::sched::CriticalGreedyOptions opts;
  opts.all_modules = true;
  const auto r = critical_greedy(inst, budget, opts);
  EXPECT_LE(r.eval.cost, budget + 1e-6);
}

TEST(CriticalGreedyOptions, RatioCriterionStillFeasible) {
  medcc::util::Prng rng(10);
  const auto inst = medcc::expr::make_instance({15, 40, 4}, rng);
  const auto bounds = cost_bounds(inst);
  const double budget = 0.5 * (bounds.cmin + bounds.cmax);
  medcc::sched::CriticalGreedyOptions opts;
  opts.ratio_criterion = true;
  const auto r = critical_greedy(inst, budget, opts);
  EXPECT_LE(r.eval.cost, budget + 1e-6);
  // Critical-only candidates: MED never above the least-cost seed.
  const auto least_eval = medcc::sched::evaluate(
      inst, medcc::sched::least_cost_schedule(inst));
  EXPECT_LE(r.eval.med, least_eval.med + 1e-9);
}

TEST(CriticalGreedy, SingleModulePicksBestAffordable) {
  medcc::workflow::Workflow wf;
  (void)wf.add_module("only", 30.0);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  // Types cost: VT1 ceil(10)=10, VT2 ceil(2)*4=8, VT3 1*8=8.
  // Least cost tie(8): VT3 faster. So Cmin=8 via VT3 already fastest.
  const auto r = critical_greedy(inst, 8.0);
  EXPECT_EQ(r.schedule.type_of[0], 2u);
  EXPECT_NEAR(r.eval.med, 1.0, 1e-12);
}

}  // namespace
