#include "dag/dot.hpp"

#include <gtest/gtest.h>

#include "dag/critical_path.hpp"
#include "sched/bounds.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::dag::Dag;
using medcc::dag::DotOptions;
using medcc::dag::to_dot;

Dag chain3() {
  Dag g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

TEST(Dot, DefaultLabelsAndEdges) {
  const auto out = to_dot(chain3());
  EXPECT_NE(out.find("digraph workflow"), std::string::npos);
  EXPECT_NE(out.find("n0 [label=\"w0\"]"), std::string::npos);
  EXPECT_NE(out.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(out.find("n1 -> n2;"), std::string::npos);
}

TEST(Dot, CustomLabelsAndHighlight) {
  DotOptions opts;
  opts.graph_name = "g";
  opts.node_labels = {"alpha", "beta", "gamma"};
  opts.edge_labels = {"5", "7"};
  opts.highlight = {true, false, true};
  const auto out = to_dot(chain3(), opts);
  EXPECT_NE(out.find("digraph g"), std::string::npos);
  EXPECT_NE(out.find("label=\"alpha\", style=filled"), std::string::npos);
  EXPECT_NE(out.find("label=\"beta\"];"), std::string::npos);
  EXPECT_NE(out.find("[label=\"5\"]"), std::string::npos);
}

TEST(Dot, ArityEnforced) {
  DotOptions opts;
  opts.node_labels = {"only-one"};
  EXPECT_THROW((void)to_dot(chain3(), opts), medcc::LogicError);
  DotOptions opts2;
  opts2.edge_labels = {"1", "2", "3"};
  EXPECT_THROW((void)to_dot(chain3(), opts2), medcc::LogicError);
}

TEST(Dot, WorkflowWithCriticalPathHighlight) {
  // End-to-end: export the example workflow with the least-cost critical
  // path highlighted -- the visual debugging flow a user would run.
  const auto inst = medcc::sched::Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog());
  const auto least = medcc::sched::least_cost_schedule(inst);
  const auto eval = medcc::sched::evaluate(inst, least);
  DotOptions opts;
  opts.node_labels = inst.workflow().module_names();
  opts.highlight = eval.cpm.critical;
  const auto out = to_dot(inst.workflow().graph(), opts);
  // The least-cost CP is w0-w2-w4-w6-w7; w2 must be highlighted.
  EXPECT_NE(out.find("label=\"w2\", style=filled"), std::string::npos);
  // w3 has slack; it must not be filled.
  EXPECT_NE(out.find("label=\"w3\"];"), std::string::npos);
}

TEST(Dot, EmptyGraphStillValidDot) {
  const auto out = to_dot(Dag{});
  EXPECT_NE(out.find("digraph"), std::string::npos);
  EXPECT_NE(out.find('}'), std::string::npos);
}

}  // namespace
