// Metamorphic properties of the MED-CC model and schedulers: systematic
// transformations of an instance with a predictable effect on the result.
// These catch unit-confusion and tie-breaking bugs that example-based
// tests miss.
#include <gtest/gtest.h>

#include <algorithm>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/gain_loss.hpp"
#include "workflow/random_workflow.hpp"

namespace {

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::sched::Instance;

struct Parts {
  medcc::workflow::Workflow wf;
  std::vector<VmType> types;
};

Parts random_parts(std::uint64_t seed) {
  medcc::util::Prng rng(seed);
  medcc::workflow::RandomWorkflowSpec spec;
  spec.modules = 10;
  spec.edges = 20;
  auto wf = medcc::workflow::random_workflow(spec, rng);
  auto catalog = medcc::cloud::random_linear_catalog(4, 16, rng, 1.0, 1.0,
                                                     0.25);
  return Parts{std::move(wf), catalog.types()};
}

class MetamorphicTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetamorphicTest, JointWorkloadPowerScalingIsInvariant) {
  // Scaling every workload and every processing power by k leaves all
  // execution times -- hence TE, CE, bounds and schedules -- unchanged.
  const auto parts = random_parts(GetParam());
  const double k = 3.7;
  medcc::workflow::Workflow scaled_wf;
  for (std::size_t i = 0; i < parts.wf.module_count(); ++i) {
    const auto& m = parts.wf.module(i);
    if (m.is_fixed())
      scaled_wf.add_fixed_module(m.name, *m.fixed_time);
    else
      scaled_wf.add_module(m.name, m.workload * k);
  }
  for (std::size_t e = 0; e < parts.wf.dependency_count(); ++e)
    scaled_wf.add_dependency(parts.wf.graph().edge(e).src,
                             parts.wf.graph().edge(e).dst,
                             parts.wf.data_size(e));
  auto scaled_types = parts.types;
  for (auto& t : scaled_types) t.processing_power *= k;

  const auto a = Instance::from_model(parts.wf, VmCatalog(parts.types));
  const auto b = Instance::from_model(scaled_wf, VmCatalog(scaled_types));
  const auto bounds_a = medcc::sched::cost_bounds(a);
  const auto bounds_b = medcc::sched::cost_bounds(b);
  EXPECT_NEAR(bounds_a.cmin, bounds_b.cmin, 1e-9);
  EXPECT_NEAR(bounds_a.cmax, bounds_b.cmax, 1e-9);
  const double budget = 0.5 * (bounds_a.cmin + bounds_a.cmax);
  const auto ra = medcc::sched::critical_greedy(a, budget);
  const auto rb = medcc::sched::critical_greedy(b, budget);
  EXPECT_EQ(ra.schedule, rb.schedule);
  EXPECT_NEAR(ra.eval.med, rb.eval.med, 1e-9);
}

TEST_P(MetamorphicTest, PriceAndBudgetScalingIsInvariant) {
  // Scaling every rate AND the budget by k changes costs by k but no
  // scheduling decision.
  const auto parts = random_parts(GetParam() ^ 0x5555);
  const double k = 0.13;
  auto scaled_types = parts.types;
  for (auto& t : scaled_types) t.cost_rate *= k;

  const auto a = Instance::from_model(parts.wf, VmCatalog(parts.types));
  const auto b = Instance::from_model(parts.wf, VmCatalog(scaled_types));
  const auto bounds_a = medcc::sched::cost_bounds(a);
  EXPECT_NEAR(medcc::sched::cost_bounds(b).cmin, bounds_a.cmin * k, 1e-9);
  const double budget = 0.5 * (bounds_a.cmin + bounds_a.cmax);
  const auto ra = medcc::sched::critical_greedy(a, budget);
  const auto rb = medcc::sched::critical_greedy(b, budget * k);
  EXPECT_EQ(ra.schedule, rb.schedule);
  EXPECT_NEAR(rb.eval.cost, ra.eval.cost * k, 1e-9);
  EXPECT_NEAR(rb.eval.med, ra.eval.med, 1e-9);
}

TEST_P(MetamorphicTest, CatalogPermutationIsOutcomeInvariant) {
  // Reordering the VM types permutes indices but cannot change the MED or
  // cost any scheduler achieves (tie-breaking aside, the *values* match
  // for CG because its choices depend only on (time, cost) pairs; we
  // compare evaluations, not raw indices).
  const auto parts = random_parts(GetParam() ^ 0xAAAA);
  auto reversed_types = parts.types;
  std::reverse(reversed_types.begin(), reversed_types.end());

  const auto a = Instance::from_model(parts.wf, VmCatalog(parts.types));
  const auto b = Instance::from_model(parts.wf, VmCatalog(reversed_types));
  const auto bounds_a = medcc::sched::cost_bounds(a);
  const auto bounds_b = medcc::sched::cost_bounds(b);
  EXPECT_NEAR(bounds_a.cmin, bounds_b.cmin, 1e-9);
  EXPECT_NEAR(bounds_a.cmax, bounds_b.cmax, 1e-9);
  for (double frac : {0.25, 0.75}) {
    const double budget =
        bounds_a.cmin + frac * (bounds_a.cmax - bounds_a.cmin);
    const auto ra = medcc::sched::critical_greedy(a, budget);
    const auto rb = medcc::sched::critical_greedy(b, budget);
    EXPECT_NEAR(ra.eval.med, rb.eval.med, 1e-9) << "frac " << frac;
    EXPECT_NEAR(ra.eval.cost, rb.eval.cost, 1e-9);
  }
}

TEST_P(MetamorphicTest, DominatedTypeIsNeverUsed) {
  // A type slower AND pricier than an existing one can never appear in a
  // least-cost, fastest, CG or GAIN3 schedule.
  const auto parts = random_parts(GetParam() ^ 0x1234);
  auto with_dud = parts.types;
  // Strictly dominated by the first type.
  with_dud.push_back(VmType{"dud", parts.types.front().processing_power * 0.5,
                            parts.types.front().cost_rate * 2.0});
  const std::size_t dud_index = with_dud.size() - 1;
  const auto inst = Instance::from_model(parts.wf, VmCatalog(with_dud));
  const auto bounds = medcc::sched::cost_bounds(inst);

  const auto check = [&](const medcc::sched::Schedule& s) {
    for (auto i : inst.workflow().computing_modules())
      EXPECT_NE(s.type_of[i], dud_index);
  };
  check(medcc::sched::least_cost_schedule(inst));
  check(medcc::sched::fastest_schedule(inst));
  for (double frac : {0.3, 0.9}) {
    const double budget = bounds.cmin + frac * (bounds.cmax - bounds.cmin);
    check(medcc::sched::critical_greedy(inst, budget).schedule);
    check(medcc::sched::gain3(inst, budget).schedule);
  }
}

TEST_P(MetamorphicTest, FinerBillingNeverRaisesTheCostFloor) {
  const auto parts = random_parts(GetParam() ^ 0x9999);
  const auto coarse = Instance::from_model(
      parts.wf, VmCatalog(parts.types), medcc::cloud::BillingPolicy(1.0));
  const auto fine = Instance::from_model(
      parts.wf, VmCatalog(parts.types), medcc::cloud::BillingPolicy(0.5));
  EXPECT_LE(medcc::sched::cost_bounds(fine).cmin,
            medcc::sched::cost_bounds(coarse).cmin + 1e-9);
  // Module-wise: finer quanta never bill more for the same run.
  for (auto i : coarse.workflow().computing_modules())
    for (std::size_t j = 0; j < coarse.type_count(); ++j)
      EXPECT_LE(fine.cost(i, j), coarse.cost(i, j) + 1e-9);
}

TEST_P(MetamorphicTest, AddingBudgetNeverHurtsTheEnvelope) {
  // CG itself is non-monotone, but the best-over-prefix envelope is
  // monotone by construction -- and the optimal is truly monotone. Check
  // the envelope the budget_for_deadline helper relies on.
  const auto parts = random_parts(GetParam() ^ 0x7777);
  const auto inst = Instance::from_model(parts.wf, VmCatalog(parts.types));
  const auto bounds = medcc::sched::cost_bounds(inst);
  double best = std::numeric_limits<double>::infinity();
  for (double budget : medcc::sched::budget_levels(bounds, 12)) {
    const double med = medcc::sched::critical_greedy(inst, budget).eval.med;
    best = std::min(best, med);
    EXPECT_LE(best, med + 1e-9);
  }
  // The envelope ends at the fastest MED.
  const auto fastest = medcc::sched::evaluate(
      inst, medcc::sched::fastest_schedule(inst));
  EXPECT_NEAR(best, fastest.med, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
