#include "workflow/workflow.hpp"

#include <gtest/gtest.h>

namespace {

using medcc::workflow::Workflow;

Workflow small_valid() {
  Workflow wf;
  const auto a = wf.add_module("a", 10.0);
  const auto b = wf.add_module("b", 20.0);
  const auto c = wf.add_module("c", 30.0);
  wf.add_dependency(a, b, 1.0);
  wf.add_dependency(a, c, 2.0);
  wf.add_dependency(b, c, 3.0);
  return wf;
}

TEST(Workflow, BasicAccessors) {
  const auto wf = small_valid();
  EXPECT_EQ(wf.module_count(), 3u);
  EXPECT_EQ(wf.dependency_count(), 3u);
  EXPECT_EQ(wf.module(0).name, "a");
  EXPECT_DOUBLE_EQ(wf.module(1).workload, 20.0);
  EXPECT_DOUBLE_EQ(wf.data_size(2), 3.0);
  EXPECT_DOUBLE_EQ(wf.total_workload(), 60.0);
}

TEST(Workflow, EntryAndExit) {
  const auto wf = small_valid();
  EXPECT_EQ(wf.entry(), 0u);
  EXPECT_EQ(wf.exit(), 2u);
}

TEST(Workflow, ValidWorkflowPassesValidation) {
  EXPECT_TRUE(small_valid().validate().ok());
  EXPECT_NO_THROW(small_valid().ensure_valid());
}

TEST(Workflow, EmptyWorkflowInvalid) {
  Workflow wf;
  const auto report = wf.validate();
  EXPECT_FALSE(report.ok());
  EXPECT_THROW(wf.ensure_valid(), medcc::InvalidArgument);
}

TEST(Workflow, MultipleSourcesDetected) {
  Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 1.0);
  const auto c = wf.add_module("c", 1.0);
  wf.add_dependency(a, c);
  wf.add_dependency(b, c);
  const auto report = wf.validate();
  EXPECT_FALSE(report.ok());
}

TEST(Workflow, MultipleSinksDetected) {
  Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 1.0);
  const auto c = wf.add_module("c", 1.0);
  wf.add_dependency(a, b);
  wf.add_dependency(a, c);
  EXPECT_FALSE(wf.validate().ok());
}

TEST(Workflow, FixedModulesAreNotComputing) {
  Workflow wf;
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto mid = wf.add_module("mid", 5.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(entry, mid);
  wf.add_dependency(mid, exit);
  EXPECT_TRUE(wf.validate().ok());
  EXPECT_EQ(wf.computing_module_count(), 1u);
  EXPECT_EQ(wf.computing_modules(), std::vector<medcc::workflow::NodeId>{mid});
  EXPECT_TRUE(wf.module(entry).is_fixed());
  EXPECT_FALSE(wf.module(mid).is_fixed());
  EXPECT_DOUBLE_EQ(wf.total_workload(), 5.0);
}

TEST(Workflow, NegativeWorkloadRejected) {
  Workflow wf;
  EXPECT_THROW((void)wf.add_module("bad", -1.0), medcc::InvalidArgument);
  EXPECT_THROW((void)wf.add_fixed_module("bad", -1.0),
               medcc::InvalidArgument);
}

TEST(Workflow, NegativeDataSizeRejected) {
  Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 1.0);
  EXPECT_THROW((void)wf.add_dependency(a, b, -0.5), medcc::InvalidArgument);
}

TEST(Workflow, ModuleNamesListed) {
  const auto wf = small_valid();
  EXPECT_EQ(wf.module_names(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Workflow, ValidationReportNamesProblems) {
  Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("island", 1.0);
  (void)a;
  (void)b;
  const auto report = wf.validate();  // two sources, two sinks
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.problems.size(), 2u);
}

}  // namespace
