#include "workflow/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "workflow/patterns.hpp"
#include "workflow/random_workflow.hpp"
#include "workflow/wrf.hpp"

namespace {

using medcc::workflow::catalog_from_text;
using medcc::workflow::to_text;
using medcc::workflow::Workflow;
using medcc::workflow::workflow_from_text;

void expect_same_structure(const Workflow& a, const Workflow& b) {
  ASSERT_EQ(a.module_count(), b.module_count());
  ASSERT_EQ(a.dependency_count(), b.dependency_count());
  for (std::size_t i = 0; i < a.module_count(); ++i) {
    EXPECT_EQ(a.module(i).name, b.module(i).name);
    EXPECT_EQ(a.module(i).is_fixed(), b.module(i).is_fixed());
    if (a.module(i).is_fixed())
      EXPECT_DOUBLE_EQ(*a.module(i).fixed_time, *b.module(i).fixed_time);
    else
      EXPECT_DOUBLE_EQ(a.module(i).workload, b.module(i).workload);
  }
  for (std::size_t e = 0; e < a.dependency_count(); ++e) {
    EXPECT_EQ(a.graph().edge(e).src, b.graph().edge(e).src);
    EXPECT_EQ(a.graph().edge(e).dst, b.graph().edge(e).dst);
    EXPECT_DOUBLE_EQ(a.data_size(e), b.data_size(e));
  }
}

TEST(WorkflowIo, RoundTripExample6) {
  const auto original = medcc::workflow::example6();
  const auto reparsed = workflow_from_text(to_text(original));
  expect_same_structure(original, reparsed);
}

TEST(WorkflowIo, RoundTripWrf) {
  const auto original = medcc::workflow::wrf_experiment_grouped();
  expect_same_structure(original, workflow_from_text(to_text(original)));
}

TEST(WorkflowIo, RoundTripRandomInstances) {
  medcc::util::Prng rng(5);
  for (int k = 0; k < 5; ++k) {
    medcc::workflow::RandomWorkflowSpec spec;
    spec.modules = 12;
    spec.edges = 30;
    spec.data_size_min = 0.5;
    spec.data_size_max = 9.5;
    const auto original = medcc::workflow::random_workflow(spec, rng);
    expect_same_structure(original, workflow_from_text(to_text(original)));
  }
}

TEST(WorkflowIo, CommentsAndBlankLinesIgnored) {
  const auto wf = workflow_from_text(
      "# a comment\n\nworkflow v1\n# another\nmodule a workload 5\n"
      "module b workload 3\n\nedge a b data 2\n");
  EXPECT_EQ(wf.module_count(), 2u);
  EXPECT_DOUBLE_EQ(wf.data_size(0), 2.0);
}

TEST(WorkflowIo, EdgeWithoutDataDefaultsToZero) {
  const auto wf = workflow_from_text(
      "workflow v1\nmodule a workload 5\nmodule b workload 3\nedge a b\n");
  EXPECT_DOUBLE_EQ(wf.data_size(0), 0.0);
}

TEST(WorkflowIo, ParseErrorsAreLineNumbered) {
  const auto expect_throw_with = [](const std::string& text,
                                    const std::string& needle) {
    try {
      (void)workflow_from_text(text);
      FAIL() << "expected a parse error for: " << text;
    } catch (const medcc::InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_throw_with("bogus v1\n", "workflow v1");
  expect_throw_with("workflow v1\nmodule a workload x\n", "number");
  expect_throw_with("workflow v1\nmodule a workload 1\nmodule a workload 2\n",
                    "duplicate");
  expect_throw_with("workflow v1\nedge a b\n", "unknown module");
  expect_throw_with("workflow v1\nfrobnicate\n", "unknown directive");
  expect_throw_with("workflow v1\nmodule a workload 1 extra\n", "expected");
  expect_throw_with("", "header");
}

TEST(WorkflowIo, StructurallyInvalidInputRejected) {
  // Two isolated modules: two entries, two exits.
  EXPECT_THROW((void)workflow_from_text(
                   "workflow v1\nmodule a workload 1\nmodule b workload 1\n"),
               medcc::InvalidArgument);
  // Self-loop via duplicate edge.
  EXPECT_THROW(
      (void)workflow_from_text("workflow v1\nmodule a workload 1\n"
                               "module b workload 1\nedge a b\nedge a b\n"),
      medcc::InvalidArgument);
}

TEST(CatalogIo, RoundTrip) {
  const auto original = medcc::cloud::example_catalog();
  const auto reparsed = catalog_from_text(to_text(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t j = 0; j < original.size(); ++j) {
    EXPECT_EQ(reparsed.type(j).name, original.type(j).name);
    EXPECT_DOUBLE_EQ(reparsed.type(j).processing_power,
                     original.type(j).processing_power);
    EXPECT_DOUBLE_EQ(reparsed.type(j).cost_rate, original.type(j).cost_rate);
  }
}

TEST(CatalogIo, ParseErrors) {
  EXPECT_THROW((void)catalog_from_text("catalog v2\n"),
               medcc::InvalidArgument);
  EXPECT_THROW((void)catalog_from_text("catalog v1\ntype a power x rate 1\n"),
               medcc::InvalidArgument);
  EXPECT_THROW((void)catalog_from_text("catalog v1\ntype a power 0 rate 1\n"),
               medcc::InvalidArgument);  // catalog validation kicks in
}

TEST(FileIo, SaveAndLoad) {
  const std::string wf_path = "/tmp/medcc_io_test_wf.txt";
  const std::string cat_path = "/tmp/medcc_io_test_cat.txt";
  medcc::workflow::save_workflow(medcc::workflow::example6(), wf_path);
  medcc::workflow::save_catalog(medcc::cloud::example_catalog(), cat_path);
  expect_same_structure(medcc::workflow::example6(),
                        medcc::workflow::load_workflow(wf_path));
  EXPECT_EQ(medcc::workflow::load_catalog(cat_path).size(), 3u);
  std::remove(wf_path.c_str());
  std::remove(cat_path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)medcc::workflow::load_workflow("/nonexistent/x.txt"),
               medcc::Error);
}

}  // namespace
