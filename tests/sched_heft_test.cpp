#include "sched/heft.hpp"

#include <gtest/gtest.h>

#include "analysis/verify.hpp"
#include "expr/instance_gen.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::cloud::VmType;
using medcc::sched::heft;
using medcc::sched::Instance;

Instance pipeline_instance() {
  const std::vector<double> wl = {10.0, 20.0, 30.0};
  return Instance::from_model(medcc::workflow::pipeline(wl),
                              medcc::cloud::example_catalog());
}

TEST(Heft, EmptyPoolRejected) {
  EXPECT_THROW((void)heft(pipeline_instance(), {}), medcc::InvalidArgument);
}

TEST(Heft, PipelineOnOneMachineIsSerial) {
  const auto inst = pipeline_instance();
  const auto r = heft(inst, {VmType{"m", 10.0, 1.0}});
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);  // (10+20+30)/10
  // Placements are back-to-back in topological order.
  EXPECT_DOUBLE_EQ(r.placement[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.placement[1].start, 1.0);
  EXPECT_DOUBLE_EQ(r.placement[2].start, 3.0);
}

TEST(Heft, FasterMachinePreferred) {
  const auto inst = pipeline_instance();
  const auto r =
      heft(inst, {VmType{"slow", 1.0, 1.0}, VmType{"fast", 10.0, 1.0}});
  for (const auto& p : r.placement) EXPECT_EQ(p.machine, 1u);
}

TEST(Heft, ParallelBranchesSpreadAcrossMachines) {
  medcc::util::Prng rng(1);
  const auto wf = medcc::workflow::fork_join(2, 1, 10.0, 10.0, rng);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  const auto two = heft(inst, {VmType{"a", 10.0, 1.0}, VmType{"b", 10.0, 1.0}});
  const auto one = heft(inst, {VmType{"a", 10.0, 1.0}});
  EXPECT_LT(two.makespan, one.makespan);
  // The two branch modules land on different machines.
  const auto branches = inst.workflow().computing_modules();
  ASSERT_EQ(branches.size(), 2u);
  EXPECT_NE(two.placement[branches[0]].machine,
            two.placement[branches[1]].machine);
}

TEST(Heft, UpwardRanksDecreaseAlongEdges) {
  medcc::util::Prng rng(2);
  const auto inst = medcc::expr::make_instance({10, 20, 3}, rng);
  const std::vector<VmType> pool = {VmType{"a", 5.0, 1.0},
                                    VmType{"b", 10.0, 2.0}};
  const auto r = heft(inst, pool);
  const auto& g = inst.workflow().graph();
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_GE(r.upward_rank[g.edge(e).src],
              r.upward_rank[g.edge(e).dst] - 1e-9);
}

TEST(Heft, RespectsPrecedenceAndNoMachineOverlap) {
  medcc::util::Prng rng(3);
  const auto inst = medcc::expr::make_instance({15, 40, 4}, rng);
  std::vector<VmType> pool;
  for (int k = 0; k < 3; ++k)
    pool.push_back(VmType{"m" + std::to_string(k),
                          static_cast<double>(2 + 3 * k), 1.0});
  const auto r = heft(inst, pool);
  // The analysis verifier independently checks precedence, machine
  // exclusivity, durations and the reported makespan.
  const auto diag =
      medcc::analysis::verify_placement(inst, pool, r.placement, r.makespan);
  EXPECT_TRUE(diag.ok()) << diag.to_string();
  const auto& g = inst.workflow().graph();
  // Precedence.
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    EXPECT_GE(r.placement[g.edge(e).dst].start + 1e-9,
              r.placement[g.edge(e).src].finish);
  // No overlap on any machine.
  for (std::size_t a = 0; a < r.placement.size(); ++a)
    for (std::size_t b = a + 1; b < r.placement.size(); ++b) {
      if (r.placement[a].machine != r.placement[b].machine) continue;
      const bool disjoint =
          r.placement[a].finish <= r.placement[b].start + 1e-9 ||
          r.placement[b].finish <= r.placement[a].start + 1e-9;
      EXPECT_TRUE(disjoint) << "modules " << a << " and " << b << " overlap";
    }
  // Makespan is the max finish.
  double max_finish = 0.0;
  for (const auto& p : r.placement)
    max_finish = std::max(max_finish, p.finish);
  EXPECT_DOUBLE_EQ(r.makespan, max_finish);
}

TEST(Heft, MorePoolNeverHurtsMuch) {
  // HEFT is a heuristic, but adding an identical machine to the pool
  // should never make this fork-join workload slower.
  medcc::util::Prng rng(4);
  const auto wf = medcc::workflow::fork_join(4, 2, 5.0, 25.0, rng);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  const VmType machine{"m", 10.0, 1.0};
  const auto small = heft(inst, {machine, machine});
  const auto large = heft(inst, {machine, machine, machine, machine});
  EXPECT_LE(large.makespan, small.makespan + 1e-9);
}

TEST(Heft, InsertionFillsGaps) {
  // Chain a->b plus independent c: c can slot before b on the same machine
  // if a gap exists.
  medcc::workflow::Workflow wf;
  const auto a = wf.add_module("a", 10.0);
  const auto b = wf.add_module("b", 10.0);
  const auto c = wf.add_module("c", 5.0);
  const auto sink = wf.add_module("sink", 1.0);
  wf.add_dependency(a, b);
  wf.add_dependency(b, sink);
  wf.add_dependency(a, c);
  wf.add_dependency(c, sink);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  const auto r = heft(inst, {VmType{"m", 10.0, 1.0}});
  // Serial feasibility on one machine.
  EXPECT_GE(r.makespan, 2.6 - 1e-9);  // (10+10+5+1)/10
}

}  // namespace
