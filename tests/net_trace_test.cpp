// Wire-level behaviour of the tracing extension: the 17-byte trace
// context codec and its flag validation, traced_solve_request framing
// (a verbatim solve_request body behind the prefix), the repl_insert
// trace suffix, the trace_dump exchange, and the end-to-end contract
// over loopback -- a traced solve lands in the server's trace dump,
// response bytes are identical with tracing on and off (fresh solve
// AND wire-cache hit), and a tracerless server still answers traced
// frames.
#include "net/codec.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "util/socket.hpp"
#include "workflow/patterns.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

namespace {

using medcc::net::Client;
using medcc::net::ClientConfig;
using medcc::net::CodecError;
using medcc::net::FrameHeader;
using medcc::net::FrameType;
using medcc::net::NetError;
using medcc::net::Server;
using medcc::net::ServerConfig;
using medcc::net::TraceDump;
using medcc::net::WireError;
using medcc::net::WireReader;
using medcc::obs::Stage;
using medcc::obs::Span;
using medcc::obs::TraceContext;
using medcc::obs::TraceId;
using medcc::obs::TraceRecord;
using medcc::obs::Tracer;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;

std::shared_ptr<const Instance> example_instance() {
  return std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
}

SchedulingRequest request_for(std::shared_ptr<const Instance> inst,
                              double budget, std::string solver = "cg") {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = budget;
  req.solver = std::move(solver);
  return req;
}

ClientConfig client_for(const Server& server) {
  ClientConfig config;
  config.port = server.port();
  return config;
}

/// A bare blocking TCP connection, as in net_server_test: lets a test
/// choose its own request ids and see raw response frames.
class RawConn {
public:
  explicit RawConn(std::uint16_t port) {
    fd_.reset(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd_.valid()) throw NetError("raw socket failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0)
      throw NetError("raw connect failed");
  }

  void send(std::string_view bytes) {
    ASSERT_TRUE(medcc::util::send_all(fd_.get(), bytes.data(), bytes.size()));
  }

  /// Reads one full frame (blocking) and returns its raw bytes, header
  /// included; returns "" on orderly EOF.
  std::string read_raw_frame() {
    for (;;) {
      const auto parsed = medcc::net::parse_frame_header(buffer_);
      if (parsed && buffer_.size() >=
                        medcc::net::kHeaderSize + parsed->body_size) {
        std::string frame =
            buffer_.substr(0, medcc::net::kHeaderSize + parsed->body_size);
        buffer_.erase(0, medcc::net::kHeaderSize + parsed->body_size);
        return frame;
      }
      char chunk[4096];
      const long n = medcc::util::recv_some(fd_.get(), chunk, sizeof(chunk));
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

private:
  medcc::util::FdHandle fd_;
  std::string buffer_;
};

// -- trace-context codec ---------------------------------------------------

TEST(TraceCodec, ContextRoundTripsBothFlagStates) {
  for (const bool sampled : {false, true}) {
    const TraceContext context{TraceId{0x1122334455667788ull,
                                       0x99aabbccddeeff00ull},
                               sampled};
    std::string wire;
    medcc::net::append_trace_context(wire, context);
    ASSERT_EQ(wire.size(), medcc::net::kTraceContextSize);

    WireReader reader(wire);
    const TraceContext back = medcc::net::read_trace_context(reader);
    EXPECT_TRUE(reader.done());
    EXPECT_EQ(back.id, context.id);
    EXPECT_EQ(back.sampled, sampled);
  }
}

TEST(TraceCodec, UnknownContextFlagBitsAreRejected) {
  // Reserved flag bits must fail loudly, not be silently dropped --
  // that is what lets a future flag be added safely.
  std::string wire;
  medcc::net::append_trace_context(wire, TraceContext{TraceId{1, 2}, true});
  wire[16] = static_cast<char>(0x02);  // unknown bit, sampled bit clear
  WireReader reader(wire);
  try {
    (void)medcc::net::read_trace_context(reader);
    FAIL() << "unknown flag bits decoded";
  } catch (const CodecError& error) {
    EXPECT_EQ(error.code(), WireError::bad_body);
  }
}

TEST(TraceCodec, TruncatedContextThrowsTruncated) {
  std::string wire;
  medcc::net::append_trace_context(wire, TraceContext{TraceId{1, 2}, true});
  wire.resize(medcc::net::kTraceContextSize - 1);
  WireReader reader(wire);
  EXPECT_THROW((void)medcc::net::read_trace_context(reader), CodecError);
}

TEST(TraceCodec, TracedSolveBodyIsContextPlusVerbatimInnerBody) {
  const SchedulingRequest request = request_for(example_instance(), 57.0);
  const TraceContext context{TraceId{0xdead, 0xbeef}, true};

  const std::string untraced =
      medcc::net::encode_solve_request(request, 42);
  const std::string traced =
      medcc::net::encode_traced_solve_request(request, context, 42);

  const auto untraced_header = medcc::net::parse_frame_header(untraced);
  const auto traced_header = medcc::net::parse_frame_header(traced);
  ASSERT_TRUE(untraced_header && traced_header);
  EXPECT_EQ(traced_header->type, FrameType::traced_solve_request);
  EXPECT_EQ(traced_header->version, medcc::net::kVersion2);
  EXPECT_EQ(traced_header->request_id, 42u);

  const std::string_view traced_body =
      std::string_view(traced).substr(medcc::net::kHeaderSize);
  const auto split = medcc::net::split_traced_solve_request(traced_body);
  EXPECT_EQ(split.trace.id, context.id);
  EXPECT_TRUE(split.trace.sampled);
  // The inner bytes ARE a solve_request body, bit for bit -- this is
  // what lets the server key its wire cache on the inner bytes so
  // traced and untraced duplicates share one entry.
  EXPECT_EQ(split.inner,
            std::string_view(untraced).substr(medcc::net::kHeaderSize));
}

TEST(TraceCodec, TracedSolveBodyShorterThanPrefixThrows) {
  EXPECT_THROW(
      (void)medcc::net::split_traced_solve_request("short"),
      CodecError);
}

TEST(TraceCodec, ReplInsertCarriesAnOptionalTraceSuffix) {
  const std::string payload = "opaque-cache-record-bytes";

  // Untraced form: no suffix, decodes to an invalid context.
  const std::string plain = medcc::net::encode_repl_insert(payload, 7);
  const auto plain_record = medcc::net::decode_repl_insert(
      std::string_view(plain).substr(medcc::net::kHeaderSize));
  EXPECT_EQ(plain_record.payload, payload);
  EXPECT_FALSE(plain_record.trace.valid());

  // Traced form: the context rides a 17-byte suffix.
  const TraceContext context{TraceId{0xaa, 0xbb}, true};
  const std::string traced =
      medcc::net::encode_repl_insert(payload, 7, context);
  EXPECT_EQ(traced.size(), plain.size() + medcc::net::kTraceContextSize);
  const auto traced_record = medcc::net::decode_repl_insert(
      std::string_view(traced).substr(medcc::net::kHeaderSize));
  EXPECT_EQ(traced_record.payload, payload);
  EXPECT_EQ(traced_record.trace.id, context.id);
  EXPECT_TRUE(traced_record.trace.sampled);
}

TEST(TraceCodec, TraceDumpRoundTripsCountersStagesAndTraces) {
  TraceDump dump;
  dump.node_id = "node-7";
  dump.enabled = true;
  dump.started = 1000;
  dump.sampled = 16;
  dump.completed = 14;
  dump.dropped = 986;
  dump.stages[static_cast<std::size_t>(Stage::solve)] = {12, 3456789};
  dump.stages[static_cast<std::size_t>(Stage::wire_fastpath)] = {988, 12345};

  TraceRecord record;
  record.id = TraceId{0x123, 0x456};
  record.origin = "node-7";
  record.started_ns = 1'000'000;
  record.total_ns = 42'000;
  record.slow = true;
  record.spans.push_back(Span{Stage::decode, 1'000'000, 1'001'000});
  record.spans.push_back(Span{Stage::solve, 1'001'000, 1'042'000});
  dump.traces.push_back(record);

  const std::string frame = medcc::net::encode_trace_dump_response(dump, 9);
  const auto header = medcc::net::parse_frame_header(frame);
  ASSERT_TRUE(header);
  EXPECT_EQ(header->type, FrameType::trace_dump_response);
  EXPECT_EQ(header->version, medcc::net::kVersion2);

  const TraceDump back = medcc::net::decode_trace_dump_response(
      std::string_view(frame).substr(medcc::net::kHeaderSize));
  EXPECT_EQ(back.node_id, "node-7");
  EXPECT_TRUE(back.enabled);
  EXPECT_EQ(back.started, 1000u);
  EXPECT_EQ(back.sampled, 16u);
  EXPECT_EQ(back.completed, 14u);
  EXPECT_EQ(back.dropped, 986u);
  EXPECT_EQ(back.stages[static_cast<std::size_t>(Stage::solve)].count, 12u);
  EXPECT_EQ(back.stages[static_cast<std::size_t>(Stage::solve)].total_ns,
            3456789u);
  ASSERT_EQ(back.traces.size(), 1u);
  EXPECT_EQ(back.traces[0].id, record.id);
  EXPECT_EQ(back.traces[0].origin, "node-7");
  EXPECT_EQ(back.traces[0].started_ns, 1'000'000);
  EXPECT_EQ(back.traces[0].total_ns, 42'000);
  EXPECT_TRUE(back.traces[0].slow);
  ASSERT_EQ(back.traces[0].spans.size(), 2u);
  EXPECT_EQ(back.traces[0].spans[1].stage, Stage::solve);
  EXPECT_EQ(back.traces[0].spans[1].duration_ns(), 41'000);
}

TEST(TraceCodec, TraceDumpRequestRoundTrips) {
  const std::string frame = medcc::net::encode_trace_dump_request(128, 5);
  const auto header = medcc::net::parse_frame_header(frame);
  ASSERT_TRUE(header);
  EXPECT_EQ(header->type, FrameType::trace_dump_request);
  EXPECT_EQ(medcc::net::decode_trace_dump_request(
                std::string_view(frame).substr(medcc::net::kHeaderSize)),
            128u);
}

// -- end-to-end over loopback ----------------------------------------------

TEST(NetTrace, TracedSolveLandsInTheServersTraceDump) {
  Tracer::Config trace_config;
  trace_config.sample_every = 1;
  Tracer tracer(trace_config);

  ServiceConfig service_config;
  service_config.threads = 1;
  service_config.tracer = &tracer;
  SchedulingService service(service_config);

  ServerConfig server_config;
  server_config.node_id = "dump-node";
  server_config.tracer = &tracer;
  Server server(service, server_config);
  Client client(client_for(server));

  SchedulingRequest request = request_for(example_instance(), 57.0);
  request.trace = TraceContext{TraceId{0x1234, 0x5678}, true};
  const SchedulingResponse response = client.solve(request);
  ASSERT_TRUE(response.ok()) << response.error;

  const TraceDump dump = client.trace_dump(64);
  EXPECT_EQ(dump.node_id, "dump-node");
  EXPECT_TRUE(dump.enabled);
  ASSERT_GE(dump.traces.size(), 1u);
  bool found = false;
  for (const TraceRecord& record : dump.traces) {
    if (!(record.id == request.trace.id)) continue;
    found = true;
    EXPECT_EQ(record.origin, "dump-node");
    // The journey through the service shows up as distinct stages.
    bool saw_request = false;
    for (const Span& span : record.spans)
      saw_request |= span.stage == Stage::request;
    EXPECT_TRUE(saw_request);
  }
  EXPECT_TRUE(found) << "trace id not present in dump";
  EXPECT_GT(dump.stages[static_cast<std::size_t>(Stage::request)].count, 0u);
}

TEST(NetTrace, ResponseBytesAreIdenticalWithTracingOnAndOff) {
  // Two fresh, frozen-clock server+service pairs: one untraced, one
  // traced. The SAME logical request must produce bit-identical
  // response frames -- tracing must never leak into response bytes.
  const auto frozen = [] { return std::chrono::steady_clock::time_point{}; };

  ServiceConfig untraced_service_config;
  untraced_service_config.threads = 1;
  untraced_service_config.clock = frozen;
  SchedulingService untraced_service(untraced_service_config);
  Server untraced_server(untraced_service);

  Tracer::Config trace_config;
  trace_config.sample_every = 1;
  Tracer tracer(trace_config);
  ServiceConfig traced_service_config;
  traced_service_config.threads = 1;
  traced_service_config.clock = frozen;
  traced_service_config.tracer = &tracer;
  SchedulingService traced_service(traced_service_config);
  ServerConfig traced_server_config;
  traced_server_config.tracer = &tracer;
  Server traced_server(traced_service, traced_server_config);

  const SchedulingRequest request = request_for(example_instance(), 57.0);
  const TraceContext context{TraceId{0x77, 0x88}, true};
  constexpr std::uint64_t kRequestId = 4242;

  RawConn untraced_conn(untraced_server.port());
  RawConn traced_conn(traced_server.port());

  // Fresh solve.
  untraced_conn.send(medcc::net::encode_solve_request(request, kRequestId));
  traced_conn.send(
      medcc::net::encode_traced_solve_request(request, context, kRequestId));
  const std::string untraced_fresh = untraced_conn.read_raw_frame();
  const std::string traced_fresh = traced_conn.read_raw_frame();
  ASSERT_FALSE(untraced_fresh.empty());
  EXPECT_EQ(traced_fresh, untraced_fresh);

  // Wire-cache hit: the duplicate is served off the raw-bytes memo
  // (traced via the allocation-free single-span path). The memoized
  // template intentionally differs from the fresh response (timings
  // zeroed, outcome pinned to hit_exact), but traced and untraced
  // must still agree bit for bit.
  untraced_conn.send(medcc::net::encode_solve_request(request, kRequestId));
  traced_conn.send(
      medcc::net::encode_traced_solve_request(request, context, kRequestId));
  const std::string untraced_hit = untraced_conn.read_raw_frame();
  const std::string traced_hit = traced_conn.read_raw_frame();
  ASSERT_FALSE(untraced_hit.empty());
  EXPECT_EQ(traced_hit, untraced_hit);
  EXPECT_GE(traced_server.counters().fastpath_hits, 1u);
  EXPECT_GE(untraced_server.counters().fastpath_hits, 1u);
}

TEST(NetTrace, TracerlessServerStillAnswersTracedFrames) {
  // A v2 server without a tracer strips and ignores the trace prefix:
  // traced clients interoperate, and the dump comes back empty.
  SchedulingService service({.threads = 1});
  Server server(service);  // no tracer
  Client client(client_for(server));

  SchedulingRequest request = request_for(example_instance(), 57.0);
  request.trace = TraceContext{TraceId{0xaaaa, 0xbbbb}, true};
  const SchedulingResponse response = client.solve(request);
  EXPECT_TRUE(response.ok()) << response.error;

  const TraceDump dump = client.trace_dump(64);
  EXPECT_FALSE(dump.enabled);
  EXPECT_EQ(dump.started, 0u);
  EXPECT_EQ(dump.traces.size(), 0u);
}

}  // namespace
