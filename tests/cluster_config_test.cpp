// Cluster configuration plumbing: endpoint parsing, the --peers list,
// ClusterConfig validation, and the ClusterClient consistent-hash ring
// (stable tenant routing, full distinct failover order, minimal
// remapping when a replica leaves).
#include "cluster/config.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "net/cluster_client.hpp"
#include "net/endpoint.hpp"

namespace {

using medcc::cluster::ClusterConfig;
using medcc::cluster::ClusterError;
using medcc::cluster::parse_peer_list;
using medcc::cluster::validate;
using medcc::net::ClusterClient;
using medcc::net::ClusterClientConfig;
using medcc::net::Endpoint;
using medcc::net::parse_endpoint;

TEST(Endpoint, ParseAcceptsHostPort) {
  const auto ep = parse_endpoint("cache-3.internal:7101");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->host, "cache-3.internal");
  EXPECT_EQ(ep->port, 7101);
  EXPECT_EQ(medcc::net::to_string(*ep), "cache-3.internal:7101");
  ASSERT_TRUE(parse_endpoint(medcc::net::to_string(*ep)).has_value());
}

TEST(Endpoint, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "host", "host:", ":1234", "host:0", "host:65536", "host:12x4",
        "host:-1", "a:b:1", "[::1]:80"})
    EXPECT_FALSE(parse_endpoint(bad).has_value()) << bad;
  EXPECT_TRUE(parse_endpoint("h:65535").has_value());
  EXPECT_TRUE(parse_endpoint("h:1").has_value());
}

TEST(ClusterConfigTest, PeerListParsesSplitsAndChecksDuplicates) {
  EXPECT_TRUE(parse_peer_list("").empty());

  const auto one = parse_peer_list("10.0.0.1:7101");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].port, 7101);

  const auto three = parse_peer_list("a:1,b:2,c:3");
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[1].host, "b");

  EXPECT_THROW((void)parse_peer_list("a:1,,b:2"), ClusterError);
  EXPECT_THROW((void)parse_peer_list("a:1,b"), ClusterError);
  EXPECT_THROW((void)parse_peer_list("a:1,a:1"), ClusterError);
  EXPECT_THROW((void)parse_peer_list(","), ClusterError);
}

TEST(ClusterConfigTest, ValidateNamesTheOffendingField) {
  ClusterConfig good;
  good.peers = parse_peer_list("a:1,b:2");
  EXPECT_NO_THROW(validate(good));

  ClusterConfig bad = good;
  bad.queue_capacity = 0;
  EXPECT_THROW(validate(bad), ClusterError);
  bad = good;
  bad.batch_max = 0;
  EXPECT_THROW(validate(bad), ClusterError);
  bad = good;
  bad.backoff_initial_ms = 0.0;
  EXPECT_THROW(validate(bad), ClusterError);
  bad = good;
  bad.backoff_cap_ms = bad.backoff_initial_ms / 2;
  EXPECT_THROW(validate(bad), ClusterError);
  bad = good;
  bad.v1_retry_ms = 0.0;
  EXPECT_THROW(validate(bad), ClusterError);
  bad = good;
  bad.peers.push_back(bad.peers.front());
  EXPECT_THROW(validate(bad), ClusterError);
}

ClusterClientConfig ring_config(std::vector<Endpoint> endpoints) {
  ClusterClientConfig config;
  config.endpoints = std::move(endpoints);
  return config;
}

std::vector<Endpoint> three_endpoints() {
  return {{"10.0.0.1", 7101}, {"10.0.0.2", 7101}, {"10.0.0.3", 7101}};
}

TEST(ClusterClientRing, RoutingIsDeterministicAcrossInstances) {
  const ClusterClient a(ring_config(three_endpoints()));
  const ClusterClient b(ring_config(three_endpoints()));
  for (int t = 0; t < 50; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    EXPECT_EQ(a.primary_index(tenant), b.primary_index(tenant));
    EXPECT_EQ(a.route(tenant), b.route(tenant));
  }
}

TEST(ClusterClientRing, RouteVisitsEveryEndpointExactlyOnce) {
  const ClusterClient client(ring_config(three_endpoints()));
  for (int t = 0; t < 50; ++t) {
    const auto order = client.route("tenant-" + std::to_string(t));
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], client.primary_index("tenant-" + std::to_string(t)));
    const std::set<std::size_t> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

TEST(ClusterClientRing, TenantsSpreadOverEveryReplica) {
  const ClusterClient client(ring_config(three_endpoints()));
  std::set<std::size_t> primaries;
  for (int t = 0; t < 200; ++t)
    primaries.insert(client.primary_index("tenant-" + std::to_string(t)));
  EXPECT_EQ(primaries.size(), 3u);
}

TEST(ClusterClientRing, RemovingAReplicaOnlyRemapsItsTenants) {
  auto endpoints = three_endpoints();
  const ClusterClient full(ring_config(endpoints));
  // Drop the last endpoint; tenants whose primary was elsewhere must
  // keep their primary (consistent hashing's defining property).
  const std::size_t removed = 2;
  std::vector<Endpoint> remaining = {endpoints[0], endpoints[1]};
  const ClusterClient reduced(ring_config(remaining));
  for (int t = 0; t < 200; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const std::size_t before = full.primary_index(tenant);
    if (before == removed) continue;
    EXPECT_EQ(reduced.endpoints()[reduced.primary_index(tenant)],
              full.endpoints()[before])
        << tenant;
  }
}

}  // namespace
