#include "workflow/clustering.hpp"

#include <gtest/gtest.h>

#include "workflow/patterns.hpp"
#include "workflow/random_workflow.hpp"

namespace {

using medcc::workflow::linear_clustering;
using medcc::workflow::transfer_aware_clustering;
using medcc::workflow::Workflow;

TEST(LinearClustering, CollapsesAPipeline) {
  const std::vector<double> wl = {1.0, 2.0, 3.0, 4.0};
  const auto wf = medcc::workflow::pipeline(wl, 2.0);
  const auto result = linear_clustering(wf);
  EXPECT_EQ(result.aggregated.module_count(), 1u);
  EXPECT_DOUBLE_EQ(result.aggregated.module(0).workload, 10.0);
  EXPECT_DOUBLE_EQ(result.internalized_data, 6.0);
  // Every original module maps to the single group.
  for (auto g : result.group_of) EXPECT_EQ(g, 0u);
}

TEST(LinearClustering, DiamondKeepsBranches) {
  Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 1.0);
  const auto c = wf.add_module("c", 1.0);
  const auto d = wf.add_module("d", 1.0);
  wf.add_dependency(a, b);
  wf.add_dependency(a, c);
  wf.add_dependency(b, d);
  wf.add_dependency(c, d);
  const auto result = linear_clustering(wf);
  // Nothing merges: a has two successors, d two predecessors.
  EXPECT_EQ(result.aggregated.module_count(), 4u);
}

TEST(LinearClustering, ChainsWithinLargerGraphMerge) {
  Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 2.0);
  const auto c = wf.add_module("c", 3.0);
  const auto d = wf.add_module("d", 4.0);
  const auto e = wf.add_module("e", 5.0);
  wf.add_dependency(a, b);
  wf.add_dependency(b, c);  // a-b-c chain
  wf.add_dependency(a, d);
  wf.add_dependency(d, e);
  wf.add_dependency(c, e);
  const auto result = linear_clustering(wf);
  // b-c merge (b out=1 into c in=1); a keeps (out=2); d-e cannot merge
  // because e has in-degree 2.
  EXPECT_LT(result.aggregated.module_count(), 5u);
  EXPECT_TRUE(result.aggregated.validate().ok());
}

TEST(LinearClustering, FixedModulesNeverMerge) {
  Workflow wf;
  const auto entry = wf.add_fixed_module("entry", 1.0);
  const auto a = wf.add_module("a", 2.0);
  const auto exit = wf.add_fixed_module("exit", 1.0);
  wf.add_dependency(entry, a);
  wf.add_dependency(a, exit);
  const auto result = linear_clustering(wf);
  EXPECT_EQ(result.aggregated.module_count(), 3u);
}

TEST(TransferAware, MergesHeaviestEdgeFirst) {
  Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 1.0);
  const auto c = wf.add_module("c", 1.0);
  wf.add_dependency(a, b, 100.0);
  wf.add_dependency(b, c, 1.0);
  const auto result = transfer_aware_clustering(wf, 2.5);
  // Cap 2.5 allows exactly one merge; the 100-unit edge wins.
  EXPECT_EQ(result.aggregated.module_count(), 2u);
  EXPECT_DOUBLE_EQ(result.internalized_data, 100.0);
}

TEST(TransferAware, WorkloadCapRespected) {
  Workflow wf;
  const auto a = wf.add_module("a", 10.0);
  const auto b = wf.add_module("b", 10.0);
  wf.add_dependency(a, b, 5.0);
  const auto result = transfer_aware_clustering(wf, 15.0);
  EXPECT_EQ(result.aggregated.module_count(), 2u);  // 20 > cap
  const auto merged = transfer_aware_clustering(wf, 20.0);
  EXPECT_EQ(merged.aggregated.module_count(), 1u);
}

TEST(TransferAware, NeverCreatesCycles) {
  // a->b (heavy), a->c->b: merging a,b would create a cycle through c.
  Workflow wf;
  const auto a = wf.add_module("a", 1.0);
  const auto b = wf.add_module("b", 1.0);
  const auto c = wf.add_module("c", 1.0);
  wf.add_dependency(a, b, 100.0);
  wf.add_dependency(a, c, 1.0);
  wf.add_dependency(c, b, 1.0);
  const auto result = transfer_aware_clustering(wf, 100.0);
  EXPECT_TRUE(result.aggregated.validate().ok());
  // a-b direct merge is illegal; but a-c (or c-b) then the rest may merge:
  // any outcome must be acyclic, which ensure_valid already asserts.
}

TEST(TransferAware, CapMustBePositive) {
  Workflow wf;
  (void)wf.add_module("a", 1.0);
  EXPECT_THROW((void)transfer_aware_clustering(wf, 0.0), medcc::LogicError);
}

class ClusteringPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ClusteringPropertyTest, InvariantsOnRandomWorkflows) {
  medcc::util::Prng rng(GetParam());
  medcc::workflow::RandomWorkflowSpec spec;
  spec.modules = 20;
  spec.edges = 40;
  spec.data_size_min = 1.0;
  spec.data_size_max = 50.0;
  const auto wf = medcc::workflow::random_workflow(spec, rng);

  for (const auto& result :
       {linear_clustering(wf), transfer_aware_clustering(wf, 250.0)}) {
    // Valid aggregate DAG.
    EXPECT_TRUE(result.aggregated.validate().ok());
    // Total workload preserved.
    EXPECT_NEAR(result.aggregated.total_workload(), wf.total_workload(),
                1e-9);
    // Total data preserved: cross-group + internalized.
    double cross = 0.0;
    for (std::size_t e = 0; e < result.aggregated.dependency_count(); ++e)
      cross += result.aggregated.data_size(e);
    double total = 0.0;
    for (std::size_t e = 0; e < wf.dependency_count(); ++e)
      total += wf.data_size(e);
    EXPECT_NEAR(cross + result.internalized_data, total, 1e-9);
    // group_of maps into the aggregate id range.
    for (auto g : result.group_of)
      EXPECT_LT(g, result.aggregated.module_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
