// The persistence subsystem: CRC-framed record files (torn-tail
// tolerance at every byte offset, corruption detection at every flipped
// byte) and the DurableStore snapshot + journal lifecycle.
#include "persist/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "persist/record_file.hpp"
#include "persist/wire.hpp"
#include "util/atomic_file.hpp"

namespace medcc::persist {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> sample_payloads() {
  return {"alpha", std::string("\x00\x01\xffzz", 5), "",
          std::string(1000, 'q')};
}

/// Polls `done` every millisecond for up to five seconds.
bool eventually(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

// --------------------------------------------------------------------------
// Record-file framing

TEST(RecordFile, RoundTripsPayloads) {
  const auto payloads = sample_payloads();
  const std::string bytes = encode_record_file(kSnapshotMagic, payloads);
  const ReadResult read = parse_record_file(bytes, kSnapshotMagic);
  EXPECT_TRUE(read.exists);
  EXPECT_FALSE(read.truncated);
  EXPECT_EQ(read.payloads, payloads);
  EXPECT_EQ(read.valid_bytes, bytes.size());
}

TEST(RecordFile, EmptyImageIsEmptyNotTruncated) {
  const ReadResult read = parse_record_file("", kJournalMagic);
  EXPECT_TRUE(read.payloads.empty());
  EXPECT_FALSE(read.truncated);
}

TEST(RecordFile, ShortHeaderIsTruncated) {
  const std::string header = encode_file_header(kJournalMagic);
  for (std::size_t cut = 1; cut < header.size(); ++cut) {
    const ReadResult read =
        parse_record_file(header.substr(0, cut), kJournalMagic);
    EXPECT_TRUE(read.truncated) << "cut=" << cut;
    EXPECT_TRUE(read.payloads.empty());
    EXPECT_EQ(read.valid_bytes, 0u);
  }
}

TEST(RecordFile, WrongMagicOrVersionThrows) {
  const std::string bytes = encode_record_file(kSnapshotMagic, {"x"});
  EXPECT_THROW((void)parse_record_file(bytes, kJournalMagic), PersistError);

  std::string future = bytes;
  future[4] = 2;  // bump the version field
  EXPECT_THROW((void)parse_record_file(future, kSnapshotMagic), PersistError);
}

TEST(RecordFile, OversizedLengthIsTruncatedNotAllocated) {
  std::string bytes = encode_file_header(kJournalMagic);
  Writer w;
  w.u32(0x7fffffffu);  // length prefix far beyond the bound
  w.u32(0);
  bytes += w.take();
  const ReadResult read = parse_record_file(bytes, kJournalMagic, 1 << 20);
  EXPECT_TRUE(read.truncated);
  EXPECT_TRUE(read.payloads.empty());
  EXPECT_EQ(read.valid_bytes, kFileHeaderSize);
}

TEST(RecordFile, TornTailToleratedAtEveryByteOffset) {
  const std::string first = "intact-record";
  const std::string second = "the-one-that-tears";
  std::string bytes = encode_file_header(kJournalMagic);
  bytes += frame_record(first);
  const std::size_t prefix = bytes.size();
  bytes += frame_record(second);

  // A file cut exactly at the record boundary is clean...
  const ReadResult clean =
      parse_record_file(bytes.substr(0, prefix), kJournalMagic);
  EXPECT_FALSE(clean.truncated);
  EXPECT_EQ(clean.payloads, std::vector<std::string>{first});

  // ...and every partial suffix of the last record is a tolerated torn
  // tail: the intact prefix survives, nothing throws, nothing is UB.
  for (std::size_t cut = prefix + 1; cut < bytes.size(); ++cut) {
    const ReadResult read =
        parse_record_file(bytes.substr(0, cut), kJournalMagic);
    EXPECT_TRUE(read.truncated) << "cut=" << cut;
    EXPECT_EQ(read.payloads, std::vector<std::string>{first})
        << "cut=" << cut;
    EXPECT_EQ(read.valid_bytes, prefix) << "cut=" << cut;
  }
}

TEST(RecordFile, EveryFlippedByteOfLastRecordIsCaught) {
  const std::string first = "intact-record";
  const std::string second = "corruption-target";
  std::string bytes = encode_file_header(kJournalMagic);
  bytes += frame_record(first);
  const std::size_t prefix = bytes.size();
  bytes += frame_record(second);

  for (std::size_t i = prefix; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    const ReadResult read = parse_record_file(corrupt, kJournalMagic);
    EXPECT_TRUE(read.truncated) << "flip at " << i;
    EXPECT_EQ(read.payloads, std::vector<std::string>{first})
        << "flip at " << i;
  }
}

// --------------------------------------------------------------------------
// DurableStore

class DurableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("medcc_persist_store_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreConfig config() const {
    StoreConfig c;
    c.dir = dir_;
    c.snapshot_interval_s = 0.0;  // no timer unless a test wants one
    c.journal_rotate_bytes = 0;   // no size trigger unless wanted
    c.fsync_appends = false;      // keep the unit tests fast
    return c;
  }

  /// A store whose snapshot source serves `table`.
  std::unique_ptr<DurableStore> make_store(
      StoreConfig c, const std::vector<std::string>* table) {
    return std::make_unique<DurableStore>(
        std::move(c), [table] { return *table; });
  }

  fs::path dir_;
  std::vector<std::string> table_;
};

TEST_F(DurableStoreTest, FreshDirectoryLoadsEmpty) {
  auto store = make_store(config(), &table_);
  const LoadResult loaded = store->load();
  EXPECT_TRUE(loaded.payloads.empty());
  EXPECT_EQ(loaded.truncations, 0u);
  // The journal file now exists with a bare header.
  EXPECT_TRUE(util::file_exists(store->journal_path()));
  EXPECT_EQ(store->stats().journal_bytes, kFileHeaderSize);
}

TEST_F(DurableStoreTest, AppendsReplayAcrossRestart) {
  {
    auto store = make_store(config(), &table_);
    (void)store->load();
    store->append("one");
    store->append("two");
    EXPECT_EQ(store->stats().appends, 2u);
  }
  auto store = make_store(config(), &table_);
  const LoadResult loaded = store->load();
  EXPECT_EQ(loaded.payloads, (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(loaded.journal_records, 2u);
  EXPECT_EQ(loaded.snapshot_records, 0u);
}

TEST_F(DurableStoreTest, FlushSnapshotsAndRotatesJournal) {
  table_ = {"A", "B"};
  auto store = make_store(config(), &table_);
  (void)store->load();
  store->append("journal-entry");
  store->flush();
  EXPECT_EQ(store->stats().flushes, 1u);
  EXPECT_EQ(store->stats().snapshot_records, 2u);
  EXPECT_EQ(store->stats().journal_bytes, kFileHeaderSize);  // rotated

  auto reopened = make_store(config(), &table_);
  const LoadResult loaded = reopened->load();
  EXPECT_EQ(loaded.snapshot_records, 2u);
  EXPECT_EQ(loaded.journal_records, 0u);
  EXPECT_EQ(loaded.payloads, (std::vector<std::string>{"A", "B"}));
}

TEST_F(DurableStoreTest, SnapshotThenJournalOrderOnLoad) {
  table_ = {"old"};
  {
    auto store = make_store(config(), &table_);
    (void)store->load();
    store->flush();
    store->append("newer");
  }
  auto store = make_store(config(), &table_);
  const LoadResult loaded = store->load();
  // Journal payloads follow snapshot payloads so replaying in order
  // leaves the newest version of an upserted key.
  EXPECT_EQ(loaded.payloads, (std::vector<std::string>{"old", "newer"}));
}

TEST_F(DurableStoreTest, TornJournalTailIsCutAndCounted) {
  {
    auto store = make_store(config(), &table_);
    (void)store->load();
    store->append("kept");
    store->append("torn");
  }
  // SIGKILL mid-append: drop the last 3 bytes of the journal.
  {
    util::File f = util::File::append(dir_ / kJournalFileName);
    f.truncate(f.size() - 3);
  }
  auto store = make_store(config(), &table_);
  const LoadResult loaded = store->load();
  EXPECT_EQ(loaded.payloads, std::vector<std::string>{"kept"});
  EXPECT_EQ(loaded.truncations, 1u);

  // New appends land behind the repaired tail, not behind a bad CRC.
  store->append("after-repair");
  auto reopened = make_store(config(), &table_);
  const LoadResult again = reopened->load();
  EXPECT_EQ(again.payloads,
            (std::vector<std::string>{"kept", "after-repair"}));
  EXPECT_EQ(again.truncations, 0u);
}

TEST_F(DurableStoreTest, TornJournalAtEveryByteOffsetOfLastRecord) {
  {
    auto store = make_store(config(), &table_);
    (void)store->load();
    store->append("kept");
    store->append("torn");
  }
  const std::string full = util::read_file(dir_ / kJournalFileName);
  const std::size_t last_record_size = kRecordHeaderSize + 4;  // "torn"
  const std::size_t prefix = full.size() - last_record_size;
  for (std::size_t cut = prefix + 1; cut < full.size(); ++cut) {
    util::atomic_write_file(dir_ / kJournalFileName, full.substr(0, cut));
    auto store = make_store(config(), &table_);
    const LoadResult loaded = store->load();
    EXPECT_EQ(loaded.payloads, std::vector<std::string>{"kept"})
        << "cut=" << cut;
    EXPECT_EQ(loaded.truncations, 1u) << "cut=" << cut;
  }
}

TEST_F(DurableStoreTest, StaleTmpFilesAreIgnored) {
  // A crash between writing the snapshot temp file and renaming it
  // leaves a stale .tmp the next boot must overwrite.
  fs::create_directories(dir_);
  { util::File::create(dir_ / "snapshot.mdsp.tmp").write_all("garbage"); }
  table_ = {"T"};
  auto store = make_store(config(), &table_);
  (void)store->load();
  store->flush();
  auto reopened = make_store(config(), &table_);
  EXPECT_EQ(reopened->load().payloads, std::vector<std::string>{"T"});
  EXPECT_FALSE(util::file_exists(dir_ / "snapshot.mdsp.tmp"));
}

TEST_F(DurableStoreTest, SizeTriggeredRotation) {
  StoreConfig c = config();
  c.journal_rotate_bytes = 64;  // a couple of appends
  table_ = {"S"};
  auto store = make_store(std::move(c), &table_);
  (void)store->load();
  store->start();
  for (int i = 0; i < 8; ++i) store->append("0123456789abcdef");
  EXPECT_TRUE(eventually([&] { return store->stats().flushes >= 1; }));
  store->stop();
  EXPECT_GE(store->stats().flushes, 1u);
}

TEST_F(DurableStoreTest, IntervalTriggeredFlush) {
  StoreConfig c = config();
  c.snapshot_interval_s = 0.02;
  std::atomic<int> flush_calls{0};
  c.on_flush = [&](double seconds) {
    EXPECT_GE(seconds, 0.0);
    flush_calls.fetch_add(1);
  };
  table_ = {"I"};
  auto store = make_store(std::move(c), &table_);
  (void)store->load();
  store->start();
  store->append("dirty");
  EXPECT_TRUE(eventually([&] { return flush_calls.load() >= 1; }));
  store->stop();
  auto reopened = make_store(config(), &table_);
  const LoadResult loaded = reopened->load();
  EXPECT_EQ(loaded.snapshot_records, 1u);
}

TEST_F(DurableStoreTest, FlushIfDirtySkipsWhenClean) {
  table_ = {"C"};
  auto store = make_store(config(), &table_);
  (void)store->load();
  store->flush_if_dirty();  // fresh dir counts as dirty: writes snapshot
  const std::uint64_t flushes = store->stats().flushes;
  store->flush_if_dirty();  // nothing new
  EXPECT_EQ(store->stats().flushes, flushes);
  store->append("d");
  store->flush_if_dirty();
  EXPECT_EQ(store->stats().flushes, flushes + 1);
}

TEST_F(DurableStoreTest, StopIsIdempotentAndRestartable) {
  auto store = make_store(config(), &table_);
  (void)store->load();
  store->start();
  store->stop();
  store->stop();
  store->start();
  store->stop();
}

}  // namespace
}  // namespace medcc::persist
