#include "sched/pcp.hpp"

#include <gtest/gtest.h>

#include "analysis/verify.hpp"
#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/deadline.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;
using medcc::sched::pcp_deadline;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(Pcp, ImpossibleDeadlineThrows) {
  EXPECT_THROW((void)pcp_deadline(example_instance(), 5.0),
               medcc::Infeasible);
}

TEST(Pcp, MeetsEveryDeadlineItAccepts) {
  const auto inst = example_instance();
  for (double deadline : {5.5, 6.0, 6.77, 8.2, 10.77, 13.0, 16.77, 50.0}) {
    const auto r = pcp_deadline(inst, deadline);
    EXPECT_LE(r.eval.med, deadline + 1e-9) << "deadline " << deadline;
    medcc::analysis::VerifyOptions vopts;
    vopts.deadline = deadline;
    const auto diag =
        medcc::analysis::verify_schedule(inst, r.schedule, r.eval, vopts);
    EXPECT_TRUE(diag.ok()) << diag.to_string();
  }
}

TEST(Pcp, GenerousDeadlineReachesLeastCost) {
  const auto r = pcp_deadline(example_instance(), 1000.0);
  EXPECT_DOUBLE_EQ(r.eval.cost, 48.0);
}

TEST(Pcp, ProcessesMultiplePaths) {
  // example6 has two parallel chains; the decomposition must produce more
  // than one partial critical path.
  const auto r = pcp_deadline(example_instance(), 10.0);
  EXPECT_GE(r.paths, 2u);
}

TEST(Pcp, PipelineIsASinglePath) {
  const std::vector<double> wl = {12.0, 47.0, 8.0, 33.0};
  const auto inst = Instance::from_model(medcc::workflow::pipeline(wl),
                                         medcc::cloud::example_catalog());
  const auto fastest = medcc::sched::evaluate(
      inst, medcc::sched::fastest_schedule(inst));
  const auto r = pcp_deadline(inst, fastest.med * 2.0);
  EXPECT_EQ(r.paths, 1u);
}

class PcpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcpPropertyTest, SoundAndComparableToGlobalLoss) {
  medcc::util::Prng rng(GetParam());
  const auto inst = medcc::expr::make_instance({12, 28, 4}, rng);
  const auto fastest = medcc::sched::evaluate(
      inst, medcc::sched::fastest_schedule(inst));
  const auto least = medcc::sched::evaluate(
      inst, medcc::sched::least_cost_schedule(inst));
  for (double frac : {0.2, 0.6, 0.95}) {
    const double deadline =
        fastest.med + frac * (least.med - fastest.med) + 1e-9;
    const auto pcp = pcp_deadline(inst, deadline);
    EXPECT_LE(pcp.eval.med, deadline + 1e-9);
    // Both heuristics' costs live between the extreme schedules.
    EXPECT_GE(pcp.eval.cost, least.cost - 1e-9);
    EXPECT_LE(pcp.eval.cost, fastest.cost + 1e-9);
    // PCP localizes decisions; it should stay within 2x of the global
    // LOSS heuristic's cost on these sizes (typically it is close).
    const auto global = medcc::sched::deadline_loss(inst, deadline);
    EXPECT_LE(pcp.eval.cost, 2.0 * global.eval.cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcpPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
