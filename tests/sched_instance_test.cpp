#include "sched/instance.hpp"

#include <gtest/gtest.h>

#include "workflow/patterns.hpp"
#include "workflow/wrf.hpp"

namespace {

using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(Instance, Example6TimeMatrix) {
  const auto inst = example_instance();
  ASSERT_EQ(inst.type_count(), 3u);
  // Module ids: 0 entry, 1..6 computing, 7 exit.
  EXPECT_NEAR(inst.time(1, 0), 11.3 / 3.0, 1e-12);
  EXPECT_NEAR(inst.time(1, 1), 11.3 / 15.0, 1e-12);
  EXPECT_NEAR(inst.time(1, 2), 11.3 / 30.0, 1e-12);
  EXPECT_NEAR(inst.time(4, 0), 20.0 / 3.0, 1e-12);
  EXPECT_NEAR(inst.time(5, 1), 40.2 / 15.0, 1e-12);
  // Fixed modules run 1 hour on every type.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(inst.time(0, j), 1.0);
    EXPECT_DOUBLE_EQ(inst.time(7, j), 1.0);
  }
}

TEST(Instance, Example6CostMatrixMatchesFig5) {
  const auto inst = example_instance();
  // CE rows for w1..w6 on VT1..VT3 (reconstructed Fig. 5 matrices).
  const double expected[6][3] = {
      {4, 4, 8}, {15, 12, 16}, {7, 8, 8},
      {7, 8, 8}, {14, 12, 16}, {6, 8, 8},
  };
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(inst.cost(i + 1, j), expected[i][j])
          << "module w" << i + 1 << " type " << j + 1;
  // Fixed modules are free.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(inst.cost(0, j), 0.0);
    EXPECT_DOUBLE_EQ(inst.cost(7, j), 0.0);
  }
}

TEST(Instance, EdgeTimesZeroUnderInstantNetwork) {
  const auto inst = example_instance();
  for (std::size_t e = 0; e < inst.workflow().dependency_count(); ++e)
    EXPECT_DOUBLE_EQ(inst.edge_time(e), 0.0);
  EXPECT_DOUBLE_EQ(inst.total_transfer_cost(), 0.0);
}

TEST(Instance, NetworkModelShapesEdgeTimes) {
  medcc::cloud::NetworkModel net;
  net.bandwidth = 2.0;
  net.link_delay = 0.1;
  net.transfer_cost_rate = 0.5;
  const auto inst = Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog(),
      medcc::cloud::BillingPolicy::per_unit_time(), net);
  // example6 edges all carry 1.0 data units.
  for (std::size_t e = 0; e < inst.workflow().dependency_count(); ++e)
    EXPECT_DOUBLE_EQ(inst.edge_time(e), 0.6);
  EXPECT_DOUBLE_EQ(inst.total_transfer_cost(),
                   0.5 * static_cast<double>(
                             inst.workflow().dependency_count()));
}

TEST(Instance, FromMatrixUsesMeasuredTimes) {
  const auto& te = medcc::workflow::wrf_te_matrix();
  std::vector<std::vector<double>> times(6, std::vector<double>(3));
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 6; ++i) times[i][j] = te[j][i];
  const auto inst = Instance::from_matrix(
      medcc::workflow::wrf_experiment_grouped(), medcc::cloud::wrf_catalog(),
      times);
  EXPECT_DOUBLE_EQ(inst.time(5, 0), 752.6);  // w5 on VT1
  EXPECT_DOUBLE_EQ(inst.time(5, 1), 241.6);
  // Cost = CV * ceil(T): 0.1 * 753 = 75.3.
  EXPECT_NEAR(inst.cost(5, 0), 75.3, 1e-9);
  EXPECT_NEAR(inst.cost(5, 2), 0.8 * 144.0, 1e-9);
}

TEST(Instance, FromMatrixValidatesShape) {
  const auto wf = medcc::workflow::wrf_experiment_grouped();
  const auto cat = medcc::cloud::wrf_catalog();
  std::vector<std::vector<double>> wrong_rows(5, std::vector<double>(3, 1.0));
  EXPECT_THROW((void)Instance::from_matrix(wf, cat, wrong_rows),
               medcc::InvalidArgument);
  std::vector<std::vector<double>> wrong_cols(6, std::vector<double>(2, 1.0));
  EXPECT_THROW((void)Instance::from_matrix(wf, cat, wrong_cols),
               medcc::InvalidArgument);
  std::vector<std::vector<double>> negative(6, std::vector<double>(3, 1.0));
  negative[2][1] = -5.0;
  EXPECT_THROW((void)Instance::from_matrix(wf, cat, negative),
               medcc::InvalidArgument);
}

TEST(Instance, InvalidWorkflowRejected) {
  medcc::workflow::Workflow wf;  // empty
  EXPECT_THROW((void)Instance::from_model(wf, medcc::cloud::example_catalog()),
               medcc::InvalidArgument);
}

}  // namespace
