// BufferPool: reserved-capacity reuse, the free-list bound, and the
// discard rules that keep a pool's footprint predictable.
#include "util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace {

using medcc::util::BufferPool;

TEST(BufferPool, AcquireReservesAndReleaseRecycles) {
  BufferPool::Config config;
  config.buffer_capacity = 1024;
  BufferPool pool(config);

  std::string first = pool.acquire();
  EXPECT_TRUE(first.empty());
  EXPECT_GE(first.capacity(), 1024u);
  const auto* data = first.data();

  first.append("payload");
  pool.release(std::move(first));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.pooled, 1u);

  // The recycled buffer comes back cleared, same backing allocation.
  std::string second = pool.acquire();
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(second.data(), data);
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(BufferPool, FreeListIsBounded) {
  BufferPool::Config config;
  config.buffer_capacity = 64;
  config.max_pooled = 2;
  BufferPool pool(config);

  std::vector<std::string> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  for (auto& buffer : held) pool.release(std::move(buffer));

  const auto stats = pool.stats();
  EXPECT_EQ(stats.released, 5u);
  EXPECT_EQ(stats.pooled, 2u);
  EXPECT_EQ(stats.discarded, 3u);
}

TEST(BufferPool, OversizedAndUndersizedBuffersAreDiscarded) {
  BufferPool::Config config;
  config.buffer_capacity = 256;
  BufferPool pool(config);

  // A buffer that ballooned past 2x the chunk size is freed, not
  // parked: pooling it would let one huge frame pin memory forever.
  std::string grown = pool.acquire();
  grown.assign(10 * 1024, 'x');
  pool.release(std::move(grown));
  EXPECT_EQ(pool.stats().pooled, 0u);
  EXPECT_EQ(pool.stats().discarded, 1u);

  // A foreign small buffer (never acquired here) is also rejected.
  pool.release(std::string("tiny"));
  EXPECT_EQ(pool.stats().pooled, 0u);
  EXPECT_EQ(pool.stats().discarded, 2u);
}

TEST(BufferPool, ConcurrentAcquireReleaseIsSafe) {
  BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&pool] {
      for (int i = 0; i < kIterations; ++i) {
        std::string buffer = pool.acquire();
        buffer.append("x");
        pool.release(std::move(buffer));
      }
    });
  for (auto& thread : threads) thread.join();

  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquired, static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(stats.released, stats.acquired);
  EXPECT_LE(stats.pooled, 64u);
}

}  // namespace
