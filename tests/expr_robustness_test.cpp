#include "expr/robustness.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::expr::assess_robustness;
using medcc::expr::RobustnessOptions;
using medcc::sched::Instance;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(Robustness, ZeroNoiseIsDeterministicallyNominal) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  medcc::util::ThreadPool pool(2);
  RobustnessOptions opts;
  opts.noise = 0.0;
  opts.trials = 50;
  const auto report = assess_robustness(inst, r.schedule, pool, opts);
  EXPECT_NEAR(report.nominal_med, 6.77, 0.005);
  for (double med : report.samples)
    EXPECT_DOUBLE_EQ(med, report.nominal_med);
  EXPECT_DOUBLE_EQ(report.stddev, 0.0);
}

TEST(Robustness, DeterministicGivenSeed) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  medcc::util::ThreadPool pool(4);
  RobustnessOptions opts;
  opts.trials = 100;
  opts.seed = 9;
  const auto a = assess_robustness(inst, least, pool, opts);
  const auto b = assess_robustness(inst, least, pool, opts);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(Robustness, MeanRealizedMedAtLeastNominal) {
  // max over paths is convex in the durations, so under zero-mean noise
  // the expected realized MED is >= the nominal MED (Jensen).
  medcc::util::Prng rng(4);
  const auto inst = medcc::expr::make_instance({15, 40, 4}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  const auto r = medcc::sched::critical_greedy(
      inst, 0.5 * (bounds.cmin + bounds.cmax));
  medcc::util::ThreadPool pool(2);
  RobustnessOptions opts;
  opts.trials = 400;
  opts.noise = 0.15;
  const auto report = assess_robustness(inst, r.schedule, pool, opts);
  EXPECT_GE(report.mean, report.nominal_med * 0.995);
  EXPECT_GE(report.p95, report.p50);
  EXPECT_GE(report.max, report.p95);
}

TEST(Robustness, MissRateMonotoneInDeadline) {
  const auto inst = example_instance();
  const auto r = medcc::sched::critical_greedy(inst, 57.0);
  medcc::util::ThreadPool pool(2);
  RobustnessOptions opts;
  opts.trials = 200;
  opts.noise = 0.1;
  const auto report = assess_robustness(inst, r.schedule, pool, opts);
  std::vector<double> probes = {report.nominal_med * 0.9,
                                report.nominal_med, report.p50, report.p95,
                                report.max + 1.0};
  std::sort(probes.begin(), probes.end());
  double previous = 1.0;
  for (double deadline : probes) {
    const double rate = report.miss_rate(deadline);
    EXPECT_LE(rate, previous + 1e-12);
    previous = rate;
  }
  EXPECT_DOUBLE_EQ(report.miss_rate(report.max + 1.0), 0.0);
  // p95 by construction leaves ~5% of mass above it.
  EXPECT_NEAR(report.miss_rate(report.p95), 0.05, 0.03);
}

TEST(Robustness, FixedModulesAreNotPerturbed) {
  // A workflow of only fixed modules has zero variance at any noise.
  medcc::workflow::Workflow wf;
  const auto a = wf.add_fixed_module("a", 1.0);
  const auto b = wf.add_fixed_module("b", 2.0);
  wf.add_dependency(a, b);
  const auto inst =
      Instance::from_model(wf, medcc::cloud::example_catalog());
  medcc::sched::Schedule s;
  s.type_of.assign(2, 0);
  medcc::util::ThreadPool pool(2);
  RobustnessOptions opts;
  opts.noise = 0.5;
  opts.trials = 20;
  const auto report = assess_robustness(inst, s, pool, opts);
  EXPECT_DOUBLE_EQ(report.stddev, 0.0);
  EXPECT_DOUBLE_EQ(report.mean, 3.0);
}

TEST(Robustness, OptionValidation) {
  const auto inst = example_instance();
  const auto least = medcc::sched::least_cost_schedule(inst);
  medcc::util::ThreadPool pool(1);
  RobustnessOptions opts;
  opts.trials = 0;
  EXPECT_THROW((void)assess_robustness(inst, least, pool, opts),
               medcc::LogicError);
}

}  // namespace
