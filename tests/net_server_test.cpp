// Loopback end-to-end behaviour of the net/ stack: a real epoll server
// in front of a real SchedulingService, driven by the blocking client
// over 127.0.0.1 -- single solves byte-identical to in-process
// submission, pipelined batches answered out of order, queue-deadline
// expiry and tenant-quota rejection crossing the wire intact, stats
// frames, malformed-byte handling on a raw socket, and graceful
// shutdown draining an in-flight solve.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <future>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.hpp"
#include "net/codec.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/instance.hpp"
#include "sched/solver_registry.hpp"
#include "service/service.hpp"
#include "util/socket.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::net::Client;
using medcc::net::ClientConfig;
using medcc::net::FrameHeader;
using medcc::net::FrameType;
using medcc::net::NetError;
using medcc::net::Server;
using medcc::net::ServerConfig;
using medcc::net::WireError;
using medcc::sched::Instance;
using medcc::service::RejectReason;
using medcc::service::ResponseStatus;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;

std::shared_ptr<const Instance> example_instance() {
  return std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
}

SchedulingRequest request_for(std::shared_ptr<const Instance> inst,
                              double budget, std::string solver = "cg") {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = budget;
  req.solver = std::move(solver);
  return req;
}

void expect_bits_equal(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

ClientConfig client_for(const Server& server) {
  ClientConfig config;
  config.port = server.port();
  return config;
}

// A registry whose "block" solver parks on a latch, as in service_test.
class BlockingRegistryFixture {
public:
  BlockingRegistryFixture() {
    registry_.register_solver(
        "block", [this](const Instance& inst, double budget) {
          started_.count_down();
          release_future_.wait();
          return medcc::sched::critical_greedy(inst, budget);
        });
    for (const auto& name : medcc::sched::SolverRegistry::built_in().names())
      registry_.register_solver(
          std::string(name),
          *medcc::sched::SolverRegistry::built_in().find(name));
  }

  void wait_until_blocked() { started_.wait(); }
  void release() { release_.set_value(); }
  [[nodiscard]] const medcc::sched::SolverRegistry& registry() const {
    return registry_;
  }

private:
  std::latch started_{1};
  std::promise<void> release_;
  std::shared_future<void> release_future_{release_.get_future().share()};
  medcc::sched::SolverRegistry registry_;
};

TEST(NetServer, SolveOverLoopbackByteIdenticalToInProcess) {
  SchedulingService service({.threads = 2});
  Server server(service);
  Client client(client_for(server));

  const auto inst = example_instance();
  const SchedulingResponse remote = client.solve(request_for(inst, 57.0));
  ASSERT_TRUE(remote.ok()) << remote.error;

  // A fresh in-process service (empty cache) must agree bit-for-bit.
  SchedulingService local({.threads = 1});
  const SchedulingResponse in_process =
      local.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(in_process.ok());
  EXPECT_EQ(remote.result.schedule, in_process.result.schedule);
  EXPECT_EQ(remote.result.iterations, in_process.result.iterations);
  expect_bits_equal(remote.result.eval.med, in_process.result.eval.med);
  expect_bits_equal(remote.result.eval.cost, in_process.result.eval.cost);
  EXPECT_EQ(remote.solver, in_process.solver);

  // And the wire bytes themselves must be reproducible: with the
  // wall-clock telemetry zeroed, encoding both responses under the same
  // id yields identical frames.
  SchedulingResponse remote_norm = remote;
  SchedulingResponse local_norm = in_process;
  remote_norm.queue_delay_ms = local_norm.queue_delay_ms = 0.0;
  remote_norm.solve_ms = local_norm.solve_ms = 0.0;
  EXPECT_EQ(medcc::net::encode_solve_response(remote_norm, 1),
            medcc::net::encode_solve_response(local_norm, 1));
}

TEST(NetServer, CacheAndRejectionTaxonomyCrossTheWire) {
  SchedulingService service({.threads = 1});
  Server server(service);
  Client client(client_for(server));
  const auto inst = example_instance();

  const auto first = client.solve(request_for(inst, 57.0));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.cache, medcc::service::CacheOutcome::miss);
  const auto second = client.solve(request_for(inst, 57.0));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.cache, medcc::service::CacheOutcome::hit_exact);

  const auto unknown = client.solve(request_for(inst, 57.0, "frobnicate"));
  EXPECT_EQ(unknown.status, ResponseStatus::rejected);
  EXPECT_EQ(unknown.reject_reason, RejectReason::unknown_solver);

  const auto infeasible = client.solve(request_for(inst, 1.0));
  EXPECT_EQ(infeasible.status, ResponseStatus::failed);
  EXPECT_FALSE(infeasible.error.empty());
}

TEST(NetServer, BatchPipelinesAndReordersByRequestId) {
  BlockingRegistryFixture fixture;
  ServiceConfig config;
  config.threads = 2;
  config.registry = &fixture.registry();
  SchedulingService service(std::move(config));
  Server server(service);
  Client client(client_for(server));

  const auto inst = example_instance();
  std::vector<SchedulingRequest> batch;
  batch.push_back(request_for(inst, 57.0, "block"));  // finishes last
  batch.push_back(request_for(inst, 57.0, "cg"));     // finishes first
  batch.push_back(request_for(inst, 57.0, "no-such-solver"));

  // Release the blocked solver only after it is certainly parked, so
  // the cg response overtakes it on the wire.
  std::thread releaser([&fixture] {
    fixture.wait_until_blocked();
    fixture.release();
  });
  const auto responses = client.solve_batch(batch);
  releaser.join();

  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok()) << responses[0].error;
  EXPECT_TRUE(responses[1].ok()) << responses[1].error;
  EXPECT_EQ(responses[2].status, ResponseStatus::rejected);
  EXPECT_EQ(responses[2].reject_reason, RejectReason::unknown_solver);
}

TEST(NetServer, QueueDeadlineExpiryCrossesTheWire) {
  BlockingRegistryFixture fixture;
  std::atomic<std::int64_t> now_ns{0};
  ServiceConfig config;
  config.threads = 1;
  config.registry = &fixture.registry();
  config.clock = [&now_ns] {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(now_ns.load()));
  };
  SchedulingService service(std::move(config));
  Server server(service);
  Client client(client_for(server));

  const auto inst = example_instance();
  std::vector<SchedulingRequest> batch;
  batch.push_back(request_for(inst, 57.0, "block"));
  auto tight = request_for(inst, 57.0);
  tight.deadline_ms = 5.0;
  batch.push_back(std::move(tight));

  std::thread releaser([&fixture, &service, &now_ns] {
    fixture.wait_until_blocked();
    // The frames are pipelined: wait until the tight request has
    // actually been admitted behind the blocked worker before letting
    // time pass, or the worker could pick it up with zero queue delay.
    while (service.metrics().snapshot().queue_depth < 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    now_ns.store(10'000'000);  // 10 ms pass while queued
    fixture.release();
  });
  const auto responses = client.solve_batch(batch);
  releaser.join();

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].ok()) << responses[0].error;
  EXPECT_EQ(responses[1].status, ResponseStatus::rejected);
  EXPECT_EQ(responses[1].reject_reason, RejectReason::deadline_expired);
  EXPECT_GE(responses[1].queue_delay_ms, 10.0);
}

TEST(NetServer, TenantQuotaRejectionCrossesTheWire) {
  BlockingRegistryFixture fixture;
  ServiceConfig config;
  config.threads = 1;
  config.max_inflight_per_tenant = 1;
  config.registry = &fixture.registry();
  SchedulingService service(std::move(config));
  Server server(service);
  Client client(client_for(server));

  const auto inst = example_instance();
  auto hog = request_for(inst, 57.0, "block");
  hog.tenant = "greedy";
  auto excess = request_for(inst, 57.0);
  excess.tenant = "greedy";
  auto other = request_for(inst, 57.0);
  other.tenant = "patient";

  std::thread releaser([&fixture, &service] {
    fixture.wait_until_blocked();
    // Hold the quota slot until the pipelined excess request has been
    // rejected at admission; releasing earlier would free the slot and
    // let it through.
    while (service.metrics().snapshot().tenant_quota_rejections < 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    fixture.release();
  });
  const auto responses = client.solve_batch({hog, excess, other});
  releaser.join();

  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok()) << responses[0].error;
  EXPECT_EQ(responses[1].status, ResponseStatus::rejected);
  EXPECT_EQ(responses[1].reject_reason, RejectReason::tenant_quota);
  EXPECT_TRUE(responses[2].ok()) << responses[2].error;
  EXPECT_EQ(service.metrics().snapshot().tenant_quota_rejections, 1u);
}

TEST(NetServer, StatsFrameCarriesMetricsDump) {
  SchedulingService service({.threads = 1});
  Server server(service);
  Client client(client_for(server));
  (void)client.solve(request_for(example_instance(), 57.0));

  const std::string text = client.stats();
  EXPECT_NE(text.find("requests_total 1"), std::string::npos);
  EXPECT_NE(text.find("tenant_quota_rejections 0"), std::string::npos);

  const std::string csv = client.stats(medcc::net::StatsFormat::csv);
  EXPECT_EQ(csv.rfind("metric,value\n", 0), 0u);
}

TEST(NetServer, GracefulShutdownDrainsInFlightSolve) {
  BlockingRegistryFixture fixture;
  ServiceConfig config;
  config.threads = 1;
  config.registry = &fixture.registry();
  SchedulingService service(std::move(config));
  auto server = std::make_unique<Server>(service);
  const std::uint16_t port = server->port();

  Client client(client_for(*server));
  std::promise<SchedulingResponse> delivered;
  std::thread solver([&client, &delivered] {
    delivered.set_value(client.solve(
        request_for(example_instance(), 57.0, "block")));
  });
  fixture.wait_until_blocked();

  // stop() must wait for the in-flight solve and flush its response.
  std::thread stopper([&server] { server->stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fixture.release();
  stopper.join();
  solver.join();

  const SchedulingResponse response = delivered.get_future().get();
  EXPECT_TRUE(response.ok()) << response.error;

  // The listener is gone: a fresh connection is refused.
  ClientConfig refused;
  refused.port = port;
  refused.connect_attempts = 1;
  Client late(refused);
  EXPECT_THROW(late.connect(), NetError);
}

TEST(NetServer, LateCompletionAfterServerDestructionIsSafe) {
  BlockingRegistryFixture fixture;
  ServiceConfig config;
  config.threads = 1;
  config.registry = &fixture.registry();
  SchedulingService service(std::move(config));
  ServerConfig server_config;
  server_config.drain_grace_ms = 10.0;  // expire long before the solve ends
  auto server = std::make_unique<Server>(service, server_config);

  Client client(client_for(*server));
  std::thread solver([&client] {
    try {
      (void)client.solve(request_for(example_instance(), 57.0, "block"));
    } catch (const NetError&) {
      // Expected: the grace period lapses with the solve still parked,
      // so the server closes the connection under us.
    }
  });
  fixture.wait_until_blocked();

  // Destroy the Server while its completion callback has yet to run.
  // The callback must post into the shared completion queue, not the
  // dead Server -- ASan catches the use-after-free this regresses.
  server->stop();
  server.reset();
  fixture.release();
  service.drain();
  solver.join();
}

// -- raw-socket malformed-byte handling -----------------------------------

/// A bare blocking TCP connection for speaking deliberately broken
/// protocol at the server.
class RawConn {
public:
  explicit RawConn(std::uint16_t port) {
    fd_.reset(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd_.valid()) throw NetError("raw socket failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0)
      throw NetError("raw connect failed");
  }

  void send(std::string_view bytes) {
    ASSERT_TRUE(medcc::util::send_all(fd_.get(), bytes.data(), bytes.size()));
  }

  /// Reads one full frame (blocking); returns false on orderly EOF.
  bool read_frame(FrameHeader& header, std::string& body) {
    for (;;) {
      const auto parsed = medcc::net::parse_frame_header(buffer_);
      if (parsed && buffer_.size() >= medcc::net::kHeaderSize +
                                          parsed->body_size) {
        header = *parsed;
        body = buffer_.substr(medcc::net::kHeaderSize, parsed->body_size);
        buffer_.erase(0, medcc::net::kHeaderSize + parsed->body_size);
        return true;
      }
      char chunk[4096];
      const long n = medcc::util::recv_some(fd_.get(), chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the server closed its end (EOF observed).
  bool server_closed() {
    char chunk[64];
    for (;;) {
      const long n = medcc::util::recv_some(fd_.get(), chunk, sizeof(chunk));
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

private:
  medcc::util::FdHandle fd_;
  std::string buffer_;
};

TEST(NetServer, MalformedBodyAnswersErrorFrameAndKeepsConnection) {
  SchedulingService service({.threads = 1});
  Server server(service);
  RawConn conn(server.port());

  // A sound frame whose body is garbage: the stream stays in sync, so
  // the server must answer with an error frame and keep the connection.
  conn.send(medcc::net::encode_frame(FrameType::solve_request, 77,
                                     "not a scheduling request"));
  FrameHeader header;
  std::string body;
  ASSERT_TRUE(conn.read_frame(header, body));
  EXPECT_EQ(header.type, FrameType::error);
  EXPECT_EQ(header.request_id, 77u);
  const auto fault = medcc::net::decode_error(body);
  EXPECT_EQ(fault.code, WireError::limit_exceeded);  // garbage string length

  // The same connection still serves well-formed traffic.
  conn.send(medcc::net::encode_stats_request(medcc::net::StatsFormat::text, 78));
  ASSERT_TRUE(conn.read_frame(header, body));
  EXPECT_EQ(header.type, FrameType::stats_response);
  EXPECT_EQ(header.request_id, 78u);

  const auto counters = server.counters();
  EXPECT_EQ(counters.protocol_errors, 1u);
}

TEST(NetServer, MalformedHeaderClosesConnectionAfterErrorFrame) {
  SchedulingService service({.threads = 1});
  Server server(service);
  RawConn conn(server.port());

  conn.send("this is definitely not the MDCC magic....");
  FrameHeader header;
  std::string body;
  ASSERT_TRUE(conn.read_frame(header, body));
  EXPECT_EQ(header.type, FrameType::error);
  const auto fault = medcc::net::decode_error(body);
  EXPECT_EQ(fault.code, WireError::bad_magic);
  EXPECT_TRUE(conn.server_closed());
}

TEST(NetServer, WriteBackpressurePausesReadingAndRecovers) {
  SchedulingService service({.threads = 1});
  ServerConfig config;
  config.max_conn_outbuf = 128;  // force the high-water mark immediately
  Server server(service, config);
  RawConn conn(server.port());

  // Pipeline a burst of stats requests without reading anything back:
  // the response bytes pile up server-side, reading must pause at the
  // high-water mark, then resume as we drain -- and every buffered
  // request must still be answered exactly once.
  constexpr std::uint64_t kBurst = 50;
  std::string burst;
  for (std::uint64_t id = 1; id <= kBurst; ++id)
    burst +=
        medcc::net::encode_stats_request(medcc::net::StatsFormat::text, id);
  conn.send(burst);

  std::vector<bool> seen(kBurst + 1, false);
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    FrameHeader header;
    std::string body;
    ASSERT_TRUE(conn.read_frame(header, body));
    ASSERT_EQ(header.type, FrameType::stats_response);
    ASSERT_GE(header.request_id, 1u);
    ASSERT_LE(header.request_id, kBurst);
    EXPECT_FALSE(seen[header.request_id]);
    seen[header.request_id] = true;
  }
  EXPECT_GE(server.counters().backpressure_paused, 1u);
}

// -- wire-cache fast path --------------------------------------------------

TEST(NetServer, FastPathServesByteIdenticalMemoizedFrame) {
  SchedulingService service({.threads = 1});
  Server server(service);
  RawConn conn(server.port());

  const auto inst = example_instance();
  const std::string request_frame =
      medcc::net::encode_solve_request(request_for(inst, 57.0), 5);

  // First occurrence: full path (decode, solve, encode); memoizes the
  // template frame on completion.
  conn.send(request_frame);
  FrameHeader header;
  std::string body;
  ASSERT_TRUE(conn.read_frame(header, body));
  ASSERT_EQ(header.type, FrameType::solve_response);
  EXPECT_EQ(header.request_id, 5u);
  const SchedulingResponse first = medcc::net::decode_solve_response(body);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(first.cache, medcc::service::CacheOutcome::miss);
  EXPECT_EQ(server.counters().fastpath_hits, 0u);

  // Verbatim duplicate under a different id: must be served from the
  // wire cache, byte-identical to the memoized template with only the
  // request id patched.
  std::string duplicate = request_frame;
  duplicate[8] = 9;  // little-endian id 9 (upper bytes stay zero)
  conn.send(duplicate);
  ASSERT_TRUE(conn.read_frame(header, body));
  ASSERT_EQ(header.type, FrameType::solve_response);
  EXPECT_EQ(header.request_id, 9u);

  SchedulingResponse norm = first;
  norm.queue_delay_ms = 0.0;
  norm.solve_ms = 0.0;
  norm.cache = medcc::service::CacheOutcome::hit_exact;
  // Reassembling the received frame from its parsed parts reproduces
  // the raw bytes (the header has no other degrees of freedom).
  EXPECT_EQ(medcc::net::encode_frame(header.type, header.request_id, body),
            medcc::net::encode_solve_response(norm, 9));

  EXPECT_EQ(server.counters().fastpath_hits, 1u);
  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.wire_fastpath_hits, 1u);
  EXPECT_EQ(snap.wire_fastpath_misses, 1u);  // the priming request
  // The fast path never entered the service: one request total.
  EXPECT_EQ(snap.requests_total, 1u);
}

TEST(NetServer, FastPathAbsentWhenWireCacheDisabled) {
  ServiceConfig config;
  config.threads = 1;
  config.wire_cache_capacity = 0;
  SchedulingService service(std::move(config));
  Server server(service);
  Client client(client_for(server));

  const auto inst = example_instance();
  const auto first = client.solve(request_for(inst, 57.0));
  ASSERT_TRUE(first.ok()) << first.error;
  const auto second = client.solve(request_for(inst, 57.0));
  ASSERT_TRUE(second.ok()) << second.error;
  // The result cache still answers, but through the full service path.
  EXPECT_EQ(second.cache, medcc::service::CacheOutcome::hit_exact);
  EXPECT_EQ(server.counters().fastpath_hits, 0u);
  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.wire_fastpath_hits, 0u);
  EXPECT_EQ(snap.wire_fastpath_misses, 0u);
  EXPECT_EQ(snap.requests_total, 2u);
}

// -- multi-reactor ---------------------------------------------------------

TEST(NetServer, MultiReactorShardsConnectionsAndServesAll) {
  SchedulingService service({.threads = 2});
  ServerConfig config;
  config.io_threads = 3;
  Server server(service, config);
  EXPECT_EQ(server.reactor_count(), 3u);

  // More connections than reactors, so every reactor owns at least one
  // (round-robin sharding); each connection does a solve and a stats
  // exchange.
  const auto inst = example_instance();
  constexpr std::size_t kClients = 6;
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>(client_for(server)));
    const auto response = clients[i]->solve(request_for(inst, 57.0));
    ASSERT_TRUE(response.ok()) << response.error;
  }
  for (auto& client : clients)
    EXPECT_NE(client->stats().find("requests_total"), std::string::npos);

  const auto counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, kClients);
  EXPECT_EQ(counters.connections_active, kClients);
  EXPECT_EQ(counters.frames_in, 2 * kClients);
  EXPECT_EQ(counters.frames_out, 2 * kClients);
  // Identical bodies: every solve after the first rides the fast path.
  EXPECT_EQ(counters.fastpath_hits, kClients - 1);

  server.stop();
  EXPECT_EQ(server.counters().connections_active, 0u);
}

TEST(NetServer, FlowControlRejectsExcessInflightFrames) {
  BlockingRegistryFixture fixture;
  ServiceConfig service_config;
  service_config.threads = 1;
  service_config.registry = &fixture.registry();
  SchedulingService service(std::move(service_config));
  ServerConfig server_config;
  server_config.max_inflight_frames = 1;
  Server server(service, server_config);

  const auto inst = example_instance();
  RawConn conn(server.port());
  // Two pipelined solves on one connection: the first occupies the
  // single in-flight slot (parked in the solver), so the second must be
  // shed with a structured flow_control rejection -- not a close, not
  // an error frame.
  conn.send(medcc::net::encode_solve_request(request_for(inst, 57.0, "block"),
                                             1));
  fixture.wait_until_blocked();
  conn.send(medcc::net::encode_solve_request(request_for(inst, 57.0), 2));

  FrameHeader header;
  std::string body;
  ASSERT_TRUE(conn.read_frame(header, body));
  ASSERT_EQ(header.type, FrameType::solve_response);
  EXPECT_EQ(header.request_id, 2u);
  const SchedulingResponse shed = medcc::net::decode_solve_response(body);
  EXPECT_EQ(shed.status, ResponseStatus::rejected);
  EXPECT_EQ(shed.reject_reason, RejectReason::flow_control);

  // The occupant finishes normally once released: the connection and
  // its first request survived the shedding.
  fixture.release();
  ASSERT_TRUE(conn.read_frame(header, body));
  EXPECT_EQ(header.request_id, 1u);
  EXPECT_TRUE(medcc::net::decode_solve_response(body).ok());
  EXPECT_EQ(server.counters().flow_control_rejects, 1u);
  EXPECT_GE(service.metrics().snapshot().rejected_flow_control, 1u);
}

TEST(NetServer, HelloNegotiatesVersionAndFeatures) {
  SchedulingService service({.threads = 1});
  ServerConfig with_repl;
  with_repl.node_id = "alpha";
  with_repl.repl_apply = [](std::string_view) { return true; };
  Server server(service, with_repl);

  Client client(client_for(server));
  medcc::net::Hello offer;
  offer.version = medcc::net::kMaxVersion;
  offer.features = medcc::net::kFeatureReplication;
  offer.node_id = "tester";
  const auto granted = client.hello(offer);
  EXPECT_EQ(granted.version, medcc::net::kVersion2);
  EXPECT_EQ(granted.features & medcc::net::kFeatureReplication,
            medcc::net::kFeatureReplication);
  EXPECT_EQ(granted.node_id, "alpha");
  EXPECT_EQ(server.counters().hellos, 1u);

  // Without a replication hook the feature bit is masked off.
  SchedulingService plain_service({.threads = 1});
  Server plain(plain_service);
  Client plain_client(client_for(plain));
  EXPECT_EQ(plain_client.hello(offer).features &
                medcc::net::kFeatureReplication,
            0u);

  // A v1 offer is granted v1 (the server never talks up).
  offer.version = 1;
  Client v1_client(client_for(server));
  EXPECT_EQ(v1_client.hello(offer).version, 1u);
}

TEST(NetServer, ReplInsertRestoresEntryServedByteIdentically) {
  const auto inst = example_instance();
  // Origin: solve once, capture the replication payload.
  std::string payload;
  ServiceConfig origin_config;
  origin_config.threads = 1;
  origin_config.on_cache_insert = [&payload](std::string bytes,
                                             medcc::obs::TraceContext) {
    payload = std::move(bytes);
  };
  SchedulingService origin(std::move(origin_config));
  const auto solved = origin.submit(request_for(inst, 57.0)).get();
  ASSERT_TRUE(solved.ok());
  ASSERT_FALSE(payload.empty());

  // Receiver: a server whose repl_apply restores into its service.
  SchedulingService receiver({.threads = 1});
  ServerConfig receiver_config;
  receiver_config.repl_apply = [&receiver](std::string_view bytes) {
    return receiver.apply_replicated_record(bytes);
  };
  Server server(receiver, receiver_config);
  Client client(client_for(server));

  const auto acks = client.repl_insert_batch({payload});
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].applied) << acks[0].error;
  EXPECT_EQ(server.counters().repl_records_in, 1u);
  EXPECT_EQ(receiver.metrics().snapshot().repl_applied, 1u);

  // The receiver never solved, yet serves the duplicate byte-exactly.
  const auto hit = client.solve(request_for(inst, 57.0));
  ASSERT_TRUE(hit.ok()) << hit.error;
  EXPECT_EQ(hit.cache, medcc::service::CacheOutcome::hit_exact);
  EXPECT_EQ(hit.result.schedule, solved.result.schedule);
  expect_bits_equal(hit.result.eval.med, solved.result.eval.med);
  expect_bits_equal(hit.result.eval.cost, solved.result.eval.cost);

  // Garbage records are acked applied=false, stream intact.
  const auto bad = client.repl_insert_batch({"not a cache record"});
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_FALSE(bad[0].applied);
  EXPECT_FALSE(bad[0].error.empty());

  // A node without the hook refuses politely instead of closing.
  SchedulingService no_repl({.threads = 1});
  Server no_repl_server(no_repl);
  Client no_repl_client(client_for(no_repl_server));
  const auto refused = no_repl_client.repl_insert_batch({payload});
  ASSERT_EQ(refused.size(), 1u);
  EXPECT_FALSE(refused[0].applied);
}

TEST(NetServer, ClusterStatusServedFromHookAndDefault) {
  SchedulingService service({.threads = 1});
  ServerConfig config;
  config.node_id = "beta";
  config.cluster_status = [] {
    medcc::net::ClusterStatus status;
    status.node_id = "beta";
    status.repl_applied = 7;
    medcc::net::ClusterPeerStatus peer;
    peer.address = "127.0.0.1:9999";
    peer.state = "connected";
    peer.peer_version = 2;
    peer.sent = 3;
    peer.acked = 3;
    status.peers.push_back(std::move(peer));
    return status;
  };
  Server server(service, config);
  Client client(client_for(server));

  const auto status = client.cluster_status();
  EXPECT_EQ(status.node_id, "beta");
  EXPECT_EQ(status.repl_applied, 7u);
  ASSERT_EQ(status.peers.size(), 1u);
  EXPECT_EQ(status.peers[0].state, "connected");
  EXPECT_EQ(status.peers[0].acked, 3u);

  // Hook-less server: a one-replica cluster.
  SchedulingService solo_service({.threads = 1});
  ServerConfig solo_config;
  solo_config.node_id = "solo";
  Server solo(solo_service, solo_config);
  Client solo_client(client_for(solo));
  const auto solo_status = solo_client.cluster_status();
  EXPECT_EQ(solo_status.node_id, "solo");
  EXPECT_EQ(solo_status.protocol_version, medcc::net::kMaxVersion);
  EXPECT_TRUE(solo_status.peers.empty());
}

TEST(NetServer, ServerSideClusterFramesFromClientAreAbuse) {
  SchedulingService service({.threads = 1});
  Server server(service);
  RawConn conn(server.port());
  medcc::net::ReplAck ack;
  ack.applied = true;
  conn.send(medcc::net::encode_repl_ack(ack, 5));
  FrameHeader header;
  std::string body;
  ASSERT_TRUE(conn.read_frame(header, body));
  EXPECT_EQ(header.type, FrameType::error);
  EXPECT_EQ(medcc::net::decode_error(body).code, WireError::unexpected_frame);
  EXPECT_TRUE(conn.server_closed());
}

TEST(NetServer, IdleConnectionsAreReaped) {
  SchedulingService service({.threads = 1});
  ServerConfig config;
  config.idle_timeout_ms = 50.0;
  Server server(service, config);
  RawConn conn(server.port());
  // Send nothing; the sweep must close us within a few periods.
  EXPECT_TRUE(conn.server_closed());
  // Allow the counter update to land before asserting.
  for (int i = 0; i < 100 && server.counters().idle_closed == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.counters().idle_closed, 1u);
}

}  // namespace
