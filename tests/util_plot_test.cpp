#include "util/ascii_plot.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using medcc::util::PlotOptions;
using medcc::util::Series;

TEST(LinePlot, RendersTitleLegendAndMarkers) {
  Series s{"MED", {1.0, 2.0, 3.0}, {5.0, 4.0, 3.0}, '*'};
  PlotOptions opts;
  opts.title = "Fig 6";
  opts.x_label = "budget";
  opts.y_label = "MED";
  const auto out = medcc::util::line_plot(std::vector<Series>{s}, opts);
  EXPECT_NE(out.find("Fig 6"), std::string::npos);
  EXPECT_NE(out.find("[*] MED"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("budget"), std::string::npos);
}

TEST(LinePlot, TwoSeriesBothInLegend) {
  Series a{"CG", {0.0, 1.0}, {1.0, 2.0}, 'c'};
  Series b{"GAIN3", {0.0, 1.0}, {2.0, 3.0}, 'g'};
  const auto out =
      medcc::util::line_plot(std::vector<Series>{a, b}, PlotOptions{});
  EXPECT_NE(out.find("[c] CG"), std::string::npos);
  EXPECT_NE(out.find("[g] GAIN3"), std::string::npos);
}

TEST(LinePlot, DegenerateSinglePoint) {
  Series s{"p", {1.0}, {1.0}, '*'};
  const auto out =
      medcc::util::line_plot(std::vector<Series>{s}, PlotOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(LinePlot, AxisBoundsPrinted) {
  Series s{"p", {0.0, 10.0}, {0.0, 100.0}, '*'};
  const auto out =
      medcc::util::line_plot(std::vector<Series>{s}, PlotOptions{});
  EXPECT_NE(out.find("100.00"), std::string::npos);
  EXPECT_NE(out.find("10.00"), std::string::npos);
}

TEST(LinePlot, RejectsTinyCanvas) {
  Series s{"p", {0.0}, {0.0}, '*'};
  PlotOptions opts;
  opts.width = 2;
  EXPECT_THROW((void)medcc::util::line_plot(std::vector<Series>{s}, opts),
               medcc::LogicError);
}

TEST(Heatmap, ScaleLineAndShades) {
  std::vector<std::vector<double>> cells = {{0.0, 1.0}, {2.0, 3.0}};
  const auto out = medcc::util::heatmap(cells, PlotOptions{});
  EXPECT_NE(out.find("scale:"), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);  // max shade present
}

TEST(Heatmap, UniformMatrixDoesNotCrash) {
  std::vector<std::vector<double>> cells = {{5.0, 5.0}, {5.0, 5.0}};
  const auto out = medcc::util::heatmap(cells, PlotOptions{});
  EXPECT_FALSE(out.empty());
}

TEST(Heatmap, RejectsRaggedInput) {
  std::vector<std::vector<double>> cells = {{1.0, 2.0}, {3.0}};
  EXPECT_THROW((void)medcc::util::heatmap(cells, PlotOptions{}),
               medcc::LogicError);
}

TEST(Heatmap, RejectsEmpty) {
  EXPECT_THROW((void)medcc::util::heatmap({}, PlotOptions{}),
               medcc::LogicError);
}

TEST(BarChart, BarsProportionalAndLabeled) {
  const std::vector<std::string> labels = {"a", "bb"};
  const std::vector<double> values = {1.0, 2.0};
  const auto out = medcc::util::bar_chart(labels, values, PlotOptions{});
  EXPECT_NE(out.find("a "), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  // The larger bar must contain more '#'.
  const auto first_bar = out.find('#');
  ASSERT_NE(first_bar, std::string::npos);
}

TEST(BarChart, ArityEnforced) {
  const std::vector<std::string> labels = {"a"};
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW((void)medcc::util::bar_chart(labels, values, PlotOptions{}),
               medcc::LogicError);
}

TEST(GroupedBarChart, SeriesLegendAndValues) {
  const std::vector<std::string> groups = {"B=10", "B=20"};
  const std::vector<std::string> names = {"CG", "GAIN3"};
  const std::vector<std::vector<double>> values = {{3.0, 2.0}, {4.0, 3.0}};
  const auto out =
      medcc::util::grouped_bar_chart(groups, names, values, PlotOptions{});
  EXPECT_NE(out.find("CG"), std::string::npos);
  EXPECT_NE(out.find("GAIN3"), std::string::npos);
  EXPECT_NE(out.find("B=10"), std::string::npos);
  EXPECT_NE(out.find("4.00"), std::string::npos);
}

TEST(GroupedBarChart, ShapeEnforced) {
  const std::vector<std::string> groups = {"g"};
  const std::vector<std::string> names = {"s"};
  const std::vector<std::vector<double>> bad = {{1.0, 2.0}};
  EXPECT_THROW(
      (void)medcc::util::grouped_bar_chart(groups, names, bad, PlotOptions{}),
      medcc::LogicError);
}

}  // namespace
