#include "sim/dynamic.hpp"

#include <gtest/gtest.h>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::sched::Instance;
using medcc::sim::dynamic_execute;
using medcc::sim::DynamicOptions;
using medcc::sim::DynamicPolicy;

Instance example_instance() {
  return Instance::from_model(medcc::workflow::example6(),
                              medcc::cloud::example_catalog());
}

TEST(Dynamic, CompletesAllModules) {
  const auto report = dynamic_execute(example_instance());
  EXPECT_EQ(report.trace.count(medcc::sim::TraceKind::ModuleDone), 8u);
  EXPECT_GT(report.makespan, 0.0);
}

TEST(Dynamic, UnlimitedBudgetMinFinishMatchesFastestMed) {
  // With no budget pressure and zero boot time, MinFinishTime spawns the
  // fastest type for every module as it becomes ready -- the fastest
  // schedule executed online.
  const auto inst = example_instance();
  const auto report = dynamic_execute(inst);
  const auto fastest = medcc::sched::evaluate(
      inst, medcc::sched::fastest_schedule(inst));
  EXPECT_NEAR(report.makespan, fastest.med, 1e-9);
}

TEST(Dynamic, CheapestFirstUndercutsAnalyticLeastCost) {
  const auto inst = example_instance();
  DynamicOptions opts;
  opts.policy = DynamicPolicy::CheapestFirst;
  const auto report = dynamic_execute(inst, opts);
  const auto least = medcc::sched::evaluate(
      inst, medcc::sched::least_cost_schedule(inst));
  const auto fastest = medcc::sched::evaluate(
      inst, medcc::sched::fastest_schedule(inst));
  // Online cheapest placement may reuse idle VMs (sharing billing
  // quanta), so the billed cost can undercut the analytic per-module
  // least-cost total; the makespan cannot beat the all-fastest bound.
  EXPECT_LE(report.billed_cost, least.cost + 1e-9);
  EXPECT_GE(report.makespan, fastest.med - 1e-9);
}

TEST(Dynamic, BudgetIsRespected) {
  const auto inst = example_instance();
  const auto bounds = medcc::sched::cost_bounds(inst);
  for (double budget : {bounds.cmin, 52.0, 57.0, bounds.cmax}) {
    DynamicOptions opts;
    opts.budget = budget;
    const auto report = dynamic_execute(inst, opts);
    EXPECT_LE(report.billed_cost, budget + 1e-6) << "budget " << budget;
  }
}

TEST(Dynamic, InfeasibleBudgetThrows) {
  DynamicOptions opts;
  opts.budget = 40.0;  // below Cmin = 48
  EXPECT_THROW((void)dynamic_execute(example_instance(), opts),
               medcc::Infeasible);
}

TEST(Dynamic, MoreBudgetNeverIncreasesMakespanMuch) {
  // The online greedy is not perfectly monotone either, but across the
  // example's band edges the trend must be downward overall.
  const auto inst = example_instance();
  DynamicOptions tight;
  tight.budget = 48.0;
  DynamicOptions rich;
  rich.budget = 64.0;
  EXPECT_LE(dynamic_execute(inst, rich).makespan,
            dynamic_execute(inst, tight).makespan + 1e-9);
}

TEST(Dynamic, BootTimeDelaysSpawnedWork) {
  const auto inst = example_instance();
  DynamicOptions opts;
  opts.vm_boot_time = 0.5;
  const auto delayed = dynamic_execute(inst, opts);
  const auto instant = dynamic_execute(inst);
  EXPECT_GT(delayed.makespan, instant.makespan);
}

TEST(Dynamic, KeepHotBillsMore) {
  const auto inst = example_instance();
  DynamicOptions hot;
  hot.stop_idle_vms = false;
  EXPECT_GE(dynamic_execute(inst, hot).billed_cost,
            dynamic_execute(inst).billed_cost - 1e-9);
}

TEST(Dynamic, ReuseHappensUnderBudgetPressure) {
  // At a modest budget the policy cannot spawn the fastest type for every
  // module; some decisions must reuse existing VMs.
  const auto inst = example_instance();
  DynamicOptions opts;
  opts.budget = 52.0;
  const auto report = dynamic_execute(inst, opts);
  std::size_t reused = 0;
  for (const auto& d : report.decisions)
    if (!d.spawned) ++reused;
  EXPECT_GT(reused, 0u);
  EXPECT_LT(report.vm_types.size(),
            inst.workflow().computing_module_count());
}

class DynamicPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DynamicPropertyTest, FeasibleAcrossBudgetsOnRandomInstances) {
  medcc::util::Prng rng(GetParam());
  const auto inst = medcc::expr::make_instance({12, 25, 4}, rng);
  const auto bounds = medcc::sched::cost_bounds(inst);
  for (double budget : medcc::sched::budget_levels(bounds, 5)) {
    for (auto policy :
         {DynamicPolicy::MinFinishTime, DynamicPolicy::CheapestFirst}) {
      DynamicOptions opts;
      opts.budget = budget;
      opts.policy = policy;
      const auto report = dynamic_execute(inst, opts);
      EXPECT_LE(report.billed_cost, budget + 1e-6);
      EXPECT_EQ(report.trace.count(medcc::sim::TraceKind::ModuleDone),
                inst.module_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
