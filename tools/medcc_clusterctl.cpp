// Cluster status tool: asks each listed medcc_server replica for its
// hello (negotiated protocol version + feature bits) and its
// cluster_status (replication counters, per-peer channel state) and
// prints one block per node.
//
// Usage: medcc_clusterctl --nodes HOST:PORT,... [--timeout MS]
//
// Exit status: 0 when every node answered, 1 when at least one was
// unreachable (its block says so and the remaining nodes are still
// queried), 2 on usage errors.
//
// Sample output (one node, one peer):
//
//   node medcc-a at 127.0.0.1:7101: protocol v2, features repl
//     repl_applied 12  repl_apply_errors 0
//     peer 127.0.0.1:7102  state=connected v2  queued=0 sent=12
//       acked=12 dropped=0 send_errors=0
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/endpoint.hpp"
#include "util/flags.hpp"

namespace {

constexpr const char* kUsage =
    "usage: medcc_clusterctl --nodes HOST:PORT,... [--timeout MS]\n";

std::vector<medcc::net::Endpoint> parse_nodes(std::string_view list) {
  std::vector<medcc::net::Endpoint> nodes;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::string_view token = list.substr(
        begin, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - begin);
    auto endpoint = medcc::net::parse_endpoint(token);
    if (!endpoint)
      throw std::invalid_argument("bad endpoint '" + std::string(token) + "'");
    nodes.push_back(*std::move(endpoint));
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  return nodes;
}

/// Queries one node and prints its block; false when unreachable.
bool report(const medcc::net::Endpoint& node, double timeout_ms) {
  medcc::net::ClientConfig config;
  config.host = node.host;
  config.port = node.port;
  config.connect_timeout_ms = timeout_ms;
  config.request_timeout_ms = timeout_ms;
  try {
    medcc::net::Client client(std::move(config));
    medcc::net::Hello offer;
    offer.version = medcc::net::kMaxVersion;
    offer.features = medcc::net::kFeatureReplication;
    offer.node_id = "medcc_clusterctl";
    const medcc::net::Hello granted = client.hello(offer);
    if (granted.version < medcc::net::kVersion2) {
      // Pre-cluster build: it cannot answer a cluster_status request.
      std::cout << "node at " << medcc::net::to_string(node)
                << ": protocol v" << granted.version
                << " (no cluster support)\n";
      return true;
    }
    const medcc::net::ClusterStatus status = client.cluster_status();
    std::cout << "node " << status.node_id << " at "
              << medcc::net::to_string(node) << ": protocol v"
              << granted.version << ", features "
              << ((granted.features & medcc::net::kFeatureReplication) != 0
                      ? "repl"
                      : "none")
              << "\n"
              << "  repl_applied " << status.repl_applied
              << "  repl_apply_errors " << status.repl_apply_errors << "\n";
    for (const medcc::net::ClusterPeerStatus& peer : status.peers)
      std::cout << "  peer " << peer.address << "  state=" << peer.state
                << " v" << peer.peer_version << "  queued=" << peer.queued
                << " sent=" << peer.sent << " acked=" << peer.acked
                << " dropped=" << peer.dropped
                << " send_errors=" << peer.send_errors << "\n";
    return true;
  } catch (const std::exception& ex) {
    std::cout << "node at " << medcc::net::to_string(node)
              << ": unreachable (" << ex.what() << ")\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<medcc::net::Endpoint> nodes;
  double timeout_ms = 5000.0;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--nodes" && i + 1 < argc) {
        nodes = parse_nodes(argv[++i]);
      } else if (arg == "--timeout" && i + 1 < argc) {
        timeout_ms = medcc::util::parse_flag_double(argv[++i]);
      } else {
        std::cerr << kUsage;
        return 2;
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "medcc_clusterctl: " << ex.what() << "\n" << kUsage;
    return 2;
  }
  if (nodes.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  bool all_ok = true;
  for (const medcc::net::Endpoint& node : nodes)
    if (!report(node, timeout_ms)) all_ok = false;
  return all_ok ? 0 : 1;
}
