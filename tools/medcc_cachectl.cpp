// Offline inspection and maintenance of a durable result-cache
// directory (the snapshot + journal written by a medcc_server running
// with --cache-dir; see src/persist and docs/FORMATS.md).
//
//   medcc_cachectl inspect DIR   summarize both files and every entry
//   medcc_cachectl verify DIR    exit 0 iff both files are fully intact
//                                (no torn tail, every record decodes)
//   medcc_cachectl compact DIR   fold the journal into the snapshot and
//                                reset the journal (offline; do not run
//                                against a live server)
//
// verify distinguishes the failure classes: a torn tail (crash evidence
// the server tolerates and repairs on boot) and an undecodable record
// (version skew or writer bug; skipped on warm start) both fail
// verification but are labelled separately.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "persist/record_file.hpp"
#include "service/persistence.hpp"

namespace {

constexpr const char* kUsage =
    "usage: medcc_cachectl {inspect|verify|compact} DIR\n";

struct FileReport {
  medcc::persist::ReadResult read;
  std::vector<medcc::service::CacheEntry> entries;
  std::uint64_t decode_errors = 0;
};

FileReport load_file(const std::filesystem::path& path, std::uint32_t magic) {
  FileReport report;
  report.read = medcc::persist::read_record_file(path, magic);
  for (const std::string& payload : report.read.payloads) {
    try {
      report.entries.push_back(medcc::service::decode_cache_record(payload));
    } catch (const medcc::persist::PersistError&) {
      ++report.decode_errors;
    }
  }
  return report;
}

void print_file_summary(std::string_view name, const FileReport& report) {
  std::cout << name << ": ";
  if (!report.read.exists) {
    std::cout << "missing\n";
    return;
  }
  std::cout << report.read.payloads.size() << " records, "
            << report.read.valid_bytes << " valid bytes"
            << (report.read.truncated ? ", TORN TAIL" : "");
  if (report.decode_errors > 0)
    std::cout << ", " << report.decode_errors << " undecodable";
  std::cout << "\n";
}

void print_entries(const std::vector<medcc::service::CacheEntry>& entries) {
  for (const auto& entry : entries) {
    std::cout << "  key=" << std::hex << entry.key.hi << ":" << entry.key.lo
              << std::dec << " solver=" << entry.solver
              << " modules=" << entry.result.schedule.type_of.size()
              << " med=" << entry.result.eval.med
              << " cost=" << entry.result.eval.cost << " hits=" << entry.hits
              << (entry.remappable ? " remappable" : "") << "\n";
  }
}

int inspect(const std::filesystem::path& dir) {
  const FileReport snapshot =
      load_file(dir / medcc::persist::kSnapshotFileName,
                medcc::persist::kSnapshotMagic);
  const FileReport journal = load_file(dir / medcc::persist::kJournalFileName,
                                       medcc::persist::kJournalMagic);
  print_file_summary("snapshot", snapshot);
  print_entries(snapshot.entries);
  print_file_summary("journal", journal);
  print_entries(journal.entries);
  return 0;
}

int verify(const std::filesystem::path& dir) {
  const FileReport snapshot =
      load_file(dir / medcc::persist::kSnapshotFileName,
                medcc::persist::kSnapshotMagic);
  const FileReport journal = load_file(dir / medcc::persist::kJournalFileName,
                                       medcc::persist::kJournalMagic);
  print_file_summary("snapshot", snapshot);
  print_file_summary("journal", journal);
  const bool torn = snapshot.read.truncated || journal.read.truncated;
  const std::uint64_t undecodable =
      snapshot.decode_errors + journal.decode_errors;
  if (torn) std::cout << "verify: torn tail present\n";
  if (undecodable > 0)
    std::cout << "verify: " << undecodable << " undecodable record(s)\n";
  if (torn || undecodable > 0) return 1;
  std::cout << "verify: ok ("
            << snapshot.entries.size() + journal.entries.size()
            << " records)\n";
  return 0;
}

int compact(const std::filesystem::path& dir) {
  const FileReport snapshot =
      load_file(dir / medcc::persist::kSnapshotFileName,
                medcc::persist::kSnapshotMagic);
  const FileReport journal = load_file(dir / medcc::persist::kJournalFileName,
                                       medcc::persist::kJournalMagic);

  // Replay order (snapshot then journal) with last-wins per key: keep
  // only each key's final occurrence, preserving replay order among the
  // survivors, and drop undecodable payloads.
  std::vector<std::pair<medcc::service::CacheEntry, const std::string*>> all;
  for (const FileReport* report : {&snapshot, &journal}) {
    for (const std::string& payload : report->read.payloads) {
      try {
        medcc::service::CacheEntry entry =
            medcc::service::decode_cache_record(payload);
        all.emplace_back(std::move(entry), &payload);
      } catch (const medcc::persist::PersistError&) {
      }
    }
  }
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> last;
  for (std::size_t i = 0; i < all.size(); ++i)
    last[{all[i].first.key.hi, all[i].first.key.lo}] = i;
  std::vector<std::string> payloads;
  payloads.reserve(last.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (last[{all[i].first.key.hi, all[i].first.key.lo}] == i)
      payloads.push_back(*all[i].second);
  }

  medcc::persist::write_record_file(dir / medcc::persist::kSnapshotFileName,
                                    medcc::persist::kSnapshotMagic, payloads);
  medcc::persist::write_record_file(dir / medcc::persist::kJournalFileName,
                                    medcc::persist::kJournalMagic, {});
  const std::uint64_t dropped =
      snapshot.decode_errors + journal.decode_errors;
  std::cout << "compact: " << payloads.size() << " entries ("
            << all.size() - payloads.size() << " superseded, " << dropped
            << " undecodable dropped"
            << (snapshot.read.truncated || journal.read.truncated
                    ? ", torn tail cut"
                    : "")
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string_view command = argv[1];
  const std::filesystem::path dir = argv[2];
  try {
    if (command == "inspect") return inspect(dir);
    if (command == "verify") return verify(dir);
    if (command == "compact") return compact(dir);
  } catch (const std::exception& ex) {
    std::cerr << "medcc_cachectl: " << ex.what() << "\n";
    return 1;
  }
  std::cerr << kUsage;
  return 2;
}
