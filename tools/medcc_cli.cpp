// medcc_cli -- schedule workflow files from the command line.
//
//   medcc_cli bounds   --workflow wf.txt --catalog cat.txt
//   medcc_cli schedule --workflow wf.txt --catalog cat.txt --budget 57
//                      [--algo cg|gain3|loss|optimal] [--simulate]
//                      [--gantt] [--quantum 1.0]
//   medcc_cli deadline --workflow wf.txt --catalog cat.txt --deadline 8
//   medcc_cli example  --out-workflow wf.txt --out-catalog cat.txt
//
// Exit code 0 on success, 1 on usage errors, 2 on infeasibility.
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/deadline.hpp"
#include "sched/exhaustive.hpp"
#include "sched/gain_loss.hpp"
#include "expr/robustness.hpp"
#include "sim/dynamic.hpp"
#include "sim/executor.hpp"
#include "sim/gantt.hpp"
#include "util/table.hpp"
#include "workflow/dax.hpp"
#include "workflow/io.hpp"
#include "workflow/patterns.hpp"

namespace {

using medcc::util::fmt;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto* value = find(key);
    if (!value)
      throw medcc::InvalidArgument("missing required option --" + key);
    return *value;
  }
  [[nodiscard]] double number(const std::string& key) const {
    return std::stod(require(key));
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) throw medcc::InvalidArgument("missing command");
  args.command = argv[1];
  for (int k = 2; k < argc; ++k) {
    std::string token = argv[k];
    if (token.rfind("--", 0) != 0)
      throw medcc::InvalidArgument("expected an option, got '" + token + "'");
    if (k + 1 >= argc)
      throw medcc::InvalidArgument("option " + token + " needs a value");
    args.options[token.substr(2)] = argv[++k];
  }
  return args;
}

medcc::sched::Instance load_instance(const Args& args) {
  // Workflows come from the native text format or a Pegasus DAX trace.
  auto wf = args.find("dax")
                ? medcc::workflow::load_dax(args.require("dax"))
                : medcc::workflow::load_workflow(args.require("workflow"));
  auto catalog = medcc::workflow::load_catalog(args.require("catalog"));
  const double quantum =
      args.find("quantum") ? args.number("quantum") : 1.0;
  return medcc::sched::Instance::from_model(
      std::move(wf), std::move(catalog),
      medcc::cloud::BillingPolicy(quantum));
}

void print_schedule(const medcc::sched::Instance& inst,
                    const medcc::sched::Schedule& schedule,
                    const medcc::sched::Evaluation& eval) {
  medcc::util::Table t({"module", "VM type", "time", "cost"});
  for (auto m : inst.workflow().computing_modules()) {
    const auto type = schedule.type_of[m];
    t.add_row({inst.workflow().module(m).name,
               inst.catalog().type(type).name, fmt(inst.time(m, type), 3),
               fmt(inst.cost(m, type), 3)});
  }
  std::cout << t.render() << "MED = " << fmt(eval.med, 3) << ", cost = "
            << fmt(eval.cost, 3) << '\n';
}

int run(const Args& args) {
  if (args.command == "bounds") {
    const auto inst = load_instance(args);
    const auto bounds = medcc::sched::cost_bounds(inst);
    std::cout << "Cmin = " << fmt(bounds.cmin, 3) << "\nCmax = "
              << fmt(bounds.cmax, 3) << '\n';
    return 0;
  }
  if (args.command == "schedule") {
    const auto inst = load_instance(args);
    const double budget = args.number("budget");
    const std::string algo =
        args.find("algo") ? *args.find("algo") : std::string("cg");
    medcc::sched::Schedule schedule;
    if (algo == "cg") {
      schedule = medcc::sched::critical_greedy(inst, budget).schedule;
    } else if (algo == "gain3") {
      schedule = medcc::sched::gain3(inst, budget).schedule;
    } else if (algo == "loss") {
      schedule = medcc::sched::loss(inst, budget).schedule;
    } else if (algo == "optimal") {
      schedule = medcc::sched::exhaustive_optimal(inst, budget).schedule;
    } else {
      throw medcc::InvalidArgument("unknown --algo '" + algo + "'");
    }
    const auto eval = medcc::sched::evaluate(inst, schedule);
    print_schedule(inst, schedule, eval);
    if (args.find("simulate") || args.find("gantt")) {
      medcc::sim::ExecutorOptions opts;
      opts.reuse_vms = true;
      const auto report = medcc::sim::execute(inst, schedule, opts);
      std::cout << "simulated makespan = " << fmt(report.makespan, 3)
                << " on " << report.vms.size() << " VMs, billed "
                << fmt(report.billed_cost, 3) << '\n';
      if (args.find("gantt"))
        std::cout << '\n' << medcc::sim::gantt(inst, report);
    }
    return 0;
  }
  if (args.command == "trace") {
    const auto inst = load_instance(args);
    const auto trace =
        medcc::sched::critical_greedy_trace(inst, args.number("budget"));
    medcc::util::Table t({"step", "module", "move", "dT", "dC", "MED",
                          "cost"});
    for (std::size_t k = 0; k < trace.moves.size(); ++k) {
      const auto& mv = trace.moves[k];
      t.add_row({fmt(k + 1), inst.workflow().module(mv.module).name,
                 inst.catalog().type(mv.from_type).name + "->" +
                     inst.catalog().type(mv.to_type).name,
                 fmt(mv.dt, 3), fmt(mv.dc, 3), fmt(mv.med_after, 3),
                 fmt(mv.cost_after, 3)});
    }
    std::cout << t.render() << "final MED = "
              << fmt(trace.result.eval.med, 3) << ", cost = "
              << fmt(trace.result.eval.cost, 3) << '\n';
    return 0;
  }
  if (args.command == "dynamic") {
    const auto inst = load_instance(args);
    medcc::sim::DynamicOptions opts;
    if (args.find("budget")) opts.budget = args.number("budget");
    if (args.find("boot")) opts.vm_boot_time = args.number("boot");
    if (args.find("frugal")) opts.policy = medcc::sim::DynamicPolicy::CheapestFirst;
    const auto report = medcc::sim::dynamic_execute(inst, opts);
    std::cout << "online makespan = " << fmt(report.makespan, 3)
              << ", billed = " << fmt(report.billed_cost, 3) << " on "
              << report.vm_types.size() << " VMs ("
              << report.decisions.size() << " placements)\n";
    return 0;
  }
  if (args.command == "robustness") {
    const auto inst = load_instance(args);
    const double budget = args.number("budget");
    const auto r = medcc::sched::critical_greedy(inst, budget);
    medcc::expr::RobustnessOptions opts;
    if (args.find("noise")) opts.noise = args.number("noise");
    if (args.find("trials"))
      opts.trials = static_cast<std::size_t>(args.number("trials"));
    const auto rep = medcc::expr::assess_robustness(
        inst, r.schedule, medcc::util::global_pool(), opts);
    std::cout << "nominal MED = " << fmt(rep.nominal_med, 3) << "\nmean = "
              << fmt(rep.mean, 3) << "\np95 = " << fmt(rep.p95, 3)
              << "\nmax = " << fmt(rep.max, 3) << '\n';
    if (args.find("deadline"))
      std::cout << "miss rate at deadline "
                << fmt(args.number("deadline"), 3) << " = "
                << fmt(rep.miss_rate(args.number("deadline")), 4) << '\n';
    return 0;
  }
  if (args.command == "deadline") {
    const auto inst = load_instance(args);
    const double deadline = args.number("deadline");
    const auto r = medcc::sched::deadline_loss(inst, deadline);
    print_schedule(inst, r.schedule, r.eval);
    std::cout << "budget to request (CG sweep): "
              << fmt(medcc::sched::budget_for_deadline(inst, deadline), 3)
              << '\n';
    return 0;
  }
  if (args.command == "example") {
    medcc::workflow::save_workflow(medcc::workflow::example6(),
                                   args.require("out-workflow"));
    medcc::workflow::save_catalog(medcc::cloud::example_catalog(),
                                  args.require("out-catalog"));
    std::cout << "wrote the paper's numerical example\n";
    return 0;
  }
  throw medcc::InvalidArgument("unknown command '" + args.command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const medcc::Infeasible& e) {
    std::cerr << "infeasible: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n'
              << "usage: medcc_cli bounds|schedule|trace|deadline|dynamic|robustness|example "
                 "--workflow F|--dax F --catalog F [--budget X] [--deadline X] "
                 "[--algo cg|gain3|loss|optimal] [--simulate] [--gantt] "
                 "[--quantum Q] [--out-workflow F] [--out-catalog F]\n";
    return 1;
  }
}
