// medcc_lint -- repo-specific static checks the compiler cannot enforce.
//
// The rule engine lives in tools/lint/ (tokenizer, Rule interface,
// suppression handling, JSON output); this is the command-line driver.
// Rule ids are stable and suppressible with a same-line
// `medcc-lint: allow(<rule>)` comment; run with --list-rules for the
// catalog, and see docs/analysis.md for the rationale behind each rule.
//
// Usage:
//   medcc_lint <dir-or-file>...            lint; exit 1 on any finding
//   medcc_lint --json FILE <path>...       also write a JSON report
//   medcc_lint --self-test <fixture>...    every fixture file must trigger
//                                          exactly the rules named by its
//                                          `medcc-lint-expect: <rule>` lines
//   medcc_lint --list-rules                print the rule catalog
//
// Registered in ctest as `lint_selftest` (src/ must be clean),
// `lint_fixtures` (aggregate), and one `lint_fixture_*` test per file.
#include <iostream>
#include <string>
#include <vector>

#include "lint/engine.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool self_test = false;
  std::string json_path;
  std::vector<std::string> roots;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--self-test") {
      self_test = true;
    } else if (args[i] == "--list-rules") {
      medcc_lint::print_rules();
      return 0;
    } else if (args[i] == "--json") {
      if (i + 1 >= args.size()) {
        std::cout << "medcc_lint: --json requires a file argument\n";
        return 2;
      }
      json_path = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cout << "medcc_lint: unknown option '" << args[i] << "'\n";
      return 2;
    } else {
      roots.push_back(args[i]);
    }
  }
  if (roots.empty()) {
    std::cout << "usage: medcc_lint [--self-test] [--json FILE] "
                 "[--list-rules] <path>...\n";
    return 2;
  }
  try {
    if (self_test) return medcc_lint::run_self_test(roots);
    return medcc_lint::run_lint(roots, json_path);
  } catch (const std::exception& e) {
    std::cout << "medcc_lint: " << e.what() << "\n";
    return 2;
  }
}
