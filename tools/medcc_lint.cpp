// medcc_lint -- repo-specific static checks the compiler cannot enforce.
//
// Rules (stable ids, suppress with a same-line `medcc-lint: allow(<rule>)`
// comment):
//   raw-rand        rand()/srand()/std::random_device outside src/util/prng:
//                   all randomness must flow through the seeded, forkable
//                   util::Prng streams or experiments stop being
//                   reproducible.
//   cout-in-library std::cout/std::cerr/printf in library code under src/
//                   (the leveled logger util/log.hpp is the only allowed
//                   sink; util/log.cpp itself is exempt).
//   float-eq        ==/!= on double-typed time/cost quantities (tokens
//                   like time, cost, med, makespan, budget, rate, est,
//                   eft, ...). Comparing against the literal 0.0 is
//                   allowed: exact zero is well-defined for values that
//                   are assigned, never accumulated.
//   pragma-once     every .hpp under src/ must contain #pragma once.
//   namespace-medcc every .hpp under src/ must declare namespace medcc.
//
// Usage:
//   medcc_lint <dir-or-file>...          lint; exit 1 on any finding
//   medcc_lint --self-test <fixture-dir> every fixture file must trigger
//                                        exactly the rules named by its
//                                        `medcc-lint-expect: <rule>` lines
//
// Registered in ctest as `lint_tree` and `lint_self_test`.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Identifier tokens whose comparison with ==/!= indicates a float
/// time/cost comparison.
const std::set<std::string>& float_tokens() {
  static const std::set<std::string> tokens = {
      "time",  "times",   "cost",     "costs", "med",      "makespan",
      "budget", "deadline", "billed", "rate",  "rates",    "est",
      "eft",   "lst",     "lft",      "slack", "uptime",   "duration",
      "durations"};
  return tokens;
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// True when `line` carries a `medcc-lint: allow(rule)` suppression.
bool suppressed(const std::string& line, const std::string& rule) {
  const auto pos = line.find("medcc-lint: allow(");
  if (pos == std::string::npos) return false;
  const auto list_begin = pos + std::string("medcc-lint: allow(").size();
  const auto list_end = line.find(')', list_begin);
  if (list_end == std::string::npos) return false;
  const std::string list = line.substr(list_begin, list_end - list_begin);
  return list.find(rule) != std::string::npos;
}

/// Strips // and /* */ comments and the contents of string/char literals
/// from one line. `in_block` carries /* */ state across lines.
std::string strip_comments_and_strings(const std::string& line,
                                       bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') break;
      if (line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
    }
    if (line[i] == '"' || line[i] == '\'') {
      const char quote = line[i];
      out.push_back(quote);
      ++i;
      while (i < line.size() && line[i] != quote) {
        if (line[i] == '\\') ++i;
        ++i;
      }
      out.push_back(quote);
      continue;
    }
    out.push_back(line[i]);
  }
  return out;
}

/// Splits `code` into lowercase identifier tokens.
std::vector<std::string> identifier_tokens(const std::string& code) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : code) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      cur.push_back(c);
    } else if (!cur.empty()) {
      tokens.push_back(lowercase(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(lowercase(cur));
  // snake_case identifiers also contribute their parts: cost_rate -> cost,
  // rate.
  std::vector<std::string> expanded = tokens;
  for (const auto& t : tokens) {
    std::string part;
    for (char c : t) {
      if (c == '_') {
        if (!part.empty()) expanded.push_back(part);
        part.clear();
      } else {
        part.push_back(c);
      }
    }
    if (!part.empty()) expanded.push_back(part);
  }
  return expanded;
}

/// True when the character can start/continue an operator glyph that makes
/// a '=' at the next position something other than equality.
bool is_compound_op_prefix(char c) {
  return c == '=' || c == '!' || c == '<' || c == '>' || c == '+' ||
         c == '-' || c == '*' || c == '/' || c == '&' || c == '|' ||
         c == '^' || c == '%';
}

/// Removes the comparison forms that never carry float semantics --
/// container-size chains, literal-zero comparisons, operator declarations
/// -- so both the comparison detection and the keyword-token scan run on
/// the same reduced text.
std::string reduce_for_float_eq(std::string code) {
  for (const char* decl : {"operator==", "operator!="}) {
    for (auto pos = code.find(decl); pos != std::string::npos;
         pos = code.find(decl))
      code.erase(pos, std::string(decl).size());
  }
  // Integral container-size chains never carry float semantics; strip the
  // whole postfix expression so its tokens do not match the keyword set.
  for (const char* call : {".size()", ".empty()", ".count("}) {
    for (auto pos = code.find(call); pos != std::string::npos;
         pos = code.find(call)) {
      std::size_t begin = pos;
      while (begin > 0) {
        const char c = code[begin - 1];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.' || c == ':' || c == '>' || c == '-' || c == ']' ||
            c == '[' || c == ')' || c == '(') {
          --begin;
        } else {
          break;
        }
      }
      code.erase(begin, pos - begin + std::string(call).size());
    }
  }
  // Drop literal-zero comparisons ("x == 0.0", "n != 0"): exact zero is
  // well-defined for values that are assigned, never accumulated.
  for (const char* zero : {"== 0.0", "!= 0.0", "==0.0", "!=0.0"}) {
    for (auto pos = code.find(zero); pos != std::string::npos;
         pos = code.find(zero))
      code.erase(pos, std::string(zero).size());
  }
  for (const char* zero : {"== 0", "!= 0", "==0", "!=0"}) {
    for (auto pos = code.find(zero); pos != std::string::npos;
         pos = code.find(zero, pos + 1)) {
      const std::size_t after = pos + std::string(zero).size();
      if (after < code.size() &&
          (std::isdigit(static_cast<unsigned char>(code[after])) ||
           code[after] == '.' || code[after] == 'x'))
        continue;  // 0.5, 0x..: a real literal, keep the comparison
      code.erase(pos, std::string(zero).size());
      pos = 0;
    }
  }
  return code;
}

/// True when the (already reduced) code still contains a ==/!= comparison
/// whose right operand is not a qualified constant (Enum::Value,
/// limits<double>::infinity).
bool has_float_comparison(const std::string& code) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i + 1] != '=') continue;
    const bool is_eq =
        code[i] == '=' && (i == 0 || !is_compound_op_prefix(code[i - 1]));
    const bool is_ne = code[i] == '!';
    if (!is_eq && !is_ne) continue;
    // A qualified right operand (Enum::Value, Foo::kConst) is an integral
    // or symbolic constant, not a float quantity.
    std::size_t j = i + 2;
    while (j < code.size() && code[j] == ' ') ++j;
    std::size_t end = j;
    while (end < code.size() &&
           (std::isalnum(static_cast<unsigned char>(code[end])) ||
            code[end] == '_' || code[end] == ':'))
      ++end;
    if (code.substr(j, end - j).find("::") != std::string::npos) continue;
    return true;
  }
  return false;
}

bool path_contains(const fs::path& path, const std::string& needle) {
  return path.generic_string().find(needle) != std::string::npos;
}

void lint_file(const fs::path& path, bool header_rules,
               std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back(Finding{path.string(), 0, "io", "cannot open file"});
    return;
  }

  const bool is_prng = path_contains(path, "util/prng");
  const bool is_logger_sink = path_contains(path, "util/log.cpp");

  bool saw_pragma_once = false;
  bool saw_namespace = false;
  bool in_block_comment = false;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    if (raw.find("#pragma once") != std::string::npos) saw_pragma_once = true;
    if (raw.find("namespace medcc") != std::string::npos) saw_namespace = true;

    const std::string code = strip_comments_and_strings(raw, in_block_comment);
    auto report = [&](const char* rule, std::string message) {
      if (!suppressed(raw, rule))
        findings.push_back(
            Finding{path.string(), lineno, rule, std::move(message)});
    };

    if (!is_prng) {
      for (const char* call : {"rand(", "srand(", "random_device"}) {
        const auto pos = code.find(call);
        // Reject bare rand(, not strtol/grand/prng.rand wrappers: the
        // character before must not be an identifier character.
        if (pos != std::string::npos &&
            (pos == 0 ||
             (!std::isalnum(static_cast<unsigned char>(code[pos - 1])) &&
              code[pos - 1] != '_'))) {
          report("raw-rand",
                 std::string("'") + call +
                     "' outside src/util/prng; use util::Prng streams");
        }
      }
    }

    if (!is_logger_sink) {
      for (const char* sink : {"std::cout", "std::cerr", "printf("}) {
        const auto pos = code.find(sink);
        if (pos != std::string::npos &&
            (pos == 0 ||
             (!std::isalnum(static_cast<unsigned char>(code[pos - 1])) &&
              code[pos - 1] != '_' && code[pos - 1] != ':'))) {
          report("cout-in-library",
                 std::string("'") + sink +
                     "' in library code; use util/log.hpp loggers");
        }
      }
    }

    const std::string reduced = reduce_for_float_eq(code);
    if (has_float_comparison(reduced)) {
      const auto tokens = identifier_tokens(reduced);
      for (const auto& t : tokens) {
        if (float_tokens().count(t) != 0) {
          report("float-eq",
                 "==/!= on a double time/cost quantity ('" + t +
                     "'); compare with a tolerance or annotate the exact "
                     "tie-break with medcc-lint: allow(float-eq)");
          break;
        }
      }
    }
  }

  if (header_rules) {
    if (!saw_pragma_once)
      findings.push_back(Finding{path.string(), 1, "pragma-once",
                                 "public header lacks #pragma once"});
    if (!saw_namespace)
      findings.push_back(Finding{path.string(), 1, "namespace-medcc",
                                 "public header declares no namespace medcc"});
  }
}

std::vector<fs::path> collect_sources(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h")
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_lint(const std::vector<std::string>& roots) {
  std::vector<Finding> findings;
  for (const auto& file : collect_sources(roots))
    lint_file(file, file.extension() == ".hpp", findings);
  for (const auto& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  if (findings.empty()) {
    std::cout << "medcc_lint: clean\n";
    return 0;
  }
  std::cout << "medcc_lint: " << findings.size() << " finding(s)\n";
  return 1;
}

/// Fixture files state the rules they must trigger with
/// `medcc-lint-expect: <rule>` lines; the self-test fails when any
/// expectation goes unmatched or a fixture declares none.
int run_self_test(const std::string& fixture_dir) {
  int failures = 0;
  std::size_t fixtures = 0;
  for (const auto& file : collect_sources({fixture_dir})) {
    ++fixtures;
    std::set<std::string> expected;
    {
      std::ifstream in(file);
      std::string line;
      while (std::getline(in, line)) {
        const auto pos = line.find("medcc-lint-expect:");
        if (pos == std::string::npos) continue;
        std::string rule =
            line.substr(pos + std::string("medcc-lint-expect:").size());
        rule.erase(0, rule.find_first_not_of(" \t"));
        rule.erase(rule.find_last_not_of(" \t\r") + 1);
        expected.insert(rule);
      }
    }
    if (expected.empty()) {
      std::cout << file.string() << ": fixture declares no expectations\n";
      ++failures;
      continue;
    }
    std::vector<Finding> findings;
    lint_file(file, file.extension() == ".hpp", findings);
    std::set<std::string> found;
    for (const auto& f : findings) found.insert(f.rule);
    for (const auto& rule : expected) {
      if (rule == "clean") {
        // The fixture must produce no findings at all (suppressions and
        // literal-zero exemptions must hold).
        for (const auto& f : findings) {
          std::cout << file.string() << ": expected clean, got [" << f.rule
                    << "] at line " << f.line << "\n";
          ++failures;
        }
        continue;
      }
      if (found.count(rule) == 0) {
        std::cout << file.string() << ": expected rule '" << rule
                  << "' did not fire\n";
        ++failures;
      }
    }
  }
  if (fixtures == 0) {
    std::cout << "self-test: no fixtures found in " << fixture_dir << "\n";
    return 1;
  }
  if (failures == 0) {
    std::cout << "medcc_lint self-test: " << fixtures
              << " fixture(s), all expectations fired\n";
    return 0;
  }
  std::cout << "medcc_lint self-test: " << failures << " failure(s)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cout << "usage: medcc_lint [--self-test] <path>...\n";
    return 2;
  }
  try {
    if (args.front() == "--self-test") {
      if (args.size() != 2) {
        std::cout << "usage: medcc_lint --self-test <fixture-dir>\n";
        return 2;
      }
      return run_self_test(args[1]);
    }
    return run_lint(args);
  } catch (const std::exception& e) {
    std::cout << "medcc_lint: " << e.what() << "\n";
    return 2;
  }
}
