// Interactive demonstration of the MED-CC scheduling service: stands a
// service up, replays a small mixed workload against it -- the paper's
// Fig. 2 example under several solvers, verbatim duplicates, a
// module/catalog-permuted twin, and a deliberately broken request --
// then prints every response and the full metrics dump.
//
// Usage: medcc_serve_demo [--threads N] [--budget B]
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cloud/vm_type.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;
using medcc::workflow::Workflow;

/// The Fig. 2 example rebuilt with modules and edges in reversed
/// insertion order and the Table I catalog reshuffled: the same problem
/// wearing a different index layout.
std::shared_ptr<const Instance> permuted_example() {
  const Workflow wf = medcc::workflow::example6();
  Workflow out;
  std::vector<std::size_t> new_id(wf.module_count());
  for (std::size_t i = wf.module_count(); i-- > 0;) {
    const auto& mod = wf.module(i);
    new_id[i] = mod.is_fixed()
                    ? out.add_fixed_module(mod.name, *mod.fixed_time)
                    : out.add_module(mod.name, mod.workload);
  }
  for (std::size_t e = wf.graph().edge_count(); e-- > 0;) {
    const auto& edge = wf.graph().edge(e);
    out.add_dependency(new_id[edge.src], new_id[edge.dst], wf.data_size(e));
  }
  auto types = medcc::cloud::example_catalog().types();
  std::swap(types.front(), types.back());
  return std::make_shared<const Instance>(
      Instance::from_model(std::move(out), VmCatalog(std::move(types))));
}

struct Shot {
  std::string label;
  std::future<SchedulingResponse> future;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 2;
  double budget = 57.0;  // the paper's numerical example
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::stoul(argv[++i]);
    } else if (arg == "--budget" && i + 1 < argc) {
      budget = std::stod(argv[++i]);
    } else {
      std::cerr << "usage: medcc_serve_demo [--threads N] [--budget B]\n";
      return 2;
    }
  }

  const auto example = std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
  const auto twin = permuted_example();

  SchedulingService service(ServiceConfig{.threads = threads});
  std::cout << "service up: " << service.thread_count() << " workers, cache "
            << (service.cache_enabled() ? "on" : "off") << "\n\n";

  const auto submit = [&service](std::string label,
                                 std::shared_ptr<const Instance> inst,
                                 double b, std::string solver) {
    SchedulingRequest req;
    req.instance = std::move(inst);
    req.budget = b;
    req.solver = std::move(solver);
    return Shot{std::move(label), service.submit(std::move(req))};
  };

  std::vector<Shot> shots;
  shots.push_back(submit("fig2 / cg", example, budget, "cg"));
  shots.push_back(submit("fig2 / gain3", example, budget, "gain3"));
  shots.push_back(submit("fig2 / loss2", example, budget, "loss2"));
  shots.push_back(submit("fig2 / cg repeat", example, budget, "cg"));
  shots.push_back(submit("fig2 permuted twin / cg", twin, budget, "cg"));
  shots.push_back(submit("unknown solver", example, budget, "frobnicate"));
  shots.push_back(submit("infeasible budget / cg", example, 1.0, "cg"));

  medcc::util::Table table(
      {"request", "status", "cache", "MED", "cost", "schedule"});
  for (auto& shot : shots) {
    const SchedulingResponse response = shot.future.get();
    std::string status = to_string(response.status);
    if (!response.ok() && !response.error.empty())
      status += " (" + response.error + ")";
    else if (response.status == medcc::service::ResponseStatus::rejected)
      status += std::string(" (") + to_string(response.reject_reason) + ")";
    table.add_row(
        {shot.label, status, to_string(response.cache),
         response.ok() ? medcc::util::fmt(response.result.eval.med) : "-",
         response.ok() ? medcc::util::fmt(response.result.eval.cost) : "-",
         response.ok() ? medcc::sched::to_string(
                             shot.label.find("twin") != std::string::npos
                                 ? *twin
                                 : *example,
                             response.result.schedule)
                       : "-"});
  }
  std::cout << table.render() << "\n";

  service.drain();
  std::cout << "--- metrics ---\n" << service.metrics().dump_text();
  const auto cache = service.cache_stats();
  std::cout << "cache: size=" << cache.size
            << " insertions=" << cache.insertions
            << " evictions=" << cache.evictions << "\n";
  return 0;
}
