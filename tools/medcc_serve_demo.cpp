// Interactive demonstration of the MED-CC scheduling stack over the
// wire: stands up a SchedulingService behind the epoll TCP server on
// loopback (or connects to a remote medcc_server), then replays a small
// mixed workload through the blocking client -- the paper's Fig. 2
// example under several solvers pipelined as one batch, verbatim
// duplicates, a module/catalog-permuted twin, and deliberately broken
// requests -- prints every response, and fetches the service metrics
// through the StatsRequest frame.
//
// Usage: medcc_serve_demo [--threads N] [--io-threads N] [--budget B]
//                         [--connect HOST:PORT] [--stats]
//                         [--trace-solve HOST:PORT,... [--tenant T]]
//
// --trace-solve drives ONE traced solve through a ClusterClient over
// the given replicas (sample-every-1 client tracer, so the journey is
// fully retained) and prints the minted trace id plus the client-side
// span stages -- the driver half of tools/trace_smoke.sh, which then
// reads the same id back out of the replicas with medcc_tracectl.
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cloud/vm_type.hpp"
#include "net/client.hpp"
#include "net/cluster_client.hpp"
#include "net/endpoint.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "sched/instance.hpp"
#include "service/service.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workflow/patterns.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::cloud::VmCatalog;
using medcc::cloud::VmType;
using medcc::sched::Instance;
using medcc::service::SchedulingRequest;
using medcc::service::SchedulingResponse;
using medcc::service::SchedulingService;
using medcc::service::ServiceConfig;
using medcc::workflow::Workflow;

/// The Fig. 2 example rebuilt with modules and edges in reversed
/// insertion order and the Table I catalog reshuffled: the same problem
/// wearing a different index layout.
std::shared_ptr<const Instance> permuted_example() {
  const Workflow wf = medcc::workflow::example6();
  Workflow out;
  std::vector<std::size_t> new_id(wf.module_count());
  for (std::size_t i = wf.module_count(); i-- > 0;) {
    const auto& mod = wf.module(i);
    new_id[i] = mod.is_fixed()
                    ? out.add_fixed_module(mod.name, *mod.fixed_time)
                    : out.add_module(mod.name, mod.workload);
  }
  for (std::size_t e = wf.graph().edge_count(); e-- > 0;) {
    const auto& edge = wf.graph().edge(e);
    out.add_dependency(new_id[edge.src], new_id[edge.dst], wf.data_size(e));
  }
  auto types = medcc::cloud::example_catalog().types();
  std::swap(types.front(), types.back());
  return std::make_shared<const Instance>(
      Instance::from_model(std::move(out), VmCatalog(std::move(types))));
}

SchedulingRequest make_request(std::shared_ptr<const Instance> inst, double b,
                               std::string solver, std::string tenant = "") {
  SchedulingRequest req;
  req.instance = std::move(inst);
  req.budget = b;
  req.solver = std::move(solver);
  req.tenant = std::move(tenant);
  return req;
}

/// One traced solve through a ClusterClient: prints the minted trace
/// id and the client-side span stages, so a shell smoke can correlate
/// the id against the replicas' trace dumps (medcc_tracectl).
int trace_solve(const std::string& endpoint_list, const std::string& tenant,
                double budget) {
  medcc::net::ClusterClientConfig config;
  std::size_t begin = 0;
  while (begin <= endpoint_list.size()) {
    const std::size_t comma = endpoint_list.find(',', begin);
    const std::string_view token =
        std::string_view(endpoint_list)
            .substr(begin, comma == std::string::npos ? std::string::npos
                                                      : comma - begin);
    auto endpoint = medcc::net::parse_endpoint(token);
    if (!endpoint) {
      std::cerr << "medcc_serve_demo: bad endpoint '" << token << "'\n";
      return 2;
    }
    config.endpoints.push_back(*std::move(endpoint));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  medcc::obs::Tracer::Config trace_config;
  trace_config.sample_every = 1;  // retain this solve's whole journey
  medcc::obs::Tracer tracer(trace_config);
  config.tracer = &tracer;
  config.down_cooldown_ms = 200.0;
  medcc::net::ClusterClient client(std::move(config));

  const auto example = std::make_shared<const Instance>(Instance::from_model(
      medcc::workflow::example6(), medcc::cloud::example_catalog()));
  const SchedulingResponse response =
      client.solve(make_request(example, budget, "cg", tenant));

  const auto minted = tracer.recent(1);
  std::cout << "trace "
            << (minted.empty() ? std::string(32, '0')
                               : minted[0].id.to_hex())
            << " status " << to_string(response.status) << " spans ";
  if (minted.empty()) {
    std::cout << "-";
  } else {
    for (std::size_t i = 0; i < minted[0].spans.size(); ++i)
      std::cout << (i == 0 ? "" : ",")
                << medcc::obs::to_string(minted[0].spans[i].stage);
  }
  std::cout << "\n";
  return response.ok() && !minted.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 2;
  std::size_t io_threads = 1;  // reactors for the in-process server
  double budget = 57.0;  // the paper's numerical example
  bool stats_only = false;
  std::optional<std::pair<std::string, std::uint16_t>> remote;
  std::string trace_endpoints;
  std::string tenant = "demo";
  constexpr const char* usage =
      "usage: medcc_serve_demo [--threads N] [--io-threads N] [--budget B] "
      "[--connect HOST:PORT] [--stats] "
      "[--trace-solve HOST:PORT,... [--tenant T]]\n";
  // Numeric parsing throws on junk or out-of-range values; answer with
  // the usage string instead of an uncaught-exception abort.
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--threads" && i + 1 < argc) {
        threads = medcc::util::parse_flag_size(argv[++i]);
      } else if (arg == "--io-threads" && i + 1 < argc) {
        io_threads = medcc::util::parse_flag_size(argv[++i]);
      } else if (arg == "--budget" && i + 1 < argc) {
        budget = medcc::util::parse_flag_double(argv[++i]);
      } else if (arg == "--stats") {
        stats_only = true;
      } else if (arg == "--trace-solve" && i + 1 < argc) {
        trace_endpoints = argv[++i];
      } else if (arg == "--tenant" && i + 1 < argc) {
        tenant = argv[++i];
      } else if (arg == "--connect" && i + 1 < argc) {
        const std::string endpoint = argv[++i];
        const auto colon = endpoint.rfind(':');
        if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
          std::cerr << "medcc_serve_demo: --connect expects HOST:PORT\n";
          return 2;
        }
        remote = {endpoint.substr(0, colon),
                  medcc::util::parse_flag_port(endpoint.substr(colon + 1))};
      } else {
        std::cerr << usage;
        return 2;
      }
    }
  } catch (const std::exception&) {
    std::cerr << "medcc_serve_demo: invalid argument value\n" << usage;
    return 2;
  }

  try {
    if (!trace_endpoints.empty())
      return trace_solve(trace_endpoints, tenant, budget);
    // Without --connect, stand the whole stack up in-process and talk to
    // it over loopback TCP anyway: the demo exercises the same wire path
    // a remote client would.
    std::unique_ptr<SchedulingService> local_service;
    std::unique_ptr<medcc::net::Server> local_server;
    medcc::net::ClientConfig client_config;
    if (remote) {
      client_config.host = remote->first;
      client_config.port = remote->second;
    } else {
      local_service = std::make_unique<SchedulingService>(
          ServiceConfig{.threads = threads});
      medcc::net::ServerConfig server_config;
      server_config.io_threads = io_threads;
      local_server =
          std::make_unique<medcc::net::Server>(*local_service, server_config);
      client_config.port = local_server->port();
    }
    medcc::net::Client client(client_config);
    client.connect();
    std::cout << "connected to " << client_config.host << ":"
              << client_config.port
              << (remote ? " (remote server)" : " (in-process loopback)")
              << "\n\n";

    if (stats_only) {
      std::cout << client.stats();
      return 0;
    }

    const auto example = std::make_shared<const Instance>(Instance::from_model(
        medcc::workflow::example6(), medcc::cloud::example_catalog()));
    const auto twin = permuted_example();

    const std::vector<std::string> labels = {
        "fig2 / cg",         "fig2 / gain3",
        "fig2 / loss2",      "fig2 / cg repeat",
        "fig2 twin / cg",    "unknown solver",
        "infeasible budget",
    };
    std::vector<SchedulingRequest> requests;
    requests.push_back(make_request(example, budget, "cg", "demo"));
    requests.push_back(make_request(example, budget, "gain3", "demo"));
    requests.push_back(make_request(example, budget, "loss2", "demo"));
    requests.push_back(make_request(example, budget, "cg", "demo"));
    requests.push_back(make_request(twin, budget, "cg", "demo"));
    requests.push_back(make_request(example, budget, "frobnicate", "demo"));
    requests.push_back(make_request(example, 1.0, "cg", "demo"));

    // One pipelined burst: all seven frames go out before the first
    // response is read; the server answers them as solves complete.
    const std::vector<SchedulingResponse> responses =
        client.solve_batch(requests);

    medcc::util::Table table(
        {"request", "status", "cache", "MED", "cost", "schedule"});
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const SchedulingResponse& response = responses[i];
      std::string status = to_string(response.status);
      if (!response.ok() && !response.error.empty())
        status += " (" + response.error + ")";
      else if (response.status == medcc::service::ResponseStatus::rejected)
        status += std::string(" (") + to_string(response.reject_reason) + ")";
      const Instance& inst = labels[i].find("twin") != std::string::npos
                                 ? *twin
                                 : *example;
      table.add_row(
          {labels[i], status, to_string(response.cache),
           response.ok() ? medcc::util::fmt(response.result.eval.med) : "-",
           response.ok() ? medcc::util::fmt(response.result.eval.cost) : "-",
           response.ok()
               ? medcc::sched::to_string(inst, response.result.schedule)
               : "-"});
    }
    std::cout << table.render() << "\n";

    std::cout << "--- metrics (fetched over the wire) ---\n"
              << client.stats();
    if (local_server) {
      client.close();
      local_server->stop();
      const auto wire = local_server->counters();
      std::cout << "--- transport ---\n"
                << "connections_accepted " << wire.connections_accepted
                << " frames_in " << wire.frames_in << " frames_out "
                << wire.frames_out << " protocol_errors "
                << wire.protocol_errors << "\n";
    }
  } catch (const std::exception& ex) {
    std::cerr << "medcc_serve_demo: " << ex.what() << "\n";
    return 1;
  }
  return 0;
}
