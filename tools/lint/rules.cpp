// The registered medcc_lint rules.
//
// Line-pattern rules (ported from the original single-file linter, same
// ids and semantics): raw-rand, cout-in-library, float-eq, pragma-once,
// namespace-medcc.
//
// Token-stream rules (new): mutable-field-near-mutex-without-guarded-by,
// detached-thread, lock-guard-unused, raw-fopen, catch-by-value,
// large-value-param.
#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "lint/rule.hpp"

namespace medcc_lint {

namespace {

bool path_contains(const std::filesystem::path& path,
                   const std::string& needle) {
  return path.generic_string().find(needle) != std::string::npos;
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// ---------------------------------------------------------------------------
// raw-rand

class RawRandRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "raw-rand"; }

  [[nodiscard]] std::string rationale() const override {
    return "all randomness must flow through the seeded util::Prng streams "
           "or experiments stop being reproducible";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (path_contains(file.path, "util/prng")) return;
    for (std::size_t i = 0; i < file.stripped_lines.size(); ++i) {
      const std::string& code = file.stripped_lines[i];
      for (const char* call : {"rand(", "srand(", "random_device"}) {
        const auto pos = code.find(call);
        // Reject bare rand(, not strtol/grand/prng.rand wrappers: the
        // character before must not be an identifier character.
        if (pos != std::string::npos &&
            (pos == 0 ||
             (!std::isalnum(static_cast<unsigned char>(code[pos - 1])) &&
              code[pos - 1] != '_'))) {
          out.push_back(Finding{
              file.path.string(), i + 1, id(),
              std::string("'") + call +
                  "' outside src/util/prng; use util::Prng streams",
              "thread a util::Prng stream through the call site"});
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// cout-in-library

class CoutInLibraryRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "cout-in-library"; }

  [[nodiscard]] std::string rationale() const override {
    return "the leveled logger util/log.hpp is the only allowed console "
           "sink in library code; raw streams bypass level filtering";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (path_contains(file.path, "util/log.cpp")) return;
    for (std::size_t i = 0; i < file.stripped_lines.size(); ++i) {
      const std::string& code = file.stripped_lines[i];
      for (const char* sink : {"std::cout", "std::cerr", "printf("}) {
        const auto pos = code.find(sink);
        if (pos != std::string::npos &&
            (pos == 0 ||
             (!std::isalnum(static_cast<unsigned char>(code[pos - 1])) &&
              code[pos - 1] != '_' && code[pos - 1] != ':'))) {
          out.push_back(Finding{
              file.path.string(), i + 1, id(),
              std::string("'") + sink +
                  "' in library code; use util/log.hpp loggers",
              "replace with MEDCC_LOG_INFO(...) or a caller-supplied "
              "std::ostream&"});
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// float-eq

/// Identifier tokens whose comparison with ==/!= indicates a float
/// time/cost comparison.
const std::set<std::string>& float_tokens() {
  static const std::set<std::string> tokens = {
      "time",  "times",   "cost",     "costs", "med",      "makespan",
      "budget", "deadline", "billed", "rate",  "rates",    "est",
      "eft",   "lst",     "lft",      "slack", "uptime",   "duration",
      "durations"};
  return tokens;
}

/// Splits `code` into lowercase identifier tokens; snake_case identifiers
/// also contribute their parts (cost_rate -> cost, rate).
std::vector<std::string> identifier_tokens(const std::string& code) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : code) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      cur.push_back(c);
    } else if (!cur.empty()) {
      tokens.push_back(lowercase(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(lowercase(cur));
  std::vector<std::string> expanded = tokens;
  for (const auto& t : tokens) {
    std::string part;
    for (char c : t) {
      if (c == '_') {
        if (!part.empty()) expanded.push_back(part);
        part.clear();
      } else {
        part.push_back(c);
      }
    }
    if (!part.empty()) expanded.push_back(part);
  }
  return expanded;
}

/// True when the character can start/continue an operator glyph that makes
/// a '=' at the next position something other than equality.
bool is_compound_op_prefix(char c) {
  return c == '=' || c == '!' || c == '<' || c == '>' || c == '+' ||
         c == '-' || c == '*' || c == '/' || c == '&' || c == '|' ||
         c == '^' || c == '%';
}

/// Removes the comparison forms that never carry float semantics --
/// container-size chains, literal-zero comparisons, operator declarations
/// -- so both the comparison detection and the keyword-token scan run on
/// the same reduced text.
std::string reduce_for_float_eq(std::string code) {
  for (const char* decl : {"operator==", "operator!="}) {
    for (auto pos = code.find(decl); pos != std::string::npos;
         pos = code.find(decl))
      code.erase(pos, std::string(decl).size());
  }
  // Integral container-size chains never carry float semantics; strip the
  // whole postfix expression so its tokens do not match the keyword set.
  for (const char* call : {".size()", ".empty()", ".count("}) {
    for (auto pos = code.find(call); pos != std::string::npos;
         pos = code.find(call)) {
      std::size_t begin = pos;
      while (begin > 0) {
        const char c = code[begin - 1];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.' || c == ':' || c == '>' || c == '-' || c == ']' ||
            c == '[' || c == ')' || c == '(') {
          --begin;
        } else {
          break;
        }
      }
      code.erase(begin, pos - begin + std::string(call).size());
    }
  }
  // Drop literal-zero comparisons ("x == 0.0", "n != 0"): exact zero is
  // well-defined for values that are assigned, never accumulated.
  for (const char* zero : {"== 0.0", "!= 0.0", "==0.0", "!=0.0"}) {
    for (auto pos = code.find(zero); pos != std::string::npos;
         pos = code.find(zero))
      code.erase(pos, std::string(zero).size());
  }
  for (const char* zero : {"== 0", "!= 0", "==0", "!=0"}) {
    for (auto pos = code.find(zero); pos != std::string::npos;
         pos = code.find(zero, pos + 1)) {
      const std::size_t after = pos + std::string(zero).size();
      if (after < code.size() &&
          (std::isdigit(static_cast<unsigned char>(code[after])) ||
           code[after] == '.' || code[after] == 'x'))
        continue;  // 0.5, 0x..: a real literal, keep the comparison
      code.erase(pos, std::string(zero).size());
      pos = 0;
    }
  }
  return code;
}

/// True when the (already reduced) code still contains a ==/!= comparison
/// whose right operand is not a qualified constant (Enum::Value,
/// limits<double>::infinity).
bool has_float_comparison(const std::string& code) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i + 1] != '=') continue;
    const bool is_eq =
        code[i] == '=' && (i == 0 || !is_compound_op_prefix(code[i - 1]));
    const bool is_ne = code[i] == '!';
    if (!is_eq && !is_ne) continue;
    std::size_t j = i + 2;
    while (j < code.size() && code[j] == ' ') ++j;
    std::size_t end = j;
    while (end < code.size() &&
           (std::isalnum(static_cast<unsigned char>(code[end])) ||
            code[end] == '_' || code[end] == ':'))
      ++end;
    if (code.substr(j, end - j).find("::") != std::string::npos) continue;
    return true;
  }
  return false;
}

class FloatEqRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "float-eq"; }

  [[nodiscard]] std::string rationale() const override {
    return "accumulated double time/cost quantities are never exactly "
           "equal; exact comparisons hide order-dependent tie-breaks";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < file.stripped_lines.size(); ++i) {
      const std::string reduced = reduce_for_float_eq(file.stripped_lines[i]);
      if (!has_float_comparison(reduced)) continue;
      for (const auto& t : identifier_tokens(reduced)) {
        if (float_tokens().count(t) != 0) {
          out.push_back(Finding{
              file.path.string(), i + 1, id(),
              "==/!= on a double time/cost quantity ('" + t +
                  "'); compare with a tolerance or annotate the exact "
                  "tie-break with medcc-lint: allow(float-eq)",
              "use std::abs(a - b) <= tolerance"});
          break;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// pragma-once / namespace-medcc (headers only)

class PragmaOnceRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "pragma-once"; }

  [[nodiscard]] std::string rationale() const override {
    return "every public header must guard against double inclusion";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.is_header) return;
    for (const std::string& raw : file.raw_lines)
      if (raw.find("#pragma once") != std::string::npos) return;
    out.push_back(Finding{file.path.string(), 1, id(),
                          "public header lacks #pragma once",
                          "add '#pragma once' at the top of the header"});
  }
};

class NamespaceMedccRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "namespace-medcc"; }

  [[nodiscard]] std::string rationale() const override {
    return "public headers must scope their declarations under namespace "
           "medcc to keep the library embeddable";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.is_header) return;
    for (const std::string& raw : file.raw_lines)
      if (raw.find("namespace medcc") != std::string::npos) return;
    out.push_back(Finding{file.path.string(), 1, id(),
                          "public header declares no namespace medcc",
                          "wrap the declarations in namespace medcc"});
  }
};

// ---------------------------------------------------------------------------
// Token-stream helpers

bool is_punct(const Token& t, char c) {
  return t.kind == TokenKind::Punct && t.text.size() == 1 && t.text[0] == c;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::Identifier && t.text == text;
}

// ---------------------------------------------------------------------------
// mutable-field-near-mutex-without-guarded-by

/// Type tokens that identify a mutex-like member.
const std::set<std::string>& mutex_type_tokens() {
  static const std::set<std::string> types = {
      "mutex",       "shared_mutex",          "timed_mutex",
      "recursive_mutex", "shared_timed_mutex", "Mutex", "SharedMutex"};
  return types;
}

/// Members that are themselves synchronization primitives (or
/// synchronize internally) and therefore need no GUARDED_BY.
const std::set<std::string>& sync_type_tokens() {
  static const std::set<std::string> types = {
      "atomic",       "atomic_bool",       "atomic_flag",
      "atomic_int",   "atomic_size_t",     "atomic_uint64_t",
      "condition_variable", "condition_variable_any", "once_flag",
      "PaddedAtomic", "Mutex",        "SharedMutex",       "mutex",
      "shared_mutex", "timed_mutex",       "recursive_mutex",
      "shared_timed_mutex",
      // C++20 coordination primitives: internally synchronized, so a
      // field of one of these types needs no GUARDED_BY of its own.
      "counting_semaphore", "binary_semaphore", "latch", "barrier"};
  return types;
}

/// Declaration-introducing tokens that mean the statement is not a plain
/// data member.
const std::set<std::string>& non_field_keywords() {
  static const std::set<std::string> keywords = {
      "static",  "constexpr", "using",   "typedef", "friend",
      "template", "operator", "public",  "private", "protected",
      "enum",    "class",     "struct",  "union",   "explicit",
      "virtual", "inline",    "typename"};
  return keywords;
}

class MutexGuardedByRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override {
    return "mutable-field-near-mutex-without-guarded-by";
  }

  [[nodiscard]] std::string rationale() const override {
    return "a class holding a mutex must say, per field, whether the "
           "mutex guards it (MEDCC_GUARDED_BY) or why not "
           "(MEDCC_NOT_GUARDED); unannotated fields are where data races "
           "hide";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    // One class body under analysis. Member-declaration statements are
    // collected at the body's immediate brace depth; method bodies and
    // nested classes live deeper and are handled by their own scope.
    struct Scope {
      int body_depth = 0;
      std::vector<std::vector<Token>> statements;
      std::vector<Token> current;
    };

    const std::vector<Token>& toks = file.tokens;
    std::vector<Scope> scopes;
    int depth = 0;
    bool class_pending = false;

    auto finish_scope = [&](Scope& scope) {
      if (!scope.current.empty()) scope.statements.push_back(scope.current);
      analyze_class(file, scope.statements, out);
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];

      if (t.kind == TokenKind::Identifier &&
          (t.text == "class" || t.text == "struct")) {
        // "enum class"/"enum struct" declares an enum, not a class body.
        const bool after_enum = i > 0 && is_ident(toks[i - 1], "enum");
        if (!after_enum) class_pending = true;
      } else if (class_pending &&
                 (is_punct(t, ';') || is_punct(t, '(') || is_punct(t, ')') ||
                  is_punct(t, '='))) {
        // Forward declaration, template parameter, elaborated type in a
        // signature, or `= delete`-style context: no class body follows.
        class_pending = false;
      }

      if (is_punct(t, '{')) {
        if (!scopes.empty() && depth == scopes.back().body_depth) {
          // A `{` at member level starts a method body, default member
          // initializer, or nested class body: the collected statement is
          // not a plain field.
          scopes.back().current.clear();
        }
        ++depth;
        if (class_pending) {
          scopes.push_back(Scope{depth, {}, {}});
          class_pending = false;
        }
        continue;
      }
      if (is_punct(t, '}')) {
        --depth;
        if (!scopes.empty() && depth < scopes.back().body_depth) {
          finish_scope(scopes.back());
          scopes.pop_back();
        }
        continue;
      }

      if (scopes.empty() || depth != scopes.back().body_depth) continue;
      Scope& scope = scopes.back();
      if (is_punct(t, ';')) {
        if (!scope.current.empty()) {
          scope.statements.push_back(scope.current);
          scope.current.clear();
        }
        continue;
      }
      if (is_punct(t, ':') && scope.current.size() == 1 &&
          non_field_keywords().count(scope.current.front().text) != 0) {
        // Access specifier: not a member declaration.
        scope.current.clear();
        continue;
      }
      scope.current.push_back(t);
    }
  }

 private:
  static bool has_token(const std::vector<Token>& stmt,
                        const std::set<std::string>& set) {
    for (const Token& t : stmt)
      if (t.kind == TokenKind::Identifier && set.count(t.text) != 0)
        return true;
    return false;
  }

  static bool has_ident(const std::vector<Token>& stmt, const char* text) {
    for (const Token& t : stmt)
      if (is_ident(t, text)) return true;
    return false;
  }

  /// True when `stmt` declares a plain data member (no parentheses means
  /// no function declarator; std::function members are an accepted
  /// false negative of this shape test).
  static bool is_plain_field(const std::vector<Token>& stmt) {
    if (stmt.empty()) return false;
    if (has_token(stmt, non_field_keywords())) return false;
    if (has_ident(stmt, "const")) return false;  // immutable after ctor
    for (const Token& t : stmt)
      if (is_punct(t, '(') || is_punct(t, ')')) return false;
    // A field declaration ends in an identifier (the member name),
    // possibly after an array extent.
    const Token& last = stmt.back();
    return last.kind == TokenKind::Identifier ||
           (is_punct(last, ']') && stmt.size() > 1);
  }

  static std::string field_name(const std::vector<Token>& stmt) {
    for (auto it = stmt.rbegin(); it != stmt.rend(); ++it)
      if (it->kind == TokenKind::Identifier) return it->text;
    return "<field>";
  }

  void analyze_class(const SourceFile& file,
                     const std::vector<std::vector<Token>>& statements,
                     std::vector<Finding>& out) const {
    bool has_mutex_member = false;
    for (const auto& stmt : statements) {
      if (has_token(stmt, mutex_type_tokens()) &&
          !has_ident(stmt, "MEDCC_GUARDED_BY") && is_plain_field(stmt)) {
        has_mutex_member = true;
        break;
      }
    }
    if (!has_mutex_member) return;

    for (const auto& stmt : statements) {
      if (has_ident(stmt, "MEDCC_GUARDED_BY") ||
          has_ident(stmt, "MEDCC_PT_GUARDED_BY") ||
          has_ident(stmt, "MEDCC_NOT_GUARDED"))
        continue;
      if (has_token(stmt, sync_type_tokens())) continue;
      if (!is_plain_field(stmt)) continue;
      out.push_back(Finding{
          file.path.string(), stmt.front().line, id(),
          "field '" + field_name(stmt) +
              "' sits in a class with a mutex but carries neither "
              "MEDCC_GUARDED_BY nor MEDCC_NOT_GUARDED",
          "append MEDCC_GUARDED_BY(<mutex>) if the mutex protects it, or "
          "MEDCC_NOT_GUARDED with a comment explaining why it needs no "
          "lock"});
    }
  }
};

// ---------------------------------------------------------------------------
// detached-thread

class DetachedThreadRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "detached-thread"; }

  [[nodiscard]] std::string rationale() const override {
    return "a detached thread outlives its owner and races shutdown; "
           "join in the destructor or submit to util::ThreadPool";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 1; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "detach")) continue;
      if (!is_punct(toks[i + 1], '(') || !is_punct(toks[i + 2], ')')) continue;
      const bool via_dot = is_punct(toks[i - 1], '.');
      const bool via_arrow = i >= 2 && is_punct(toks[i - 1], '>') &&
                             is_punct(toks[i - 2], '-');
      if (!via_dot && !via_arrow) continue;
      out.push_back(Finding{
          file.path.string(), toks[i].line, id(),
          "thread detach() severs ownership; the thread can outlive every "
          "object it touches",
          "keep the std::thread as a member and join() it in the "
          "destructor, or submit the work to util::ThreadPool"});
    }
  }
};

// ---------------------------------------------------------------------------
// lock-guard-unused

/// RAII lock types whose unnamed temporaries unlock immediately.
const std::set<std::string>& lock_type_tokens() {
  static const std::set<std::string> types = {
      "lock_guard", "scoped_lock",     "unique_lock",
      "shared_lock", "MutexLock",      "ReaderMutexLock",
      "WriterMutexLock"};
  return types;
}

/// Tokens transparent to the statement-start test: namespace
/// qualification and cv-qualifiers before the lock type.
bool is_transparent_before_lock(const Token& t) {
  return is_punct(t, ':') || is_ident(t, "std") || is_ident(t, "util") ||
         is_ident(t, "medcc") || is_ident(t, "const");
}

class LockGuardUnusedRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "lock-guard-unused"; }

  [[nodiscard]] std::string rationale() const override {
    return "std::scoped_lock(m); constructs a temporary that unlocks at "
           "the semicolon -- the rest of the scope runs unlocked";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::Identifier ||
          lock_type_tokens().count(toks[i].text) == 0)
        continue;
      if (!at_statement_start(toks, i)) continue;
      std::size_t j = i + 1;
      // Skip explicit template arguments: lock_guard<std::mutex>.
      if (j < toks.size() && is_punct(toks[j], '<')) {
        int angle = 0;
        while (j < toks.size()) {
          if (is_punct(toks[j], '<')) ++angle;
          if (is_punct(toks[j], '>') && --angle == 0) {
            ++j;
            break;
          }
          ++j;
        }
      }
      if (j >= toks.size()) continue;
      // A named guard continues with the variable name; a temporary goes
      // straight to the constructor arguments. Requiring a terminating
      // `;` right after the close excludes deleted special members
      // (`MutexLock(const MutexLock&) = delete;`).
      const char open = is_punct(toks[j], '(')   ? '('
                        : is_punct(toks[j], '{') ? '{'
                                                 : '\0';
      if (open == '\0') continue;
      const char close = open == '(' ? ')' : '}';
      int nest = 0;
      while (j < toks.size()) {
        if (is_punct(toks[j], open)) ++nest;
        if (is_punct(toks[j], close) && --nest == 0) break;
        ++j;
      }
      if (j + 1 < toks.size() && is_punct(toks[j + 1], ';')) {
        out.push_back(Finding{
            file.path.string(), toks[i].line, id(),
            "unnamed " + toks[i].text +
                " temporary unlocks at the end of this statement, not the "
                "end of the scope",
            "name the guard: const " + toks[i].text + " lock(...);"});
      }
    }
  }

 private:
  /// True when token `i` begins a declaration statement (rather than
  /// appearing in a return value, argument list, or member signature).
  static bool at_statement_start(const std::vector<Token>& toks,
                                 std::size_t i) {
    while (i > 0) {
      const Token& prev = toks[i - 1];
      if (is_transparent_before_lock(prev)) {
        --i;
        continue;
      }
      return is_punct(prev, ';') || is_punct(prev, '{') || is_punct(prev, '}');
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// raw-fopen

/// stdio entry points that hand out an unmanaged FILE* handle.
const std::set<std::string>& stdio_open_tokens() {
  static const std::set<std::string> calls = {"fopen", "freopen", "fdopen",
                                              "tmpfile"};
  return calls;
}

class RawFopenRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "raw-fopen"; }

  [[nodiscard]] std::string rationale() const override {
    return "buffered FILE* handles leak on exceptions and hide write "
           "ordering from the crash-safety discipline; file IO goes "
           "through the RAII util::File / util::atomic_write_file layer";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    // The RAII layer itself is the one sanctioned home of low-level IO.
    if (path_contains(file.path, "util/atomic_file")) return;
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::Identifier) continue;
      if (stdio_open_tokens().count(toks[i].text) != 0 &&
          is_punct(toks[i + 1], '(')) {
        out.push_back(Finding{
            file.path.string(), toks[i].line, id(),
            "'" + toks[i].text +
                "' hands out an unmanaged FILE* that leaks on exceptions "
                "and buffers writes behind fsync's back",
            "use util::File (RAII fd, explicit sync) or "
            "util::atomic_write_file for whole-file replacement"});
      } else if (toks[i].text == "FILE" && is_punct(toks[i + 1], '*')) {
        out.push_back(Finding{
            file.path.string(), toks[i].line, id(),
            "raw FILE* handle; ownership and flush timing are invisible "
            "to the crash-safety machinery",
            "hold a util::File member instead of a FILE*"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// raw-stderr

/// stdio sinks that write straight to a FILE* stream (stderr in
/// practice), bypassing the leveled logger.
const std::set<std::string>& stdio_write_tokens() {
  static const std::set<std::string> calls = {"fprintf", "vfprintf", "fputs",
                                              "fputc", "perror"};
  return calls;
}

class RawStderrRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "raw-stderr"; }

  [[nodiscard]] std::string rationale() const override {
    return "stdio writes to stderr bypass the leveled, trace-stamped "
           "util/log sink: lines interleave across threads, carry no "
           "level or trace id, and ignore set_log_threshold";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    // The logger implementation is the one sanctioned console writer.
    if (path_contains(file.path, "util/log.cpp")) return;
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::Identifier) continue;
      if (stdio_write_tokens().count(toks[i].text) != 0 &&
          is_punct(toks[i + 1], '(')) {
        out.push_back(Finding{
            file.path.string(), toks[i].line, id(),
            "'" + toks[i].text +
                "' writes raw bytes to a stdio stream, skipping level "
                "filtering, trace-id stamping, and the single-write "
                "line discipline of util/log",
            "use MEDCC_LOG_WARN(...) / MEDCC_LOG_ERROR(...) from "
            "util/log.hpp"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// catch-by-value

class CatchByValueRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "catch-by-value"; }

  [[nodiscard]] std::string rationale() const override {
    return "catching by value slices derived exceptions and copies on "
           "every throw; catch by const reference";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "catch") || !is_punct(toks[i + 1], '(')) continue;
      bool by_ref = false;
      bool by_pointer = false;
      bool ellipsis = false;
      int paren = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], '(') && ++paren) continue;
        if (is_punct(toks[j], ')') && --paren == 0) break;
        if (is_punct(toks[j], '&')) by_ref = true;
        if (is_punct(toks[j], '*')) by_pointer = true;
        if (is_punct(toks[j], '.')) ellipsis = true;  // catch (...)
      }
      if (by_ref || by_pointer || ellipsis) continue;
      out.push_back(Finding{
          file.path.string(), toks[i].line, id(),
          "exception caught by value: derived types slice and every throw "
          "pays a copy",
          "catch (const T& e)"});
    }
  }
};

// ---------------------------------------------------------------------------
// large-value-param

/// Heavyweight domain types -- both hold per-module vectors (and the
/// Instance additionally the full matrices of execution times) -- that
/// must never cross a call boundary by value.
const std::set<std::string>& large_value_types() {
  static const std::set<std::string> types = {"Result", "Instance"};
  return types;
}

class LargeValueParamRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "large-value-param"; }

  [[nodiscard]] std::string rationale() const override {
    return "sched::Result and sched::Instance carry per-module vectors "
           "and matrices; a by-value parameter copies the whole problem "
           "on every call -- take const& (or share the Instance via "
           "shared_ptr<const Instance>)";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::Identifier ||
          large_value_types().count(toks[i].text) == 0)
        continue;
      if (!in_parameter_position(toks, i)) continue;
      // The declarator after the type: `Result r,` / `Result r)` /
      // `Result r = ...` passes by value. `Result&`, `Result*`,
      // `Result&&` (sink parameters) and template-argument uses
      // (`vector<Result>`) never reach the identifier test.
      const Token& name = toks[i + 1];
      if (name.kind != TokenKind::Identifier) continue;
      const Token& after = toks[i + 2];
      if (!is_punct(after, ',') && !is_punct(after, ')') &&
          !is_punct(after, '='))
        continue;
      out.push_back(Finding{
          file.path.string(), toks[i].line, id(),
          "parameter '" + name.text + "' takes " + toks[i].text +
              " by value; every call copies the per-module vectors",
          "declare it `const " + toks[i].text + "&` (or move-sink with "
          "`" + toks[i].text + "&&` when ownership transfers)"});
    }
  }

 private:
  /// True when the type token at `i` sits in a parameter list: walking
  /// left through namespace qualification (`medcc::sched::`) and an
  /// optional `const`, the preceding token is `(` or `,`.
  static bool in_parameter_position(const std::vector<Token>& toks,
                                    std::size_t i) {
    while (i > 0) {
      const Token& prev = toks[i - 1];
      if (is_punct(prev, ':')) {
        // Only full `ident::` qualification is transparent; a lone `:`
        // (label, range-for, ternary) ends the walk.
        if (i >= 3 && is_punct(toks[i - 2], ':') &&
            toks[i - 3].kind == TokenKind::Identifier) {
          i -= 3;
          continue;
        }
        return false;
      }
      if (is_ident(prev, "const")) {
        --i;
        continue;
      }
      return is_punct(prev, '(') || is_punct(prev, ',');
    }
    return false;
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_all_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<RawRandRule>());
  rules.push_back(std::make_unique<CoutInLibraryRule>());
  rules.push_back(std::make_unique<FloatEqRule>());
  rules.push_back(std::make_unique<PragmaOnceRule>());
  rules.push_back(std::make_unique<NamespaceMedccRule>());
  rules.push_back(std::make_unique<MutexGuardedByRule>());
  rules.push_back(std::make_unique<DetachedThreadRule>());
  rules.push_back(std::make_unique<LockGuardUnusedRule>());
  rules.push_back(std::make_unique<RawFopenRule>());
  rules.push_back(std::make_unique<RawStderrRule>());
  rules.push_back(std::make_unique<CatchByValueRule>());
  rules.push_back(std::make_unique<LargeValueParamRule>());
  return rules;
}

}  // namespace medcc_lint
