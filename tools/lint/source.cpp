#include "lint/source.hpp"

#include <cctype>
#include <fstream>

namespace medcc_lint {

std::string strip_comments_and_strings(const std::string& line,
                                       bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') break;
      if (line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
    }
    if (line[i] == '"' || line[i] == '\'') {
      const char quote = line[i];
      out.push_back(quote);
      ++i;
      while (i < line.size() && line[i] != quote) {
        if (line[i] == '\\') ++i;
        ++i;
      }
      out.push_back(quote);
      continue;
    }
    out.push_back(line[i]);
  }
  return out;
}

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Tokenizes one stripped line. Literals were already reduced to their
/// delimiters by strip_comments_and_strings, so a quote char here is an
/// entire (emptied) literal.
void tokenize_line(const std::string& code, std::size_t line,
                   std::vector<Token>& tokens) {
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (ident_char(c)) {
      std::size_t end = i;
      while (end < code.size() && ident_char(code[end])) ++end;
      const bool number = std::isdigit(static_cast<unsigned char>(c)) != 0;
      tokens.push_back(Token{number ? TokenKind::Number : TokenKind::Identifier,
                             code.substr(i, end - i), line});
      i = end;
      continue;
    }
    if (c == '"') {
      tokens.push_back(Token{TokenKind::String, "\"\"", line});
      i += (i + 1 < code.size() && code[i + 1] == '"') ? 2 : 1;
      continue;
    }
    if (c == '\'') {
      tokens.push_back(Token{TokenKind::CharLiteral, "''", line});
      i += (i + 1 < code.size() && code[i + 1] == '\'') ? 2 : 1;
      continue;
    }
    tokens.push_back(Token{TokenKind::Punct, std::string(1, c), line});
    ++i;
  }
}

}  // namespace

bool SourceFile::suppressed(std::size_t line, const std::string& rule) const {
  if (line == 0 || line > raw_lines.size()) return false;
  const std::string& raw = raw_lines[line - 1];
  const auto pos = raw.find("medcc-lint: allow(");
  if (pos == std::string::npos) return false;
  const auto list_begin = pos + std::string("medcc-lint: allow(").size();
  const auto list_end = raw.find(')', list_begin);
  if (list_end == std::string::npos) return false;
  return raw.substr(list_begin, list_end - list_begin).find(rule) !=
         std::string::npos;
}

std::set<std::string> SourceFile::expectations() const {
  std::set<std::string> expected;
  for (const std::string& raw : raw_lines) {
    const auto pos = raw.find("medcc-lint-expect:");
    if (pos == std::string::npos) continue;
    std::string rule = raw.substr(pos + std::string("medcc-lint-expect:").size());
    rule.erase(0, rule.find_first_not_of(" \t"));
    const auto last = rule.find_last_not_of(" \t\r");
    rule.erase(last == std::string::npos ? 0 : last + 1);
    if (!rule.empty()) expected.insert(rule);
  }
  return expected;
}

SourceFile load_source(const std::filesystem::path& path) {
  SourceFile file;
  file.path = path;
  file.is_header =
      path.extension() == ".hpp" || path.extension() == ".h";
  std::ifstream in(path);
  if (!in) {
    file.open_failed = true;
    return file;
  }
  std::string raw;
  bool in_block = false;
  while (std::getline(in, raw)) {
    file.raw_lines.push_back(raw);
    file.stripped_lines.push_back(strip_comments_and_strings(raw, in_block));
    tokenize_line(file.stripped_lines.back(), file.raw_lines.size(),
                  file.tokens);
  }
  return file;
}

}  // namespace medcc_lint
