// Driver for the medcc_lint rule engine: source collection, rule
// dispatch, suppression filtering, human and JSON output, and the
// fixture self-test.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "lint/rule.hpp"

namespace medcc_lint {

/// All .cpp/.hpp/.cc/.h files under the given roots (files are taken
/// as-is), sorted for deterministic output.
[[nodiscard]] std::vector<std::filesystem::path> collect_sources(
    const std::vector<std::string>& roots);

/// Runs every registered rule over one file and filters findings
/// through the same-line `medcc-lint: allow(<rule>)` suppressions.
/// Unreadable files yield a single `io` finding.
[[nodiscard]] std::vector<Finding> lint_file(
    const std::filesystem::path& path);

/// Lints all sources under `roots`; prints human-readable findings and,
/// when `json_path` is non-empty, writes the machine-readable report
/// there. Returns 0 when clean, 1 on findings.
int run_lint(const std::vector<std::string>& roots,
             const std::string& json_path);

/// Fixture self-test: every fixture states the rules it must trigger
/// with `medcc-lint-expect: <rule>` lines (or `clean`), and the set of
/// rules that fire must match the expectations exactly -- missing AND
/// unexpected rules both fail. Returns 0 on success.
int run_self_test(const std::vector<std::string>& roots);

/// Prints the rule catalog (id + rationale) to stdout.
void print_rules();

}  // namespace medcc_lint
