// Rule interface for the medcc_lint engine. Each rule owns a stable
// kebab-case id (the suppression key), a one-line rationale (shown in
// --list-rules and docs), and a check pass over one pre-processed
// SourceFile. Rules emit raw findings; the engine applies the
// same-line `medcc-lint: allow(<rule>)` suppressions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace medcc_lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string suggestion;  // optional fix-style hint, may be empty
};

class Rule {
 public:
  Rule() = default;
  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;
  virtual ~Rule() = default;

  /// Stable kebab-case identifier, used in suppressions and output.
  [[nodiscard]] virtual std::string id() const = 0;

  /// One-line justification for the rule's existence.
  [[nodiscard]] virtual std::string rationale() const = 0;

  /// Scans `file` and appends findings (unfiltered; the engine applies
  /// suppressions).
  virtual void check(const SourceFile& file,
                     std::vector<Finding>& out) const = 0;
};

/// The full registered rule set, in stable output order.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> make_all_rules();

}  // namespace medcc_lint
