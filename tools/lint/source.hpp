// Source model for the medcc_lint rule engine: one file loaded once,
// pre-processed into the three views rules consume.
//
//  * raw lines        -- for suppression (`medcc-lint: allow(rule)`) and
//                        self-test expectation (`medcc-lint-expect:`)
//                        comments, which live in comments by design;
//  * stripped lines   -- comments and string/char literal contents
//                        removed, for the line-oriented pattern rules;
//  * tokens           -- a flat identifier/number/literal/punctuation
//                        stream with line numbers, for the structural
//                        rules (declaration shapes, catch clauses,
//                        class-member layout).
#pragma once

#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace medcc_lint {

enum class TokenKind { Identifier, Number, String, CharLiteral, Punct };

struct Token {
  TokenKind kind = TokenKind::Punct;
  std::string text;      // punctuation is always a single character
  std::size_t line = 0;  // 1-based
};

struct SourceFile {
  std::filesystem::path path;
  bool is_header = false;
  bool open_failed = false;
  std::vector<std::string> raw_lines;
  std::vector<std::string> stripped_lines;  // same indexing as raw_lines
  std::vector<Token> tokens;

  /// True when raw line `line` (1-based) carries a
  /// `medcc-lint: allow(<rule>)` suppression naming `rule`.
  [[nodiscard]] bool suppressed(std::size_t line,
                                const std::string& rule) const;

  /// The `medcc-lint-expect:` rule names declared by this file
  /// (self-test fixtures only).
  [[nodiscard]] std::set<std::string> expectations() const;
};

/// Loads and pre-processes one file; open_failed is set on IO errors.
[[nodiscard]] SourceFile load_source(const std::filesystem::path& path);

/// Strips // and /* */ comments and string/char literal contents from
/// one line; `in_block` carries /* */ state across lines. Exposed for
/// the tokenizer and tests.
[[nodiscard]] std::string strip_comments_and_strings(const std::string& line,
                                                     bool& in_block);

}  // namespace medcc_lint
