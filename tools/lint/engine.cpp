#include "lint/engine.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <set>

namespace fs = std::filesystem;

namespace medcc_lint {

namespace {

/// JSON string escaping for paths and messages.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) {
    std::cout << "medcc_lint: cannot write JSON report to " << path << "\n";
    return;
  }
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(f.file) << "\", "
        << "\"line\": " << f.line << ", "
        << "\"rule\": \"" << json_escape(f.rule) << "\", "
        << "\"message\": \"" << json_escape(f.message) << "\"";
    if (!f.suggestion.empty())
      out << ", \"suggestion\": \"" << json_escape(f.suggestion) << "\"";
    out << "}";
  }
  out << (findings.empty() ? "]" : "\n  ]") << ",\n  \"count\": "
      << findings.size() << "\n}\n";
}

}  // namespace

std::vector<fs::path> collect_sources(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(p);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h")
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Finding> lint_file(const fs::path& path) {
  std::vector<Finding> findings;
  const SourceFile file = load_source(path);
  if (file.open_failed) {
    findings.push_back(
        Finding{path.string(), 0, "io", "cannot open file", ""});
    return findings;
  }
  static const auto rules = make_all_rules();
  std::vector<Finding> raw;
  for (const auto& rule : rules) rule->check(file, raw);
  for (auto& f : raw)
    if (!file.suppressed(f.line, f.rule)) findings.push_back(std::move(f));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

int run_lint(const std::vector<std::string>& roots,
             const std::string& json_path) {
  std::vector<Finding> findings;
  for (const auto& file : collect_sources(roots)) {
    auto file_findings = lint_file(file);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
    if (!f.suggestion.empty())
      std::cout << "    suggestion: " << f.suggestion << "\n";
  }
  if (!json_path.empty()) write_json(json_path, findings);
  if (findings.empty()) {
    std::cout << "medcc_lint: clean\n";
    return 0;
  }
  std::cout << "medcc_lint: " << findings.size() << " finding(s)\n";
  return 1;
}

int run_self_test(const std::vector<std::string>& roots) {
  int failures = 0;
  std::size_t fixtures = 0;
  for (const auto& path : collect_sources(roots)) {
    ++fixtures;
    const SourceFile file = load_source(path);
    if (file.open_failed) {
      std::cout << path.string() << ": cannot open fixture\n";
      ++failures;
      continue;
    }
    const std::set<std::string> expected = file.expectations();
    if (expected.empty()) {
      std::cout << path.string() << ": fixture declares no expectations\n";
      ++failures;
      continue;
    }
    const auto findings = lint_file(path);
    std::set<std::string> found;
    for (const auto& f : findings) found.insert(f.rule);
    if (expected.count("clean") != 0) {
      // The fixture must produce no findings at all (suppressions and
      // exemptions must hold).
      for (const auto& f : findings) {
        std::cout << path.string() << ": expected clean, got [" << f.rule
                  << "] at line " << f.line << "\n";
        ++failures;
      }
      continue;
    }
    // Exact match both ways: an unexpected rule firing on a fixture is a
    // false positive and fails just like a missing expectation.
    for (const auto& rule : expected) {
      if (found.count(rule) == 0) {
        std::cout << path.string() << ": expected rule '" << rule
                  << "' did not fire\n";
        ++failures;
      }
    }
    for (const auto& rule : found) {
      if (expected.count(rule) == 0) {
        std::cout << path.string() << ": unexpected rule '" << rule
                  << "' fired\n";
        ++failures;
      }
    }
  }
  if (fixtures == 0) {
    std::cout << "self-test: no fixtures found\n";
    return 1;
  }
  if (failures == 0) {
    std::cout << "medcc_lint self-test: " << fixtures
              << " fixture(s), all expectations matched exactly\n";
    return 0;
  }
  std::cout << "medcc_lint self-test: " << failures << " failure(s)\n";
  return 1;
}

void print_rules() {
  for (const auto& rule : make_all_rules())
    std::cout << rule->id() << "\n    " << rule->rationale() << "\n";
}

}  // namespace medcc_lint
