// Reconstructs the paper's Fig. 4 numerical example.
//
// The extracted paper text preserves Table I (VM types), Table II (the
// Critical-Greedy schedules per budget band with their MEDs) and the prose
// walk-through, but the figure carrying the module workloads and the DAG
// shape is lost. This tool searches integer workloads and forward-labeled
// DAG topologies consistent with every surviving constraint:
//
//  * VT = {VP, CV} = {3,1}, {15,4}, {30,8}; 1-hour free entry/exit;
//  * least-cost schedule maps {w1,w2,w5}->VT2, {w3,w4,w6}->VT1, cost 48,
//    MED 16.77; fastest schedule (all VT3) costs 64, MED 5.43;
//  * the Table II budget bands imply the Critical-Greedy upgrade sequence
//    w4 (+1), w3 (+1), w6 (+2), w2 (+4), w5 (+4) with intermediate MEDs
//    12.10, 10.77, 8.10, 6.77; the prose adds that upgrading w4 cuts its
//    execution time by 6 hours;
//  * schedule 1 leaves w1 on VT2 even with unlimited budget.
//
// Derived integer workload windows (see EXPERIMENTS.md):
//    dC(w4)=1, dC(w3)=1 -> ceil(WL/3)=7  -> WL in {19,20,21}
//    dC(w6)=2           -> ceil(WL/3)=6  -> WL in {16,17,18}
//    sum of ceil(WLi/30) = 8 and the least-cost VT2 trio costing 28
//    constrain (w1,w2,w5) to one light module in [10,15] plus two heavy
//    modules in [34,45].
//
// Every MED-consistent candidate is then re-verified with the library's
// Critical-Greedy: the produced schedules, costs and MEDs must match
// Table II at all six band edges.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <mutex>
#include <vector>

#include "util/prng.hpp"

#include "cloud/vm_type.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "util/thread_pool.hpp"
#include "workflow/workflow.hpp"

namespace {

using medcc::workflow::Workflow;

constexpr int kPairCount = 15;
std::array<std::pair<int, int>, kPairCount> make_pairs() {
  std::array<std::pair<int, int>, kPairCount> pairs{};
  int k = 0;
  for (int i = 0; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j)
      pairs[static_cast<std::size_t>(k++)] = {i, j};
  return pairs;
}
const auto kPairs = make_pairs();

// Table II: budget band lower edge, schedule (0=VT1,1=VT2,2=VT3), MED.
struct Target {
  double budget;
  std::array<int, 6> types;
  double med;
};
const std::array<Target, 6> kTargets = {{
    {48.0, {1, 1, 0, 0, 1, 0}, 16.77},
    {49.0, {1, 1, 0, 2, 1, 0}, 12.10},
    {50.0, {1, 1, 2, 2, 1, 0}, 10.77},
    {52.0, {1, 1, 2, 2, 1, 2}, 8.10},
    {56.0, {1, 2, 2, 2, 1, 2}, 6.77},
    {60.0, {1, 2, 2, 2, 2, 2}, 5.43},
}};

// Duration multiplier per type relative to VT3 (VP 3, 15, 30).
constexpr std::array<double, 3> kMult = {10.0, 2.0, 1.0};

struct Combo {
  std::array<double, 6> wl;
  double offset;  // entry/exit fixed hours (1.0 per the prose; 0.0 probed)
  // Durations per target schedule, precomputed: dur[t][i].
  std::array<std::array<double, 6>, 6> dur;
};

bool near(double a, double b) { return std::abs(a - b) <= 0.005; }

/// Makespan of the 6-module DAG given per-node predecessor bitmasks.
double makespan6(const std::array<std::uint8_t, 6>& preds,
                 const std::array<double, 6>& dur, double offset) {
  std::array<double, 6> eft{};
  double ms = 0.0;
  for (int v = 0; v < 6; ++v) {
    double est = offset;
    const std::uint8_t pm = preds[static_cast<std::size_t>(v)];
    for (int p = 0; p < v; ++p)
      if (pm & (1u << p))
        est = std::max(est, eft[static_cast<std::size_t>(p)]);
    const double f = est + dur[static_cast<std::size_t>(v)];
    eft[static_cast<std::size_t>(v)] = f;
    ms = std::max(ms, f);
  }
  return ms + offset;
}

Workflow build_workflow(std::uint32_t mask, const std::array<double, 6>& wl,
                        double endpoint_hours) {
  Workflow wf;
  const auto w0 = wf.add_fixed_module("w0", endpoint_hours);
  std::array<medcc::workflow::NodeId, 6> w{};
  for (int i = 0; i < 6; ++i)
    w[static_cast<std::size_t>(i)] = wf.add_module(
        "w" + std::to_string(i + 1), wl[static_cast<std::size_t>(i)]);
  const auto w7 = wf.add_fixed_module("w7", endpoint_hours);
  std::array<bool, 6> has_pred{}, has_succ{};
  for (int k = 0; k < kPairCount; ++k) {
    if (!(mask & (1u << k))) continue;
    const auto [i, j] = kPairs[static_cast<std::size_t>(k)];
    wf.add_dependency(w[static_cast<std::size_t>(i)],
                      w[static_cast<std::size_t>(j)]);
    has_succ[static_cast<std::size_t>(i)] = true;
    has_pred[static_cast<std::size_t>(j)] = true;
  }
  for (int i = 0; i < 6; ++i) {
    if (!has_pred[static_cast<std::size_t>(i)])
      wf.add_dependency(w0, w[static_cast<std::size_t>(i)]);
    if (!has_succ[static_cast<std::size_t>(i)])
      wf.add_dependency(w[static_cast<std::size_t>(i)], w7);
  }
  return wf;
}

}  // namespace

int main(int argc, char** argv) {
  // --grid also runs the (slower) half-integer grid sweep before the
  // continuous refinement.
  const bool run_grid = argc > 1 && std::strcmp(argv[1], "--grid") == 0;
  const bool run_continuous =
      argc > 1 && std::strcmp(argv[1], "--continuous") == 0;
  // Workload windows, refined (derivation in EXPERIMENTS.md):
  //  * a parity argument on the /60 duration grid rules out all-integer
  //    workloads, so the grid is half-integers (q = 2*WL integer);
  //  * per-row MED drops bound the upgraded module's duration drop from
  //    below: w2 and w5 must be "heavy" VT2 modules with WL in [40, 45],
  //    leaving w1 as the light one in [10, 15];
  //  * the prose "decreases the execution time of w4 by 6" pins WL4 = 20.
  std::vector<Combo> combos;
  for (int q1 = 19; q1 <= 30; ++q1)
    for (int q2 = 80; q2 <= 90; ++q2)
      for (int q5 = 80; q5 <= 90; ++q5)
        for (int q3 = 37; q3 <= 42; ++q3)
          for (int q4 = 37; q4 <= 42; ++q4)
            for (int q6 = 31; q6 <= 36; ++q6) {
              const double offset = 1.0;  // prose: 1-hour entry/exit
              Combo c;
              c.wl = {q1 / 2.0, q2 / 2.0, q3 / 2.0,
                      q4 / 2.0, q5 / 2.0, q6 / 2.0};
              c.offset = offset;
              for (std::size_t t = 0; t < kTargets.size(); ++t)
                for (std::size_t i = 0; i < 6; ++i)
                  c.dur[t][i] =
                      c.wl[i] / 30.0 *
                      kMult[static_cast<std::size_t>(kTargets[t].types[i])];
              combos.push_back(c);
            }
  std::cout << "workload combos: " << combos.size() << "\n";

  // Transitively-reduced masks only: a redundant edge (one implied by a
  // two-edge path) changes neither longest paths nor criticality, so every
  // equivalence class of DAGs is covered by its reduction.
  std::vector<std::uint32_t> masks;
  for (std::uint32_t mask = 0; mask < (1u << kPairCount); ++mask) {
    std::array<std::uint8_t, 6> succs{};
    for (int k = 0; k < kPairCount; ++k) {
      if (!(mask & (1u << k))) continue;
      const auto [i, j] = kPairs[static_cast<std::size_t>(k)];
      succs[static_cast<std::size_t>(i)] |=
          static_cast<std::uint8_t>(1u << j);
    }
    bool reduced = true;
    for (int i = 0; i < 6 && reduced; ++i)
      for (int x = i + 1; x < 6 && reduced; ++x) {
        if (!(succs[static_cast<std::size_t>(i)] & (1u << x))) continue;
        if (succs[static_cast<std::size_t>(i)] &
            succs[static_cast<std::size_t>(x)])
          reduced = false;  // i->x and i->v and x->v for some v
      }
    if (reduced) masks.push_back(mask);
  }
  std::cout << "transitively-reduced masks: " << masks.size() << "\n";

  // Precompute predecessor bitmaps per mask.
  std::vector<std::array<std::uint8_t, 6>> mask_preds(masks.size());
  for (std::size_t mi = 0; mi < masks.size(); ++mi) {
    std::array<std::uint8_t, 6> preds{};
    for (int k = 0; k < kPairCount; ++k) {
      if (!(masks[mi] & (1u << k))) continue;
      const auto [i, j] = kPairs[static_cast<std::size_t>(k)];
      preds[static_cast<std::size_t>(j)] |=
          static_cast<std::uint8_t>(1u << i);
    }
    mask_preds[mi] = preds;
  }

  std::mutex hits_mutex;
  std::vector<std::pair<std::uint32_t, std::size_t>> hits;  // mask, combo
  std::array<std::size_t, 7> match_histogram{};  // by #targets matched
  std::size_t best_matched = 0;
  std::vector<std::string> best_examples;

  auto& pool = medcc::util::global_pool();
  if (run_grid)
  medcc::util::parallel_for_index(
      pool, combos.size(),
      [&](std::size_t c) {
        const Combo& combo = combos[c];
        std::vector<std::pair<std::uint32_t, std::size_t>> local;
        std::array<std::size_t, 7> local_hist{};
        std::size_t local_best = 0;
        std::uint32_t local_best_mask = 0;
        // Selectivity order: the fastest-mix row 1 and the least-cost row 6
        // reject most pairs, so test them first and bail out early.
        static constexpr std::array<std::size_t, 6> kOrder = {5, 0, 1, 2, 3,
                                                              4};
        for (std::size_t mi = 0; mi < masks.size(); ++mi) {
          const auto& preds = mask_preds[mi];
          std::size_t matched = 0;
          for (std::size_t t : kOrder) {
            if (!near(makespan6(preds, combo.dur[t], combo.offset),
                      kTargets[t].med))
              break;
            ++matched;
          }
          ++local_hist[matched];
          if (matched > local_best) {
            local_best = matched;
            local_best_mask = masks[mi];
          }
          if (matched == 6) local.emplace_back(masks[mi], c);
        }
        std::scoped_lock lock(hits_mutex);
        hits.insert(hits.end(), local.begin(), local.end());
        for (std::size_t k = 0; k < 7; ++k)
          match_histogram[k] += local_hist[k];
        if (local_best > best_matched) {
          best_matched = local_best;
          best_examples.clear();
        }
        if (local_best == best_matched && best_examples.size() < 5) {
          std::string line = "matched=" + std::to_string(local_best) +
                             " offset=" + std::to_string(combo.offset) +
                             " WL=[";
          for (std::size_t i = 0; i < 6; ++i)
            line += std::to_string(combo.wl[i]) + (i == 5 ? "]" : ",");
          line += " mask=" + std::to_string(local_best_mask);
          best_examples.push_back(line);
        }
      },
      /*grain=*/256);

  std::cout << "match histogram (by #rows of Table II reproduced):\n";
  for (std::size_t k = 0; k < 7; ++k)
    std::cout << "  " << k << ": " << match_histogram[k] << "\n";
  for (const auto& line : best_examples) std::cout << line << "\n";
  std::cout << "grid MED-consistent candidates: " << hits.size() << "\n";

  // Continuous refinement: the workloads in Fig. 4 need not sit on the
  // half-integer grid. Per topology, run multi-start coordinate descent on
  // the six workloads (within the derived windows) minimizing the L1 error
  // against the six Table II MEDs.
  if (hits.empty() && run_continuous) {
    struct Window {
      double lo, hi;
    };
    const std::array<Window, 6> kWin = {{{9.5, 15.0},
                                         {40.0, 45.0},
                                         {18.05, 21.0},
                                         {18.05, 21.0},
                                         {40.0, 45.0},
                                         {15.05, 18.0}}};
    const double offset = 1.0;
    std::mutex best_mutex;
    double global_best_err = 1e18;
    std::array<double, 6> global_best_wl{};
    std::uint32_t global_best_mask = 0;

    auto objective = [&](const std::array<std::uint8_t, 6>& preds,
                         const std::array<double, 6>& wl) {
      double err = 0.0;
      for (std::size_t t = 0; t < 6; ++t) {
        std::array<double, 6> dur{};
        for (std::size_t i = 0; i < 6; ++i)
          dur[i] = wl[i] / 30.0 *
                   kMult[static_cast<std::size_t>(kTargets[t].types[i])];
        err += std::abs(makespan6(preds, dur, offset) - kTargets[t].med);
      }
      return err;
    };

    medcc::util::parallel_for_index(
        pool, masks.size(),
        [&](std::size_t mi) {
          const auto& preds = mask_preds[mi];
          double mask_best = 1e18;
          std::array<double, 6> mask_best_wl{};
          medcc::util::Prng rng(0xC0FFEE ^ masks[mi]);
          for (int restart = 0; restart < 200; ++restart) {
            std::array<double, 6> wl{};
            for (std::size_t i = 0; i < 6; ++i)
              wl[i] = rng.uniform_real(kWin[i].lo, kWin[i].hi);
            double err = objective(preds, wl);
            for (double step : {2.0, 1.0, 0.5, 0.1, 1.0 / 30.0, 0.01,
                                1.0 / 300.0, 1.0 / 3000.0}) {
              bool improved = true;
              while (improved) {
                improved = false;
                for (std::size_t i = 0; i < 6; ++i) {
                  for (double dir : {+1.0, -1.0}) {
                    std::array<double, 6> cand = wl;
                    cand[i] = std::clamp(cand[i] + dir * step, kWin[i].lo,
                                         kWin[i].hi);
                    const double e = objective(preds, cand);
                    if (e < err - 1e-12) {
                      err = e;
                      wl = cand;
                      improved = true;
                    }
                  }
                }
              }
              if (err < 1e-4) break;
            }
            if (err < mask_best) {
              mask_best = err;
              mask_best_wl = wl;
            }
            if (mask_best < 1e-4) break;
          }
          std::scoped_lock lock(best_mutex);
          if (mask_best < global_best_err) {
            global_best_err = mask_best;
            global_best_wl = mask_best_wl;
            global_best_mask = masks[mi];
          }
          if (mask_best < 0.02) {
            std::cout << "NEAR mask=" << masks[mi] << " err=" << mask_best
                      << " WL=[";
            for (std::size_t i = 0; i < 6; ++i)
              std::cout << mask_best_wl[i] << (i == 5 ? "]\n" : ",");
          }
        },
        /*grain=*/8);
    std::cout << "continuous best err=" << global_best_err << " mask="
              << global_best_mask << " WL=[";
    for (std::size_t i = 0; i < 6; ++i)
      std::cout << global_best_wl[i] << (i == 5 ? "]\n" : ",");
    if (global_best_err <= 0.03) {
      hits.clear();
      // Re-run the confirmation on the single best continuous candidate.
      Combo c;
      c.wl = global_best_wl;
      c.offset = offset;
      combos.push_back(c);
      hits.emplace_back(global_best_mask, combos.size() - 1);
    }
  }

  // Exact mode: per topology, enumerate which maximal path is critical in
  // each of the six rows, solve the induced linear system for the
  // workloads, and keep solutions satisfying the workload windows and
  // every non-active path's <=-constraint. The feasible set of the joint
  // system is a finite set of isolated points (plus tie manifolds), which
  // grid and local search both miss; this finds them all.
  //
  // wildcard_row: when < 6, that row's equality is dropped (its implied
  // MED is reported instead) -- used to locate a garbled extraction value.
  std::vector<std::size_t> hit_wildcard;  // parallel to hits
  for (int wildcard_row = 6; wildcard_row >= 0; --wildcard_row) {
    const std::size_t wildcard =
        wildcard_row == 6 ? 6 : static_cast<std::size_t>(wildcard_row);
    if (wildcard < 6)
      std::cout << "--- retry treating row with MED "
                << kTargets[wildcard].med << " as unknown ---\n";
    struct Window {
      double lo, hi;
    };
    const std::array<Window, 6> kWin = {{{9.5, 15.0},
                                         {40.0, 45.0},
                                         {18.0 + 1e-9, 21.0},
                                         {18.0 + 1e-9, 21.0},
                                         {40.0, 45.0},
                                         {15.0 + 1e-9, 18.0}}};
    const double offset = 1.0;
    // Duration multiplier of module i in row t.
    auto coef = [&](std::size_t t, std::size_t i) {
      return kMult[static_cast<std::size_t>(kTargets[t].types[i])] / 30.0;
    };

    std::mutex solve_mutex;
    std::size_t solutions_found = 0;

    medcc::util::parallel_for_index(
        pool, masks.size(),
        [&](std::size_t mi) {
          const std::uint32_t mask = masks[mi];
          // Successor lists within the 6-node subgraph.
          std::array<std::vector<int>, 6> succ;
          std::array<bool, 6> has_pred{};
          for (int k = 0; k < kPairCount; ++k) {
            if (!(mask & (1u << k))) continue;
            const auto [i, j] = kPairs[static_cast<std::size_t>(k)];
            succ[static_cast<std::size_t>(i)].push_back(j);
            has_pred[static_cast<std::size_t>(j)] = true;
          }
          // All maximal paths (source to sink within the subgraph).
          std::vector<std::array<bool, 6>> paths;
          std::array<bool, 6> on_path{};
          auto dfs = [&](auto&& self, int v) -> void {
            on_path[static_cast<std::size_t>(v)] = true;
            if (succ[static_cast<std::size_t>(v)].empty()) {
              paths.push_back(on_path);
            } else {
              for (int s : succ[static_cast<std::size_t>(v)]) self(self, s);
            }
            on_path[static_cast<std::size_t>(v)] = false;
          };
          for (int v = 0; v < 6; ++v)
            if (!has_pred[static_cast<std::size_t>(v)]) dfs(dfs, v);
          if (paths.empty() || paths.size() > 64) return;

          // Interval prefilter: for each row, a path is (a) admissible as
          // active iff target is inside its [min,max] over the windows,
          // and (b) the mask dies if some path's minimum exceeds a target.
          std::array<std::vector<std::size_t>, 6> active_candidates;
          for (std::size_t t = 0; t < 6; ++t) {
            if (t == wildcard) {
              active_candidates[t].push_back(0);  // placeholder, unused
              continue;
            }
            const double target = kTargets[t].med - 2.0 * offset;
            for (std::size_t p = 0; p < paths.size(); ++p) {
              double lo = 0.0, hi = 0.0;
              for (std::size_t i = 0; i < 6; ++i) {
                if (!paths[p][i]) continue;
                lo += coef(t, i) * kWin[i].lo;
                hi += coef(t, i) * kWin[i].hi;
              }
              if (lo > target + 0.006) return;  // mask infeasible for row t
              if (target >= lo - 0.006 && target <= hi + 0.006)
                active_candidates[t].push_back(p);
            }
            if (active_candidates[t].empty()) return;
          }

          // Enumerate active-path choices; solve the 6x6 system.
          std::array<std::size_t, 6> choice{};
          auto accept = [&](const std::array<double, 6>& q) {
            for (std::size_t i = 0; i < 6; ++i)
              if (q[i] < kWin[i].lo - 1e-6 || q[i] > kWin[i].hi + 1e-6)
                return;
            // Equalities and all-path inequalities per row.
            double wildcard_med = 0.0;
            for (std::size_t t = 0; t < 6; ++t) {
              const double target = kTargets[t].med - 2.0 * offset;
              double max_len = 0.0;
              for (std::size_t p = 0; p < paths.size(); ++p) {
                double len = 0.0;
                for (std::size_t i = 0; i < 6; ++i)
                  if (paths[p][i]) len += coef(t, i) * q[i];
                if (t != wildcard && len > target + 0.005) return;
                max_len = std::max(max_len, len);
              }
              if (t == wildcard)
                wildcard_med = max_len + 2.0 * offset;
              else if (std::abs(max_len - target) > 0.005)
                return;
            }
            std::scoped_lock lock(solve_mutex);
            ++solutions_found;
            if (solutions_found <= 40) {
              if (wildcard < 6)
                std::cout << "implied MED(row " << kTargets[wildcard].budget
                          << ")=" << wildcard_med << "  ";
              std::cout << "SOLVED mask=" << mask << " WL=[";
              for (std::size_t i = 0; i < 6; ++i)
                std::cout << q[i] << (i == 5 ? "]" : ",");
              std::cout << " edges:";
              for (int k = 0; k < kPairCount; ++k)
                if (mask & (1u << k)) {
                  const auto [i, j] = kPairs[static_cast<std::size_t>(k)];
                  std::cout << " w" << i + 1 << "->w" << j + 1;
                }
              std::cout << "\n";
            }
            Combo c;
            c.wl = q;
            c.offset = offset;
            combos.push_back(c);
            hits.emplace_back(mask, combos.size() - 1);
            hit_wildcard.push_back(wildcard);
          };
          auto solve_and_check = [&]() {
            // Build A q = b and reduce to row-echelon form, tracking pivot
            // columns so rank-deficient (tied-critical-path) systems can be
            // completed by gridding the free variables over their windows.
            std::array<std::array<double, 7>, 6> aug{};
            std::size_t eq = 0;
            for (std::size_t t = 0; t < 6; ++t) {
              if (t == wildcard) continue;
              for (std::size_t i = 0; i < 6; ++i)
                aug[eq][i] = paths[choice[t]][i] ? coef(t, i) : 0.0;
              aug[eq][6] = kTargets[t].med - 2.0 * offset;
              ++eq;
            }
            for (; eq < 6; ++eq) aug[eq] = {};  // zero rows for the wildcard
            std::array<std::size_t, 6> pivot_col{};
            std::size_t rank = 0;
            for (std::size_t col = 0; col < 6 && rank < 6; ++col) {
              std::size_t piv = rank;
              for (std::size_t r = rank + 1; r < 6; ++r)
                if (std::abs(aug[r][col]) > std::abs(aug[piv][col])) piv = r;
              if (std::abs(aug[piv][col]) < 1e-10) continue;  // free column
              std::swap(aug[rank], aug[piv]);
              for (std::size_t r = 0; r < 6; ++r) {
                if (r == rank) continue;
                const double f = aug[r][col] / aug[rank][col];
                for (std::size_t cc = col; cc <= 6; ++cc)
                  aug[r][cc] -= f * aug[rank][cc];
              }
              pivot_col[rank] = col;
              ++rank;
            }
            // Consistency of the zero rows.
            for (std::size_t r = rank; r < 6; ++r)
              if (std::abs(aug[r][6]) > 1e-7) return;

            std::array<bool, 6> is_pivot{};
            for (std::size_t r = 0; r < rank; ++r) is_pivot[pivot_col[r]] = true;
            std::vector<std::size_t> free_cols;
            for (std::size_t i = 0; i < 6; ++i)
              if (!is_pivot[i]) free_cols.push_back(i);
            if (free_cols.size() > 3) return;  // too underdetermined

            // Grid the free variables over their windows.
            constexpr double kStep = 0.25;
            std::array<double, 6> q{};
            auto assign = [&](auto&& self, std::size_t fidx) -> void {
              if (fidx == free_cols.size()) {
                for (std::size_t r = rank; r-- > 0;) {
                  const std::size_t col = pivot_col[r];
                  double rhs = aug[r][6];
                  for (std::size_t cc = col + 1; cc < 6; ++cc)
                    rhs -= aug[r][cc] * q[cc];
                  q[col] = rhs / aug[r][col];
                }
                accept(q);
                return;
              }
              const std::size_t col = free_cols[fidx];
              for (double v = kWin[col].lo; v <= kWin[col].hi + 1e-9;
                   v += kStep) {
                q[col] = v;
                self(self, fidx + 1);
              }
            };
            assign(assign, 0);
          };
          auto enumerate = [&](auto&& self, std::size_t t) -> void {
            if (t == 6) {
              solve_and_check();
              return;
            }
            for (std::size_t p : active_candidates[t]) {
              choice[t] = p;
              self(self, t + 1);
            }
          };
          enumerate(enumerate, 0);
        },
        /*grain=*/16);
    std::cout << "exact-solver solutions: " << solutions_found << "\n";
  }

  // Library-level confirmation: Critical-Greedy must reproduce the exact
  // Table II schedules at every band edge.
  std::size_t confirmed = 0;
  for (std::size_t h = 0; h < hits.size(); ++h) {
    const auto [mask, c] = hits[h];
    const std::size_t wildcard = h < hit_wildcard.size() ? hit_wildcard[h] : 6;
    const Combo& combo = combos[c];
    auto wf = build_workflow(mask, combo.wl, combo.offset);
    if (!wf.validate().ok()) continue;
    const auto inst = medcc::sched::Instance::from_model(
        std::move(wf), medcc::cloud::example_catalog());
    const auto bounds = medcc::sched::cost_bounds(inst);
    if (!near(bounds.cmin, 48.0) || !near(bounds.cmax, 64.0)) continue;
    bool ok = true;
    double wildcard_med = 0.0;
    for (std::size_t t = 0; t < kTargets.size() && ok; ++t) {
      const auto& target = kTargets[t];
      const auto r = medcc::sched::critical_greedy(inst, target.budget);
      for (std::size_t i = 0; i < 6 && ok; ++i)
        if (r.schedule.type_of[i + 1] !=
            static_cast<std::size_t>(target.types[i]))
          ok = false;
      if (t == wildcard)
        wildcard_med = r.eval.med;
      else if (ok && !near(r.eval.med, target.med))
        ok = false;
    }
    if (!ok) continue;
    ++confirmed;
    if (confirmed <= 20) {
      if (wildcard < 6)
        std::cout << "(row " << kTargets[wildcard].budget
                  << " MED=" << wildcard_med << ") ";
      std::cout << "CONFIRMED offset=" << combo.offset << " WL=[";
      for (std::size_t i = 0; i < 6; ++i)
        std::cout << combo.wl[i] << (i == 5 ? "" : ",");
      std::cout << "] edges:";
      for (int k = 0; k < kPairCount; ++k)
        if (mask & (1u << k)) {
          const auto [i, j] = kPairs[static_cast<std::size_t>(k)];
          std::cout << " w" << i + 1 << "->w" << j + 1;
        }
      std::cout << "\n";
    }
  }
  std::cout << "Critical-Greedy-confirmed instances: " << confirmed << "\n";
  return confirmed > 0 ? 0 : 1;
}
