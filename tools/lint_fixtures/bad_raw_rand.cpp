// Self-test fixture: unseeded C RNG in library code.
// medcc-lint-expect: raw-rand
#include <cstdlib>

namespace medcc::fixture {

int roll_dice() {
  srand(42);                       // seeded, but still the global C stream
  return rand() % 6 + 1;           // non-reproducible across platforms
}

}  // namespace medcc::fixture
