// Self-test fixture: named guards live to the end of the scope.
// medcc-lint-expect: clean
#include <mutex>

namespace medcc::fixture {

int g_counter = 0;

void bump(std::mutex& door) {
  const std::scoped_lock lock(door);
  ++g_counter;
}

int read(std::mutex& door) {
  std::unique_lock<std::mutex> lock{door};
  return g_counter;
}

}  // namespace medcc::fixture
