// Self-test fixture: raw stdio writes to stderr in library code.
// medcc-lint-expect: raw-stderr
#include <cstdio>

namespace medcc::fixture {

void warn_bad_config(const char* key) {
  std::fprintf(stderr, "bad config key %s\n", key);  // no level, no trace id
  std::fputs("falling back to defaults\n", stderr);
}

}  // namespace medcc::fixture
