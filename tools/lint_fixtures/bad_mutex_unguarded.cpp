// Self-test fixture: a class holding a mutex with fields that say
// nothing about how they are synchronized.
// medcc-lint-expect: mutable-field-near-mutex-without-guarded-by
#include <deque>
#include <mutex>

namespace medcc::fixture {

class WorkQueue {
 public:
  void push(int task);

 private:
  std::mutex mutex_;
  std::deque<int> pending_;   // which lock protects this?
  double last_drain_seconds_; // and this?
};

}  // namespace medcc::fixture
