// Self-test fixture: heavyweight scheduling types passed by value --
// every call copies the per-module vectors.
// medcc-lint-expect: large-value-param
#include <cstddef>
#include <vector>

namespace medcc::fixture {

struct Result {
  std::vector<std::size_t> type_of;
};

struct Instance {
  std::vector<double> workloads;
};

double score(Result plan, const Instance& instance);

double rescore(const Instance& instance, medcc::fixture::Result plan) {
  return score(plan, instance) + static_cast<double>(plan.type_of.size());
}

void solve_copying(Instance instance, Result* out);

}  // namespace medcc::fixture
