// Self-test fixture: exact equality on accumulated time/cost doubles.
// medcc-lint-expect: float-eq

namespace medcc::fixture {

bool schedules_tie(double total_cost_a, double total_cost_b) {
  return total_cost_a == total_cost_b;
}

bool hits_deadline(double makespan, double deadline) {
  return makespan != deadline;
}

}  // namespace medcc::fixture
