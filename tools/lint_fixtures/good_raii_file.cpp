// Self-test fixture: file IO through the RAII layer, plus identifiers
// merely containing "fopen"/"FILE" must not trip raw-fopen.
// medcc-lint-expect: clean

#include <string>

#include "util/atomic_file.hpp"

namespace medcc::fixture {

void save_report(const std::string& path, const std::string& body) {
  util::atomic_write_file(path, body);  // temp + fsync + rename
}

std::string load_report(const std::string& path) {
  return util::read_file(path);
}

// Lookalike identifiers: distinct tokens, not stdio calls.
int my_fopen_count(int profile_count) { return profile_count; }

constexpr int kFileLimit = 16;  // "FILE" prefix inside a longer token

}  // namespace medcc::fixture
