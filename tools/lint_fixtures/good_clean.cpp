// Self-test fixture: idiomatic library code that must produce no
// findings -- exercises the allow() suppression and the literal-zero
// exemption of float-eq.
// medcc-lint-expect: clean

namespace medcc::fixture {

inline bool same_rate_bucket(double cost_rate_a, double cost_rate_b) {
  // Exact tie-break on copied catalog values, never on arithmetic results.
  return cost_rate_a == cost_rate_b;  // medcc-lint: allow(float-eq)
}

inline bool zero_guard(double duration) {
  return duration == 0.0;  // literal-zero comparisons are always allowed
}

// A commented-out std::cout << "debug" must not trip cout-in-library.

}  // namespace medcc::fixture
