// Self-test fixture: every field in a mutex-holding class states its
// synchronization -- guarded, intentionally unguarded, or a primitive
// that synchronizes itself.
// medcc-lint-expect: clean
#include <atomic>
#include <deque>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace medcc::fixture {

class WorkQueue {
 public:
  void push(int task);

 private:
  std::mutex mutex_;
  std::deque<int> pending_ MEDCC_GUARDED_BY(mutex_);
  std::atomic<bool> stopping_{false};
  // Written once by the constructor, read-only afterwards.
  MEDCC_NOT_GUARDED std::size_t capacity_;
};

}  // namespace medcc::fixture
