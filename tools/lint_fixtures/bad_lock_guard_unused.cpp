// Self-test fixture: lock temporaries that unlock at the semicolon,
// leaving the rest of the scope unprotected.
// medcc-lint-expect: lock-guard-unused
#include <mutex>

namespace medcc::fixture {

int g_counter = 0;

void bump(std::mutex& door) {
  std::scoped_lock(door);  // declares a variable named `door`, locks nothing
  std::lock_guard<std::mutex>{door};  // temporary, unlocked before ++
  ++g_counter;
}

}  // namespace medcc::fixture
