// Self-test fixture: exceptions caught by const reference or ellipsis.
// medcc-lint-expect: clean
#include <stdexcept>

namespace medcc::fixture {

int parse_or_zero(int (*parse)()) {
  try {
    return parse();
  } catch (const std::runtime_error& err) {
    return 0;
  } catch (...) {
    return -1;
  }
}

}  // namespace medcc::fixture
