// Self-test fixture: unmanaged stdio handles in library code.
// medcc-lint-expect: raw-fopen
#include <cstdio>

namespace medcc::fixture {

double read_first_value(const char* path) {
  FILE* handle = fopen(path, "r");   // leaks if the read below throws
  if (handle == nullptr) return 0.0;
  double value = 0.0;
  if (std::fscanf(handle, "%lf", &value) != 1) value = 0.0;
  std::fclose(handle);
  return value;
}

}  // namespace medcc::fixture
