// Self-test fixture: raw console output in library code.
// medcc-lint-expect: cout-in-library
#include <iostream>

namespace medcc::fixture {

void report_progress(int done, int total) {
  std::cout << "progress " << done << "/" << total << "\n";
}

}  // namespace medcc::fixture
