// Self-test fixture: owned thread joined before its resources die.
// medcc-lint-expect: clean
#include <thread>

namespace medcc::fixture {

void flush_sync(void (*flush)()) {
  std::thread worker(flush);
  worker.join();
}

}  // namespace medcc::fixture
