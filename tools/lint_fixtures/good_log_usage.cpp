// Self-test fixture: output through the leveled logger and through a
// caller-supplied stream -- the two allowed sinks in library code.
// medcc-lint-expect: clean
#include <ostream>

#include "util/log.hpp"

namespace medcc::fixture {

void report_progress(std::ostream& out, int done, int total) {
  out << "progress " << done << "/" << total << "\n";
}

void report_done() { MEDCC_LOG_INFO("fixture done"); }

}  // namespace medcc::fixture
