// Self-test fixture: C++20 coordination primitives (semaphores,
// latches, barriers) synchronize themselves, so fields of these types
// need no MEDCC_GUARDED_BY even in a mutex-holding class.
// medcc-lint-expect: clean
#include <barrier>
#include <deque>
#include <latch>
#include <mutex>
#include <semaphore>

#include "util/thread_annotations.hpp"

namespace medcc::fixture {

class PhasedPipeline {
 public:
  void submit(int task);

 private:
  std::mutex mutex_;
  std::deque<int> pending_ MEDCC_GUARDED_BY(mutex_);
  std::counting_semaphore<64> slots_{64};
  std::binary_semaphore turn_{0};
  std::latch started_{4};
  std::barrier<> round_{4};
};

}  // namespace medcc::fixture
