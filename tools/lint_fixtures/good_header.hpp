// Self-test fixture: a well-formed public header -- include guard and
// medcc namespace both present.
// medcc-lint-expect: clean
#pragma once

namespace medcc::fixture {

struct RetryPolicy {
  int retries = 3;
};

}  // namespace medcc::fixture
