// Self-test fixture: exception caught by value -- slices derived types
// and copies on every throw.
// medcc-lint-expect: catch-by-value
#include <stdexcept>

namespace medcc::fixture {

int parse_or_zero(int (*parse)()) {
  try {
    return parse();
  } catch (std::runtime_error err) {
    return 0;
  }
}

}  // namespace medcc::fixture
