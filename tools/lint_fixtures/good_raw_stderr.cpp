// Self-test fixture: diagnostics through the leveled logger instead of
// raw stderr writes; identifiers merely containing a banned token
// ("perror" inside wrapper_error, "fputs" inside my_fputs_count") must
// not trip raw-stderr.
// medcc-lint-expect: clean
#include <string>

#include "util/log.hpp"

namespace medcc::fixture {

void warn_bad_config(const std::string& key) {
  medcc::util::log_warn("bad config key=", key);
  medcc::util::log_error("falling back to defaults");
}

int wrapper_error = 0;
int my_fputs_count = 0;

}  // namespace medcc::fixture
