// Self-test fixture: float time/cost comparisons done right -- tolerance
// for arithmetic results, exact forms only where exactness is defined.
// medcc-lint-expect: clean
#include <cmath>
#include <vector>

namespace medcc::fixture {

inline constexpr double kTolerance = 1e-9;

bool same_cost(double cost_a, double cost_b) {
  return std::abs(cost_a - cost_b) <= kTolerance;
}

bool empty_schedule(const std::vector<double>& task_times) {
  return task_times.size() == 0;  // container-size chains are integral
}

bool unset_budget(double budget) {
  return budget == 0.0;  // literal zero: assigned, never accumulated
}

}  // namespace medcc::fixture
