// Self-test fixture: randomness drawn from the seeded Prng streams, and
// identifiers merely containing "rand" must not trip raw-rand.
// medcc-lint-expect: clean

#include "util/prng.hpp"

namespace medcc::fixture {

double next_rand(util::Prng& prng) { return prng.uniform(); }

int grand_total_rand(int grand_total) { return grand_total + 1; }

}  // namespace medcc::fixture
