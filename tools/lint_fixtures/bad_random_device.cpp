// Self-test fixture: entropy-seeded RNG makes experiments irreproducible.
// medcc-lint-expect: raw-rand
#include <random>

namespace medcc::fixture {

std::mt19937 make_engine() {
  std::random_device entropy;
  return std::mt19937(entropy());
}

}  // namespace medcc::fixture
