// Self-test fixture: public header without include guard or namespace.
// medcc-lint-expect: pragma-once
// medcc-lint-expect: namespace-medcc

struct OrphanConfig {
  int retries = 3;
};
