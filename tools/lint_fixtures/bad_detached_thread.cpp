// Self-test fixture: fire-and-forget thread with no join.
// medcc-lint-expect: detached-thread
#include <thread>

namespace medcc::fixture {

void flush_async(void (*flush)()) {
  std::thread worker(flush);
  worker.detach();  // outlives every object the closure touches
}

}  // namespace medcc::fixture
