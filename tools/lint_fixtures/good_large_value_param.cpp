// Self-test fixture: heavyweight scheduling types crossing call
// boundaries by const reference, pointer, or move sink -- no copies.
// medcc-lint-expect: clean
#include <cstddef>
#include <utility>
#include <vector>

namespace medcc::fixture {

struct Result {
  std::vector<std::size_t> type_of;
};

struct Instance {
  std::vector<double> workloads;
};

double score(const Result& plan, const Instance& instance);

// A move sink transfers ownership without a copy.
Result normalize(Result&& plan) { return std::move(plan); }

void solve_into(const Instance* instance, Result* out);

// Local by-value declarations and template arguments are not
// parameters; neither is a return type.
Result make_plan(const Instance& instance) {
  Result plan;
  std::vector<Result> candidates;
  plan.type_of.resize(instance.workloads.size());
  candidates.push_back(plan);
  return plan;
}

}  // namespace medcc::fixture
