// Trace inspection tool: asks each listed medcc_server replica for its
// tracer state over the trace_dump admin frame and prints one block
// per node -- counters, the per-stage latency breakdown, and (on
// request) recent or slowest retained traces with their span trees.
//
// Usage: medcc_tracectl --nodes HOST:PORT,... [--timeout MS]
//                       [--recent N] [--slowest N] [--stages]
//                       [--metrics]
//
//   --recent N    print the N most recently retained traces per node
//   --slowest N   print the N slowest retained traces per node
//   --stages      print the per-stage aggregate breakdown (default
//                 when no other view is requested)
//   --metrics     also fetch and print the node's Prometheus metrics
//                 exposition (stats frame, StatsFormat::prometheus)
//
// Exit status: 0 when every node answered, 1 when at least one was
// unreachable (its block says so and the remaining nodes are still
// queried), 2 on usage errors.
//
// Sample output (one node, one retained trace):
//
//   node medcc-a at 127.0.0.1:7101: tracing on (v2, features repl+trace)
//     started 4096  sampled 64  completed 64  dropped 4032
//     stage solve          count=17    total_ms=412.150  avg_us=24244.1
//     trace 7f3a...c2 total_ms=31.402 slow origin=medcc-a spans=5
//       request        31.402ms @ +0.000ms
//       queue_wait      2.120ms @ +0.310ms
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/endpoint.hpp"
#include "obs/trace.hpp"
#include "util/flags.hpp"

namespace {

constexpr const char* kUsage =
    "usage: medcc_tracectl --nodes HOST:PORT,... [--timeout MS]\n"
    "                      [--recent N] [--slowest N] [--stages]"
    " [--metrics]\n";

struct Options {
  std::vector<medcc::net::Endpoint> nodes;
  double timeout_ms = 5000.0;
  std::uint32_t recent = 0;
  std::uint32_t slowest = 0;
  bool stages = false;
  bool metrics = false;
};

std::vector<medcc::net::Endpoint> parse_nodes(std::string_view list) {
  std::vector<medcc::net::Endpoint> nodes;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::string_view token = list.substr(
        begin, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - begin);
    auto endpoint = medcc::net::parse_endpoint(token);
    if (!endpoint)
      throw std::invalid_argument("bad endpoint '" + std::string(token) + "'");
    nodes.push_back(*std::move(endpoint));
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  return nodes;
}

std::string format_ms(std::int64_t ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(ns) / 1e6);
  return buffer;
}

void print_trace(const medcc::obs::TraceRecord& trace) {
  std::cout << "  trace " << trace.id.to_hex() << " total_ms="
            << format_ms(trace.total_ns) << (trace.slow ? " slow" : "")
            << " origin=" << (trace.origin.empty() ? "?" : trace.origin)
            << " spans=" << trace.spans.size() << "\n";
  for (const medcc::obs::Span& span : trace.spans)
    std::cout << "    " << medcc::obs::to_string(span.stage) << "  "
              << format_ms(span.duration_ns()) << "ms @ +"
              << format_ms(span.start_ns - trace.started_ns) << "ms\n";
}

/// Queries one node and prints its block; false when unreachable.
bool report(const medcc::net::Endpoint& node, const Options& opt) {
  medcc::net::ClientConfig config;
  config.host = node.host;
  config.port = node.port;
  config.connect_timeout_ms = opt.timeout_ms;
  config.request_timeout_ms = opt.timeout_ms;
  try {
    medcc::net::Client client(std::move(config));
    medcc::net::Hello offer;
    offer.version = medcc::net::kMaxVersion;
    offer.features =
        medcc::net::kFeatureReplication | medcc::net::kFeatureTracing;
    offer.node_id = "medcc_tracectl";
    const medcc::net::Hello granted = client.hello(offer);
    if (granted.version < medcc::net::kVersion2) {
      std::cout << "node at " << medcc::net::to_string(node)
                << ": protocol v" << granted.version
                << " (no tracing support)\n";
      return true;
    }
    const std::uint32_t want = std::max(opt.recent, opt.slowest);
    const medcc::net::TraceDump dump = client.trace_dump(want);
    std::cout << "node " << dump.node_id << " at "
              << medcc::net::to_string(node) << ": tracing "
              << (dump.enabled ? "on" : "off") << " (v" << granted.version
              << ", features "
              << ((granted.features & medcc::net::kFeatureReplication) != 0
                      ? "repl"
                      : "")
              << ((granted.features & medcc::net::kFeatureTracing) != 0
                      ? "+trace"
                      : "")
              << ")\n"
              << "  started " << dump.started << "  sampled " << dump.sampled
              << "  completed " << dump.completed << "  dropped "
              << dump.dropped << "\n";
    if (opt.stages) {
      for (std::size_t s = 0; s < medcc::obs::kStageCount; ++s) {
        const medcc::obs::StageStat& stat = dump.stages[s];
        if (stat.count == 0) continue;
        const double avg_us = static_cast<double>(stat.total_ns) /
                              static_cast<double>(stat.count) / 1e3;
        char avg[32];
        std::snprintf(avg, sizeof(avg), "%.1f", avg_us);
        std::cout << "  stage " << std::left
                  << medcc::obs::to_string(
                         static_cast<medcc::obs::Stage>(s))
                  << std::right << "  count=" << stat.count << "  total_ms="
                  << format_ms(static_cast<std::int64_t>(stat.total_ns))
                  << "  avg_us=" << avg << "\n";
      }
    }
    if (opt.slowest > 0) {
      std::vector<medcc::obs::TraceRecord> traces = dump.traces;
      std::stable_sort(traces.begin(), traces.end(),
                       [](const medcc::obs::TraceRecord& a,
                          const medcc::obs::TraceRecord& b) {
                         return a.total_ns > b.total_ns;
                       });
      if (traces.size() > opt.slowest) traces.resize(opt.slowest);
      std::cout << "  slowest " << traces.size() << " of " << dump.completed
                << " retained:\n";
      for (const medcc::obs::TraceRecord& trace : traces) print_trace(trace);
    }
    if (opt.recent > 0) {
      std::size_t shown = 0;
      std::cout << "  recent traces (newest first):\n";
      for (const medcc::obs::TraceRecord& trace : dump.traces) {
        if (shown++ >= opt.recent) break;
        print_trace(trace);
      }
    }
    if (opt.metrics)
      std::cout << client.stats(medcc::net::StatsFormat::prometheus);
    return true;
  } catch (const std::exception& ex) {
    std::cout << "node at " << medcc::net::to_string(node)
              << ": unreachable (" << ex.what() << ")\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--nodes" && i + 1 < argc) {
        opt.nodes = parse_nodes(argv[++i]);
      } else if (arg == "--timeout" && i + 1 < argc) {
        opt.timeout_ms = medcc::util::parse_flag_double(argv[++i]);
      } else if (arg == "--recent" && i + 1 < argc) {
        opt.recent = static_cast<std::uint32_t>(
            medcc::util::parse_flag_size(argv[++i]));
      } else if (arg == "--slowest" && i + 1 < argc) {
        opt.slowest = static_cast<std::uint32_t>(
            medcc::util::parse_flag_size(argv[++i]));
      } else if (arg == "--stages") {
        opt.stages = true;
      } else if (arg == "--metrics") {
        opt.metrics = true;
      } else {
        std::cerr << kUsage;
        return 2;
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "medcc_tracectl: " << ex.what() << "\n" << kUsage;
    return 2;
  }
  if (opt.nodes.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  // Counters + stage breakdown is the default view.
  if (!opt.stages && opt.recent == 0 && opt.slowest == 0 && !opt.metrics)
    opt.stages = true;

  bool all_ok = true;
  for (const medcc::net::Endpoint& node : opt.nodes)
    if (!report(node, opt)) all_ok = false;
  return all_ok ? 0 : 1;
}
