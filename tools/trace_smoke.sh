#!/usr/bin/env bash
# Tracing smoke for the observability plane: boot three traced
# medcc_server replicas wired with --peers, push one traced solve
# through a ClusterClient (medcc_serve_demo --trace-solve), and
# require the SAME trace id on every replica -- a request span on the
# tenant's primary and repl_apply spans on both peers, read back with
# medcc_tracectl. Then SIGKILL the primary and solve again: the client
# must retain a client_failover span and a survivor must show the new
# id. One id, one journey, across a node death.
#
# usage: tools/trace_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/medcc_server"
DEMO="$BUILD_DIR/tools/medcc_serve_demo"
CTL="$BUILD_DIR/tools/medcc_tracectl"
if [ ! -x "$SERVER" ] || [ ! -x "$DEMO" ] || [ ! -x "$CTL" ]; then
  echo "trace_smoke: $SERVER / $DEMO / $CTL not built" >&2
  exit 2
fi

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# Fixed ports, retried on bind clash, exactly as tools/cluster_smoke.sh.
boot_cluster() {
  base=$((RANDOM % 20000 + 30000))
  ports=("$base" "$((base + 1))" "$((base + 2))")
  pids=()
  for i in 0 1 2; do
    peers=""
    for j in 0 1 2; do
      [ "$j" = "$i" ] && continue
      peers="${peers:+$peers,}127.0.0.1:${ports[$j]}"
    done
    "$SERVER" --port "${ports[$i]}" --threads 2 --io-threads 2 \
              --node-id "node$i" --peers "$peers" \
              --trace --trace-sample 1 \
              >"$workdir/server$i.log" 2>&1 &
    pids+=($!)
    disown $!
  done
  for i in 0 1 2; do
    for _ in $(seq 1 100); do
      if grep -q "listening on" "$workdir/server$i.log"; then break; fi
      if ! kill -0 "${pids[$i]}" 2>/dev/null; then return 1; fi
      sleep 0.1
    done
    grep -q "listening on" "$workdir/server$i.log" || return 1
  done
  return 0
}

booted=0
for _ in 1 2 3 4 5; do
  if boot_cluster; then booted=1; break; fi
  cleanup_keep_dir=1
  for pid in "${pids[@]:-}"; do kill -KILL "$pid" 2>/dev/null || true; done
done
[ "$booted" = 1 ] || { echo "trace_smoke: cluster failed to boot" >&2; exit 1; }
nodes="127.0.0.1:${ports[0]},127.0.0.1:${ports[1]},127.0.0.1:${ports[2]}"
echo "== 3 traced replicas up on ${ports[*]}"

echo "== one traced solve through the ClusterClient"
"$DEMO" --trace-solve "$nodes" --tenant trace-tenant \
    >"$workdir/solve1.txt"
cat "$workdir/solve1.txt"
trace1="$(awk '$1 == "trace" { print $2 }' "$workdir/solve1.txt")"
[ -n "$trace1" ] || { echo "trace_smoke: no trace id printed" >&2; exit 1; }
grep -q "status ok" "$workdir/solve1.txt" \
    || { echo "trace_smoke: first solve not ok" >&2; exit 1; }

# Per-node dumps: wait until all three replicas retained the id --
# the primary's request trace plus both peers' repl_apply records.
echo "== waiting for trace $trace1 on all three replicas"
settled=0
for _ in $(seq 1 100); do
  with_id=0
  for i in 0 1 2; do
    "$CTL" --nodes "127.0.0.1:${ports[$i]}" --recent 64 \
        >"$workdir/dump$i.txt" 2>&1 || true
    grep -q "trace $trace1" "$workdir/dump$i.txt" && with_id=$((with_id + 1))
  done
  if [ "$with_id" = 3 ]; then settled=1; break; fi
  sleep 0.1
done
[ "$settled" = 1 ] || {
  echo "trace_smoke: trace $trace1 not on all replicas" >&2
  cat "$workdir"/dump*.txt >&2
  exit 1
}

# The primary is the replica whose retained trace carries the request
# span; the peers must carry repl_apply under the SAME id.
primary=""
appliers=0
for i in 0 1 2; do
  block="$(awk -v id="trace $trace1" '
      index($0, id) { grab = 1; next }
      grab && /^    / { print; next }
      grab { grab = 0 }' "$workdir/dump$i.txt")"
  if echo "$block" | grep -q "request"; then primary="$i"; fi
  if echo "$block" | grep -q "repl_apply"; then appliers=$((appliers + 1)); fi
done
[ -n "$primary" ] || { echo "trace_smoke: no replica served the solve" >&2; exit 1; }
[ "$appliers" -ge 2 ] || {
  echo "trace_smoke: expected 2 repl_apply records, saw $appliers" >&2
  cat "$workdir"/dump*.txt >&2
  exit 1
}
echo "== trace $trace1: request on node$primary, repl_apply on $appliers peers"

echo "== SIGKILL node$primary, solve again"
kill -KILL "${pids[$primary]}"
survivors=""
for i in 0 1 2; do
  [ "$i" = "$primary" ] && continue
  survivors="${survivors:+$survivors,}127.0.0.1:${ports[$i]}"
done
"$DEMO" --trace-solve "$nodes" --tenant trace-tenant \
    >"$workdir/solve2.txt"
cat "$workdir/solve2.txt"
trace2="$(awk '$1 == "trace" { print $2 }' "$workdir/solve2.txt")"
grep -q "status ok" "$workdir/solve2.txt" \
    || { echo "trace_smoke: post-kill solve not ok" >&2; exit 1; }
grep -q "client_failover" "$workdir/solve2.txt" || {
  echo "trace_smoke: client retained no failover span" >&2
  exit 1
}

# The survivor that answered retained the retried id too.
found=0
for _ in $(seq 1 50); do
  if "$CTL" --nodes "$survivors" --recent 64 | grep -q "trace $trace2"; then
    found=1
    break
  fi
  sleep 0.1
done
[ "$found" = 1 ] || {
  echo "trace_smoke: retried trace $trace2 absent from survivors" >&2
  "$CTL" --nodes "$survivors" --recent 64 >&2 || true
  exit 1
}

echo "trace_smoke: PASS (one id per journey: $trace1 pre-kill, $trace2 across the failover)"
