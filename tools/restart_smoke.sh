#!/usr/bin/env bash
# Restart smoke for the durable result cache: populate a server's cache
# over TCP, SIGKILL it (no graceful shutdown, so only the journal holds
# the entries), restart on the same directory, and require the warmed
# cache to answer the same workload without a single miss.
#
# usage: tools/restart_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/medcc_server"
DEMO="$BUILD_DIR/tools/medcc_serve_demo"
if [ ! -x "$SERVER" ] || [ ! -x "$DEMO" ]; then
  echo "restart_smoke: $SERVER / $DEMO not built" >&2
  exit 2
fi

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then kill -KILL "$server_pid" 2>/dev/null || true; fi
  rm -rf "$workdir"
}
trap cleanup EXIT

# Starts medcc_server on an ephemeral port against the shared cache dir
# and parses the port out of its "listening on" line into $port.
start_server() { # $1 = log file
  "$SERVER" --port 0 --threads 2 --io-threads 2 --cache-dir "$workdir/cache" \
            --snapshot-interval 300 >"$1" 2>&1 &
  server_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -nE 's/^medcc_server listening on .*:([0-9]+) .*persist on.*/\1/p' "$1")"
    if [ -n "$port" ]; then return 0; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then break; fi
    sleep 0.1
  done
  echo "restart_smoke: server did not come up; log:" >&2
  cat "$1" >&2
  exit 1
}

metric() { # $1 = stats dump, $2 = metric name; -1 when absent
  awk -v m="$2" '$1 == m { print $2; found = 1 } END { if (!found) print -1 }' "$1"
}

echo "== leg 1: cold server, populate the cache over TCP"
start_server "$workdir/server1.log"
"$DEMO" --connect "127.0.0.1:$port" >"$workdir/demo1.log"

echo "== SIGKILL the server mid-flight (journal only, no final snapshot)"
kill -KILL "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== leg 2: warm restart on the same --cache-dir"
start_server "$workdir/server2.log"
"$DEMO" --connect "127.0.0.1:$port" --stats >"$workdir/stats_boot.txt"
loaded="$(metric "$workdir/stats_boot.txt" persist_loaded_entries)"
if [ "$loaded" -lt 1 ]; then
  echo "restart_smoke: FAIL: persist_loaded_entries=$loaded after restart" >&2
  cat "$workdir/stats_boot.txt" >&2
  exit 1
fi

"$DEMO" --connect "127.0.0.1:$port" >"$workdir/demo2.log"
"$DEMO" --connect "127.0.0.1:$port" --stats >"$workdir/stats_after.txt"
misses="$(metric "$workdir/stats_after.txt" cache_misses)"
hits="$(metric "$workdir/stats_after.txt" cache_hits_exact)"
if [ "$misses" -ne 0 ] || [ "$hits" -lt 1 ]; then
  echo "restart_smoke: FAIL: cache_misses=$misses cache_hits_exact=$hits" >&2
  cat "$workdir/stats_after.txt" >&2
  exit 1
fi

kill -KILL "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "restart_smoke: OK (persist_loaded_entries=$loaded, cache_hits_exact=$hits, cache_misses=0)"
