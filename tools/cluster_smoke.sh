#!/usr/bin/env bash
# Cluster smoke for the replicated serving tier: boot three
# medcc_server replicas wired to each other with --peers, populate one
# replica's cache over TCP, wait for replication to settle (every peer
# channel connected at protocol v2, sent == acked, queue drained),
# SIGKILL the populated replica, and require a surviving replica to
# answer the same workload entirely from its replicated cache -- warm
# failover without a single miss.
#
# usage: tools/cluster_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/medcc_server"
DEMO="$BUILD_DIR/tools/medcc_serve_demo"
CTL="$BUILD_DIR/tools/medcc_clusterctl"
if [ ! -x "$SERVER" ] || [ ! -x "$DEMO" ] || [ ! -x "$CTL" ]; then
  echo "cluster_smoke: $SERVER / $DEMO / $CTL not built" >&2
  exit 2
fi

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

metric() { # $1 = stats dump, $2 = metric name; -1 when absent
  awk -v m="$2" '$1 == m { print $2; found = 1 } END { if (!found) print -1 }' "$1"
}

# The replicator's peer list is fixed at boot, so every replica must
# know the others' ports up front -- ephemeral --port 0 cannot work
# here. Pick a random base port and retry the whole boot on a bind
# clash (a replica that cannot bind exits before printing its
# "listening on" banner).
boot_cluster() {
  base=$((RANDOM % 20000 + 30000))
  ports=("$base" "$((base + 1))" "$((base + 2))")
  pids=()
  for i in 0 1 2; do
    peers=""
    for j in 0 1 2; do
      [ "$j" = "$i" ] && continue
      peers="${peers:+$peers,}127.0.0.1:${ports[$j]}"
    done
    "$SERVER" --port "${ports[$i]}" --threads 2 --io-threads 2 \
              --node-id "node$i" --peers "$peers" \
              >"$workdir/server$i.log" 2>&1 &
    pids+=($!)
    disown $!  # keep later SIGKILLs out of the job-control chatter
  done
  for i in 0 1 2; do
    for _ in $(seq 1 100); do
      if grep -q "listening on" "$workdir/server$i.log"; then break; fi
      if ! kill -0 "${pids[$i]}" 2>/dev/null; then return 1; fi
      sleep 0.1
    done
    grep -q "listening on" "$workdir/server$i.log" || return 1
  done
  return 0
}

booted=0
for _ in 1 2 3 4 5; do
  if boot_cluster; then booted=1; break; fi
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null || true
  done
  pids=()
done
if [ "$booted" != 1 ]; then
  echo "cluster_smoke: could not boot 3 replicas; last logs:" >&2
  cat "$workdir"/server*.log >&2 || true
  exit 1
fi
echo "== 3 replicas up on ports ${ports[*]}"

echo "== populate node0's cache over TCP"
"$DEMO" --connect "127.0.0.1:${ports[0]}" >"$workdir/demo0.log"

echo "== wait for replication to settle (v2 connected, sent == acked)"
settled=0
for _ in $(seq 1 100); do
  "$CTL" --nodes "127.0.0.1:${ports[0]}" >"$workdir/ctl.txt" 2>&1 || true
  if awk '
      /^  peer / {
        peers++
        ok = 0
        for (f = 1; f <= NF; ++f) {
          if ($f == "state=connected") state = 1
          if ($f ~ /^sent=/)   { split($f, a, "="); sent = a[2] }
          if ($f ~ /^acked=/)  { split($f, a, "="); acked = a[2] }
          if ($f ~ /^queued=/) { split($f, a, "="); queued = a[2] }
        }
        if (state && sent >= 1 && sent == acked && queued == 0) settled++
        state = 0
      }
      END { exit !(peers == 2 && settled == 2) }' "$workdir/ctl.txt"; then
    settled=1
    break
  fi
  sleep 0.1
done
if [ "$settled" != 1 ]; then
  echo "cluster_smoke: FAIL: replication did not settle; status:" >&2
  cat "$workdir/ctl.txt" >&2
  exit 1
fi
grep -q "protocol v2" "$workdir/ctl.txt" || {
  echo "cluster_smoke: FAIL: no v2 handshake in status output" >&2
  cat "$workdir/ctl.txt" >&2
  exit 1
}

echo "== SIGKILL node0 (the only replica that ever solved anything)"
kill -KILL "${pids[0]}"
wait "${pids[0]}" 2>/dev/null || true
pids[0]=""

echo "== failover: node1 must answer the same workload from its replica cache"
"$DEMO" --connect "127.0.0.1:${ports[1]}" >"$workdir/demo1.log"
"$DEMO" --connect "127.0.0.1:${ports[1]}" --stats >"$workdir/stats1.txt"
misses="$(metric "$workdir/stats1.txt" cache_misses)"
hits="$(metric "$workdir/stats1.txt" cache_hits_exact)"
applied="$(metric "$workdir/stats1.txt" repl_applied)"
if [ "$misses" -ne 0 ] || [ "$hits" -lt 1 ] || [ "$applied" -lt 1 ]; then
  echo "cluster_smoke: FAIL: cache_misses=$misses cache_hits_exact=$hits repl_applied=$applied" >&2
  cat "$workdir/stats1.txt" >&2
  exit 1
fi

echo "== survivor status: node1 sees the dead peer as unhealthy"
"$CTL" --nodes "127.0.0.1:${ports[1]},127.0.0.1:${ports[2]}" \
  >"$workdir/ctl_after.txt" 2>&1 || {
  echo "cluster_smoke: FAIL: survivors unreachable" >&2
  cat "$workdir/ctl_after.txt" >&2
  exit 1
}

echo "cluster_smoke: OK (repl_applied=$applied, cache_hits_exact=$hits, cache_misses=0)"
