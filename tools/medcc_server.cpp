// Stand-alone network front end for the MED-CC scheduling service:
// stands up a SchedulingService, binds the epoll TCP server on top of
// it, prints the chosen endpoint, and runs until SIGINT/SIGTERM, then
// shuts down gracefully (drains in-flight solves, flushes responses)
// and prints the final metrics and transport counters.
//
// Usage: medcc_server [--bind ADDR] [--port P] [--threads N]
//                     [--io-threads N] [--queue N] [--tenant-quota N]
//                     [--idle-timeout MS] [--cache-dir DIR]
//                     [--snapshot-interval S] [--cache-ttl S]
//                     [--max-inflight N] [--peers HOST:PORT,...]
//                     [--node-id NAME] [--trace]
//                     [--trace-sample N] [--trace-slow-ms MS]
//                     [--trace-ring N] [--metrics-dump FORMAT]
//
// With --cache-dir the result cache is durable: the service warm-starts
// from DIR's snapshot + journal (crash-tolerant; torn tails are cut)
// and persists every fresh solve, so a restarted server answers repeat
// requests from the cache instead of re-solving.
//
// With --peers the server becomes one replica of a cluster
// (docs/cluster.md): every locally solved cache entry is pushed to the
// listed peers over the protocol-v2 replication channel, records
// arriving from peers are applied into the local cache, and
// cluster_status requests (tools/medcc_clusterctl) report the
// per-peer replication state.
//
// With --trace the server runs a request tracer
// (docs/observability.md): every request gets a 128-bit trace id,
// 1-in-N requests (--trace-sample) plus every request slower than
// --trace-slow-ms keep a full span tree in a bounded ring
// (--trace-ring), and tools/medcc_tracectl reads it all back over the
// trace_dump admin frame. --metrics-dump FORMAT (text, csv, or
// prometheus) prints a final metrics exposition in that format at
// shutdown in place of the default text dump.
#include <csignal>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/replicator.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "util/flags.hpp"

namespace {

constexpr const char* kUsage =
    "usage: medcc_server [--bind ADDR] [--port P] [--threads N] "
    "[--io-threads N] [--queue N] [--tenant-quota N] [--idle-timeout MS] "
    "[--cache-dir DIR] [--snapshot-interval S] [--cache-ttl S] "
    "[--max-inflight N] [--peers HOST:PORT,...] [--node-id NAME] "
    "[--trace] [--trace-sample N] [--trace-slow-ms MS] [--trace-ring N] "
    "[--metrics-dump text|csv|prometheus]\n";

}  // namespace

int main(int argc, char** argv) {
  medcc::service::ServiceConfig service_config;
  medcc::net::ServerConfig server_config;
  std::vector<medcc::net::Endpoint> peers;
  bool tracing = false;
  medcc::obs::Tracer::Config tracer_config;
  std::string metrics_dump = "text";
  // Numeric parsing throws on junk or out-of-range values; answer with
  // the usage string instead of an uncaught-exception abort.
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--bind" && i + 1 < argc) {
        server_config.bind_address = argv[++i];
      } else if (arg == "--port" && i + 1 < argc) {
        server_config.port = medcc::util::parse_flag_port(argv[++i]);
      } else if (arg == "--threads" && i + 1 < argc) {
        service_config.threads = medcc::util::parse_flag_size(argv[++i]);
      } else if (arg == "--io-threads" && i + 1 < argc) {
        // 0 means one reactor per hardware thread.
        server_config.io_threads = medcc::util::parse_flag_size(argv[++i]);
      } else if (arg == "--queue" && i + 1 < argc) {
        service_config.queue_capacity = medcc::util::parse_flag_size(argv[++i]);
      } else if (arg == "--tenant-quota" && i + 1 < argc) {
        service_config.max_inflight_per_tenant =
            medcc::util::parse_flag_size(argv[++i]);
      } else if (arg == "--idle-timeout" && i + 1 < argc) {
        server_config.idle_timeout_ms =
            medcc::util::parse_flag_double(argv[++i]);
      } else if (arg == "--cache-dir" && i + 1 < argc) {
        service_config.cache_dir = argv[++i];
      } else if (arg == "--snapshot-interval" && i + 1 < argc) {
        service_config.snapshot_interval_s =
            medcc::util::parse_flag_double(argv[++i]);
      } else if (arg == "--cache-ttl" && i + 1 < argc) {
        service_config.cache_ttl_s = static_cast<std::int64_t>(
            medcc::util::parse_flag_size(argv[++i]));
      } else if (arg == "--max-inflight" && i + 1 < argc) {
        server_config.max_inflight_frames =
            medcc::util::parse_flag_size(argv[++i]);
      } else if (arg == "--peers" && i + 1 < argc) {
        peers = medcc::cluster::parse_peer_list(argv[++i]);
      } else if (arg == "--node-id" && i + 1 < argc) {
        server_config.node_id = argv[++i];
      } else if (arg == "--trace") {
        tracing = true;
      } else if (arg == "--trace-sample" && i + 1 < argc) {
        tracing = true;
        tracer_config.sample_every = static_cast<std::uint32_t>(
            medcc::util::parse_flag_size(argv[++i]));
      } else if (arg == "--trace-slow-ms" && i + 1 < argc) {
        tracing = true;
        tracer_config.slow_ms = medcc::util::parse_flag_double(argv[++i]);
      } else if (arg == "--trace-ring" && i + 1 < argc) {
        tracing = true;
        tracer_config.ring_capacity = medcc::util::parse_flag_size(argv[++i]);
      } else if (arg == "--metrics-dump" && i + 1 < argc) {
        metrics_dump = argv[++i];
        if (metrics_dump != "text" && metrics_dump != "csv" &&
            metrics_dump != "prometheus")
          throw std::invalid_argument("bad --metrics-dump format '" +
                                      metrics_dump + "'");
      } else {
        std::cerr << kUsage;
        return 2;
      }
    }
  } catch (const std::exception& ex) {
    std::cerr << "medcc_server: " << ex.what() << "\n" << kUsage;
    return 2;
  }

  // Block the shutdown signals before any thread is spawned so the
  // service workers and the server IO thread inherit the mask and the
  // signals are delivered only to sigwait below.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    std::cerr << "medcc_server: cannot set signal mask\n";
    return 1;
  }

  try {
    // Construction order is the wiring order: the tracer and the
    // replicator exist before the service (whose hooks record into /
    // publish into them) and the service before the server (whose
    // hooks call into it); destruction unwinds the reverse way, so
    // nothing dangles.
    std::unique_ptr<medcc::obs::Tracer> tracer;
    if (tracing) {
      tracer = std::make_unique<medcc::obs::Tracer>(tracer_config);
      service_config.tracer = tracer.get();
      server_config.tracer = tracer.get();
    }
    std::unique_ptr<medcc::cluster::Replicator> replicator;
    if (!peers.empty()) {
      medcc::cluster::ClusterConfig cluster_config;
      cluster_config.node_id = server_config.node_id;
      cluster_config.peers = peers;
      replicator =
          std::make_unique<medcc::cluster::Replicator>(cluster_config);
      service_config.on_cache_insert =
          [repl = replicator.get()](std::string payload,
                                    medcc::obs::TraceContext trace) {
            repl->publish(payload, trace);
          };
    }

    medcc::service::SchedulingService service(service_config);

    server_config.repl_apply =
        [&service](std::string_view payload) {
          return service.apply_replicated_record(payload);
        };
    server_config.cluster_status =
        [&service, repl = replicator.get(),
         node_id = server_config.node_id]() {
          medcc::net::ClusterStatus status;
          if (repl != nullptr) status = repl->status();
          status.node_id = node_id;
          const auto snapshot = service.metrics().snapshot();
          status.repl_applied = snapshot.repl_applied;
          status.repl_apply_errors = snapshot.repl_apply_errors;
          return status;
        };

    medcc::net::Server server(service, server_config);
    if (replicator != nullptr) replicator->start();
    std::cout << "medcc_server listening on " << server_config.bind_address
              << ":" << server.port() << " (" << service.thread_count()
              << " workers, " << server.reactor_count() << " reactors, cache "
              << (service.cache_enabled() ? "on" : "off")
              << ", persist "
              << (service.persistence_enabled() ? "on" : "off")
              << ", peers " << peers.size()
              << ", trace " << (tracing ? "on" : "off") << ")"
              << std::endl;

    int signal = 0;
    if (sigwait(&mask, &signal) != 0) {
      std::cerr << "medcc_server: sigwait failed\n";
      return 1;
    }
    std::cout << "medcc_server: caught signal " << signal
              << ", draining..." << std::endl;
    server.stop();
    if (replicator != nullptr) replicator->stop();
    service.drain();

    const auto wire = server.counters();
    std::cout << "--- transport ---\n"
              << "connections_accepted " << wire.connections_accepted << "\n"
              << "frames_in " << wire.frames_in << "\n"
              << "frames_out " << wire.frames_out << "\n"
              << "protocol_errors " << wire.protocol_errors << "\n"
              << "idle_closed " << wire.idle_closed << "\n"
              << "dropped_responses " << wire.dropped_responses << "\n"
              << "backpressure_paused " << wire.backpressure_paused << "\n"
              << "flow_control_rejects " << wire.flow_control_rejects << "\n"
              << "hellos " << wire.hellos << "\n"
              << "repl_records_in " << wire.repl_records_in << "\n"
              << "traced_solves " << wire.traced_solves << "\n"
              << "trace_dumps " << wire.trace_dumps << "\n"
              << "--- metrics ---\n"
              << (metrics_dump == "prometheus"
                      ? service.metrics().dump_prometheus()
                      : metrics_dump == "csv" ? service.metrics().dump_csv()
                                              : service.metrics().dump_text());
  } catch (const std::exception& ex) {
    std::cerr << "medcc_server: " << ex.what() << "\n";
    return 1;
  }
  return 0;
}
