#include "sim/engine.hpp"

#include <limits>
#include <utility>

namespace medcc::sim {

void SimEngine::schedule_in(SimTime delay, Handler handler) {
  if (delay < 0.0) throw InvalidArgument("SimEngine: negative delay");
  schedule_at(now_ + delay, std::move(handler));
}

void SimEngine::schedule_at(SimTime at, Handler handler) {
  MEDCC_EXPECTS(handler != nullptr);
  if (at < now_ - 1e-12)
    throw InvalidArgument("SimEngine: event scheduled in the past");
  queue_.push(Event{at, next_seq_++, std::move(handler)});
}

SimTime SimEngine::run() {
  return run(std::numeric_limits<std::size_t>::max());
}

SimTime SimEngine::run(std::size_t limit) {
  while (!queue_.empty()) {
    if (processed_ >= limit)
      throw Error("SimEngine: event limit exceeded (runaway simulation?)");
    // priority_queue::top returns const&; move out via const_cast-free copy
    // of the handler after popping the bookkeeping fields.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.handler();
  }
  return now_;
}

}  // namespace medcc::sim
