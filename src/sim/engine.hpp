// A minimal discrete-event simulation kernel (the CloudSim substitute's
// core): a time-ordered event queue with deterministic FIFO ordering for
// simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace medcc::sim {

using SimTime = double;

/// Event-driven simulation engine. Events are callbacks scheduled at
/// absolute times; run() drains the queue in (time, insertion order).
class SimEngine {
public:
  using Handler = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t events_processed() const { return processed_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Schedules `handler` to fire `delay >= 0` after the current time.
  void schedule_in(SimTime delay, Handler handler);

  /// Schedules `handler` at absolute time `at >= now()`.
  void schedule_at(SimTime at, Handler handler);

  /// Processes events until the queue drains. Returns the final time.
  SimTime run();

  /// Processes events until the queue drains or `limit` events fire;
  /// throws Error at the limit (runaway guard).
  SimTime run(std::size_t limit);

private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      // Exact ordering of event timestamps; ties fall through to seq.
      if (a.time != b.time) return a.time > b.time;  // medcc-lint: allow(float-eq)
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace medcc::sim
