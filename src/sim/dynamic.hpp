// Online (dynamic) workflow execution: instead of the paper's static
// schedule computed up front, modules are placed when they become ready --
// the mode of operation of dynamic schedulers in the related work (e.g.
// the dynamic critical-path algorithm of Rahman et al.). Each placement
// decision weighs running on an already-provisioned idle VM against
// spawning a fresh VM of some type, under a running budget commitment.
//
// This gives the simulator a second operating mode and lets the benches
// quantify what the paper's static, whole-DAG knowledge is worth.
#pragma once

#include "sched/instance.hpp"
#include "sim/datacenter.hpp"

namespace medcc::sim {

enum class DynamicPolicy {
  /// Minimize the module's finish time among affordable placements
  /// (ties -> cheaper). Falls back to the cheapest placement when nothing
  /// faster is affordable.
  MinFinishTime,
  /// Always take the cheapest placement (greedy frugality).
  CheapestFirst,
};

struct DynamicOptions {
  double budget = std::numeric_limits<double>::infinity();
  DynamicPolicy policy = DynamicPolicy::MinFinishTime;
  SimTime vm_boot_time = 0.0;
  /// Stop idle VMs whose idle time would exceed one billing quantum
  /// (otherwise they are kept hot until the run ends).
  bool stop_idle_vms = true;
};

struct DynamicDecision {
  sched::NodeId module = 0;
  std::size_t vm = 0;       ///< index into DynamicReport::vm_types
  bool spawned = false;     ///< true when a fresh VM was provisioned
  SimTime start = 0.0;
  SimTime finish = 0.0;
};

struct DynamicReport {
  SimTime makespan = 0.0;
  double billed_cost = 0.0;
  std::vector<std::size_t> vm_types;  ///< type of each provisioned VM
  std::vector<DynamicDecision> decisions;
  Trace trace;
};

/// Executes the workflow online. Throws Infeasible when the budget cannot
/// cover even the per-module cheapest placements.
[[nodiscard]] DynamicReport dynamic_execute(const sched::Instance& inst,
                                            const DynamicOptions& options = {});

}  // namespace medcc::sim
