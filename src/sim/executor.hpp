// The workflow execution broker: runs a scheduled workflow through the
// event-driven cloud simulator, enforcing DAG precedence, shared-storage
// data transfers (Eq. 5), VM boot latency and instance-quantum billing.
// Used to *validate* analytic schedules: with zero boot time and
// instantaneous transfers the simulated makespan equals the analytic MED,
// and with VM reuse the billed cost never exceeds the analytic CTotal.
#pragma once

#include "sched/schedule.hpp"
#include "sched/vm_reuse.hpp"
#include "sim/datacenter.hpp"

namespace medcc::sim {

/// When a planned VM is requested from the datacenter.
enum class Provisioning {
  /// At the moment the VM's first module has all inputs available. Uptime
  /// equals busy time, so billed cost matches the paper's analytic
  /// C(E_ij) model exactly (boot latency then delays module starts).
  JustInTime,
  /// All VMs at t=0 ("we can always launch the VMs in advance", Section
  /// VI-C): boot latency hides under upstream work, but idle wait before
  /// the first module is billed.
  UpFront,
};

/// VM crash injection: each module execution samples an exponential
/// time-to-failure for its VM; a failure aborts the run, the failed VM is
/// stopped (its uptime is still billed), a replacement is provisioned and
/// the module restarts from scratch.
struct FailureModel {
  /// Mean time between failures per running VM; 0 disables injection.
  double mtbf = 0.0;
  std::uint64_t seed = 1;
  /// Abort the simulation (throws Error) when one module fails this often.
  std::size_t max_retries_per_module = 16;
};

struct ExecutorOptions {
  DatacenterConfig datacenter;
  /// Share one VM among sequential same-type modules (Section V-B).
  bool reuse_vms = false;
  Provisioning provisioning = Provisioning::JustInTime;
  /// When positive, data transfers share this aggregate storage bandwidth
  /// max-min fairly (processor sharing) instead of using the instance's
  /// fixed per-edge times.
  double shared_storage_bandwidth = 0.0;
  FailureModel failures;
};

/// Per-module timing observed in simulation.
struct ModuleTiming {
  SimTime start = 0.0;
  SimTime finish = 0.0;
  /// VM index in the report's vm list; SIZE_MAX for fixed modules.
  std::size_t vm = static_cast<std::size_t>(-1);
};

struct VmUsage {
  std::size_t type = 0;
  SimTime boot_start = 0.0;
  SimTime stopped = 0.0;
  double billed_cost = 0.0;
  std::vector<sched::NodeId> modules;
};

struct Report {
  SimTime makespan = 0.0;
  double billed_cost = 0.0;       ///< quantum-billed VM uptime cost
  double analytic_med = 0.0;      ///< evaluate() on the same schedule
  double analytic_cost = 0.0;
  std::size_t vm_failures = 0;    ///< injected crashes recovered from
  std::vector<ModuleTiming> modules;
  std::vector<VmUsage> vms;
  Trace trace;
};

/// Executes `schedule` on `inst` in simulated time.
[[nodiscard]] Report execute(const sched::Instance& inst,
                             const sched::Schedule& schedule,
                             const ExecutorOptions& options = {});

}  // namespace medcc::sim
