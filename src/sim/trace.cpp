#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace medcc::sim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::VmRequested: return "VM_REQUESTED";
    case TraceKind::VmBooted: return "VM_BOOTED";
    case TraceKind::VmStopped: return "VM_STOPPED";
    case TraceKind::VmFailed: return "VM_FAILED";
    case TraceKind::TransferStart: return "TRANSFER_START";
    case TraceKind::TransferDone: return "TRANSFER_DONE";
    case TraceKind::ModuleStart: return "MODULE_START";
    case TraceKind::ModuleDone: return "MODULE_DONE";
  }
  return "?";
}

std::size_t Trace::count(TraceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const TraceRecord& r) { return r.kind == kind; }));
}

std::string Trace::render() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  for (const auto& r : records_) {
    os << '[' << r.time << "] " << to_string(r.kind) << " #" << r.subject;
    if (!r.detail.empty()) os << " (" << r.detail << ')';
    os << '\n';
  }
  return os.str();
}

}  // namespace medcc::sim
