#include "sim/bandwidth.hpp"

#include <algorithm>
#include <limits>

namespace medcc::sim {

SharedBandwidth::SharedBandwidth(SimEngine& engine,
                                 double aggregate_bandwidth)
    : engine_(engine), bandwidth_(aggregate_bandwidth) {
  if (aggregate_bandwidth <= 0.0)
    throw InvalidArgument("SharedBandwidth: bandwidth must be positive");
}

std::size_t SharedBandwidth::active_transfers() const {
  return static_cast<std::size_t>(
      std::count_if(transfers_.begin(), transfers_.end(),
                    [](const Transfer& t) { return !t.done; }));
}

double SharedBandwidth::current_rate() const {
  const auto active = active_transfers();
  return active == 0 ? 0.0 : bandwidth_ / static_cast<double>(active);
}

void SharedBandwidth::start_transfer(double data,
                                     std::function<void()> on_done) {
  MEDCC_EXPECTS(on_done != nullptr);
  if (data < 0.0) throw InvalidArgument("SharedBandwidth: negative data");
  if (data == 0.0) {
    engine_.schedule_in(0.0, std::move(on_done));
    return;
  }
  // Account progress of the existing transfers up to now first.
  apply_progress();
  transfers_.push_back(Transfer{data, std::move(on_done), false});
  recompute();
}

void SharedBandwidth::apply_progress() {
  const double elapsed = engine_.now() - last_update_;
  last_update_ = engine_.now();
  if (elapsed <= 0.0) return;
  const double rate = current_rate();
  if (rate <= 0.0) return;
  for (auto& t : transfers_)
    if (!t.done) t.remaining -= rate * elapsed;
}

void SharedBandwidth::recompute() {
  apply_progress();

  // Fire everything that has (numerically) finished.
  for (auto& t : transfers_) {
    if (!t.done && t.remaining <= 1e-12) {
      t.done = true;
      auto cb = std::move(t.on_done);
      engine_.schedule_in(0.0, std::move(cb));
    }
  }

  const double rate = current_rate();
  if (rate <= 0.0) return;
  double next = std::numeric_limits<double>::infinity();
  for (const auto& t : transfers_)
    if (!t.done) next = std::min(next, t.remaining / rate);
  const std::uint64_t stamp = ++version_;
  engine_.schedule_in(next, [this, stamp] {
    if (stamp != version_) return;  // superseded by a newer recompute
    recompute();
  });
}

}  // namespace medcc::sim
