#include "sim/datacenter.hpp"

namespace medcc::sim {

Datacenter::Datacenter(SimEngine& engine, Trace& trace,
                       DatacenterConfig config,
                       const cloud::VmCatalog& catalog)
    : engine_(engine),
      trace_(trace),
      config_(std::move(config)),
      catalog_(catalog) {
  free_capacity_.reserve(config_.hosts.size());
  for (const auto& host : config_.hosts) {
    if (host.capacity <= 0.0)
      throw InvalidArgument("Datacenter: host capacity must be positive");
    free_capacity_.push_back(host.capacity);
  }
}

std::size_t Datacenter::request_vm(std::size_t type,
                                   std::function<void()> on_ready) {
  MEDCC_EXPECTS(type < catalog_.size());
  MEDCC_EXPECTS(on_ready != nullptr);
  VmRecord record;
  record.type = type;
  record.requested = engine_.now();
  record.on_ready = std::move(on_ready);
  vms_.push_back(std::move(record));
  const std::size_t id = vms_.size() - 1;
  trace_.record(engine_.now(), TraceKind::VmRequested, id,
                catalog_.type(type).name);
  if (!try_boot(id)) waiting_.push_back(id);
  return id;
}

bool Datacenter::try_boot(std::size_t vm) {
  auto& record = vms_[vm];
  MEDCC_EXPECTS(record.state == VmState::Requested);
  if (bounded()) {
    const double need = catalog_.type(record.type).processing_power;
    std::size_t placed = free_capacity_.size();
    for (std::size_t h = 0; h < free_capacity_.size(); ++h) {
      if (free_capacity_[h] + 1e-12 >= need) {
        placed = h;
        break;
      }
    }
    if (placed == free_capacity_.size()) return false;
    free_capacity_[placed] -= need;
    record.host = placed;
  }
  record.state = VmState::Booting;
  record.boot_started = engine_.now();
  engine_.schedule_in(config_.vm_boot_time, [this, vm] {
    auto& r = vms_[vm];
    r.state = VmState::Ready;
    r.ready = engine_.now();
    trace_.record(engine_.now(), TraceKind::VmBooted, vm);
    if (r.on_ready) {
      auto cb = std::move(r.on_ready);
      r.on_ready = nullptr;
      cb();
    }
  });
  return true;
}

void Datacenter::stop_vm(std::size_t vm) {
  MEDCC_EXPECTS(vm < vms_.size());
  auto& record = vms_[vm];
  MEDCC_EXPECTS(record.state == VmState::Ready);
  record.state = VmState::Stopped;
  record.stopped = engine_.now();
  trace_.record(engine_.now(), TraceKind::VmStopped, vm);
  if (bounded() && record.host.has_value()) {
    free_capacity_[*record.host] +=
        catalog_.type(record.type).processing_power;
    // Wake queued requests that now fit (FIFO with skips).
    for (auto it = waiting_.begin(); it != waiting_.end();) {
      if (try_boot(*it))
        it = waiting_.erase(it);
      else
        ++it;
    }
  }
}

VmState Datacenter::state(std::size_t vm) const {
  MEDCC_EXPECTS(vm < vms_.size());
  return vms_[vm].state;
}

std::optional<std::size_t> Datacenter::host_of(std::size_t vm) const {
  MEDCC_EXPECTS(vm < vms_.size());
  return vms_[vm].host;
}

SimTime Datacenter::boot_start(std::size_t vm) const {
  MEDCC_EXPECTS(vm < vms_.size());
  return vms_[vm].boot_started;
}

SimTime Datacenter::ready_at(std::size_t vm) const {
  MEDCC_EXPECTS(vm < vms_.size());
  return vms_[vm].ready;
}

SimTime Datacenter::stopped_at(std::size_t vm) const {
  MEDCC_EXPECTS(vm < vms_.size());
  return vms_[vm].stopped;
}

}  // namespace medcc::sim
