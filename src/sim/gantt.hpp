// ASCII Gantt rendering of a simulation Report: one lane per VM (plus one
// for the fixed entry/exit stages), module bars across simulated time --
// the at-a-glance view of where the makespan goes.
#pragma once

#include <string>

#include "sim/executor.hpp"

namespace medcc::sim {

struct GanttOptions {
  std::size_t width = 72;  ///< columns for the time axis
  /// Label bars with module names when they fit (else first letter).
  bool label_bars = true;
};

/// Renders the report's module timings as a Gantt chart. `inst` supplies
/// names and the VM catalog for lane labels.
[[nodiscard]] std::string gantt(const sched::Instance& inst,
                                const Report& report,
                                const GanttOptions& options = {});

}  // namespace medcc::sim
