// Processor-sharing transfer scheduling: the paper's Eq. 5 gives each
// transfer a private bandwidth, but a real shared storage system divides
// its aggregate bandwidth among concurrent transfers. This manager models
// max-min fair (equal-share) progress: with k active transfers each
// proceeds at BW/k, and rates are recomputed whenever a transfer starts or
// finishes. Completion events carry a version stamp so stale events
// (scheduled before a rate change) are ignored.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace medcc::sim {

/// Shares `aggregate_bandwidth` equally among active transfers.
class SharedBandwidth {
public:
  SharedBandwidth(SimEngine& engine, double aggregate_bandwidth);

  /// Starts a transfer of `data` units; `on_done` fires at completion.
  /// Zero-size transfers complete via a zero-delay event.
  void start_transfer(double data, std::function<void()> on_done);

  [[nodiscard]] std::size_t active_transfers() const;
  [[nodiscard]] double bandwidth() const { return bandwidth_; }

private:
  struct Transfer {
    double remaining = 0.0;
    std::function<void()> on_done;
    bool done = false;
  };

  /// Applies progress since the last recompute, then schedules a fresh
  /// completion event for the transfer finishing next.
  void recompute();
  /// Advances every active transfer by (now - last_update) * rate.
  void apply_progress();
  [[nodiscard]] double current_rate() const;

  SimEngine& engine_;
  double bandwidth_;
  std::vector<Transfer> transfers_;
  SimTime last_update_ = 0.0;
  std::uint64_t version_ = 0;
};

}  // namespace medcc::sim
