#include "sim/dynamic.hpp"

#include <algorithm>
#include <limits>

namespace medcc::sim {
namespace {

struct FleetVm {
  std::size_t type = 0;
  SimTime up_start = 0.0;     ///< spawn time (boot included in the span)
  SimTime busy_until = 0.0;   ///< end of the last placed execution
};

struct DynState {
  const sched::Instance* inst = nullptr;
  const DynamicOptions* options = nullptr;
  SimEngine engine;
  Trace trace;
  std::vector<FleetVm> fleet;
  std::vector<std::size_t> pending_inputs;
  std::vector<bool> finished;
  std::size_t finished_count = 0;
  double spent = 0.0;    ///< committed billed cost of the fleet so far
  double reserve = 0.0;  ///< sum of cheapest placements of unplaced modules
  std::vector<double> cheapest_cost;  ///< per module, spawn-cheapest
  DynamicReport report;

  [[nodiscard]] double billed(double span) const {
    return span <= 0.0 ? 0.0 : inst->billing().billed_time(span);
  }
  [[nodiscard]] double rate(std::size_t type) const {
    return inst->catalog().type(type).cost_rate;
  }

  /// Places ready module m per the policy and schedules its completion.
  void place(sched::NodeId m) {
    const auto& mod = inst->workflow().module(m);
    if (mod.is_fixed()) {
      const SimTime finish = engine.now() + *mod.fixed_time;
      trace.record(engine.now(), TraceKind::ModuleStart, m, mod.name);
      engine.schedule_at(finish, [this, m] { complete(m); });
      return;
    }

    struct Candidate {
      bool spawn = false;
      std::size_t vm = 0;    ///< fleet index (reuse) or type (spawn)
      SimTime start = 0.0;
      SimTime finish = 0.0;
      double delta = 0.0;    ///< incremental billed cost
    };
    std::vector<Candidate> candidates;
    // Reuse an existing VM: wait until it frees, extend its billed span.
    for (std::size_t v = 0; v < fleet.size(); ++v) {
      const auto& vm = fleet[v];
      const double t = inst->time(m, vm.type);
      const SimTime start = std::max(engine.now(), vm.busy_until);
      const SimTime finish = start + t;
      const double delta =
          (billed(finish - vm.up_start) - billed(vm.busy_until - vm.up_start)) *
          rate(vm.type);
      candidates.push_back(Candidate{false, v, start, finish, delta});
    }
    // Spawn a fresh VM of any type.
    for (std::size_t j = 0; j < inst->type_count(); ++j) {
      const double t = inst->time(m, j);
      const SimTime start = engine.now() + options->vm_boot_time;
      const SimTime finish = start + t;
      const double delta =
          billed(finish - engine.now()) * rate(j);
      candidates.push_back(Candidate{true, j, start, finish, delta});
    }

    // Budget guard: a placement is admissible when, after paying its
    // delta, the remaining budget still covers the cheapest placement of
    // every module not yet placed (so later modules can always fall back).
    reserve -= cheapest_cost[m];
    const auto admissible = [&](const Candidate& c) {
      return spent + c.delta + reserve <= options->budget + 1e-9;
    };

    const Candidate* chosen = nullptr;
    for (const auto& c : candidates) {
      if (!admissible(c)) continue;
      if (chosen == nullptr) {
        chosen = &c;
        continue;
      }
      bool better;
      if (options->policy == DynamicPolicy::CheapestFirst) {
        better = c.delta < chosen->delta - 1e-12 ||
                 (std::abs(c.delta - chosen->delta) <= 1e-12 &&
                  c.finish < chosen->finish - 1e-12);
      } else {
        better = c.finish < chosen->finish - 1e-12 ||
                 (std::abs(c.finish - chosen->finish) <= 1e-12 &&
                  c.delta < chosen->delta - 1e-12);
      }
      if (better) chosen = &c;
    }
    if (chosen == nullptr)
      throw Infeasible(
          "dynamic_execute: no placement fits the remaining budget");

    std::size_t fleet_index;
    if (chosen->spawn) {
      fleet.push_back(
          FleetVm{chosen->vm, engine.now(), chosen->finish});
      fleet_index = fleet.size() - 1;
      report.vm_types.push_back(chosen->vm);
      trace.record(engine.now(), TraceKind::VmRequested, fleet_index,
                   inst->catalog().type(chosen->vm).name);
    } else {
      fleet_index = chosen->vm;
      fleet[fleet_index].busy_until = chosen->finish;
    }
    spent += chosen->delta;
    trace.record(engine.now(), TraceKind::ModuleStart, m, mod.name);
    report.decisions.push_back(DynamicDecision{
        m, fleet_index, chosen->spawn, chosen->start, chosen->finish});
    engine.schedule_at(chosen->finish, [this, m] { complete(m); });
  }

  void complete(sched::NodeId m) {
    finished[m] = true;
    ++finished_count;
    trace.record(engine.now(), TraceKind::ModuleDone, m,
                 inst->workflow().module(m).name);
    report.makespan = std::max(report.makespan, engine.now());
    const auto& graph = inst->workflow().graph();
    for (dag::EdgeId e : graph.out_edges(m)) {
      const sched::NodeId dst = graph.edge(e).dst;
      engine.schedule_in(inst->edge_time(e), [this, dst] {
        MEDCC_EXPECTS(pending_inputs[dst] > 0);
        if (--pending_inputs[dst] == 0) place(dst);
      });
    }
  }
};

}  // namespace

DynamicReport dynamic_execute(const sched::Instance& inst,
                              const DynamicOptions& options) {
  inst.workflow().ensure_valid();
  if (options.vm_boot_time < 0.0)
    throw InvalidArgument("dynamic_execute: negative boot time");

  DynState st;
  st.inst = &inst;
  st.options = &options;
  const std::size_t m = inst.module_count();
  st.pending_inputs.assign(m, 0);
  st.finished.assign(m, false);
  st.cheapest_cost.assign(m, 0.0);
  for (sched::NodeId v = 0; v < m; ++v) {
    st.pending_inputs[v] = inst.workflow().graph().in_degree(v);
    if (!inst.workflow().module(v).is_fixed()) {
      double cheapest = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        cheapest = std::min(
            cheapest, st.billed(options.vm_boot_time + inst.time(v, j)) *
                          st.rate(j));
      }
      st.cheapest_cost[v] = cheapest;
      st.reserve += cheapest;
    }
  }
  if (st.reserve > options.budget + 1e-9)
    throw Infeasible(
        "dynamic_execute: budget below the sum of cheapest placements");

  for (sched::NodeId v = 0; v < m; ++v)
    if (st.pending_inputs[v] == 0) st.place(v);
  st.engine.run(10'000'000);

  if (st.finished_count != m)
    throw Error("dynamic_execute: stalled before completing all modules");

  st.report.billed_cost = 0.0;
  for (const auto& vm : st.fleet)
    st.report.billed_cost +=
        st.billed(vm.busy_until - vm.up_start) * st.rate(vm.type);
  if (!options.stop_idle_vms) {
    // Keep-hot accounting: every VM bills until the run ends.
    st.report.billed_cost = 0.0;
    for (const auto& vm : st.fleet)
      st.report.billed_cost +=
          st.billed(st.report.makespan - vm.up_start) * st.rate(vm.type);
  }
  st.report.trace = std::move(st.trace);
  return st.report;
}

}  // namespace medcc::sim
