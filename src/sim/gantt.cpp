#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

namespace medcc::sim {

std::string gantt(const sched::Instance& inst, const Report& report,
                  const GanttOptions& options) {
  MEDCC_EXPECTS(options.width >= 10);
  const auto& wf = inst.workflow();
  const double horizon = std::max(report.makespan, 1e-12);

  const auto to_col = [&](double t) {
    auto col = static_cast<std::ptrdiff_t>(
        t / horizon * static_cast<double>(options.width - 1));
    return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        col, 0, static_cast<std::ptrdiff_t>(options.width) - 1));
  };

  // Lane labels: one per VM, plus a trailing lane for fixed modules.
  std::vector<std::string> labels;
  labels.reserve(report.vms.size() + 1);
  for (std::size_t v = 0; v < report.vms.size(); ++v)
    labels.push_back("vm" + std::to_string(v) + " (" +
                     inst.catalog().type(report.vms[v].type).name + ")");
  labels.push_back("staging");
  std::size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());

  std::vector<std::string> lanes(labels.size(),
                                 std::string(options.width, ' '));
  for (sched::NodeId m = 0; m < wf.module_count(); ++m) {
    const auto& timing = report.modules[m];
    const std::size_t lane = timing.vm == static_cast<std::size_t>(-1)
                                 ? lanes.size() - 1
                                 : timing.vm;
    const std::size_t a = to_col(timing.start);
    const std::size_t b = std::max(a, to_col(timing.finish));
    for (std::size_t c = a; c <= b; ++c) lanes[lane][c] = '=';
    if (options.label_bars) {
      const auto& name = wf.module(m).name;
      const std::size_t span = b - a + 1;
      const std::string text =
          span >= name.size() + 2 ? name : name.substr(0, 1);
      const std::size_t at = a + (span - std::min(span, text.size())) / 2;
      for (std::size_t k = 0; k < text.size() && at + k <= b; ++k)
        lanes[lane][at + k] = text[k];
    }
  }

  std::ostringstream os;
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    os << labels[lane]
       << std::string(label_width - labels[lane].size(), ' ') << " |"
       << lanes[lane] << "|\n";
  }
  os << std::string(label_width + 1, ' ') << '0'
     << std::string(options.width - 2, ' ') << util::fmt(horizon, 1) << '\n';
  return os.str();
}

}  // namespace medcc::sim
