// Structured execution traces emitted by the cloud simulator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace medcc::sim {

enum class TraceKind {
  VmRequested,
  VmBooted,
  VmStopped,
  VmFailed,
  TransferStart,
  TransferDone,
  ModuleStart,
  ModuleDone,
};

[[nodiscard]] const char* to_string(TraceKind kind);

struct TraceRecord {
  SimTime time = 0.0;
  TraceKind kind = TraceKind::ModuleStart;
  /// Module id, VM id, or edge id depending on `kind`.
  std::size_t subject = 0;
  std::string detail;
};

/// Append-only trace; renderable for debugging and assertable in tests.
class Trace {
public:
  void record(SimTime time, TraceKind kind, std::size_t subject,
              std::string detail = {}) {
    records_.push_back(TraceRecord{time, kind, subject, std::move(detail)});
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t count(TraceKind kind) const;

  /// Human-readable rendering, one record per line.
  [[nodiscard]] std::string render() const;

private:
  std::vector<TraceRecord> records_;
};

}  // namespace medcc::sim
