#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "sim/bandwidth.hpp"
#include "util/prng.hpp"

namespace medcc::sim {
namespace {

constexpr std::size_t kNoVm = static_cast<std::size_t>(-1);

/// Mutable execution state shared by the event handlers.
struct ExecState {
  const sched::Instance* inst = nullptr;
  const sched::Schedule* schedule = nullptr;
  const ExecutorOptions* options = nullptr;
  SimEngine engine;
  Trace trace;
  std::unique_ptr<Datacenter> datacenter;
  std::unique_ptr<SharedBandwidth> storage;  ///< set when contention is on
  util::Prng failure_rng{1};

  // VM plan. A "lane" is one planned VM slot; with failure injection a
  // lane may consume several datacenter VMs over its lifetime, so every
  // id is kept for billing.
  std::vector<std::size_t> vm_type;                  ///< per planned lane
  std::vector<std::vector<sched::NodeId>> vm_modules;
  std::vector<std::size_t> vm_of;   ///< per module, kNoVm for fixed
  std::vector<std::size_t> seq_of;  ///< position within its lane's list
  std::vector<std::vector<std::size_t>> lane_sim_ids;
  std::vector<bool> vm_requested;
  std::vector<bool> vm_ready;
  std::vector<std::size_t> vm_progress;  ///< completed modules per lane

  // Module state.
  std::vector<std::size_t> pending_inputs;
  std::vector<bool> started;
  std::vector<bool> finished;
  std::vector<std::size_t> retries;
  /// Bumped when a module's run is aborted; stale completion/failure
  /// events compare their stamp against it and fizzle.
  std::vector<std::uint64_t> run_version;
  std::vector<ModuleTiming> timing;
  std::size_t finished_count = 0;
  std::size_t vm_failures = 0;

  void request_vm(std::size_t lane) {
    if (vm_requested[lane]) return;
    vm_requested[lane] = true;
    lane_sim_ids[lane].push_back(
        datacenter->request_vm(vm_type[lane], [this, lane] {
          vm_ready[lane] = true;
          try_start(vm_modules[lane][vm_progress[lane]]);
        }));
  }

  void try_start(sched::NodeId m) {
    if (started[m] || finished[m] || pending_inputs[m] > 0) return;
    const auto& mod = inst->workflow().module(m);
    double duration;
    if (mod.is_fixed()) {
      duration = *mod.fixed_time;
    } else {
      const std::size_t lane = vm_of[m];
      if (!vm_ready[lane]) {
        // Just-in-time provisioning: ask for the VM the first time its
        // leading module could run (or after a failure).
        if (seq_of[m] == vm_progress[lane]) request_vm(lane);
        return;
      }
      if (vm_progress[lane] != seq_of[m]) return;  // earlier work pending
      duration = inst->time(m, schedule->type_of[m]);
    }
    started[m] = true;
    timing[m].start = engine.now();
    timing[m].vm = vm_of[m];
    trace.record(engine.now(), TraceKind::ModuleStart, m,
                 inst->workflow().module(m).name);

    const std::uint64_t stamp = ++run_version[m];
    // Failure injection: sample the VM's time-to-failure for this run.
    if (!mod.is_fixed() && options->failures.mtbf > 0.0) {
      const double u = failure_rng.uniform_real(0.0, 1.0);
      const double ttf = -options->failures.mtbf * std::log(1.0 - u);
      if (ttf < duration) {
        engine.schedule_in(ttf, [this, m, stamp] {
          if (stamp != run_version[m]) return;
          on_vm_failure(m);
        });
        return;  // the completion event would be stale anyway
      }
    }
    engine.schedule_in(duration, [this, m, stamp] {
      if (stamp != run_version[m]) return;
      on_module_done(m);
    });
  }

  void on_vm_failure(sched::NodeId m) {
    const std::size_t lane = vm_of[m];
    ++vm_failures;
    if (++retries[m] > options->failures.max_retries_per_module)
      throw Error("sim::execute: module exceeded the failure retry cap");
    trace.record(engine.now(), TraceKind::VmFailed, lane_sim_ids[lane].back(),
                 inst->workflow().module(m).name);
    ++run_version[m];  // invalidate any in-flight completion
    started[m] = false;
    // The crashed VM is gone: stop it (uptime stays billed) and mark the
    // lane for re-provisioning; completed predecessors' outputs live on
    // the shared storage, so only this module reruns.
    datacenter->stop_vm(lane_sim_ids[lane].back());
    vm_ready[lane] = false;
    vm_requested[lane] = false;
    try_start(m);  // triggers the replacement request
  }

  void on_module_done(sched::NodeId m) {
    finished[m] = true;
    ++finished_count;
    timing[m].finish = engine.now();
    trace.record(engine.now(), TraceKind::ModuleDone, m,
                 inst->workflow().module(m).name);

    if (vm_of[m] != kNoVm) {
      const std::size_t lane = vm_of[m];
      ++vm_progress[lane];
      if (vm_progress[lane] == vm_modules[lane].size()) {
        datacenter->stop_vm(lane_sim_ids[lane].back());
      } else {
        // The next module on this lane may already have its inputs.
        try_start(vm_modules[lane][vm_progress[lane]]);
      }
    }

    const auto& graph = inst->workflow().graph();
    for (dag::EdgeId e : graph.out_edges(m)) {
      const sched::NodeId dst = graph.edge(e).dst;
      trace.record(engine.now(), TraceKind::TransferStart, e,
                   inst->workflow().module(m).name + "->" +
                       inst->workflow().module(dst).name);
      auto complete = [this, e, dst] {
        trace.record(engine.now(), TraceKind::TransferDone, e);
        MEDCC_EXPECTS(pending_inputs[dst] > 0);
        --pending_inputs[dst];
        try_start(dst);
      };
      if (storage) {
        storage->start_transfer(inst->workflow().data_size(e),
                                std::move(complete));
      } else {
        engine.schedule_in(inst->edge_time(e), std::move(complete));
      }
    }
  }
};

}  // namespace

Report execute(const sched::Instance& inst, const sched::Schedule& schedule,
               const ExecutorOptions& options) {
  const auto& wf = inst.workflow();
  wf.ensure_valid();
  MEDCC_EXPECTS(schedule.type_of.size() == wf.module_count());
  if (options.failures.mtbf < 0.0)
    throw InvalidArgument("sim::execute: negative MTBF");

  const auto analytic = sched::evaluate(inst, schedule);

  ExecState st;
  st.inst = &inst;
  st.schedule = &schedule;
  st.options = &options;
  st.failure_rng.reseed(options.failures.seed);
  st.datacenter = std::make_unique<Datacenter>(
      st.engine, st.trace, options.datacenter, inst.catalog());
  if (options.shared_storage_bandwidth > 0.0)
    st.storage = std::make_unique<SharedBandwidth>(
        st.engine, options.shared_storage_bandwidth);

  // Build the VM plan.
  st.vm_of.assign(wf.module_count(), kNoVm);
  st.seq_of.assign(wf.module_count(), 0);
  if (options.reuse_vms) {
    const auto plan = sched::plan_vm_reuse(inst, schedule);
    for (const auto& vm : plan.instances) {
      st.vm_type.push_back(vm.type);
      st.vm_modules.push_back(vm.modules);
    }
  } else {
    for (sched::NodeId m : wf.computing_modules()) {
      st.vm_type.push_back(schedule.type_of[m]);
      st.vm_modules.push_back({m});
    }
  }
  for (std::size_t vm = 0; vm < st.vm_modules.size(); ++vm) {
    for (std::size_t k = 0; k < st.vm_modules[vm].size(); ++k) {
      st.vm_of[st.vm_modules[vm][k]] = vm;
      st.seq_of[st.vm_modules[vm][k]] = k;
    }
  }

  st.pending_inputs.assign(wf.module_count(), 0);
  for (sched::NodeId m = 0; m < wf.module_count(); ++m)
    st.pending_inputs[m] = wf.graph().in_degree(m);
  st.started.assign(wf.module_count(), false);
  st.finished.assign(wf.module_count(), false);
  st.retries.assign(wf.module_count(), 0);
  st.run_version.assign(wf.module_count(), 0);
  st.timing.assign(wf.module_count(), {});
  st.vm_ready.assign(st.vm_type.size(), false);
  st.vm_requested.assign(st.vm_type.size(), false);
  st.vm_progress.assign(st.vm_type.size(), 0);
  st.lane_sim_ids.assign(st.vm_type.size(), {});

  if (options.provisioning == Provisioning::UpFront) {
    for (std::size_t vm = 0; vm < st.vm_type.size(); ++vm) st.request_vm(vm);
  }
  // Source modules may start immediately.
  for (sched::NodeId m = 0; m < wf.module_count(); ++m)
    if (wf.graph().in_degree(m) == 0) st.try_start(m);

  st.engine.run(10'000'000);

  if (st.finished_count != wf.module_count())
    throw Error(
        "sim::execute: simulation stalled before completing all modules "
        "(insufficient datacenter capacity for the VM plan?)");

  Report report;
  report.analytic_med = analytic.med;
  report.analytic_cost = analytic.cost;
  report.vm_failures = st.vm_failures;
  report.modules = st.timing;
  for (const auto& t : st.timing)
    report.makespan = std::max(report.makespan, t.finish);
  for (std::size_t lane = 0; lane < st.vm_type.size(); ++lane) {
    for (std::size_t sim_id : st.lane_sim_ids[lane]) {
      VmUsage usage;
      usage.type = st.vm_type[lane];
      usage.boot_start = st.datacenter->boot_start(sim_id);
      usage.stopped = st.datacenter->stopped_at(sim_id);
      usage.modules = st.vm_modules[lane];
      usage.billed_cost = inst.billing().cost(
          usage.stopped - usage.boot_start,
          inst.catalog().type(usage.type).cost_rate);
      report.billed_cost += usage.billed_cost;
      report.vms.push_back(std::move(usage));
    }
  }
  report.trace = std::move(st.trace);
  return report;
}

}  // namespace medcc::sim
