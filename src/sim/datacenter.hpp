// The cloud-infrastructure layer of the simulator: physical hosts with
// finite capacity, a first-fit VM allocation policy, and VM lifecycle
// (request -> boot -> ready -> stopped) with configurable boot latency.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cloud/vm_type.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace medcc::sim {

/// One physical machine: capacity in processing-power units.
struct HostSpec {
  double capacity = 0.0;
};

struct DatacenterConfig {
  /// Physical hosts. Empty means an unlimited datacenter (the paper's
  /// simulation assumption); non-empty enables capacity contention (the
  /// testbed's 4 VMM nodes).
  std::vector<HostSpec> hosts;
  /// T(I_j): VM startup latency (identical across types in the paper's
  /// testbed since images share one disk size).
  SimTime vm_boot_time = 0.0;
};

/// VM lifecycle states.
enum class VmState { Requested, Booting, Ready, Stopped };

/// Brokered VM provisioning over a SimEngine.
class Datacenter {
public:
  Datacenter(SimEngine& engine, Trace& trace, DatacenterConfig config,
             const cloud::VmCatalog& catalog);

  /// Requests a VM of catalog type `type`; `on_ready` fires when booted.
  /// Returns the VM id.
  std::size_t request_vm(std::size_t type, std::function<void()> on_ready);

  /// Stops a READY VM, freeing host capacity (may boot queued requests).
  void stop_vm(std::size_t vm);

  [[nodiscard]] VmState state(std::size_t vm) const;
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }
  /// Host index a VM was placed on (meaningful for bounded datacenters).
  [[nodiscard]] std::optional<std::size_t> host_of(std::size_t vm) const;

  /// Time the VM's boot started / it became ready / it stopped.
  [[nodiscard]] SimTime boot_start(std::size_t vm) const;
  [[nodiscard]] SimTime ready_at(std::size_t vm) const;
  [[nodiscard]] SimTime stopped_at(std::size_t vm) const;

private:
  struct VmRecord {
    std::size_t type = 0;
    VmState state = VmState::Requested;
    std::optional<std::size_t> host;
    SimTime requested = 0.0;
    SimTime boot_started = 0.0;
    SimTime ready = 0.0;
    SimTime stopped = 0.0;
    std::function<void()> on_ready;
  };

  [[nodiscard]] bool bounded() const { return !config_.hosts.empty(); }
  /// Tries to place and boot a requested VM; true on success.
  bool try_boot(std::size_t vm);

  SimEngine& engine_;
  Trace& trace_;
  DatacenterConfig config_;
  const cloud::VmCatalog& catalog_;
  std::vector<VmRecord> vms_;
  std::vector<double> free_capacity_;
  std::deque<std::size_t> waiting_;
};

}  // namespace medcc::sim
