#include "dag/flat_dag.hpp"

namespace medcc::dag {

FlatDag::FlatDag(const Dag& graph, std::span<const double> edge_weights)
    : node_count_(graph.node_count()), edge_count_(graph.edge_count()) {
  if (!edge_weights.empty() && edge_weights.size() != edge_count_)
    throw InvalidArgument("FlatDag: edge_weights size mismatch");
  for (double w : edge_weights)
    if (w < 0.0) throw InvalidArgument("FlatDag: negative edge weight");

  auto order = graph.topological_order();
  if (!order) throw InvalidArgument("FlatDag: graph contains a cycle");
  topo_ = std::move(*order);
  topo_pos_.resize(node_count_);
  for (std::size_t pos = 0; pos < topo_.size(); ++pos)
    topo_pos_[topo_[pos]] = pos;

  const auto weight_of = [&](EdgeId e) {
    return edge_weights.empty() ? 0.0 : edge_weights[e];
  };

  in_off_.assign(node_count_ + 1, 0);
  out_off_.assign(node_count_ + 1, 0);
  in_arcs_.reserve(edge_count_);
  out_arcs_.reserve(edge_count_);
  for (NodeId v = 0; v < node_count_; ++v) {
    in_off_[v] = in_arcs_.size();
    for (EdgeId e : graph.in_edges(v))
      in_arcs_.push_back(FlatArc{graph.edge(e).src, weight_of(e)});
    out_off_[v] = out_arcs_.size();
    for (EdgeId e : graph.out_edges(v))
      out_arcs_.push_back(FlatArc{graph.edge(e).dst, weight_of(e)});
    if (graph.out_degree(v) == 0) sinks_.push_back(v);
  }
  in_off_[node_count_] = in_arcs_.size();
  out_off_[node_count_] = out_arcs_.size();
}

}  // namespace medcc::dag
