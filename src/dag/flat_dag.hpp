// An immutable, cache-friendly snapshot of a Dag for repeated evaluation.
//
// The adjacency-list Dag is convenient to build but expensive to traverse
// hot: every in_edges()/edge() hop chases a separate heap allocation, the
// topological order is recomputed per CPM call, and edge weights live in a
// parallel array indexed by EdgeId. FlatDag freezes one (graph, edge
// weights) pair into compressed-sparse-row form -- contiguous in/out arc
// arrays with the edge weight inlined next to the endpoint -- plus the
// cached topological order and its inverse. Validation (acyclicity,
// weight-array size, non-negative weights) happens once at build time, so
// the CPM kernels in dag/cpm_kernel.hpp can skip it on every call.
//
// Arc enumeration order is preserved exactly from the source Dag's edge
// lists: the kernels reproduce compute_cpm()'s results (including the
// extracted critical path) bit for bit.
#pragma once

#include <span>
#include <vector>

#include "dag/graph.hpp"

namespace medcc::dag {

/// One CSR slot: the neighbouring node and the inlined edge weight.
struct FlatArc {
  NodeId node = 0;
  double weight = 0.0;
};

class FlatDag {
public:
  FlatDag() = default;

  /// Freezes `graph` with per-edge delays (empty means all-zero, matching
  /// compute_cpm's convention; otherwise size must equal edge_count()).
  /// Throws InvalidArgument on a cycle, size mismatch, or negative weight.
  explicit FlatDag(const Dag& graph, std::span<const double> edge_weights = {});

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// The cached topological order (identical to Dag::topological_order()).
  [[nodiscard]] std::span<const NodeId> topo_order() const { return topo_; }
  /// Position of each node within topo_order().
  [[nodiscard]] std::size_t topo_position(NodeId v) const {
    MEDCC_EXPECTS(v < node_count_);
    return topo_pos_[v];
  }

  /// Incoming arcs of `v` (arc.node is the predecessor), in the same order
  /// as Dag::in_edges(v).
  [[nodiscard]] std::span<const FlatArc> in_arcs(NodeId v) const {
    MEDCC_EXPECTS(v < node_count_);
    return {in_arcs_.data() + in_off_[v], in_off_[v + 1] - in_off_[v]};
  }
  /// Outgoing arcs of `v` (arc.node is the successor), in the same order
  /// as Dag::out_edges(v).
  [[nodiscard]] std::span<const FlatArc> out_arcs(NodeId v) const {
    MEDCC_EXPECTS(v < node_count_);
    return {out_arcs_.data() + out_off_[v], out_off_[v + 1] - out_off_[v]};
  }

  [[nodiscard]] std::size_t in_degree(NodeId v) const {
    MEDCC_EXPECTS(v < node_count_);
    return in_off_[v + 1] - in_off_[v];
  }
  [[nodiscard]] std::size_t out_degree(NodeId v) const {
    MEDCC_EXPECTS(v < node_count_);
    return out_off_[v + 1] - out_off_[v];
  }

  /// Nodes with no outgoing arcs, ascending. With non-negative weights the
  /// makespan is always attained at a sink, so incremental recompute only
  /// scans this list.
  [[nodiscard]] std::span<const NodeId> sinks() const { return sinks_; }

private:
  std::size_t node_count_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<std::size_t> in_off_;   ///< size node_count_+1
  std::vector<std::size_t> out_off_;  ///< size node_count_+1
  std::vector<FlatArc> in_arcs_;
  std::vector<FlatArc> out_arcs_;
  std::vector<NodeId> topo_;
  std::vector<std::size_t> topo_pos_;
  std::vector<NodeId> sinks_;
};

}  // namespace medcc::dag
