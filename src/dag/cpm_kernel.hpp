// Allocation-free CPM evaluation kernels over a FlatDag.
//
// The repo's evaluation-bound schedulers (Critical-Greedy's per-iteration
// critical path, every genetic individual's fitness, every annealing
// neighbour) previously funnelled through dag::compute_cpm, which
// re-validates inputs, recomputes the topological order and allocates six
// fresh vectors per call. These kernels split that work:
//
//  * FlatDag construction pays validation + topo order once per instance;
//  * CpmWorkspace owns every buffer, so repeated calls are allocation-free
//    once warmed up;
//  * makespan_into() runs only the forward pass (no backward pass, no
//    slack, no critical-path extraction) -- the genetic/annealing fitness
//    fast path;
//  * cpm_into() adds the backward pass and criticality flags -- what
//    Critical-Greedy needs per round;
//  * update_weight() / update_weight_full() recompute incrementally after
//    a single node-weight change, propagating a dirty frontier that stops
//    as soon as values stabilise (bitwise), with journal-based rollback
//    for rejected annealing moves (commit is O(1));
//  * export_result() materialises a CpmResult identical -- bit for bit,
//    including the extracted critical path -- to what compute_cpm returns
//    for the same graph and weights.
//
// Exact (bitwise) floating-point equality is what makes the incremental
// path safe: est/eft/lst/lft are max/min/plus recurrences over the same
// operands in the same order as the full pass, so a node whose recomputed
// value is bitwise-unchanged can cut propagation without ever diverging
// from a full recompute.
//
// Thread-safety: FlatDag is immutable after construction and may be shared
// freely across threads; each thread must use its own CpmWorkspace.
#pragma once

#include <span>
#include <vector>

#include "dag/critical_path.hpp"
#include "dag/flat_dag.hpp"

namespace medcc::dag {

/// Reusable buffers for the CPM kernels. All vectors are sized to the
/// graph's node count by the kernel entry points; reusing one workspace
/// across calls (and even across graphs of different sizes) never touches
/// the heap once the high-water capacity is reached.
struct CpmWorkspace {
  std::vector<double> weights;  ///< current node weights (kernel-owned copy)
  std::vector<double> est;
  std::vector<double> eft;
  std::vector<double> lst;  ///< valid only after cpm_into/update_weight_full
  std::vector<double> lft;
  std::vector<char> critical;  ///< valid only while backward_valid
  double makespan = 0.0;
  double tol = 0.0;  ///< criticality tolerance; tracks makespan
  /// True while lst/lft/critical match weights (set by cpm_into, kept
  /// current by update_weight_full, cleared by the forward-only paths).
  bool backward_valid = false;

  /// Ensures every buffer is sized for `nodes`; cheap when unchanged.
  void prepare(std::size_t nodes);

  // -- internal kernel state ------------------------------------------------
  struct Undo {
    NodeId node = 0;
    double est = 0.0;
    double eft = 0.0;
    double weight = 0.0;
  };
  std::vector<Undo> journal;    ///< forward-state undo log (open transaction)
  double journal_makespan = 0.0;
  bool journal_backward_valid = false;  ///< backward_valid at transaction open
  bool in_transaction = false;
  std::vector<char> dirty;           ///< frontier membership (all-false at rest)
  std::vector<std::size_t> heap;     ///< frontier ordered by topo position
  std::vector<NodeId> touched;       ///< nodes needing criticality refresh
};

/// Forward pass only: fills ws.est/eft/makespan from `node_weights`
/// (copied into ws.weights). Invalidates the backward state. Returns the
/// makespan. Allocation-free at steady state.
double makespan_into(const FlatDag& graph, std::span<const double> node_weights,
                     CpmWorkspace& ws);

/// As above but reads the weights the caller already stored in ws.weights
/// (sized via ws.prepare(graph.node_count())), skipping the copy.
double makespan_into(const FlatDag& graph, CpmWorkspace& ws);

/// Forward + backward pass + criticality flags (no path extraction).
void cpm_into(const FlatDag& graph, std::span<const double> node_weights,
              CpmWorkspace& ws);

/// As above, reading weights from ws.weights.
void cpm_into(const FlatDag& graph, CpmWorkspace& ws);

/// Builds the full CpmResult (buffer, critical flags, extracted critical
/// path) from a workspace previously filled by cpm_into /
/// update_weight_full. Bitwise-identical to compute_cpm on the same
/// inputs. Allocates (it returns an owning result).
[[nodiscard]] CpmResult export_result(const FlatDag& graph,
                                      const CpmWorkspace& ws);

/// Incremental forward recompute: sets node's weight to `new_weight` and
/// repropagates est/eft downstream, stopping where values stabilise.
/// Opens an undo transaction on first use (see commit/rollback); multiple
/// updates may be chained in one transaction. Returns the new makespan.
/// Requires a forward state (makespan_into or cpm_into ran on this graph).
double update_weight(const FlatDag& graph, CpmWorkspace& ws, NodeId node,
                     double new_weight);

/// Accepts the open transaction's updates. O(1).
void commit(CpmWorkspace& ws);

/// Restores est/eft/weights/makespan to the state before the open
/// transaction, undoing every chained update_weight. Cost is proportional
/// to the entries actually touched, never the graph size.
void rollback(CpmWorkspace& ws);

/// Incremental forward + backward recompute maintaining lst/lft and the
/// criticality flags (what Critical-Greedy consumes between rounds).
/// When the makespan shifts, the backward pass is rerun in full (still
/// allocation-free); otherwise only the upstream dirty frontier is
/// touched. Not transactional: changes apply immediately. Requires
/// ws.backward_valid (i.e. cpm_into ran). Returns the new makespan.
double update_weight_full(const FlatDag& graph, CpmWorkspace& ws, NodeId node,
                          double new_weight);

}  // namespace medcc::dag
