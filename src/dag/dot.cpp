#include "dag/dot.hpp"

#include <sstream>

namespace medcc::dag {

std::string to_dot(const Dag& graph, const DotOptions& options) {
  if (!options.node_labels.empty())
    MEDCC_EXPECTS(options.node_labels.size() == graph.node_count());
  if (!options.edge_labels.empty())
    MEDCC_EXPECTS(options.edge_labels.size() == graph.edge_count());
  if (!options.highlight.empty())
    MEDCC_EXPECTS(options.highlight.size() == graph.node_count());

  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=ellipse];\n";
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    os << "  n" << v << " [label=\"";
    if (options.node_labels.empty())
      os << 'w' << v;
    else
      os << options.node_labels[v];
    os << '"';
    if (!options.highlight.empty() && options.highlight[v])
      os << ", style=filled, fillcolor=lightcoral";
    os << "];\n";
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto& edge = graph.edge(e);
    os << "  n" << edge.src << " -> n" << edge.dst;
    if (!options.edge_labels.empty())
      os << " [label=\"" << options.edge_labels[e] << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace medcc::dag
