#include "dag/critical_path.hpp"

#include <algorithm>
#include <limits>

namespace medcc::dag {
namespace {

/// Shared validation for compute_cpm / makespan. Returns the (memoized)
/// topological order.
std::vector<NodeId> validate_and_order(const Dag& graph,
                                       std::span<const double> node_weights,
                                       std::span<const double> edge_weights,
                                       const char* caller) {
  if (node_weights.size() != graph.node_count())
    throw InvalidArgument(std::string(caller) + ": node_weights size mismatch");
  if (!edge_weights.empty() && edge_weights.size() != graph.edge_count())
    throw InvalidArgument(std::string(caller) + ": edge_weights size mismatch");
  for (double w : node_weights)
    if (w < 0.0)
      throw InvalidArgument(std::string(caller) + ": negative node weight");
  for (double w : edge_weights)
    if (w < 0.0)
      throw InvalidArgument(std::string(caller) + ": negative edge weight");

  auto order = graph.topological_order();
  if (!order)
    throw InvalidArgument(std::string(caller) + ": graph contains a cycle");
  return std::move(*order);
}

/// CPM passes templated on the edge-weight accessor so the
/// "edge_weights.empty()" branch is decided once per call, outside every
/// inner loop, instead of once per edge.
template <typename EdgeWeightFn>
CpmResult compute_cpm_impl(const Dag& graph,
                           std::span<const double> node_weights,
                           const std::vector<NodeId>& order,
                           EdgeWeightFn edge_weight) {
  const std::size_t n = graph.node_count();
  CpmResult r;
  r.est.assign(n, 0.0);
  r.eft.assign(n, 0.0);
  r.lst.assign(n, 0.0);
  r.lft.assign(n, 0.0);
  r.buffer.assign(n, 0.0);
  r.critical.assign(n, false);
  if (n == 0) return r;

  // Forward pass: est(v) = max over preds u of eft(u) + w(u->v).
  for (NodeId v : order) {
    double start = 0.0;
    for (EdgeId e : graph.in_edges(v)) {
      const NodeId u = graph.edge(e).src;
      start = std::max(start, r.eft[u] + edge_weight(e));
    }
    r.est[v] = start;
    r.eft[v] = start + node_weights[v];
    r.makespan = std::max(r.makespan, r.eft[v]);
  }

  // Backward pass: lft(v) = min over succs s of lst(s) - w(v->s);
  // sinks finish no later than the makespan.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    double finish = r.makespan;
    for (EdgeId e : graph.out_edges(v)) {
      const NodeId s = graph.edge(e).dst;
      finish = std::min(finish, r.lst[s] - edge_weight(e));
    }
    r.lft[v] = finish;
    r.lst[v] = finish - node_weights[v];
  }

  const double tol =
      kCpmSlackTolerance * std::max(1.0, r.makespan);
  for (NodeId v = 0; v < n; ++v) {
    r.buffer[v] = r.lst[v] - r.est[v];
    r.critical[v] = r.buffer[v] <= tol;
  }

  // Extract one critical source-to-sink path: start from a critical source
  // and repeatedly step to a critical successor whose est meets our eft
  // through the connecting edge (i.e. the edge itself is tight).
  NodeId cursor = n;  // sentinel
  for (NodeId v = 0; v < n; ++v) {
    if (r.critical[v] && graph.in_degree(v) == 0 && r.est[v] <= tol) {
      // Prefer the source that starts the longest chain: the one whose
      // eft equals some successor's est; any zero-est critical source works
      // because ties all lie on *a* critical path.
      cursor = v;
      break;
    }
  }
  while (cursor < n) {
    r.critical_path.push_back(cursor);
    NodeId next = n;
    for (EdgeId e : graph.out_edges(cursor)) {
      const NodeId s = graph.edge(e).dst;
      const bool tight_edge =
          std::abs(r.est[s] - (r.eft[cursor] + edge_weight(e))) <= tol;
      if (r.critical[s] && tight_edge) {
        next = s;
        break;
      }
    }
    cursor = next;
  }
  return r;
}

/// Forward pass only -- everything dag::makespan needs.
template <typename EdgeWeightFn>
double makespan_impl(const Dag& graph, std::span<const double> node_weights,
                     const std::vector<NodeId>& order,
                     EdgeWeightFn edge_weight, std::vector<double>& eft) {
  eft.assign(graph.node_count(), 0.0);
  double makespan = 0.0;
  for (NodeId v : order) {
    double start = 0.0;
    for (EdgeId e : graph.in_edges(v)) {
      const NodeId u = graph.edge(e).src;
      start = std::max(start, eft[u] + edge_weight(e));
    }
    eft[v] = start + node_weights[v];
    makespan = std::max(makespan, eft[v]);
  }
  return makespan;
}

}  // namespace

CpmResult compute_cpm(const Dag& graph, std::span<const double> node_weights,
                      std::span<const double> edge_weights) {
  const auto order =
      validate_and_order(graph, node_weights, edge_weights, "compute_cpm");
  if (edge_weights.empty()) {
    return compute_cpm_impl(graph, node_weights, order,
                            [](EdgeId) { return 0.0; });
  }
  return compute_cpm_impl(graph, node_weights, order,
                          [&](EdgeId e) { return edge_weights[e]; });
}

double makespan(const Dag& graph, std::span<const double> node_weights,
                std::span<const double> edge_weights) {
  // Forward pass only: callers consuming just the scalar no longer pay for
  // the backward pass, slack vectors, or critical-path extraction.
  const auto order =
      validate_and_order(graph, node_weights, edge_weights, "makespan");
  std::vector<double> eft;
  if (edge_weights.empty()) {
    return makespan_impl(graph, node_weights, order, [](EdgeId) { return 0.0; },
                         eft);
  }
  return makespan_impl(graph, node_weights, order,
                       [&](EdgeId e) { return edge_weights[e]; }, eft);
}

}  // namespace medcc::dag
