#include "dag/cpm_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace medcc::dag {
namespace {

/// Bitwise equality used to detect that a recomputed timing value is
/// unchanged and propagation can stop. Exactness is the point: the
/// incremental path stays bit-identical to a full recompute, so no
/// tolerance belongs here.
bool bit_equal(double a, double b) { return a == b; }

/// Pushes the (unqueued) successors of `v` onto the min-heap frontier.
void push_successors(const FlatDag& graph, CpmWorkspace& ws, NodeId v) {
  for (const FlatArc& arc : graph.out_arcs(v)) {
    if (!ws.dirty[arc.node]) {
      ws.dirty[arc.node] = 1;
      ws.heap.push_back(graph.topo_position(arc.node));
      std::push_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
    }
  }
}

/// Pushes the (unqueued) predecessors of `v` onto the max-heap frontier
/// used by the reverse (backward) propagation.
void push_predecessors(const FlatDag& graph, CpmWorkspace& ws, NodeId v) {
  for (const FlatArc& arc : graph.in_arcs(v)) {
    if (!ws.dirty[arc.node]) {
      ws.dirty[arc.node] = 1;
      ws.heap.push_back(graph.topo_position(arc.node));
      std::push_heap(ws.heap.begin(), ws.heap.end());
    }
  }
}

/// Recomputed earliest start of `v` from its predecessors' eft.
double recompute_est(const FlatDag& graph, const CpmWorkspace& ws, NodeId v) {
  double start = 0.0;
  for (const FlatArc& arc : graph.in_arcs(v))
    start = std::max(start, ws.eft[arc.node] + arc.weight);
  return start;
}

/// Recomputed latest finish of `v` from its successors' lst.
double recompute_lft(const FlatDag& graph, const CpmWorkspace& ws, NodeId v) {
  double finish = ws.makespan;
  for (const FlatArc& arc : graph.out_arcs(v))
    finish = std::min(finish, ws.lst[arc.node] - arc.weight);
  return finish;
}

double criticality_tolerance(double makespan) {
  return kCpmSlackTolerance * std::max(1.0, makespan);
}

/// Applies the weight change at `node` and repropagates est/eft through
/// the downstream dirty frontier, stopping where eft stabilises bitwise.
/// Journals prior values when `journal`; appends every node whose est or
/// eft changed to ws.touched when `track`. Returns true when any eft
/// changed (i.e. the makespan may have moved).
bool propagate_forward(const FlatDag& graph, CpmWorkspace& ws, NodeId node,
                       double new_weight, bool journal, bool track) {
  if (journal)
    ws.journal.push_back(CpmWorkspace::Undo{node, ws.est[node], ws.eft[node],
                                            ws.weights[node]});
  ws.weights[node] = new_weight;
  const double new_eft = ws.est[node] + new_weight;
  if (bit_equal(new_eft, ws.eft[node])) return false;
  ws.eft[node] = new_eft;
  if (track) ws.touched.push_back(node);
  push_successors(graph, ws, node);

  const auto topo = graph.topo_order();
  while (!ws.heap.empty()) {
    std::pop_heap(ws.heap.begin(), ws.heap.end(), std::greater<>{});
    const NodeId v = topo[ws.heap.back()];
    ws.heap.pop_back();
    ws.dirty[v] = 0;
    const double start = recompute_est(graph, ws, v);
    const double finish = start + ws.weights[v];
    const bool est_same = bit_equal(start, ws.est[v]);
    const bool eft_same = bit_equal(finish, ws.eft[v]);
    if (est_same && eft_same) continue;
    if (journal)
      ws.journal.push_back(
          CpmWorkspace::Undo{v, ws.est[v], ws.eft[v], ws.weights[v]});
    ws.est[v] = start;
    ws.eft[v] = finish;
    if (track) ws.touched.push_back(v);
    // Successors read only eft; an est-only change (possible through
    // rounding in start + weight) ends the frontier here.
    if (!eft_same) push_successors(graph, ws, v);
  }
  return true;
}

/// Max eft over the sinks. With non-negative weights every node's eft is
/// dominated by some sink's, and max over doubles is exact and
/// order-independent, so this equals the full pass's running maximum.
double makespan_from_sinks(const FlatDag& graph, const CpmWorkspace& ws) {
  double makespan = 0.0;
  for (NodeId s : graph.sinks()) makespan = std::max(makespan, ws.eft[s]);
  return makespan;
}

/// Full forward pass over ws.weights; fills est/eft and the makespan.
void forward_pass(const FlatDag& graph, CpmWorkspace& ws) {
  ws.makespan = 0.0;
  for (NodeId v : graph.topo_order()) {
    const double start = recompute_est(graph, ws, v);
    ws.est[v] = start;
    ws.eft[v] = start + ws.weights[v];
    ws.makespan = std::max(ws.makespan, ws.eft[v]);
  }
}

/// Full backward pass + criticality flags from the current makespan.
void backward_pass(const FlatDag& graph, CpmWorkspace& ws) {
  const auto topo = graph.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    const double finish = recompute_lft(graph, ws, v);
    ws.lft[v] = finish;
    ws.lst[v] = finish - ws.weights[v];
  }
  ws.tol = criticality_tolerance(ws.makespan);
  const std::size_t n = graph.node_count();
  for (NodeId v = 0; v < n; ++v)
    ws.critical[v] = (ws.lst[v] - ws.est[v]) <= ws.tol ? 1 : 0;
}

void copy_weights(std::span<const double> node_weights, CpmWorkspace& ws) {
  std::copy(node_weights.begin(), node_weights.end(), ws.weights.begin());
}

}  // namespace

void CpmWorkspace::prepare(std::size_t nodes) {
  if (weights.size() == nodes) return;
  weights.resize(nodes);
  est.resize(nodes);
  eft.resize(nodes);
  lst.resize(nodes);
  lft.resize(nodes);
  critical.resize(nodes);
  dirty.assign(nodes, 0);
  heap.clear();
  touched.clear();
  journal.clear();
  in_transaction = false;
  backward_valid = false;
}

double makespan_into(const FlatDag& graph, std::span<const double> node_weights,
                     CpmWorkspace& ws) {
  MEDCC_EXPECTS(node_weights.size() == graph.node_count());
  ws.prepare(graph.node_count());
  copy_weights(node_weights, ws);
  return makespan_into(graph, ws);
}

double makespan_into(const FlatDag& graph, CpmWorkspace& ws) {
  MEDCC_EXPECTS(ws.weights.size() == graph.node_count());
  forward_pass(graph, ws);
  ws.backward_valid = false;
  ws.in_transaction = false;
  ws.journal.clear();
  return ws.makespan;
}

void cpm_into(const FlatDag& graph, std::span<const double> node_weights,
              CpmWorkspace& ws) {
  MEDCC_EXPECTS(node_weights.size() == graph.node_count());
  ws.prepare(graph.node_count());
  copy_weights(node_weights, ws);
  cpm_into(graph, ws);
}

void cpm_into(const FlatDag& graph, CpmWorkspace& ws) {
  MEDCC_EXPECTS(ws.weights.size() == graph.node_count());
  forward_pass(graph, ws);
  backward_pass(graph, ws);
  ws.backward_valid = true;
  ws.in_transaction = false;
  ws.journal.clear();
}

CpmResult export_result(const FlatDag& graph, const CpmWorkspace& ws) {
  MEDCC_EXPECTS(ws.backward_valid);
  const std::size_t n = graph.node_count();
  MEDCC_EXPECTS(ws.weights.size() == n);

  CpmResult r;
  r.est.assign(ws.est.begin(), ws.est.end());
  r.eft.assign(ws.eft.begin(), ws.eft.end());
  r.lst.assign(ws.lst.begin(), ws.lst.end());
  r.lft.assign(ws.lft.begin(), ws.lft.end());
  r.buffer.resize(n);
  r.critical.resize(n);
  r.makespan = ws.makespan;
  for (NodeId v = 0; v < n; ++v) {
    r.buffer[v] = ws.lst[v] - ws.est[v];
    r.critical[v] = ws.critical[v] != 0;
  }

  // Critical-path extraction, byte-compatible with compute_cpm: start at
  // the first zero-est critical source, then repeatedly step to the first
  // critical successor reached through a tight edge.
  const double tol = ws.tol;
  NodeId cursor = n;  // sentinel
  for (NodeId v = 0; v < n; ++v) {
    if (r.critical[v] && graph.in_degree(v) == 0 && r.est[v] <= tol) {
      cursor = v;
      break;
    }
  }
  while (cursor < n) {
    r.critical_path.push_back(cursor);
    NodeId next = n;
    for (const FlatArc& arc : graph.out_arcs(cursor)) {
      const bool tight_edge =
          std::abs(r.est[arc.node] - (r.eft[cursor] + arc.weight)) <= tol;
      if (r.critical[arc.node] && tight_edge) {
        next = arc.node;
        break;
      }
    }
    cursor = next;
  }
  return r;
}

double update_weight(const FlatDag& graph, CpmWorkspace& ws, NodeId node,
                     double new_weight) {
  MEDCC_EXPECTS(node < graph.node_count());
  MEDCC_EXPECTS(ws.weights.size() == graph.node_count());
  MEDCC_EXPECTS(new_weight >= 0.0);
  if (!ws.in_transaction) {
    ws.in_transaction = true;
    ws.journal.clear();
    ws.journal_makespan = ws.makespan;
    ws.journal_backward_valid = ws.backward_valid;
  }
  ws.backward_valid = false;
  if (bit_equal(new_weight, ws.weights[node])) return ws.makespan;
  if (propagate_forward(graph, ws, node, new_weight, /*journal=*/true,
                        /*track=*/false)) {
    ws.makespan = makespan_from_sinks(graph, ws);
  }
  return ws.makespan;
}

void commit(CpmWorkspace& ws) {
  ws.journal.clear();
  ws.in_transaction = false;
}

void rollback(CpmWorkspace& ws) {
  for (auto it = ws.journal.rbegin(); it != ws.journal.rend(); ++it) {
    ws.est[it->node] = it->est;
    ws.eft[it->node] = it->eft;
    ws.weights[it->node] = it->weight;
  }
  if (ws.in_transaction) {
    ws.makespan = ws.journal_makespan;
    // update_weight never touches lst/lft/critical, so once the forward
    // state is restored the backward state is exactly as valid as it was
    // when the transaction opened.
    ws.backward_valid = ws.journal_backward_valid;
  }
  ws.journal.clear();
  ws.in_transaction = false;
}

double update_weight_full(const FlatDag& graph, CpmWorkspace& ws, NodeId node,
                          double new_weight) {
  MEDCC_EXPECTS(node < graph.node_count());
  MEDCC_EXPECTS(ws.weights.size() == graph.node_count());
  MEDCC_EXPECTS(new_weight >= 0.0);
  MEDCC_EXPECTS(ws.backward_valid);
  MEDCC_EXPECTS(!ws.in_transaction);
  if (bit_equal(new_weight, ws.weights[node])) return ws.makespan;

  const double old_weight = ws.weights[node];
  ws.touched.clear();
  const bool eft_moved = propagate_forward(graph, ws, node, new_weight,
                                           /*journal=*/false, /*track=*/true);
  const double new_makespan =
      eft_moved ? makespan_from_sinks(graph, ws) : ws.makespan;

  if (!bit_equal(new_makespan, ws.makespan)) {
    // Every lft is anchored at the makespan through the sinks, so a
    // makespan shift invalidates the whole backward state: rerun it
    // (allocation-free) together with all criticality flags.
    ws.makespan = new_makespan;
    backward_pass(graph, ws);
    return ws.makespan;
  }

  // Makespan unchanged: backward values depend only on weights and the
  // makespan, so only `node` and its transitive predecessors can move.
  const double new_lst = ws.lft[node] - new_weight;
  if (!bit_equal(new_lst, ws.lst[node]) ||
      !bit_equal(new_weight, old_weight)) {
    ws.lst[node] = new_lst;
    ws.touched.push_back(node);
    push_predecessors(graph, ws, node);
    const auto topo = graph.topo_order();
    while (!ws.heap.empty()) {
      std::pop_heap(ws.heap.begin(), ws.heap.end());
      const NodeId v = topo[ws.heap.back()];
      ws.heap.pop_back();
      ws.dirty[v] = 0;
      const double finish = recompute_lft(graph, ws, v);
      const double start = finish - ws.weights[v];
      const bool lft_same = bit_equal(finish, ws.lft[v]);
      const bool lst_same = bit_equal(start, ws.lst[v]);
      if (lft_same && lst_same) continue;
      ws.lft[v] = finish;
      ws.lst[v] = start;
      ws.touched.push_back(v);
      // Predecessors read only lst; an lft-only change stops here.
      if (!lst_same) push_predecessors(graph, ws, v);
    }
  }
  // Refresh criticality only where est or lst moved (tol is unchanged).
  for (NodeId v : ws.touched)
    ws.critical[v] = (ws.lst[v] - ws.est[v]) <= ws.tol ? 1 : 0;
  ws.touched.clear();
  return ws.makespan;
}

}  // namespace medcc::dag
