// Graphviz DOT export for DAGs, with optional labels and critical-path
// highlighting -- handy for inspecting generated workflow instances.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dag/graph.hpp"

namespace medcc::dag {

struct DotOptions {
  std::string graph_name = "workflow";
  /// Optional per-node labels; empty means "w<i>".
  std::vector<std::string> node_labels;
  /// Optional per-edge labels (e.g. data sizes); empty means unlabeled.
  std::vector<std::string> edge_labels;
  /// Optional mask of highlighted (critical) nodes.
  std::vector<bool> highlight;
};

/// Renders the graph in Graphviz DOT syntax.
[[nodiscard]] std::string to_dot(const Dag& graph, const DotOptions& options = {});

}  // namespace medcc::dag
