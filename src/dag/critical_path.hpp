// Critical-path-method (CPM) analysis over a weighted DAG.
//
// Implements the timing quantities of Section III-B of the paper: earliest
// start/finish (est/eft), latest start/finish (lst/lft), the buffer time
// lst(w)-est(w), and the critical path -- the longest node+edge-weighted
// path, consisting of the modules with zero buffer. One pass is O(V + E).
#pragma once

#include <span>
#include <vector>

#include "dag/graph.hpp"

namespace medcc::dag {

/// Timing analysis of one weighted DAG.
struct CpmResult {
  std::vector<double> est;  ///< earliest start time per node
  std::vector<double> eft;  ///< earliest finish time per node
  std::vector<double> lst;  ///< latest start time per node
  std::vector<double> lft;  ///< latest finish time per node
  /// Slack per node: lst - est (== lft - eft). Zero on the critical path.
  std::vector<double> buffer;
  /// True for nodes whose buffer is zero (within tolerance).
  std::vector<bool> critical;
  /// One maximal-length source-to-sink path of critical nodes, in order.
  std::vector<NodeId> critical_path;
  /// End-to-end delay: max eft over all nodes.
  double makespan = 0.0;
};

/// Tolerance used to classify a node as critical. Relative to makespan.
inline constexpr double kCpmSlackTolerance = 1e-9;

/// Runs CPM with per-node durations and optional per-edge delays
/// (edge_weights.empty() means every edge costs zero, the paper's
/// single-datacenter assumption; otherwise size must equal edge_count).
///
/// Throws InvalidArgument if the graph has a cycle or weights are negative.
[[nodiscard]] CpmResult compute_cpm(const Dag& graph,
                                    std::span<const double> node_weights,
                                    std::span<const double> edge_weights = {});

/// Convenience: just the makespan of the weighted DAG.
[[nodiscard]] double makespan(const Dag& graph,
                              std::span<const double> node_weights,
                              std::span<const double> edge_weights = {});

}  // namespace medcc::dag
