#include "dag/graph.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace medcc::dag {

Dag::Dag(const Dag& other)
    : edges_(other.edges_),
      out_(other.out_),
      in_(other.in_),
      topo_cache_(other.topo_cache_snapshot()) {}

Dag& Dag::operator=(const Dag& other) {
  if (this == &other) return *this;
  auto cache = other.topo_cache_snapshot();
  edges_ = other.edges_;
  out_ = other.out_;
  in_ = other.in_;
  const util::MutexLock lock(topo_mutex_);
  topo_cache_ = std::move(cache);
  return *this;
}

Dag::Dag(Dag&& other) noexcept
    : edges_(std::move(other.edges_)),
      out_(std::move(other.out_)),
      in_(std::move(other.in_)),
      topo_cache_(other.topo_cache_snapshot()) {}

Dag& Dag::operator=(Dag&& other) noexcept {
  if (this == &other) return *this;
  auto cache = other.topo_cache_snapshot();
  edges_ = std::move(other.edges_);
  out_ = std::move(other.out_);
  in_ = std::move(other.in_);
  const util::MutexLock lock(topo_mutex_);
  topo_cache_ = std::move(cache);
  return *this;
}

Dag::TopoCache Dag::topo_cache_snapshot() const {
  const util::MutexLock lock(topo_mutex_);
  return topo_cache_;
}

void Dag::invalidate_topo_cache() {
  const util::MutexLock lock(topo_mutex_);
  topo_cache_.reset();
}

NodeId Dag::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  invalidate_topo_cache();
  return out_.size() - 1;
}

EdgeId Dag::add_edge(NodeId src, NodeId dst) {
  MEDCC_EXPECTS(src < node_count());
  MEDCC_EXPECTS(dst < node_count());
  if (src == dst) throw InvalidArgument("Dag: self-loop rejected");
  if (has_edge(src, dst)) throw InvalidArgument("Dag: parallel edge rejected");
  edges_.push_back(Edge{src, dst});
  const EdgeId id = edges_.size() - 1;
  out_[src].push_back(id);
  in_[dst].push_back(id);
  invalidate_topo_cache();
  return id;
}

bool Dag::has_edge(NodeId src, NodeId dst) const {
  MEDCC_EXPECTS(src < node_count());
  MEDCC_EXPECTS(dst < node_count());
  // Scan the smaller adjacency list.
  if (out_[src].size() <= in_[dst].size()) {
    return std::any_of(out_[src].begin(), out_[src].end(),
                       [&](EdgeId e) { return edges_[e].dst == dst; });
  }
  return std::any_of(in_[dst].begin(), in_[dst].end(),
                     [&](EdgeId e) { return edges_[e].src == src; });
}

std::vector<NodeId> Dag::successors(NodeId node) const {
  std::vector<NodeId> result;
  result.reserve(out_degree(node));
  for (EdgeId e : out_edges(node)) result.push_back(edges_[e].dst);
  return result;
}

std::vector<NodeId> Dag::predecessors(NodeId node) const {
  std::vector<NodeId> result;
  result.reserve(in_degree(node));
  for (EdgeId e : in_edges(node)) result.push_back(edges_[e].src);
  return result;
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < node_count(); ++v)
    if (in_degree(v) == 0) result.push_back(v);
  return result;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < node_count(); ++v)
    if (out_degree(v) == 0) result.push_back(v);
  return result;
}

std::optional<std::vector<NodeId>> Dag::topological_order() const {
  const util::MutexLock lock(topo_mutex_);
  if (!topo_cache_) {
    topo_cache_ = std::make_shared<const std::optional<std::vector<NodeId>>>(
        compute_topological_order());
  }
  return *topo_cache_;
}

std::optional<std::vector<NodeId>> Dag::compute_topological_order() const {
  std::vector<std::size_t> pending(node_count());
  std::queue<NodeId> ready;
  for (NodeId v = 0; v < node_count(); ++v) {
    pending[v] = in_degree(v);
    if (pending[v] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (EdgeId e : out_edges(v)) {
      const NodeId succ = edges_[e].dst;
      if (--pending[succ] == 0) ready.push(succ);
    }
  }
  if (order.size() != node_count()) return std::nullopt;  // cycle
  return order;
}

bool Dag::reachable(NodeId origin, NodeId target) const {
  MEDCC_EXPECTS(target < node_count());
  return reachable_set(origin)[target];
}

std::vector<bool> Dag::reachable_set(NodeId origin) const {
  MEDCC_EXPECTS(origin < node_count());
  std::vector<bool> seen(node_count(), false);
  std::queue<NodeId> frontier;
  seen[origin] = true;
  frontier.push(origin);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (EdgeId e : out_edges(v)) {
      const NodeId succ = edges_[e].dst;
      if (!seen[succ]) {
        seen[succ] = true;
        frontier.push(succ);
      }
    }
  }
  return seen;
}

std::vector<EdgeId> Dag::redundant_edges() const {
  // Edge (u,v) is redundant iff v is reachable from u without using (u,v);
  // equivalently, reachable from some other successor of u.
  std::vector<EdgeId> result;
  for (NodeId u = 0; u < node_count(); ++u) {
    if (out_degree(u) < 2) continue;
    // Union of reachability from all successors of u.
    std::vector<bool> via_other(node_count(), false);
    for (EdgeId e : out_edges(u)) {
      const auto seen = reachable_set(edges_[e].dst);
      for (NodeId v = 0; v < node_count(); ++v)
        if (seen[v] && v != edges_[e].dst) via_other[v] = true;
    }
    for (EdgeId e : out_edges(u))
      if (via_other[edges_[e].dst]) result.push_back(e);
  }
  return result;
}

}  // namespace medcc::dag
