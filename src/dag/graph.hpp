// A compact directed-acyclic-graph container.
//
// Nodes are dense indices [0, node_count). Edges are stored once and
// indexed from both endpoints, so forward (est/eft) and backward (lst/lft)
// passes are O(V + E). The container itself does not prevent cycles while
// edges are being added; validate() / topological_order() detect them.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/mutex.hpp"

namespace medcc::dag {

using NodeId = std::size_t;
using EdgeId = std::size_t;

/// A directed edge from `src` to `dst`.
struct Edge {
  NodeId src;
  NodeId dst;
};

class Dag {
public:
  Dag() = default;
  /// Creates a graph with `nodes` isolated nodes.
  explicit Dag(std::size_t nodes) : out_(nodes), in_(nodes) {}

  // The memoized topological order rides along on copy/move (it stays
  // valid for an identical edge set); the cache mutex itself does not.
  Dag(const Dag& other);
  Dag& operator=(const Dag& other);
  Dag(Dag&& other) noexcept;
  Dag& operator=(Dag&& other) noexcept;
  ~Dag() = default;

  [[nodiscard]] std::size_t node_count() const { return out_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// Appends a new isolated node and returns its id.
  NodeId add_node();

  /// Adds the edge src->dst and returns its id.
  /// Parallel edges and self-loops are rejected.
  EdgeId add_edge(NodeId src, NodeId dst);

  /// True if the edge src->dst exists.
  [[nodiscard]] bool has_edge(NodeId src, NodeId dst) const;

  /// Edge ids leaving / entering `node`.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId node) const {
    MEDCC_EXPECTS(node < node_count());
    return out_[node];
  }
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId node) const {
    MEDCC_EXPECTS(node < node_count());
    return in_[node];
  }

  [[nodiscard]] const Edge& edge(EdgeId id) const {
    MEDCC_EXPECTS(id < edges_.size());
    return edges_[id];
  }

  [[nodiscard]] std::size_t out_degree(NodeId node) const {
    return out_edges(node).size();
  }
  [[nodiscard]] std::size_t in_degree(NodeId node) const {
    return in_edges(node).size();
  }

  /// Successor / predecessor node ids (materialized).
  [[nodiscard]] std::vector<NodeId> successors(NodeId node) const;
  [[nodiscard]] std::vector<NodeId> predecessors(NodeId node) const;

  /// Nodes with no incoming / outgoing edges.
  [[nodiscard]] std::vector<NodeId> sources() const;
  [[nodiscard]] std::vector<NodeId> sinks() const;

  /// Kahn topological order, or nullopt if the graph contains a cycle.
  /// Memoized: the first call computes and caches the order (thread-safe;
  /// concurrent readers share the cached copy), mutation via add_node /
  /// add_edge invalidates it.
  [[nodiscard]] std::optional<std::vector<NodeId>> topological_order() const;

  [[nodiscard]] bool is_acyclic() const {
    return topological_order().has_value();
  }

  /// True if `target` is reachable from `origin` along directed edges.
  [[nodiscard]] bool reachable(NodeId origin, NodeId target) const;

  /// Per-node reachability bitmap from `origin` (BFS).
  [[nodiscard]] std::vector<bool> reachable_set(NodeId origin) const;

  /// Ids of edges (u,v) for which another u->v path exists; removing them
  /// leaves an equivalent precedence relation (transitive reduction).
  [[nodiscard]] std::vector<EdgeId> redundant_edges() const;

private:
  using TopoCache = std::shared_ptr<const std::optional<std::vector<NodeId>>>;

  [[nodiscard]] std::optional<std::vector<NodeId>>
  compute_topological_order() const;
  [[nodiscard]] TopoCache topo_cache_snapshot() const;
  void invalidate_topo_cache();

  /// The graph structure itself is NOT internally synchronized:
  /// concurrent reads are safe, but add_node / add_edge require external
  /// synchronization like any other container. Only the topo-order cache
  /// below is protected, so concurrent *readers* may race on its first
  /// computation and share the published snapshot safely.
  MEDCC_NOT_GUARDED std::vector<Edge> edges_;
  MEDCC_NOT_GUARDED std::vector<std::vector<EdgeId>> out_;
  MEDCC_NOT_GUARDED std::vector<std::vector<EdgeId>> in_;
  /// Lazily computed topological order (or cached "has a cycle" verdict).
  /// The pointee is const: immutable once published, so readers can keep
  /// using a snapshot after invalidation swaps the pointer out.
  mutable TopoCache topo_cache_ MEDCC_GUARDED_BY(topo_mutex_);
  mutable util::Mutex topo_mutex_;
};

}  // namespace medcc::dag
