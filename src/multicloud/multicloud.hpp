// Multi-cloud workflow scheduling -- the paper's stated future work:
// "We also plan to incorporate the cost of inter-cloud data movement into
//  workflow scheduling in multi-cloud environments. Such data transfer may
//  pose some restrictions on VM provisioning as we need to consider VMs'
//  connectivity to support inter-module communication based on the
//  available bandwidth in the cloud infrastructure."
//
// The model generalizes Section III: a module is mapped to a (cloud site,
// VM type) pair. Transfers within a site remain free and instantaneous
// (shared storage); transfers between sites take DS/BW + d time and cost
// CR * DS (Eqs. 4-5 with CR > 0).
#pragma once

#include <string>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/vm_type.hpp"
#include "dag/critical_path.hpp"
#include "workflow/workflow.hpp"

namespace medcc::multicloud {

using workflow::NodeId;
using workflow::Workflow;

/// One IaaS provider/datacenter with its own VM catalog.
struct CloudSite {
  std::string name;
  cloud::VmCatalog catalog;
};

/// Directed inter-site link parameters (applied to every site pair unless
/// overridden; intra-site transfers are always free and instantaneous).
struct InterCloudLink {
  double bandwidth = 0.0;          ///< data units per time unit; 0 = infinite
  double delay = 0.0;              ///< d'_pq
  double cost_per_unit = 0.0;      ///< CR
};

/// The federation: sites plus a default inter-site link (optionally
/// overridden per ordered pair).
class Federation {
public:
  Federation(std::vector<CloudSite> sites, InterCloudLink default_link);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const CloudSite& site(std::size_t s) const {
    MEDCC_EXPECTS(s < sites_.size());
    return sites_[s];
  }

  /// Overrides the link for the ordered pair (from, to).
  void set_link(std::size_t from, std::size_t to, InterCloudLink link);

  [[nodiscard]] const InterCloudLink& link(std::size_t from,
                                           std::size_t to) const;

  /// Transfer time / cost of `data` units from site a to site b.
  [[nodiscard]] double transfer_time(std::size_t a, std::size_t b,
                                     double data) const;
  [[nodiscard]] double transfer_cost(std::size_t a, std::size_t b,
                                     double data) const;

private:
  std::vector<CloudSite> sites_;
  InterCloudLink default_link_;
  /// Sparse overrides keyed by from * site_count + to.
  std::vector<std::pair<std::size_t, InterCloudLink>> overrides_;
};

/// One module's placement.
struct Placement {
  std::size_t site = 0;
  std::size_t type = 0;

  [[nodiscard]] bool operator==(const Placement&) const = default;
};

/// A multi-cloud schedule: a placement per module id.
struct McSchedule {
  std::vector<Placement> of;

  [[nodiscard]] bool operator==(const McSchedule&) const = default;
};

/// A multi-cloud MED-CC instance.
class McInstance {
public:
  McInstance(Workflow wf, Federation federation,
             cloud::BillingPolicy billing = cloud::BillingPolicy::per_unit_time());

  [[nodiscard]] const Workflow& workflow() const { return workflow_; }
  [[nodiscard]] const Federation& federation() const { return federation_; }
  [[nodiscard]] const cloud::BillingPolicy& billing() const {
    return billing_;
  }
  [[nodiscard]] std::size_t module_count() const {
    return workflow_.module_count();
  }

  /// Execution time / billed cost of module i at placement p.
  [[nodiscard]] double time(NodeId i, const Placement& p) const;
  [[nodiscard]] double cost(NodeId i, const Placement& p) const;

private:
  Workflow workflow_;
  Federation federation_;
  cloud::BillingPolicy billing_;
};

/// Full evaluation: critical-path makespan with placement-dependent edge
/// weights, plus execution and inter-cloud transfer costs.
struct McEvaluation {
  double med = 0.0;
  double cost = 0.0;           ///< execution + transfer
  double transfer_cost = 0.0;  ///< inter-cloud share of `cost`
  dag::CpmResult cpm;
};

[[nodiscard]] McEvaluation evaluate(const McInstance& inst,
                                    const McSchedule& schedule);

/// The best single-site least-cost schedule: every module on one site,
/// each at its cheapest type (no inter-cloud transfers). Always feasible;
/// its cost is the budget floor the multi-cloud CG uses.
[[nodiscard]] McSchedule single_site_least_cost(const McInstance& inst);

/// Multi-cloud Critical-Greedy: generalizes Alg. 1 -- starting from the
/// best single-site least-cost schedule, repeatedly move one *critical*
/// module to the (site, type) placement with the largest end-to-end delay
/// decrease whose *total* cost increase (execution + incident transfer
/// cost changes) fits the remaining budget. dT is evaluated on the true
/// makespan because placement changes also re-weight incident edges.
struct McResult {
  McSchedule schedule;
  McEvaluation eval;
  std::size_t iterations = 0;
};
[[nodiscard]] McResult critical_greedy_mc(const McInstance& inst,
                                          double budget);

}  // namespace medcc::multicloud
