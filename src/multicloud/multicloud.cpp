#include "multicloud/multicloud.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace medcc::multicloud {

Federation::Federation(std::vector<CloudSite> sites,
                       InterCloudLink default_link)
    : sites_(std::move(sites)), default_link_(default_link) {
  if (sites_.empty())
    throw InvalidArgument("Federation: at least one site required");
  for (const auto& site : sites_)
    if (site.catalog.empty())
      throw InvalidArgument("Federation: site " + site.name +
                            " has an empty catalog");
  if (default_link_.bandwidth < 0.0 || default_link_.delay < 0.0 ||
      default_link_.cost_per_unit < 0.0)
    throw InvalidArgument("Federation: negative link parameter");
}

void Federation::set_link(std::size_t from, std::size_t to,
                          InterCloudLink link) {
  MEDCC_EXPECTS(from < sites_.size() && to < sites_.size());
  if (from == to)
    throw InvalidArgument("Federation: intra-site links are implicit");
  const std::size_t key = from * sites_.size() + to;
  for (auto& [k, l] : overrides_) {
    if (k == key) {
      l = link;
      return;
    }
  }
  overrides_.emplace_back(key, link);
}

const InterCloudLink& Federation::link(std::size_t from,
                                       std::size_t to) const {
  MEDCC_EXPECTS(from < sites_.size() && to < sites_.size());
  const std::size_t key = from * sites_.size() + to;
  for (const auto& [k, l] : overrides_)
    if (k == key) return l;
  return default_link_;
}

double Federation::transfer_time(std::size_t a, std::size_t b,
                                 double data) const {
  if (a == b || data <= 0.0) return 0.0;
  const auto& l = link(a, b);
  const double wire = l.bandwidth > 0.0 ? data / l.bandwidth : 0.0;
  return wire + l.delay;
}

double Federation::transfer_cost(std::size_t a, std::size_t b,
                                 double data) const {
  if (a == b || data <= 0.0) return 0.0;
  return link(a, b).cost_per_unit * data;
}

McInstance::McInstance(Workflow wf, Federation federation,
                       cloud::BillingPolicy billing)
    : workflow_(std::move(wf)),
      federation_(std::move(federation)),
      billing_(billing) {
  workflow_.ensure_valid();
}

double McInstance::time(NodeId i, const Placement& p) const {
  const auto& mod = workflow_.module(i);
  if (mod.is_fixed()) return *mod.fixed_time;
  MEDCC_EXPECTS(p.site < federation_.site_count());
  return cloud::execution_time(mod.workload,
                               federation_.site(p.site).catalog.type(p.type));
}

double McInstance::cost(NodeId i, const Placement& p) const {
  const auto& mod = workflow_.module(i);
  if (mod.is_fixed()) return 0.0;
  MEDCC_EXPECTS(p.site < federation_.site_count());
  const auto& vm = federation_.site(p.site).catalog.type(p.type);
  return cloud::execution_cost(cloud::execution_time(mod.workload, vm), vm,
                               billing_);
}

McEvaluation evaluate(const McInstance& inst, const McSchedule& schedule) {
  const auto& wf = inst.workflow();
  MEDCC_EXPECTS(schedule.of.size() == wf.module_count());

  std::vector<double> node_weights(wf.module_count());
  for (NodeId i = 0; i < wf.module_count(); ++i)
    node_weights[i] = inst.time(i, schedule.of[i]);

  std::vector<double> edge_weights(wf.graph().edge_count());
  McEvaluation eval;
  for (dag::EdgeId e = 0; e < wf.graph().edge_count(); ++e) {
    const auto& edge = wf.graph().edge(e);
    const std::size_t sa = schedule.of[edge.src].site;
    const std::size_t sb = schedule.of[edge.dst].site;
    edge_weights[e] =
        inst.federation().transfer_time(sa, sb, wf.data_size(e));
    eval.transfer_cost +=
        inst.federation().transfer_cost(sa, sb, wf.data_size(e));
  }

  eval.cpm = dag::compute_cpm(wf.graph(), node_weights, edge_weights);
  eval.med = eval.cpm.makespan;
  eval.cost = eval.transfer_cost;
  for (NodeId i = 0; i < wf.module_count(); ++i)
    eval.cost += inst.cost(i, schedule.of[i]);
  return eval;
}

McSchedule single_site_least_cost(const McInstance& inst) {
  const auto& wf = inst.workflow();
  McSchedule best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < inst.federation().site_count(); ++s) {
    McSchedule candidate;
    candidate.of.assign(wf.module_count(), Placement{s, 0});
    double total = 0.0;
    for (NodeId i = 0; i < wf.module_count(); ++i) {
      const auto& catalog = inst.federation().site(s).catalog;
      Placement pick{s, 0};
      for (std::size_t j = 1; j < catalog.size(); ++j) {
        const Placement p{s, j};
        const double cj = inst.cost(i, p), cb = inst.cost(i, pick);
        // Exact tie-break on CE matrix entries (copied, not accumulated).
        if (cj < cb ||
            (cj == cb &&  // medcc-lint: allow(float-eq)
             inst.time(i, p) < inst.time(i, pick)))
          pick = p;
      }
      candidate.of[i] = pick;
      total += inst.cost(i, pick);
    }
    if (total < best_cost) {
      best_cost = total;
      best = std::move(candidate);
    }
  }
  return best;
}

McResult critical_greedy_mc(const McInstance& inst, double budget) {
  McResult result;
  result.schedule = single_site_least_cost(inst);
  McEvaluation eval = evaluate(inst, result.schedule);
  if (budget < eval.cost) {
    std::ostringstream os;
    os << "critical_greedy_mc: budget " << budget
       << " below the single-site least-cost " << eval.cost;
    throw Infeasible(os.str());
  }

  const auto computing = inst.workflow().computing_modules();
  const double eps = 1e-9 * std::max(1.0, budget);

  for (;;) {
    const double left = budget - eval.cost;
    if (left <= eps) break;

    bool found = false;
    NodeId best_module = 0;
    Placement best_placement{};
    double best_dt = 0.0;
    double best_dc = 0.0;
    McEvaluation best_eval;

    for (NodeId i : computing) {
      if (!eval.cpm.critical[i]) continue;
      const Placement cur = result.schedule.of[i];
      for (std::size_t s = 0; s < inst.federation().site_count(); ++s) {
        const auto& catalog = inst.federation().site(s).catalog;
        for (std::size_t j = 0; j < catalog.size(); ++j) {
          const Placement p{s, j};
          if (p == cur) continue;
          // Alg. 1's criterion: rank by the module's execution-time
          // decrease. Cheap local pre-filter first; then a full global
          // evaluation for the cost delta (which includes incident
          // transfer-cost changes) and a safety check that cross-site
          // edge delays do not grow the makespan.
          const double dt = inst.time(i, cur) - inst.time(i, p);
          if (dt <= 0.0) continue;
          // Only an at-least-as-good dt can win (equal dt still needs the
          // evaluation for the min-dc tie-break); skip the rest.
          if (found && dt < best_dt) continue;
          result.schedule.of[i] = p;
          const auto cand = evaluate(inst, result.schedule);
          result.schedule.of[i] = cur;
          const double dc = cand.cost - eval.cost;
          if (dc > left + eps) continue;
          if (cand.med > eval.med + 1e-12) continue;  // edge delays dominate
          if (!found || dt > best_dt || (dt == best_dt && dc < best_dc)) {
            found = true;
            best_module = i;
            best_placement = p;
            best_dt = dt;
            best_dc = dc;
            best_eval = cand;
          }
        }
      }
    }
    if (!found) break;
    result.schedule.of[best_module] = best_placement;
    eval = std::move(best_eval);
    ++result.iterations;
  }

  result.eval = std::move(eval);
  MEDCC_ENSURES(result.eval.cost <= budget + 1e-6 * std::max(1.0, budget));
  return result;
}

}  // namespace medcc::multicloud
