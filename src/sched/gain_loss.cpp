#include "sched/gain_loss.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "sched/bounds.hpp"
#include "sched/verify_hook.hpp"

namespace medcc::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double cost_eps(double budget) { return 1e-9 * std::max(1.0, budget); }

/// Makespan after hypothetically moving module i to type j.
double makespan_if(const Instance& inst, std::vector<double>& weights,
                   NodeId i, std::size_t j) {
  const double saved = weights[i];
  weights[i] = inst.time(i, j);
  const double ms = dag::makespan(inst.workflow().graph(), weights,
                                  inst.edge_times());
  weights[i] = saved;
  return ms;
}

struct Move {
  NodeId module = 0;
  std::size_t type = 0;
  double weight = 0.0;
  double dt = 0.0;
  double dc = 0.0;
};

}  // namespace

Result gain(const Instance& inst, double budget, GainLossVariant variant,
            GainMoveSet move_set) {
  Result result;
  result.schedule = least_cost_schedule(inst);
  double current_cost = total_cost(inst, result.schedule);
  if (budget < current_cost) {
    std::ostringstream os;
    os << "gain: budget " << budget << " below least-cost cost "
       << current_cost;
    throw Infeasible(os.str());
  }
  auto weights = durations(inst, result.schedule);
  const auto computing = inst.workflow().computing_modules();
  const double eps = cost_eps(budget);

  // Candidate target types for task i given the current assignment.
  const auto targets = [&](NodeId i,
                           std::size_t cur) -> std::vector<std::size_t> {
    if (move_set == GainMoveSet::AllPairs) {
      std::vector<std::size_t> all;
      for (std::size_t j = 0; j < inst.type_count(); ++j)
        if (j != cur) all.push_back(j);
      return all;
    }
    // FastestType: the single type with minimum execution time for i
    // (ties -> cheaper).
    std::size_t best = cur;
    for (std::size_t j = 0; j < inst.type_count(); ++j) {
      if (inst.time(i, j) < inst.time(i, best) ||
          // Exact tie-break on TE matrix entries (copied, not
          // accumulated).
          (inst.time(i, j) == inst.time(i, best) &&  // medcc-lint: allow(float-eq)
           inst.cost(i, j) < inst.cost(i, best)))
        best = j;
    }
    if (best == cur) return {};
    return {best};
  };

  if (variant == GainLossVariant::V3) {
    // Static weights against the initial least-cost schedule; each task is
    // reassigned at most once, in descending weight order.
    std::vector<Move> moves;
    for (NodeId i : computing) {
      const std::size_t cur = result.schedule.type_of[i];
      for (std::size_t j : targets(i, cur)) {
        const double dt = inst.time(i, cur) - inst.time(i, j);
        const double dc = inst.cost(i, j) - inst.cost(i, cur);
        if (dt <= 0.0) continue;
        moves.push_back(Move{i, j, dc <= 0.0 ? kInf : dt / dc, dt, dc});
      }
    }
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& a, const Move& b) {
                       if (a.weight != b.weight) return a.weight > b.weight;
                       return a.dt > b.dt;
                     });
    std::vector<bool> moved(inst.module_count(), false);
    for (const Move& mv : moves) {
      if (moved[mv.module]) continue;
      if (mv.dc > budget - current_cost + eps) continue;
      result.schedule.type_of[mv.module] = mv.type;
      current_cost += mv.dc;
      moved[mv.module] = true;
      ++result.iterations;
    }
    result.eval = evaluate(inst, result.schedule);
    detail::check_schedule_invariants(inst, result.schedule, result.eval,
                                      budget, detail::kUnconstrained, "gain");
    return result;
  }

  // Variants 1 and 2: fully dynamic greedy.
  for (;;) {
    const double left = budget - current_cost;
    if (left <= eps) break;
    const double med_cur =
        variant == GainLossVariant::V2
            ? dag::makespan(inst.workflow().graph(), weights,
                            inst.edge_times())
            : 0.0;

    bool found = false;
    Move best;
    for (NodeId i : computing) {
      const std::size_t cur = result.schedule.type_of[i];
      for (std::size_t j : targets(i, cur)) {
        const double dc = inst.cost(i, j) - inst.cost(i, cur);
        if (dc > left + eps) continue;
        double dt;
        if (variant == GainLossVariant::V2) {
          dt = med_cur - makespan_if(inst, weights, i, j);
        } else {
          dt = inst.time(i, cur) - inst.time(i, j);
        }
        if (dt <= 0.0) continue;
        const double w = dc <= 0.0 ? kInf : dt / dc;
        if (!found || w > best.weight ||
            (w == best.weight && dt > best.dt)) {
          found = true;
          best = Move{i, j, w, dt, dc};
        }
      }
    }
    if (!found) break;
    result.schedule.type_of[best.module] = best.type;
    weights[best.module] = inst.time(best.module, best.type);
    current_cost += best.dc;
    ++result.iterations;
  }
  result.eval = evaluate(inst, result.schedule);
  detail::check_schedule_invariants(inst, result.schedule, result.eval, budget,
                                    detail::kUnconstrained, "gain");
  return result;
}

Result loss(const Instance& inst, double budget, GainLossVariant variant) {
  const double cmin = total_cost(inst, least_cost_schedule(inst));
  if (budget < cmin) {
    std::ostringstream os;
    os << "loss: budget " << budget << " below least-cost cost " << cmin;
    throw Infeasible(os.str());
  }

  Result result;
  result.schedule = fastest_schedule(inst);
  double current_cost = total_cost(inst, result.schedule);
  auto weights = durations(inst, result.schedule);
  const auto computing = inst.workflow().computing_modules();
  const double eps = cost_eps(budget);

  const auto over_budget = [&] { return current_cost > budget + eps; };

  if (variant == GainLossVariant::V3 && over_budget()) {
    std::vector<Move> moves;
    for (NodeId i : computing) {
      const std::size_t cur = result.schedule.type_of[i];
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        if (j == cur) continue;
        const double saving = inst.cost(i, cur) - inst.cost(i, j);
        if (saving <= 0.0) continue;
        const double loss_t = inst.time(i, j) - inst.time(i, cur);
        moves.push_back(
            Move{i, j, loss_t <= 0.0 ? -kInf : loss_t / saving, loss_t,
                 -saving});
      }
    }
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& a, const Move& b) {
                       if (a.weight != b.weight) return a.weight < b.weight;
                       return a.dc < b.dc;  // bigger saving first on ties
                     });
    std::vector<bool> moved(inst.module_count(), false);
    for (const Move& mv : moves) {
      if (!over_budget()) break;
      if (moved[mv.module]) continue;
      result.schedule.type_of[mv.module] = mv.type;
      weights[mv.module] = inst.time(mv.module, mv.type);
      current_cost += mv.dc;
      moved[mv.module] = true;
      ++result.iterations;
    }
    // The single static pass can leave the schedule above budget (each task
    // moved at most once, to one target); finish with dynamic downgrades.
  }

  while (over_budget()) {
    const double med_cur =
        variant == GainLossVariant::V2
            ? dag::makespan(inst.workflow().graph(), weights,
                            inst.edge_times())
            : 0.0;
    bool found = false;
    Move best;
    for (NodeId i : computing) {
      const std::size_t cur = result.schedule.type_of[i];
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        if (j == cur) continue;
        const double saving = inst.cost(i, cur) - inst.cost(i, j);
        if (saving <= 0.0) continue;
        double loss_t;
        if (variant == GainLossVariant::V2) {
          loss_t = makespan_if(inst, weights, i, j) - med_cur;
        } else {
          loss_t = inst.time(i, j) - inst.time(i, cur);
        }
        const double w = loss_t <= 0.0 ? -kInf : loss_t / saving;
        if (!found || w < best.weight ||
            (w == best.weight && saving > -best.dc)) {
          found = true;
          best = Move{i, j, w, loss_t, -saving};
        }
      }
    }
    MEDCC_ENSURES(found);  // guaranteed while cost > Cmin
    result.schedule.type_of[best.module] = best.type;
    weights[best.module] = inst.time(best.module, best.type);
    current_cost += best.dc;
    ++result.iterations;
  }

  result.eval = evaluate(inst, result.schedule);
  MEDCC_ENSURES(result.eval.cost <= budget + 1e-6 * std::max(1.0, budget));
  detail::check_schedule_invariants(inst, result.schedule, result.eval, budget,
                                    detail::kUnconstrained, "loss");
  return result;
}

}  // namespace medcc::sched
