#include "sched/verify_hook.hpp"

#if MEDCC_CHECK_INVARIANTS
#include "analysis/verify.hpp"
#endif

namespace medcc::sched::detail {

#if MEDCC_CHECK_INVARIANTS

void check_schedule_invariants(const Instance& inst, const Schedule& schedule,
                               const Evaluation& eval, double budget,
                               double deadline, const char* scheduler) {
  analysis::VerifyOptions options;
  options.budget = budget;
  options.deadline = deadline;
  analysis::verify_schedule(inst, schedule, eval, options)
      .throw_if_errors(scheduler);
}

void check_placement_invariants(const Instance& inst,
                                const std::vector<cloud::VmType>& machines,
                                const std::vector<HeftPlacement>& placement,
                                double makespan, const char* scheduler) {
  analysis::verify_placement(inst, machines, placement, makespan)
      .throw_if_errors(scheduler);
}

void check_reuse_invariants(const Instance& inst, const Schedule& schedule,
                            const ReusePlan& plan, const char* scheduler) {
  analysis::verify_reuse_plan(inst, schedule, plan)
      .throw_if_errors(scheduler);
}

#else

void check_schedule_invariants(const Instance&, const Schedule&,
                               const Evaluation&, double, double,
                               const char*) {}

void check_placement_invariants(const Instance&,
                                const std::vector<cloud::VmType>&,
                                const std::vector<HeftPlacement>&, double,
                                const char*) {}

void check_reuse_invariants(const Instance&, const Schedule&,
                            const ReusePlan&, const char*) {}

#endif  // MEDCC_CHECK_INVARIANTS

}  // namespace medcc::sched::detail
