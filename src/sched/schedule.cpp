#include "sched/schedule.hpp"

#include <sstream>

namespace medcc::sched {

std::vector<double> durations(const Instance& inst, const Schedule& schedule) {
  const std::size_t m = inst.module_count();
  MEDCC_EXPECTS(schedule.type_of.size() == m);
  std::vector<double> d(m);
  for (NodeId i = 0; i < m; ++i) {
    MEDCC_EXPECTS(schedule.type_of[i] < inst.type_count());
    d[i] = inst.time(i, schedule.type_of[i]);
  }
  return d;
}

Evaluation evaluate(const Instance& inst, const Schedule& schedule) {
  Evaluation eval;
  const auto weights = durations(inst, schedule);
  eval.cpm =
      dag::compute_cpm(inst.workflow().graph(), weights, inst.edge_times());
  eval.med = eval.cpm.makespan;
  eval.cost = total_cost(inst, schedule);
  return eval;
}

double total_cost(const Instance& inst, const Schedule& schedule) {
  MEDCC_EXPECTS(schedule.type_of.size() == inst.module_count());
  double cost = inst.total_transfer_cost();
  for (NodeId i = 0; i < inst.module_count(); ++i)
    cost += inst.cost(i, schedule.type_of[i]);
  return cost;
}

std::string to_string(const Instance& inst, const Schedule& schedule) {
  std::ostringstream os;
  bool first = true;
  for (NodeId i : inst.workflow().computing_modules()) {
    if (!first) os << ' ';
    first = false;
    os << inst.workflow().module(i).name << "->"
       << inst.catalog().type(schedule.type_of[i]).name;
  }
  return os.str();
}

}  // namespace medcc::sched
