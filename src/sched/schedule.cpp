#include "sched/schedule.hpp"

#include <sstream>

#include "dag/cpm_kernel.hpp"

namespace medcc::sched {

std::vector<double> durations(const Instance& inst, const Schedule& schedule) {
  const std::size_t m = inst.module_count();
  MEDCC_EXPECTS(schedule.type_of.size() == m);
  std::vector<double> d(m);
  for (NodeId i = 0; i < m; ++i) {
    MEDCC_EXPECTS(schedule.type_of[i] < inst.type_count());
    d[i] = inst.time(i, schedule.type_of[i]);
  }
  return d;
}

Evaluation evaluate(const Instance& inst, const Schedule& schedule) {
  const std::size_t m = inst.module_count();
  MEDCC_EXPECTS(schedule.type_of.size() == m);
  // Kernel path: the instance's frozen FlatDag (validated topo order, edge
  // times inlined) plus a per-thread workspace make repeated evaluations
  // cheap; export_result materialises a CpmResult bit-identical to the
  // legacy dag::compute_cpm (differentially tested).
  static thread_local dag::CpmWorkspace ws;
  const dag::FlatDag& flat = inst.flat_dag();
  ws.prepare(flat.node_count());
  for (NodeId i = 0; i < m; ++i) {
    MEDCC_EXPECTS(schedule.type_of[i] < inst.type_count());
    ws.weights[i] = inst.time(i, schedule.type_of[i]);
  }
  Evaluation eval;
  dag::cpm_into(flat, ws);
  eval.cpm = dag::export_result(flat, ws);
  eval.med = eval.cpm.makespan;
  eval.cost = total_cost(inst, schedule);
  return eval;
}

double total_cost(const Instance& inst, const Schedule& schedule) {
  MEDCC_EXPECTS(schedule.type_of.size() == inst.module_count());
  double cost = inst.total_transfer_cost();
  for (NodeId i = 0; i < inst.module_count(); ++i)
    cost += inst.cost(i, schedule.type_of[i]);
  return cost;
}

std::string to_string(const Instance& inst, const Schedule& schedule) {
  std::ostringstream os;
  bool first = true;
  for (NodeId i : inst.workflow().computing_modules()) {
    if (!first) os << ' ';
    first = false;
    os << inst.workflow().module(i).name << "->"
       << inst.catalog().type(schedule.type_of[i]).name;
  }
  return os.str();
}

}  // namespace medcc::sched
