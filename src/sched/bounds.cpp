#include "sched/bounds.hpp"

namespace medcc::sched {
namespace {

template <typename Better>
Schedule argmin_schedule(const Instance& inst, Better better) {
  Schedule s;
  s.type_of.assign(inst.module_count(), 0);
  for (NodeId i = 0; i < inst.module_count(); ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < inst.type_count(); ++j)
      if (better(inst, i, j, best)) best = j;
    s.type_of[i] = best;
  }
  return s;
}

}  // namespace

Schedule least_cost_schedule(const Instance& inst) {
  return argmin_schedule(
      inst, [](const Instance& in, NodeId i, std::size_t j, std::size_t best) {
        const double cj = in.cost(i, j), cb = in.cost(i, best);
        if (cj != cb) return cj < cb;
        return in.time(i, j) < in.time(i, best);
      });
}

Schedule fastest_schedule(const Instance& inst) {
  return argmin_schedule(
      inst, [](const Instance& in, NodeId i, std::size_t j, std::size_t best) {
        const double tj = in.time(i, j), tb = in.time(i, best);
        if (tj != tb) return tj < tb;
        return in.cost(i, j) < in.cost(i, best);
      });
}

CostBounds cost_bounds(const Instance& inst) {
  return CostBounds{total_cost(inst, least_cost_schedule(inst)),
                    total_cost(inst, fastest_schedule(inst))};
}

std::vector<double> budget_levels(const CostBounds& bounds,
                                  std::size_t levels) {
  MEDCC_EXPECTS(levels >= 1);
  MEDCC_EXPECTS(bounds.cmax >= bounds.cmin);
  const double delta =
      (bounds.cmax - bounds.cmin) / static_cast<double>(levels);
  std::vector<double> budgets;
  budgets.reserve(levels);
  for (std::size_t k = 1; k <= levels; ++k)
    budgets.push_back(bounds.cmin + static_cast<double>(k) * delta);
  return budgets;
}

}  // namespace medcc::sched
