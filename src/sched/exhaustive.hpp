// Exact MED-CC by exhaustive search with branch-and-bound, used for the
// small-scale optimality comparisons (Table III, Fig. 7). The search
// enumerates the n^m type assignments depth-first and prunes on
//  * cost: partial cost + sum of per-module minimum costs of the
//    unassigned suffix must stay within the budget;
//  * time: an optimistic makespan (unassigned modules at their fastest
//    type) must beat the incumbent.
#pragma once

#include <cstdint>

#include "sched/schedule.hpp"

namespace medcc::sched {

struct ExhaustiveOptions {
  /// Abort guard: maximum number of search nodes visited. The search
  /// throws Error when exceeded, so callers never silently get a
  /// non-optimal "optimal".
  std::uint64_t max_nodes = 200'000'000;
};

struct ExhaustiveResult {
  Schedule schedule;
  Evaluation eval;
  std::uint64_t nodes_visited = 0;
};

/// Returns the optimal schedule (minimum MED, cost <= budget).
/// Ties on MED are broken towards lower cost.
/// Throws Infeasible when even the least-cost schedule exceeds the budget.
[[nodiscard]] ExhaustiveResult exhaustive_optimal(
    const Instance& inst, double budget, const ExhaustiveOptions& options = {});

}  // namespace medcc::sched
