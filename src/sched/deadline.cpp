#include "sched/deadline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/verify_hook.hpp"

namespace medcc::sched {

DeadlineResult deadline_loss(const Instance& inst, double deadline) {
  DeadlineResult result;
  result.schedule = fastest_schedule(inst);
  Evaluation eval = evaluate(inst, result.schedule);
  if (eval.med > deadline + 1e-9) {
    std::ostringstream os;
    os << "deadline_loss: deadline " << deadline
       << " below the fastest achievable MED " << eval.med;
    throw Infeasible(os.str());
  }

  const auto computing = inst.workflow().computing_modules();
  auto weights = durations(inst, result.schedule);

  for (;;) {
    bool found = false;
    NodeId best_module = 0;
    std::size_t best_type = 0;
    double best_saving = 0.0;
    double best_med = 0.0;
    for (NodeId i : computing) {
      const std::size_t cur = result.schedule.type_of[i];
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        if (j == cur) continue;
        const double saving = inst.cost(i, cur) - inst.cost(i, j);
        if (saving <= 0.0) continue;
        // Slack pre-check: a downgrade that stretches i beyond its total
        // float cannot meet the deadline; this avoids most CPM recomputes.
        const double stretch = inst.time(i, j) - inst.time(i, cur);
        const double slack =
            (deadline - eval.med) + eval.cpm.buffer[i];
        if (stretch > slack + 1e-12) continue;
        const double saved_weight = weights[i];
        weights[i] = inst.time(i, j);
        const double med = dag::makespan(inst.workflow().graph(), weights,
                                         inst.edge_times());
        weights[i] = saved_weight;
        if (med > deadline + 1e-9) continue;
        if (!found || saving > best_saving ||
            // Exact tie-break on copied cost deltas.
            (saving == best_saving && med < best_med)) {  // medcc-lint: allow(float-eq)
          found = true;
          best_module = i;
          best_type = j;
          best_saving = saving;
          best_med = med;
        }
      }
    }
    if (!found) break;
    result.schedule.type_of[best_module] = best_type;
    weights[best_module] = inst.time(best_module, best_type);
    eval = evaluate(inst, result.schedule);
    ++result.iterations;
  }

  result.eval = std::move(eval);
  MEDCC_ENSURES(result.eval.med <= deadline + 1e-9);
  detail::check_schedule_invariants(inst, result.schedule, result.eval,
                                    detail::kUnconstrained, deadline,
                                    "deadline_loss");
  return result;
}

namespace {

struct DeadlineSearch {
  const Instance* inst = nullptr;
  double deadline = 0.0;
  std::uint64_t max_nodes = 0;
  std::uint64_t nodes = 0;
  std::vector<NodeId> order;
  std::vector<double> min_cost_suffix;
  std::vector<double> weights;  ///< unassigned seeded with fastest times
  Schedule current;
  Schedule best;
  double best_cost = std::numeric_limits<double>::infinity();
  double best_med = std::numeric_limits<double>::infinity();

  void dfs(std::size_t depth, double cost_so_far) {
    if (++nodes > max_nodes)
      throw Error("min_cost_under_deadline_exact: node budget exceeded");
    // Cost bound.
    if (cost_so_far + min_cost_suffix[depth] > best_cost + 1e-12) return;
    // Deadline bound: optimistic makespan with the unassigned suffix at
    // its fastest must already meet the deadline.
    const double optimistic = dag::makespan(inst->workflow().graph(),
                                            weights, inst->edge_times());
    if (optimistic > deadline + 1e-9) return;
    if (depth == order.size()) {
      const double cost = cost_so_far;
      if (cost < best_cost - 1e-12 ||
          (cost <= best_cost + 1e-12 && optimistic < best_med)) {
        best_cost = cost;
        best_med = optimistic;
        best = current;
      }
      return;
    }
    const NodeId i = order[depth];
    const double saved = weights[i];
    for (std::size_t j = 0; j < inst->type_count(); ++j) {
      current.type_of[i] = j;
      weights[i] = inst->time(i, j);
      dfs(depth + 1, cost_so_far + inst->cost(i, j));
    }
    weights[i] = saved;
  }
};

}  // namespace

DeadlineResult min_cost_under_deadline_exact(const Instance& inst,
                                             double deadline,
                                             std::uint64_t max_nodes) {
  const auto fastest = fastest_schedule(inst);
  const auto fastest_eval = evaluate(inst, fastest);
  if (fastest_eval.med > deadline + 1e-9)
    throw Infeasible(
        "min_cost_under_deadline_exact: deadline below fastest MED");

  DeadlineSearch search;
  search.inst = &inst;
  search.deadline = deadline;
  search.max_nodes = max_nodes;
  search.order = inst.workflow().computing_modules();
  // Big modules first: the deadline bound prunes early.
  std::stable_sort(search.order.begin(), search.order.end(),
                   [&](NodeId a, NodeId b) {
                     return inst.time(a, inst.catalog().fastest_index()) >
                            inst.time(b, inst.catalog().fastest_index());
                   });
  search.min_cost_suffix.assign(search.order.size() + 1, 0.0);
  for (std::size_t k = search.order.size(); k-- > 0;) {
    double mc = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      mc = std::min(mc, inst.cost(search.order[k], j));
    search.min_cost_suffix[k] = search.min_cost_suffix[k + 1] + mc;
  }
  search.weights = durations(inst, fastest);
  search.current.type_of.assign(inst.module_count(), 0);
  search.best = fastest;
  search.best_cost = fastest_eval.cost;
  search.best_med = fastest_eval.med;
  search.dfs(0, inst.total_transfer_cost());

  DeadlineResult result;
  result.schedule = search.best;
  result.eval = evaluate(inst, result.schedule);
  detail::check_schedule_invariants(inst, result.schedule, result.eval,
                                    detail::kUnconstrained, deadline,
                                    "min_cost_under_deadline_exact");
  return result;
}

double budget_for_deadline(const Instance& inst, double deadline,
                           std::size_t levels) {
  const auto bounds = cost_bounds(inst);
  double best = std::numeric_limits<double>::infinity();
  for (double budget : budget_levels(bounds, levels)) {
    try {
      const auto r = critical_greedy(inst, budget);
      if (r.eval.med <= deadline + 1e-9) best = std::min(best, r.eval.cost);
    } catch (const Infeasible&) {
      // degenerate bounds; continue
    }
  }
  // The least-cost schedule itself may already make the deadline.
  const auto least = evaluate(inst, least_cost_schedule(inst));
  if (least.med <= deadline + 1e-9) best = std::min(best, least.cost);
  if (!std::isfinite(best))
    throw Infeasible("budget_for_deadline: no swept budget meets deadline");
  return best;
}

}  // namespace medcc::sched
