// Invariant hook called by every scheduler on its result before it is
// returned to the caller.
//
// In normal builds the hook compiles to a no-op, so release scheduling
// pays nothing. Configuring with -DMEDCC_CHECK_INVARIANTS=ON (the
// Debug/CI setting) routes each call through analysis/verify.hpp and
// throws analysis::InvariantViolation the moment any scheduler emits an
// over-budget, precedence-violating, or mis-evaluated result -- the
// machine-checked counterpart of the paper's feasibility claims.
#pragma once

#include <limits>
#include <vector>

#include "cloud/vm_type.hpp"
#include "sched/heft.hpp"
#include "sched/schedule.hpp"
#include "sched/vm_reuse.hpp"

namespace medcc::sched::detail {

/// Passed for the budget/deadline argument when that constraint does not
/// apply to the scheduler being checked.
inline constexpr double kUnconstrained =
    std::numeric_limits<double>::infinity();

/// Verifies (schedule, eval) against `inst` under `budget` (infinity
/// disables the budget check) and `deadline` (same). `scheduler` names the
/// producer in the violation report.
void check_schedule_invariants(const Instance& inst, const Schedule& schedule,
                               const Evaluation& eval, double budget,
                               double deadline, const char* scheduler);

/// Verifies a bounded-pool placement (HEFT/HBMCT).
void check_placement_invariants(const Instance& inst,
                                const std::vector<cloud::VmType>& machines,
                                const std::vector<HeftPlacement>& placement,
                                double makespan, const char* scheduler);

/// Verifies a VM-reuse plan against its schedule.
void check_reuse_invariants(const Instance& inst, const Schedule& schedule,
                            const ReusePlan& plan, const char* scheduler);

}  // namespace medcc::sched::detail
