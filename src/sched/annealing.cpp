#include "sched/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dag/cpm_kernel.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/verify_hook.hpp"

namespace medcc::sched {
namespace {

/// Greedy repair shared with the GA: while over budget, apply the
/// downgrade losing the least time per dollar saved.
void repair(const Instance& inst, double budget, Schedule& schedule) {
  const auto computing = inst.workflow().computing_modules();
  double cost = total_cost(inst, schedule);
  while (cost > budget + 1e-9) {
    NodeId best_module = 0;
    std::size_t best_type = 0;
    double best_ratio = std::numeric_limits<double>::infinity();
    bool found = false;
    for (NodeId i : computing) {
      const std::size_t cur = schedule.type_of[i];
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        if (j == cur) continue;
        const double saving = inst.cost(i, cur) - inst.cost(i, j);
        if (saving <= 0.0) continue;
        const double loss = inst.time(i, j) - inst.time(i, cur);
        const double ratio = loss <= 0.0
                                 ? -std::numeric_limits<double>::infinity()
                                 : loss / saving;
        if (!found || ratio < best_ratio) {
          found = true;
          best_ratio = ratio;
          best_module = i;
          best_type = j;
        }
      }
    }
    MEDCC_ENSURES(found);
    cost += inst.cost(best_module, best_type) -
            inst.cost(best_module, schedule.type_of[best_module]);
    schedule.type_of[best_module] = best_type;
  }
}

}  // namespace

Result annealing(const Instance& inst, double budget,
                 const AnnealingOptions& options) {
  const auto least = least_cost_schedule(inst);
  if (budget < total_cost(inst, least))
    throw Infeasible("annealing: budget below least-cost schedule cost");

  util::Prng rng(options.seed);
  const auto computing = inst.workflow().computing_modules();
  const dag::FlatDag& flat = inst.flat_dag();

  Schedule current =
      options.seed_with_cg ? critical_greedy(inst, budget).schedule : least;

  // The workspace tracks the forward CPM state of `current`. Each
  // neighbour is delta-evaluated: only the genes the mutation + repair
  // actually changed are pushed through the incremental kernel, which
  // journals the prior values. Accepting a move commits in O(1);
  // rejecting rolls the journal back, restoring the state bit-for-bit.
  dag::CpmWorkspace ws;
  double current_med = dag::makespan_into(flat, durations(inst, current), ws);
  Schedule best = current;
  double best_med = current_med;
  Schedule neighbour = current;  // persistent buffer: no per-iteration alloc

  double temperature =
      std::max(1e-9, options.initial_temperature_fraction * current_med);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    neighbour = current;
    const NodeId i = rng.choice(computing);
    neighbour.type_of[i] = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(inst.type_count()) - 1));
    repair(inst, budget, neighbour);
    for (NodeId m : computing) {
      if (neighbour.type_of[m] != current.type_of[m])
        dag::update_weight(flat, ws, m, inst.time(m, neighbour.type_of[m]));
    }
    const double med = ws.makespan;
    const double delta = med - current_med;
    if (delta <= 0.0 ||
        rng.bernoulli(std::exp(-delta / temperature))) {
      dag::commit(ws);
      std::swap(current.type_of, neighbour.type_of);
      current_med = med;
      if (current_med < best_med) {
        best = current;
        best_med = current_med;
      }
    } else {
      dag::rollback(ws);
    }
    temperature *= options.cooling;
  }

  Result result;
  result.schedule = std::move(best);
  result.eval = evaluate(inst, result.schedule);
  result.iterations = options.iterations;
  MEDCC_ENSURES(result.eval.cost <= budget + 1e-6 * std::max(1.0, budget));
  detail::check_schedule_invariants(inst, result.schedule, result.eval, budget,
                                    detail::kUnconstrained, "annealing");
  return result;
}

}  // namespace medcc::sched
