// Simulated annealing for MED-CC: the second standard metaheuristic
// baseline next to the genetic algorithm. Neighbourhood: change one random
// module's type; over-budget neighbours are repaired the same way the GA
// repairs its offspring (cheapest time-per-dollar downgrades), so the walk
// stays feasible. Geometric cooling with a CG-seeded start.
#pragma once

#include "sched/schedule.hpp"
#include "util/prng.hpp"

namespace medcc::sched {

struct AnnealingOptions {
  std::size_t iterations = 4000;
  /// Initial temperature as a fraction of the seed schedule's MED.
  double initial_temperature_fraction = 0.25;
  double cooling = 0.999;  ///< per-iteration geometric factor
  std::uint64_t seed = 1;
  /// Start from Critical-Greedy's schedule (else from least-cost).
  bool seed_with_cg = true;
};

/// Runs simulated annealing under budget B; returns the best feasible
/// schedule visited. Throws Infeasible when B < Cmin. Deterministic given
/// options.seed.
[[nodiscard]] Result annealing(const Instance& inst, double budget,
                               const AnnealingOptions& options = {});

}  // namespace medcc::sched
