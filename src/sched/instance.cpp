#include "sched/instance.hpp"

namespace medcc::sched {

Instance::Instance(Workflow wf, cloud::VmCatalog catalog,
                   cloud::BillingPolicy billing, cloud::NetworkModel network)
    : workflow_(std::move(wf)),
      catalog_(std::move(catalog)),
      billing_(billing),
      network_(network) {
  workflow_.ensure_valid();
  if (catalog_.empty())
    throw InvalidArgument("Instance: empty VM catalog");
  type_stride_ = catalog_.size();
}

void Instance::finalize_edges() {
  const auto& g = workflow_.graph();
  edge_time_.resize(g.edge_count());
  total_transfer_cost_ = 0.0;
  for (dag::EdgeId e = 0; e < g.edge_count(); ++e) {
    edge_time_[e] = cloud::transfer_time(workflow_.data_size(e), network_);
    total_transfer_cost_ +=
        cloud::transfer_cost(workflow_.data_size(e), network_);
  }
  flat_dag_ = dag::FlatDag(g, edge_time_);
}

Instance Instance::from_model(Workflow wf, cloud::VmCatalog catalog,
                              cloud::BillingPolicy billing,
                              cloud::NetworkModel network) {
  Instance inst(std::move(wf), std::move(catalog), billing, network);
  const std::size_t m = inst.workflow_.module_count();
  const std::size_t n = inst.type_stride_;
  inst.te_.assign(m * n, 0.0);
  inst.ce_.assign(m * n, 0.0);
  for (NodeId i = 0; i < m; ++i) {
    const auto& mod = inst.workflow_.module(i);
    double* te_row = inst.te_.data() + i * n;
    double* ce_row = inst.ce_.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      if (mod.is_fixed()) {
        te_row[j] = *mod.fixed_time;
        ce_row[j] = 0.0;
      } else {
        const double t =
            cloud::execution_time(mod.workload, inst.catalog_.type(j));
        te_row[j] = t;
        ce_row[j] = cloud::execution_cost(t, inst.catalog_.type(j), billing);
      }
    }
  }
  inst.finalize_edges();
  return inst;
}

Instance Instance::from_matrix(Workflow wf, cloud::VmCatalog catalog,
                               const std::vector<std::vector<double>>& times,
                               cloud::BillingPolicy billing,
                               cloud::NetworkModel network) {
  Instance inst(std::move(wf), std::move(catalog), billing, network);
  const std::size_t m = inst.workflow_.module_count();
  const std::size_t n = inst.type_stride_;
  const auto computing = inst.workflow_.computing_modules();
  if (times.size() != computing.size())
    throw InvalidArgument("Instance::from_matrix: row count != computing "
                          "module count");
  for (const auto& row : times) {
    if (row.size() != n)
      throw InvalidArgument("Instance::from_matrix: column count != types");
    for (double t : row)
      if (t < 0.0)
        throw InvalidArgument("Instance::from_matrix: negative time");
  }

  inst.te_.assign(m * n, 0.0);
  inst.ce_.assign(m * n, 0.0);
  std::size_t row = 0;
  for (NodeId i = 0; i < m; ++i) {
    const auto& mod = inst.workflow_.module(i);
    double* te_row = inst.te_.data() + i * n;
    double* ce_row = inst.ce_.data() + i * n;
    if (mod.is_fixed()) {
      for (std::size_t j = 0; j < n; ++j) te_row[j] = *mod.fixed_time;
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      te_row[j] = times[row][j];
      ce_row[j] = cloud::execution_cost(times[row][j],
                                        inst.catalog_.type(j), billing);
    }
    ++row;
  }
  inst.finalize_edges();
  return inst;
}

}  // namespace medcc::sched
