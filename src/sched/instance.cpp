#include "sched/instance.hpp"

namespace medcc::sched {

Instance::Instance(Workflow wf, cloud::VmCatalog catalog,
                   cloud::BillingPolicy billing, cloud::NetworkModel network)
    : workflow_(std::move(wf)),
      catalog_(std::move(catalog)),
      billing_(billing),
      network_(network) {
  workflow_.ensure_valid();
  if (catalog_.empty())
    throw InvalidArgument("Instance: empty VM catalog");
}

void Instance::finalize_edges() {
  const auto& g = workflow_.graph();
  edge_time_.resize(g.edge_count());
  total_transfer_cost_ = 0.0;
  for (dag::EdgeId e = 0; e < g.edge_count(); ++e) {
    edge_time_[e] = cloud::transfer_time(workflow_.data_size(e), network_);
    total_transfer_cost_ +=
        cloud::transfer_cost(workflow_.data_size(e), network_);
  }
}

Instance Instance::from_model(Workflow wf, cloud::VmCatalog catalog,
                              cloud::BillingPolicy billing,
                              cloud::NetworkModel network) {
  Instance inst(std::move(wf), std::move(catalog), billing, network);
  const std::size_t m = inst.workflow_.module_count();
  const std::size_t n = inst.catalog_.size();
  inst.te_.assign(m, std::vector<double>(n, 0.0));
  inst.ce_.assign(m, std::vector<double>(n, 0.0));
  for (NodeId i = 0; i < m; ++i) {
    const auto& mod = inst.workflow_.module(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (mod.is_fixed()) {
        inst.te_[i][j] = *mod.fixed_time;
        inst.ce_[i][j] = 0.0;
      } else {
        const double t =
            cloud::execution_time(mod.workload, inst.catalog_.type(j));
        inst.te_[i][j] = t;
        inst.ce_[i][j] =
            cloud::execution_cost(t, inst.catalog_.type(j), billing);
      }
    }
  }
  inst.finalize_edges();
  return inst;
}

Instance Instance::from_matrix(Workflow wf, cloud::VmCatalog catalog,
                               const std::vector<std::vector<double>>& times,
                               cloud::BillingPolicy billing,
                               cloud::NetworkModel network) {
  Instance inst(std::move(wf), std::move(catalog), billing, network);
  const std::size_t m = inst.workflow_.module_count();
  const std::size_t n = inst.catalog_.size();
  const auto computing = inst.workflow_.computing_modules();
  if (times.size() != computing.size())
    throw InvalidArgument("Instance::from_matrix: row count != computing "
                          "module count");
  for (const auto& row : times) {
    if (row.size() != n)
      throw InvalidArgument("Instance::from_matrix: column count != types");
    for (double t : row)
      if (t < 0.0)
        throw InvalidArgument("Instance::from_matrix: negative time");
  }

  inst.te_.assign(m, std::vector<double>(n, 0.0));
  inst.ce_.assign(m, std::vector<double>(n, 0.0));
  std::size_t row = 0;
  for (NodeId i = 0; i < m; ++i) {
    const auto& mod = inst.workflow_.module(i);
    if (mod.is_fixed()) {
      for (std::size_t j = 0; j < n; ++j) inst.te_[i][j] = *mod.fixed_time;
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      inst.te_[i][j] = times[row][j];
      inst.ce_[i][j] = cloud::execution_cost(times[row][j],
                                             inst.catalog_.type(j), billing);
    }
    ++row;
  }
  inst.finalize_edges();
  return inst;
}

}  // namespace medcc::sched
