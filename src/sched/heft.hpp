// HEFT -- Heterogeneous Earliest Finish Time (Topcuoglu, Hariri, Wu 2002),
// the classic makespan-minimization baseline the related-work section
// builds on. Unlike the MED-CC schedulers, HEFT maps modules onto a
// *bounded pool of concrete machines* (several modules can share one
// machine sequentially), so it exercises the insertion-based scheduling
// substrate the simulator also validates.
//
// With an unbounded pool (one machine of the fastest type per module) HEFT
// degenerates to the fastest schedule, which is exactly what the
// LOSS-family seeds use.
#pragma once

#include <vector>

#include "cloud/vm_type.hpp"
#include "sched/instance.hpp"

namespace medcc::sched {

/// One module's placement in a HEFT schedule.
struct HeftPlacement {
  std::size_t machine = 0;
  double start = 0.0;
  double finish = 0.0;
};

struct HeftResult {
  std::vector<HeftPlacement> placement;  ///< per module id
  double makespan = 0.0;
  /// Upward ranks used for the scheduling order (diagnostics/tests).
  std::vector<double> upward_rank;
};

/// Schedules the instance's workflow on `machines` (a concrete pool of VM
/// instances, each of some catalog type given by its processing power).
/// Uses mean execution times for ranking and insertion-based earliest
/// finish time for placement. Fixed modules run in their fixed duration on
/// any machine.
[[nodiscard]] HeftResult heft(const Instance& inst,
                              const std::vector<cloud::VmType>& machines);

}  // namespace medcc::sched
