#include "sched/pcp.hpp"

#include <algorithm>
#include <limits>

#include "sched/bounds.hpp"
#include "sched/verify_hook.hpp"

namespace medcc::sched {
namespace {

struct PcpState {
  const Instance* inst = nullptr;
  double deadline = 0.0;
  Schedule schedule;
  std::vector<bool> assigned;  ///< path processing done for this module
  std::vector<double> weights;
  std::size_t paths = 0;

  [[nodiscard]] double makespan() const {
    return dag::makespan(inst->workflow().graph(), weights,
                         inst->edge_times());
  }

  /// Builds the partial critical path of unassigned modules ending just
  /// before `anchor`: repeatedly hop to the unassigned predecessor with
  /// the latest earliest-finish time. Returns front-to-back order.
  [[nodiscard]] std::vector<NodeId> partial_critical_path(NodeId anchor) {
    const auto cpm = dag::compute_cpm(inst->workflow().graph(), weights,
                                      inst->edge_times());
    std::vector<NodeId> path;
    NodeId cursor = anchor;
    for (;;) {
      NodeId critical_parent = cursor;
      double latest = -1.0;
      for (NodeId p : inst->workflow().graph().predecessors(cursor)) {
        if (assigned[p]) continue;
        if (cpm.eft[p] > latest) {
          latest = cpm.eft[p];
          critical_parent = p;
        }
      }
      if (critical_parent == cursor) break;
      path.push_back(critical_parent);
      cursor = critical_parent;
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  /// Cheapens the path as a unit: greedy downgrades (smallest time lost
  /// per dollar saved first) while the whole workflow still meets the
  /// deadline.
  void cheapen_path(const std::vector<NodeId>& path) {
    for (;;) {
      bool found = false;
      NodeId best_module = 0;
      std::size_t best_type = 0;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (NodeId i : path) {
        const std::size_t cur = schedule.type_of[i];
        for (std::size_t j = 0; j < inst->type_count(); ++j) {
          if (j == cur) continue;
          const double saving = inst->cost(i, cur) - inst->cost(i, j);
          if (saving <= 0.0) continue;
          const double loss = inst->time(i, j) - inst->time(i, cur);
          const double ratio =
              loss <= 0.0 ? -std::numeric_limits<double>::infinity()
                          : loss / saving;
          if (ratio >= best_ratio) continue;
          // Deadline feasibility of this single downgrade.
          const double saved = weights[i];
          weights[i] = inst->time(i, j);
          const bool feasible = makespan() <= deadline + 1e-9;
          weights[i] = saved;
          if (!feasible) continue;
          found = true;
          best_ratio = ratio;
          best_module = i;
          best_type = j;
        }
      }
      if (!found) return;
      schedule.type_of[best_module] = best_type;
      weights[best_module] = inst->time(best_module, best_type);
    }
  }

  void assign_parents(NodeId anchor) {
    for (;;) {
      const auto path = partial_critical_path(anchor);
      if (path.empty()) return;
      ++paths;
      cheapen_path(path);
      for (NodeId i : path) assigned[i] = true;
      // Recurse towards the entry through every member of the path.
      for (NodeId i : path) assign_parents(i);
    }
  }
};

}  // namespace

PcpResult pcp_deadline(const Instance& inst, double deadline) {
  PcpState state;
  state.inst = &inst;
  state.deadline = deadline;
  state.schedule = fastest_schedule(inst);
  state.weights = durations(inst, state.schedule);
  if (state.makespan() > deadline + 1e-9)
    throw Infeasible("pcp_deadline: deadline below the fastest MED");

  state.assigned.assign(inst.module_count(), false);
  for (NodeId i = 0; i < inst.module_count(); ++i)
    if (inst.workflow().module(i).is_fixed()) state.assigned[i] = true;

  state.assign_parents(inst.workflow().exit());
  // Isolated-from-exit corner: any module the walk never reached (cannot
  // happen in a valid workflow, but keep the invariant explicit).
  for (NodeId i : inst.workflow().computing_modules())
    if (!state.assigned[i]) state.assign_parents(i);

  PcpResult result;
  result.schedule = std::move(state.schedule);
  result.eval = evaluate(inst, result.schedule);
  result.paths = state.paths;
  MEDCC_ENSURES(result.eval.med <= deadline + 1e-9);
  detail::check_schedule_invariants(inst, result.schedule, result.eval,
                                    detail::kUnconstrained, deadline,
                                    "pcp_deadline");
  return result;
}

}  // namespace medcc::sched
