#include "sched/critical_greedy.hpp"

#include <limits>
#include <sstream>

#include "dag/cpm_kernel.hpp"
#include "sched/bounds.hpp"
#include "sched/verify_hook.hpp"

namespace medcc::sched {
namespace {

/// Shared implementation; `moves` (optional) records each reassignment.
Result run_critical_greedy(const Instance& inst, double budget,
                           const CriticalGreedyOptions& options,
                           std::vector<CgMove>* moves) {
  Result result;
  result.schedule = least_cost_schedule(inst);
  double current_cost = total_cost(inst, result.schedule);
  const double cmin = current_cost;
  if (budget < cmin) {
    std::ostringstream os;
    os << "critical_greedy: budget " << budget
       << " below least-cost schedule cost " << cmin;
    throw Infeasible(os.str());
  }

  auto weights = durations(inst, result.schedule);
  const dag::FlatDag& flat = inst.flat_dag();
  const auto computing = inst.workflow().computing_modules();

  // Per-round CPM runs through the reusable kernel: one full cpm_into to
  // seed the workspace, then incremental recomputes after each applied
  // upgrade (only the dirty downstream/upstream frontier is touched).
  dag::CpmWorkspace ws;
  bool cpm_ready = false;

  // Small epsilon so fp noise in accumulated dC never rejects a reschedule
  // the exact arithmetic would allow.
  const double kCostEps = 1e-9 * std::max(1.0, budget);

  for (;;) {
    const double cost_left = budget - current_cost;
    if (cost_left <= kCostEps) break;

    if (!cpm_ready) {
      dag::cpm_into(flat, weights, ws);
      cpm_ready = true;
    }

    // Candidate scan (Alg. 1, lines 11-13).
    bool found = false;
    NodeId best_module = 0;
    std::size_t best_type = 0;
    double best_dt = 0.0;
    double best_dc = 0.0;
    for (NodeId i : computing) {
      if (!options.all_modules && !ws.critical[i]) continue;
      const std::size_t cur = result.schedule.type_of[i];
      const double t_old = inst.time(i, cur);
      const double c_old = inst.cost(i, cur);
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        if (j == cur) continue;
        const double dt = t_old - inst.time(i, j);   // Eq. 10
        const double dc = inst.cost(i, j) - c_old;   // Eq. 11
        if (dt <= 0.0) continue;                     // must strictly improve
        if (dc > cost_left + kCostEps) continue;     // must be affordable
        bool better;
        if (options.ratio_criterion) {
          // Rank by time decrease per unit cost; free upgrades (dc <= 0)
          // dominate everything.
          const double ratio_new = dc <= 0.0 ? std::numeric_limits<double>::infinity()
                                             : dt / dc;
          const double ratio_best =
              !found ? -1.0
                     : (best_dc <= 0.0 ? std::numeric_limits<double>::infinity()
                                       : best_dt / best_dc);
          better = !found || ratio_new > ratio_best ||
                   (ratio_new == ratio_best && dt > best_dt);
        } else {
          // Alg. 1: largest dT; ties -> minimum dC.
          better = !found || dt > best_dt ||
                   (dt == best_dt && dc < best_dc);
        }
        if (better) {
          found = true;
          best_module = i;
          best_type = j;
          best_dt = dt;
          best_dc = dc;
        }
      }
    }
    if (!found) break;  // Alg. 1, lines 14-15

    const std::size_t from = result.schedule.type_of[best_module];
    result.schedule.type_of[best_module] = best_type;
    weights[best_module] = inst.time(best_module, best_type);
    current_cost += best_dc;
    ++result.iterations;
    dag::update_weight_full(flat, ws, best_module, weights[best_module]);
    if (moves != nullptr) {
      moves->push_back(CgMove{best_module, from, best_type, best_dt, best_dc,
                              ws.makespan, current_cost});
    }
  }

  result.eval = evaluate(inst, result.schedule);
  MEDCC_ENSURES(result.eval.cost <= budget + 1e-6 * std::max(1.0, budget));
  detail::check_schedule_invariants(inst, result.schedule, result.eval, budget,
                                    detail::kUnconstrained, "critical_greedy");
  return result;
}

}  // namespace

Result critical_greedy(const Instance& inst, double budget,
                       const CriticalGreedyOptions& options) {
  return run_critical_greedy(inst, budget, options, nullptr);
}

CgTrace critical_greedy_trace(const Instance& inst, double budget,
                              const CriticalGreedyOptions& options) {
  CgTrace trace;
  trace.result =
      run_critical_greedy(inst, budget, options, &trace.moves);
  return trace;
}

}  // namespace medcc::sched
