// Boundary schedules and the reasonable budget range [Cmin, Cmax]
// (Section V-B): any budget below Cmin is infeasible, any budget above
// Cmax buys nothing beyond the fastest schedule.
#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace medcc::sched {

/// S_least-cost: each module on its cheapest type; ties -> fastest among
/// the cheapest (Alg. 1, line 2).
[[nodiscard]] Schedule least_cost_schedule(const Instance& inst);

/// S_fastest: each module on its fastest type; ties -> cheapest among the
/// fastest.
[[nodiscard]] Schedule fastest_schedule(const Instance& inst);

/// [Cmin, Cmax] = [cost(S_least-cost), cost(S_fastest)].
struct CostBounds {
  double cmin = 0.0;
  double cmax = 0.0;
};
[[nodiscard]] CostBounds cost_bounds(const Instance& inst);

/// The paper's budget sweep: `levels` budgets from Cmin to Cmax at a
/// uniform interval dC = (Cmax-Cmin)/levels, i.e. Cmin + k*dC for
/// k = 1..levels (level `levels` == Cmax). levels >= 1.
[[nodiscard]] std::vector<double> budget_levels(const CostBounds& bounds,
                                                std::size_t levels);

}  // namespace medcc::sched
