#include "sched/mckp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace medcc::sched {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::int64_t scaled_weight(double w, double scale) {
  const double s = w * scale;
  const auto rounded = std::llround(s);
  if (std::abs(s - static_cast<double>(rounded)) > 1e-6 * std::max(1.0, s))
    throw InvalidArgument(
        "solve_mckp_dp: weight not integral under the given scale");
  if (rounded < 0)
    throw InvalidArgument("solve_mckp_dp: negative weight");
  return rounded;
}

}  // namespace

MckpSolution solve_mckp_dp(const MckpInstance& mckp, double weight_scale) {
  const std::size_t m = mckp.classes.size();
  MckpSolution solution;
  if (m == 0) {
    solution.feasible = true;
    return solution;
  }
  for (const auto& cls : mckp.classes)
    if (cls.empty())
      throw InvalidArgument("solve_mckp_dp: empty class");

  const auto capacity = static_cast<std::int64_t>(
      std::floor(mckp.capacity * weight_scale + 1e-9));
  if (capacity < 0) return solution;  // infeasible: nothing fits
  const auto cap = static_cast<std::size_t>(capacity);

  // dp[c] = max profit choosing one item from each processed class with
  // total scaled weight exactly <= c (monotone closure applied at the end
  // of each round); choice[k][c] records the item picked for class k.
  std::vector<double> dp(cap + 1, 0.0);
  std::vector<std::vector<std::uint32_t>> choice(
      m, std::vector<std::uint32_t>(cap + 1, 0));

  std::vector<double> next(cap + 1);
  for (std::size_t k = 0; k < m; ++k) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (std::size_t item = 0; item < mckp.classes[k].size(); ++item) {
      const auto& it = mckp.classes[k][item];
      const std::int64_t w = scaled_weight(it.weight, weight_scale);
      if (w > capacity) continue;
      for (std::size_t c = static_cast<std::size_t>(w); c <= cap; ++c) {
        const double base = dp[c - static_cast<std::size_t>(w)];
        if (base == kNegInf) continue;
        const double candidate = base + it.profit;
        if (candidate > next[c]) {
          next[c] = candidate;
          choice[k][c] = static_cast<std::uint32_t>(item);
        }
      }
    }
    dp.swap(next);
  }

  // Best over all capacities; also track the weight used.
  std::size_t best_c = 0;
  double best_profit = kNegInf;
  for (std::size_t c = 0; c <= cap; ++c) {
    if (dp[c] > best_profit) {
      best_profit = dp[c];
      best_c = c;
    }
  }
  if (best_profit == kNegInf) return solution;  // no feasible choice

  solution.feasible = true;
  solution.total_profit = best_profit;
  solution.pick.assign(m, 0);
  std::size_t c = best_c;
  for (std::size_t k = m; k-- > 0;) {
    const std::size_t item = choice[k][c];
    solution.pick[k] = item;
    const auto w = static_cast<std::size_t>(
        scaled_weight(mckp.classes[k][item].weight, weight_scale));
    MEDCC_ENSURES(w <= c);
    c -= w;
  }
  for (std::size_t k = 0; k < m; ++k)
    solution.total_weight += mckp.classes[k][solution.pick[k]].weight;
  return solution;
}

namespace {

struct BbState {
  const MckpInstance* mckp = nullptr;
  std::vector<double> max_profit_suffix;
  std::vector<double> min_weight_suffix;
  std::vector<std::size_t> current;
  MckpSolution best;
  std::uint64_t nodes = 0;
  std::uint64_t max_nodes = 0;

  void dfs(std::size_t k, double profit, double weight) {
    if (++nodes > max_nodes)
      throw Error("solve_mckp_bb: node budget exceeded");
    if (k == mckp->classes.size()) {
      if (!best.feasible || profit > best.total_profit ||
          (profit == best.total_profit && weight < best.total_weight)) {
        best.feasible = true;
        best.total_profit = profit;
        best.total_weight = weight;
        best.pick = current;
      }
      return;
    }
    if (best.feasible &&
        profit + max_profit_suffix[k] <= best.total_profit - 1e-15)
      return;
    for (std::size_t item = 0; item < mckp->classes[k].size(); ++item) {
      const auto& it = mckp->classes[k][item];
      const double w = weight + it.weight;
      if (w + min_weight_suffix[k + 1] > mckp->capacity + 1e-9) continue;
      current[k] = item;
      dfs(k + 1, profit + it.profit, w);
    }
  }
};

}  // namespace

MckpSolution solve_mckp_bb(const MckpInstance& mckp, std::uint64_t max_nodes) {
  for (const auto& cls : mckp.classes)
    if (cls.empty())
      throw InvalidArgument("solve_mckp_bb: empty class");

  BbState state;
  state.mckp = &mckp;
  state.max_nodes = max_nodes;
  const std::size_t m = mckp.classes.size();
  state.current.assign(m, 0);
  state.max_profit_suffix.assign(m + 1, 0.0);
  state.min_weight_suffix.assign(m + 1, 0.0);
  for (std::size_t k = m; k-- > 0;) {
    double maxp = kNegInf;
    double minw = std::numeric_limits<double>::infinity();
    for (const auto& it : mckp.classes[k]) {
      maxp = std::max(maxp, it.profit);
      minw = std::min(minw, it.weight);
    }
    state.max_profit_suffix[k] = state.max_profit_suffix[k + 1] + maxp;
    state.min_weight_suffix[k] = state.min_weight_suffix[k + 1] + minw;
  }
  state.dfs(0, 0.0, 0.0);
  return state.best;
}

bool is_pipeline(const Instance& inst) {
  const auto computing = inst.workflow().computing_modules();
  const auto& g = inst.workflow().graph();
  for (NodeId v : computing) {
    std::size_t computing_preds = 0, computing_succs = 0;
    for (NodeId p : g.predecessors(v))
      if (!inst.workflow().module(p).is_fixed()) ++computing_preds;
    for (NodeId s : g.successors(v))
      if (!inst.workflow().module(s).is_fixed()) ++computing_succs;
    if (computing_preds > 1 || computing_succs > 1) return false;
  }
  return true;
}

MckpInstance pipeline_to_mckp(const Instance& inst, double budget) {
  if (!is_pipeline(inst))
    throw InvalidArgument("pipeline_to_mckp: workflow is not a pipeline");

  // K >= max T(E_ij) so every profit K - T(E_ij) is non-negative.
  double k_const = 0.0;
  const auto computing = inst.workflow().computing_modules();
  for (NodeId i : computing)
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      k_const = std::max(k_const, inst.time(i, j));

  MckpInstance mckp;
  mckp.capacity = budget - inst.total_transfer_cost();
  mckp.classes.reserve(computing.size());
  for (NodeId i : computing) {
    std::vector<MckpItem> cls;
    cls.reserve(inst.type_count());
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      cls.push_back(MckpItem{k_const - inst.time(i, j), inst.cost(i, j)});
    mckp.classes.push_back(std::move(cls));
  }
  return mckp;
}

Result pipeline_optimal(const Instance& inst, double budget,
                        double weight_scale) {
  const auto mckp = pipeline_to_mckp(inst, budget);
  const auto solution = solve_mckp_dp(mckp, weight_scale);
  if (!solution.feasible)
    throw Infeasible("pipeline_optimal: no schedule fits the budget");

  Result result;
  result.schedule.type_of.assign(inst.module_count(), 0);
  const auto computing = inst.workflow().computing_modules();
  for (std::size_t k = 0; k < computing.size(); ++k)
    result.schedule.type_of[computing[k]] = solution.pick[k];
  result.eval = evaluate(inst, result.schedule);
  return result;
}

}  // namespace medcc::sched
