#include "sched/genetic.hpp"

#include <algorithm>
#include <limits>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/verify_hook.hpp"

namespace medcc::sched {
namespace {

/// Greedy repair: while over budget, apply the downgrade losing the least
/// time per dollar saved. Terminates because the least-cost schedule fits.
void repair(const Instance& inst, double budget, Schedule& schedule) {
  const auto computing = inst.workflow().computing_modules();
  double cost = total_cost(inst, schedule);
  while (cost > budget + 1e-9) {
    NodeId best_module = 0;
    std::size_t best_type = 0;
    double best_ratio = std::numeric_limits<double>::infinity();
    bool found = false;
    for (NodeId i : computing) {
      const std::size_t cur = schedule.type_of[i];
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        if (j == cur) continue;
        const double saving = inst.cost(i, cur) - inst.cost(i, j);
        if (saving <= 0.0) continue;
        const double loss = inst.time(i, j) - inst.time(i, cur);
        const double ratio = loss <= 0.0
                                 ? -std::numeric_limits<double>::infinity()
                                 : loss / saving;
        if (!found || ratio < best_ratio) {
          found = true;
          best_ratio = ratio;
          best_module = i;
          best_type = j;
        }
      }
    }
    MEDCC_ENSURES(found);  // guaranteed while cost > Cmin
    cost += inst.cost(best_module, best_type) -
            inst.cost(best_module, schedule.type_of[best_module]);
    schedule.type_of[best_module] = best_type;
  }
}

}  // namespace

Result genetic(const Instance& inst, double budget,
               const GeneticOptions& options) {
  MEDCC_EXPECTS(options.population >= 2);
  MEDCC_EXPECTS(options.tournament >= 1);
  const auto least = least_cost_schedule(inst);
  const double cmin = total_cost(inst, least);
  if (budget < cmin)
    throw Infeasible("genetic: budget below least-cost schedule cost");

  util::Prng rng(options.seed);
  const auto computing = inst.workflow().computing_modules();

  struct Individual {
    Schedule schedule;
    double med = 0.0;
  };
  const auto fitness = [&](Schedule schedule) {
    repair(inst, budget, schedule);
    Individual ind;
    ind.med = dag::makespan(inst.workflow().graph(),
                            durations(inst, schedule), inst.edge_times());
    ind.schedule = std::move(schedule);
    return ind;
  };

  // Seed population.
  std::vector<Individual> population;
  population.reserve(options.population);
  population.push_back(fitness(least));
  population.push_back(fitness(fastest_schedule(inst)));
  if (options.seed_with_cg)
    population.push_back(fitness(critical_greedy(inst, budget).schedule));
  while (population.size() < options.population) {
    Schedule random = least;
    for (NodeId i : computing)
      random.type_of[i] = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(inst.type_count()) - 1));
    population.push_back(fitness(std::move(random)));
  }

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* winner = nullptr;
    for (std::size_t k = 0; k < options.tournament; ++k) {
      const auto& candidate = population[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(population.size()) - 1))];
      if (!winner || candidate.med < winner->med) winner = &candidate;
    }
    return *winner;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(options.population);
    // Elitism: carry the best individual forward untouched.
    const auto best_it = std::min_element(
        population.begin(), population.end(),
        [](const Individual& a, const Individual& b) { return a.med < b.med; });
    next.push_back(*best_it);
    while (next.size() < options.population) {
      Schedule child = tournament_pick().schedule;
      if (rng.bernoulli(options.crossover_rate)) {
        const auto& other = tournament_pick().schedule;
        for (NodeId i : computing)
          if (rng.bernoulli(0.5)) child.type_of[i] = other.type_of[i];
      }
      for (NodeId i : computing) {
        if (rng.bernoulli(options.mutation_rate)) {
          child.type_of[i] = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(inst.type_count()) - 1));
        }
      }
      next.push_back(fitness(std::move(child)));
    }
    population = std::move(next);
  }

  const auto best_it = std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) { return a.med < b.med; });
  Result result;
  result.schedule = best_it->schedule;
  result.eval = evaluate(inst, result.schedule);
  result.iterations = options.generations;
  MEDCC_ENSURES(result.eval.cost <= budget + 1e-6 * std::max(1.0, budget));
  detail::check_schedule_invariants(inst, result.schedule, result.eval, budget,
                                    detail::kUnconstrained, "genetic");
  return result;
}

}  // namespace medcc::sched
