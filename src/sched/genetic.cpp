#include "sched/genetic.hpp"

#include <algorithm>
#include <limits>

#include "dag/cpm_kernel.hpp"
#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/verify_hook.hpp"
#include "util/thread_pool.hpp"

namespace medcc::sched {
namespace {

/// Greedy repair: while over budget, apply the downgrade losing the least
/// time per dollar saved. Terminates because the least-cost schedule fits.
void repair(const Instance& inst, double budget, Schedule& schedule) {
  const auto computing = inst.workflow().computing_modules();
  double cost = total_cost(inst, schedule);
  while (cost > budget + 1e-9) {
    NodeId best_module = 0;
    std::size_t best_type = 0;
    double best_ratio = std::numeric_limits<double>::infinity();
    bool found = false;
    for (NodeId i : computing) {
      const std::size_t cur = schedule.type_of[i];
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        if (j == cur) continue;
        const double saving = inst.cost(i, cur) - inst.cost(i, j);
        if (saving <= 0.0) continue;
        const double loss = inst.time(i, j) - inst.time(i, cur);
        const double ratio = loss <= 0.0
                                 ? -std::numeric_limits<double>::infinity()
                                 : loss / saving;
        if (!found || ratio < best_ratio) {
          found = true;
          best_ratio = ratio;
          best_module = i;
          best_type = j;
        }
      }
    }
    MEDCC_ENSURES(found);  // guaranteed while cost > Cmin
    cost += inst.cost(best_module, best_type) -
            inst.cost(best_module, schedule.type_of[best_module]);
    schedule.type_of[best_module] = best_type;
  }
}

struct Individual {
  Schedule schedule;
  double med = 0.0;
};

/// Fitness of one chromosome: greedy repair to feasibility, then the CPM
/// forward pass through the reusable per-thread workspace. No rng, no
/// shared mutable state -- safe to fan out over a pool.
Individual fitness_of(const Instance& inst, double budget, Schedule schedule) {
  repair(inst, budget, schedule);
  static thread_local dag::CpmWorkspace ws;
  const dag::FlatDag& flat = inst.flat_dag();
  ws.prepare(flat.node_count());
  const std::size_t m = inst.module_count();
  for (NodeId i = 0; i < m; ++i)
    ws.weights[i] = inst.time(i, schedule.type_of[i]);
  Individual ind;
  ind.med = dag::makespan_into(flat, ws);
  ind.schedule = std::move(schedule);
  return ind;
}

/// Evaluates `pending` (consuming it) and appends the individuals to
/// `out`, preserving order. With a pool, individuals are scored
/// concurrently, one CPM workspace per worker thread; each index writes
/// only its own slot, so results match the sequential path exactly.
void evaluate_batch(const Instance& inst, double budget,
                    std::vector<Schedule>&& pending,
                    std::vector<Individual>& out, util::ThreadPool* pool) {
  const std::size_t base = out.size();
  out.resize(base + pending.size());
  const auto eval_one = [&](std::size_t k) {
    out[base + k] = fitness_of(inst, budget, std::move(pending[k]));
  };
  if (pool != nullptr && pending.size() > 1) {
    util::parallel_for_index(*pool, pending.size(), eval_one);
  } else {
    for (std::size_t k = 0; k < pending.size(); ++k) eval_one(k);
  }
  pending.clear();
}

}  // namespace

Result genetic(const Instance& inst, double budget,
               const GeneticOptions& options) {
  MEDCC_EXPECTS(options.population >= 2);
  MEDCC_EXPECTS(options.tournament >= 1);
  const auto least = least_cost_schedule(inst);
  const double cmin = total_cost(inst, least);
  if (budget < cmin)
    throw Infeasible("genetic: budget below least-cost schedule cost");

  util::Prng rng(options.seed);
  const auto computing = inst.workflow().computing_modules();

  // Seed population. Chromosome construction draws from the rng
  // sequentially; scoring happens afterwards in one (optionally parallel)
  // rng-free batch, so the stream of draws -- and therefore the whole
  // search trajectory -- is identical to evaluating inline.
  std::vector<Individual> population;
  population.reserve(options.population);
  {
    std::vector<Schedule> seeds;
    seeds.reserve(options.population);
    seeds.push_back(least);
    seeds.push_back(fastest_schedule(inst));
    if (options.seed_with_cg)
      seeds.push_back(critical_greedy(inst, budget).schedule);
    while (seeds.size() < options.population) {
      Schedule random = least;
      for (NodeId i : computing)
        random.type_of[i] = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(inst.type_count()) - 1));
      seeds.push_back(std::move(random));
    }
    evaluate_batch(inst, budget, std::move(seeds), population, options.pool);
  }

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* winner = nullptr;
    for (std::size_t k = 0; k < options.tournament; ++k) {
      const auto& candidate = population[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(population.size()) - 1))];
      if (!winner || candidate.med < winner->med) winner = &candidate;
    }
    return *winner;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    // Elitism: carry the best individual forward untouched.
    const auto best_it = std::min_element(
        population.begin(), population.end(),
        [](const Individual& a, const Individual& b) { return a.med < b.med; });
    std::vector<Individual> next;
    next.reserve(options.population);
    next.push_back(*best_it);
    // Breed the offspring first (sequential rng over the previous
    // generation only), then score the whole brood as one batch.
    std::vector<Schedule> children;
    children.reserve(options.population - 1);
    while (next.size() + children.size() < options.population) {
      Schedule child = tournament_pick().schedule;
      if (rng.bernoulli(options.crossover_rate)) {
        const auto& other = tournament_pick().schedule;
        for (NodeId i : computing)
          if (rng.bernoulli(0.5)) child.type_of[i] = other.type_of[i];
      }
      for (NodeId i : computing) {
        if (rng.bernoulli(options.mutation_rate)) {
          child.type_of[i] = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(inst.type_count()) - 1));
        }
      }
      children.push_back(std::move(child));
    }
    evaluate_batch(inst, budget, std::move(children), next, options.pool);
    population = std::move(next);
  }

  const auto best_it = std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) { return a.med < b.med; });
  Result result;
  result.schedule = best_it->schedule;
  result.eval = evaluate(inst, result.schedule);
  result.iterations = options.generations;
  MEDCC_ENSURES(result.eval.cost <= budget + 1e-6 * std::max(1.0, budget));
  detail::check_schedule_invariants(inst, result.schedule, result.eval, budget,
                                    detail::kUnconstrained, "genetic");
  return result;
}

}  // namespace medcc::sched
