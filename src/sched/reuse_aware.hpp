// Reuse-aware Critical-Greedy: the synthesis suggested by ablation A10.
//
// The paper's CTotal (Eq. 9) charges every module a full rounded-up
// instance quantum, but Section V-B's own VM-reuse observation means the
// *billed* cost of a schedule is lower: sequential same-type modules share
// one VM and its partial quanta. This variant runs the same critical-path
// greedy loop as Alg. 1 while charging candidate reassignments their
// *billed-with-reuse* cost delta (plan_vm_reuse uptime billing), so the
// budget buys strictly more rescheduling.
//
// Feasibility is with respect to the billed cost: the schedule's
// plan_vm_reuse uptime billing never exceeds the budget (which is also an
// upper bound on what the provider actually charges when the plan's VM
// sharing is realized, as sim::execute verifies).
#pragma once

#include "sched/schedule.hpp"

namespace medcc::sched {

struct ReuseAwareResult {
  Schedule schedule;
  Evaluation eval;          ///< analytic per-module evaluation (Eq. 8-9)
  double billed_cost = 0.0; ///< plan_vm_reuse uptime billing of `schedule`
  std::size_t iterations = 0;
};

/// Critical-Greedy with reuse-aware billing. Throws Infeasible when the
/// budget is below the least-cost schedule's *billed* cost.
[[nodiscard]] ReuseAwareResult critical_greedy_reuse_aware(
    const Instance& inst, double budget);

}  // namespace medcc::sched
