#include "sched/vm_reuse.hpp"

#include <algorithm>
#include <limits>

#include "sched/verify_hook.hpp"

namespace medcc::sched {

ReusePlan plan_vm_reuse(const Instance& inst, const Schedule& schedule) {
  const auto eval = evaluate(inst, schedule);
  const auto& wf = inst.workflow();

  // Modules sorted by planned (earliest) start time; ties by id.
  auto computing = wf.computing_modules();
  std::stable_sort(computing.begin(), computing.end(),
                   [&](NodeId a, NodeId b) {
                     return eval.cpm.est[a] < eval.cpm.est[b];
                   });

  ReusePlan plan;
  plan.instance_of.assign(wf.module_count(),
                          std::numeric_limits<std::size_t>::max());

  const auto& billing = inst.billing();
  for (NodeId v : computing) {
    const std::size_t type = schedule.type_of[v];
    const double start = eval.cpm.est[v];
    const double finish = eval.cpm.eft[v];
    const double fresh_billed = billing.billed_time(finish - start);

    // Candidate instances: same type, free before our start, and cheap to
    // extend -- the incremental billed quanta of keeping the instance up
    // through the idle gap must not exceed what a fresh instance would
    // bill. (This makes uptime billing with reuse never worse than the
    // analytic per-module billing, by induction over modules.)
    std::size_t best = std::numeric_limits<std::size_t>::max();
    double best_delta = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < plan.instances.size(); ++k) {
      const auto& vm = plan.instances[k];
      if (vm.type != type) continue;
      if (vm.last_finish > start + 1e-12) continue;  // still busy
      const double delta =
          billing.billed_time(finish - vm.first_start) -
          billing.billed_time(vm.last_finish - vm.first_start);
      if (delta > fresh_billed + 1e-12) continue;  // gap too expensive
      const bool better =
          best == std::numeric_limits<std::size_t>::max() ||
          delta < best_delta - 1e-12 ||
          (delta <= best_delta + 1e-12 &&
           vm.last_finish > plan.instances[best].last_finish);
      if (better) {
        best = k;
        best_delta = delta;
      }
    }
    if (best == std::numeric_limits<std::size_t>::max()) {
      plan.instances.push_back(VmInstance{type, {}, start, finish});
      best = plan.instances.size() - 1;
    }
    auto& vm = plan.instances[best];
    vm.modules.push_back(v);
    vm.first_start = std::min(vm.first_start, start);
    vm.last_finish = std::max(vm.last_finish, finish);
    plan.instance_of[v] = best;
  }

  for (const auto& vm : plan.instances) {
    plan.billed_cost_uptime += inst.billing().cost(
        vm.uptime(), inst.catalog().type(vm.type).cost_rate);
  }
  plan.cost_without_reuse = eval.cost - inst.total_transfer_cost();
  detail::check_reuse_invariants(inst, schedule, plan, "plan_vm_reuse");
  return plan;
}

}  // namespace medcc::sched
