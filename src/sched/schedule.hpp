// Schedule representation and evaluation for MED-CC.
#pragma once

#include <string>
#include <vector>

#include "dag/critical_path.hpp"
#include "sched/instance.hpp"

namespace medcc::sched {

/// A task schedule S : w_i -> VT_j, stored per module id. Entries for
/// fixed (entry/exit) modules are ignored by evaluation but kept so the
/// vector is indexable by NodeId.
struct Schedule {
  std::vector<std::size_t> type_of;

  [[nodiscard]] bool operator==(const Schedule&) const = default;
};

/// Full evaluation of a schedule against an instance.
struct Evaluation {
  double med = 0.0;   ///< TTotal: end-to-end delay (critical-path length)
  double cost = 0.0;  ///< CTotal: sum of billed module costs (+ transfer)
  dag::CpmResult cpm; ///< timing detail (est/eft/lst/lft/buffer/critical)
};

/// Evaluates MED and CTotal of `schedule` (Eqs. 8-9).
[[nodiscard]] Evaluation evaluate(const Instance& inst,
                                  const Schedule& schedule);

/// Just CTotal: cheaper than evaluate() when timing is not needed.
[[nodiscard]] double total_cost(const Instance& inst,
                                const Schedule& schedule);

/// Per-module execution durations under `schedule` (node-weight vector
/// usable with dag::compute_cpm).
[[nodiscard]] std::vector<double> durations(const Instance& inst,
                                            const Schedule& schedule);

/// Renders "w1->VT2 w2->VT3 ..." for tables and logs (computing modules
/// only).
[[nodiscard]] std::string to_string(const Instance& inst,
                                    const Schedule& schedule);

/// Outcome of a budget-constrained scheduler run.
struct Result {
  Schedule schedule;
  Evaluation eval;
  std::size_t iterations = 0;  ///< rescheduling rounds performed
};

}  // namespace medcc::sched
