// HBMCT -- Hybrid Balanced Minimum Completion Time (Sakellariou & Zhao,
// IPDPS 2004), the second makespan baseline the related-work section
// names: "HBMCT first assigns weights to the nodes and edges of a workflow
// graph, and then partitions the nodes into ordered groups and schedules
// independent tasks within each group."
//
// Like HEFT it maps modules onto a bounded pool of concrete machines.
// Phases:
//  1. rank tasks by upward rank (mean execution + downstream);
//  2. walking down the rank order, cut a new *group* whenever a task
//     depends on a task already in the current group -- groups therefore
//     contain mutually independent tasks;
//  3. per group, assign every task to the machine minimizing its
//     completion time, then rebalance: repeatedly try to move a task off
//     the group's makespan-defining machine if that lowers the group's
//     completion time.
#pragma once

#include "sched/heft.hpp"

namespace medcc::sched {

struct HbmctResult {
  std::vector<HeftPlacement> placement;  ///< per module id
  double makespan = 0.0;
  std::size_t groups = 0;
  std::size_t rebalance_moves = 0;
};

/// Schedules the instance's workflow on `machines`. Fixed modules run in
/// their fixed duration on any machine.
[[nodiscard]] HbmctResult hbmct(const Instance& inst,
                                const std::vector<cloud::VmType>& machines);

}  // namespace medcc::sched
