// A certified lower bound on the optimal MED under a budget -- usable at
// problem sizes where the exhaustive search is hopeless, so the benches
// can report how far Critical-Greedy is from optimal at the paper's
// largest scales.
//
// The bound: fix any source-to-sink path P. Every schedule must run P
// sequentially, and must spend at least the per-module minimum cost on the
// modules outside P; therefore
//
//   MED_opt(B)  >=  minTime(P | budget B - Cmin(V \ P)),
//
// where the inner problem is MED-CC on the pipeline P -- solvable exactly
// by the Section-IV MCKP reduction. Maximizing over several candidate
// paths (the critical paths of the fastest / least-cost / CG schedules)
// tightens the bound.
#pragma once

#include "sched/schedule.hpp"

namespace medcc::sched {

struct LowerBoundOptions {
  /// Weight scale for the MCKP DP (see solve_mckp_dp); must make the
  /// instance's CE entries integral. 1.0 fits integer-rate catalogs,
  /// 10.0 fits the WRF testbed's {0.1,0.4,0.8} rates.
  double weight_scale = 1.0;
  /// Also probe the critical path of Critical-Greedy's own schedule at
  /// the queried budget (costs one CG run; usually the tightest path).
  bool probe_cg_path = true;
};

/// Returns a value <= the optimal MED at `budget` (and <= every feasible
/// schedule's MED). Throws Infeasible when budget < Cmin.
[[nodiscard]] double med_lower_bound(const Instance& inst, double budget,
                                     const LowerBoundOptions& options = {});

}  // namespace medcc::sched
