// The dual problem: Minimum Cost under a Deadline constraint (MCD) -- the
// objective of the deadline-constrained related work the paper builds on
// (Yu et al.'s deadline assignment, Abrishami et al.'s PCP). Two solvers:
//
//  * deadline_loss  -- a LOSS-style heuristic: start from the fastest
//    schedule and repeatedly apply the downgrade with the best cost saving
//    whose resulting makespan still meets the deadline (ties -> smallest
//    makespan growth). Polynomial, any instance size.
//  * min_cost_under_deadline_exact -- branch-and-bound (small instances),
//    used to validate the heuristic in tests.
#pragma once

#include <cstdint>

#include "sched/schedule.hpp"

namespace medcc::sched {

/// Result of a deadline-constrained scheduling run.
struct DeadlineResult {
  Schedule schedule;
  Evaluation eval;
  std::size_t iterations = 0;
};

/// LOSS-style heuristic. Throws Infeasible when even the fastest schedule
/// misses the deadline.
[[nodiscard]] DeadlineResult deadline_loss(const Instance& inst,
                                           double deadline);

/// Exact minimum-cost schedule with MED <= deadline, by depth-first search
/// with cost/deadline pruning. Ties on cost break towards smaller MED.
/// Throws Infeasible when the deadline is unattainable and Error when
/// `max_nodes` is exceeded.
[[nodiscard]] DeadlineResult min_cost_under_deadline_exact(
    const Instance& inst, double deadline,
    std::uint64_t max_nodes = 200'000'000);

/// Budget a user should request so Critical-Greedy meets `deadline`:
/// sweeps `levels` budgets over [Cmin, Cmax] and returns the cheapest
/// *achieved CG cost* whose MED makes the deadline (CG is not
/// budget-monotone, so this scans rather than bisects).
/// Throws Infeasible when no swept budget meets the deadline.
[[nodiscard]] double budget_for_deadline(const Instance& inst,
                                         double deadline,
                                         std::size_t levels = 64);

}  // namespace medcc::sched
