#include "sched/reuse_aware.hpp"

#include <sstream>

#include "sched/bounds.hpp"
#include "sched/verify_hook.hpp"
#include "sched/vm_reuse.hpp"

namespace medcc::sched {

ReuseAwareResult critical_greedy_reuse_aware(const Instance& inst,
                                             double budget) {
  ReuseAwareResult result;
  result.schedule = least_cost_schedule(inst);
  double billed = plan_vm_reuse(inst, result.schedule).billed_cost_uptime;
  if (budget < billed) {
    std::ostringstream os;
    os << "critical_greedy_reuse_aware: budget " << budget
       << " below the least-cost schedule's billed cost " << billed;
    throw Infeasible(os.str());
  }

  auto weights = durations(inst, result.schedule);
  const auto& graph = inst.workflow().graph();
  const auto computing = inst.workflow().computing_modules();
  const double eps = 1e-9 * std::max(1.0, budget);

  for (;;) {
    const double left = budget - billed;
    if (left <= eps) break;

    const auto cpm = dag::compute_cpm(graph, weights, inst.edge_times());

    bool found = false;
    NodeId best_module = 0;
    std::size_t best_type = 0;
    double best_dt = 0.0;
    double best_dc = 0.0;
    double best_billed = 0.0;
    for (NodeId i : computing) {
      if (!cpm.critical[i]) continue;
      const std::size_t cur = result.schedule.type_of[i];
      const double t_old = inst.time(i, cur);
      for (std::size_t j = 0; j < inst.type_count(); ++j) {
        if (j == cur) continue;
        const double dt = t_old - inst.time(i, j);
        if (dt <= 0.0) continue;
        // Only an at-least-as-good dt can win; skip the costly reuse
        // replanning for strictly worse candidates.
        if (found && dt < best_dt) continue;
        result.schedule.type_of[i] = j;
        const double cand_billed =
            plan_vm_reuse(inst, result.schedule).billed_cost_uptime;
        result.schedule.type_of[i] = cur;
        const double dc = cand_billed - billed;
        if (dc > left + eps) continue;
        if (!found || dt > best_dt || (dt == best_dt && dc < best_dc)) {
          found = true;
          best_module = i;
          best_type = j;
          best_dt = dt;
          best_dc = dc;
          best_billed = cand_billed;
        }
      }
    }
    if (!found) break;
    result.schedule.type_of[best_module] = best_type;
    weights[best_module] = inst.time(best_module, best_type);
    billed = best_billed;
    ++result.iterations;
  }

  result.eval = evaluate(inst, result.schedule);
  result.billed_cost = billed;
  MEDCC_ENSURES(result.billed_cost <= budget + 1e-6 * std::max(1.0, budget));
  // The analytic cost may exceed the budget by design (feasibility is with
  // respect to billed-with-reuse cost), so only structural/timing/cost
  // invariants are checked here.
  detail::check_schedule_invariants(inst, result.schedule, result.eval,
                                    detail::kUnconstrained,
                                    detail::kUnconstrained,
                                    "critical_greedy_reuse_aware");
  return result;
}

}  // namespace medcc::sched
