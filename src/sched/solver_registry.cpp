#include "sched/solver_registry.hpp"

#include "sched/annealing.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/gain_loss.hpp"
#include "sched/genetic.hpp"

namespace medcc::sched {

const SolverRegistry& SolverRegistry::built_in() {
  static const SolverRegistry registry = [] {
    SolverRegistry r;
    r.register_solver("cg", [](const Instance& inst, double budget) {
      return critical_greedy(inst, budget);
    });
    r.register_solver("cg-all-modules",
                      [](const Instance& inst, double budget) {
                        CriticalGreedyOptions options;
                        options.all_modules = true;
                        return critical_greedy(inst, budget, options);
                      });
    r.register_solver("cg-ratio", [](const Instance& inst, double budget) {
      CriticalGreedyOptions options;
      options.ratio_criterion = true;
      return critical_greedy(inst, budget, options);
    });
    for (const auto variant :
         {GainLossVariant::V1, GainLossVariant::V2, GainLossVariant::V3}) {
      const auto suffix = static_cast<int>(variant);
      r.register_solver("gain" + std::to_string(suffix),
                        [variant](const Instance& inst, double budget) {
                          return gain(inst, budget, variant);
                        });
      r.register_solver("loss" + std::to_string(suffix),
                        [variant](const Instance& inst, double budget) {
                          return loss(inst, budget, variant);
                        });
    }
    r.register_solver("gain-all", [](const Instance& inst, double budget) {
      return gain(inst, budget, GainLossVariant::V3, GainMoveSet::AllPairs);
    });
    r.register_solver("genetic", [](const Instance& inst, double budget) {
      return genetic(inst, budget);
    });
    r.register_solver("annealing", [](const Instance& inst, double budget) {
      return annealing(inst, budget);
    });
    return r;
  }();
  return registry;
}

const SolverFn* SolverRegistry::find(std::string_view name) const {
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : &it->second;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& [name, fn] : solvers_) out.push_back(name);
  return out;
}

void SolverRegistry::register_solver(std::string name, SolverFn fn) {
  MEDCC_EXPECTS(!name.empty());
  MEDCC_EXPECTS(fn != nullptr);
  solvers_[std::move(name)] = std::move(fn);
}

}  // namespace medcc::sched
