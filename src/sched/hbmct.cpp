#include "sched/hbmct.hpp"

#include <algorithm>
#include <limits>

#include "sched/verify_hook.hpp"

namespace medcc::sched {
namespace {

double exec_time(const Instance& inst, NodeId i, const cloud::VmType& mach) {
  const auto& mod = inst.workflow().module(i);
  if (mod.is_fixed()) return *mod.fixed_time;
  return cloud::execution_time(mod.workload, mach);
}

/// Per-machine busy timeline with insertion-based placement.
struct MachineLanes {
  struct Interval {
    double start, finish;
  };
  std::vector<std::vector<Interval>> busy;

  explicit MachineLanes(std::size_t machines) : busy(machines) {}

  /// Earliest start >= ready on machine k for a task of length dur.
  [[nodiscard]] double earliest_slot(std::size_t k, double ready,
                                     double dur) const {
    double slot = ready;
    for (const auto& iv : busy[k]) {
      if (slot + dur <= iv.start + 1e-12) break;
      slot = std::max(slot, iv.finish);
    }
    return slot;
  }

  void occupy(std::size_t k, double start, double finish) {
    auto& lane = busy[k];
    lane.insert(std::upper_bound(lane.begin(), lane.end(), start,
                                 [](double s, const Interval& iv) {
                                   return s < iv.start;
                                 }),
                Interval{start, finish});
  }

  void release(std::size_t k, double start, double finish) {
    auto& lane = busy[k];
    const auto it = std::find_if(lane.begin(), lane.end(),
                                 [&](const Interval& iv) {
                                   return std::abs(iv.start - start) < 1e-12 &&
                                          std::abs(iv.finish - finish) < 1e-12;
                                 });
    MEDCC_EXPECTS(it != lane.end());
    lane.erase(it);
  }
};

}  // namespace

HbmctResult hbmct(const Instance& inst,
                  const std::vector<cloud::VmType>& machines) {
  if (machines.empty()) throw InvalidArgument("hbmct: empty machine pool");
  const auto& wf = inst.workflow();
  const auto& g = wf.graph();
  const std::size_t m = wf.module_count();

  // Phase 1: upward ranks with mean execution times (as in HEFT).
  std::vector<double> mean_time(m, 0.0);
  for (NodeId i = 0; i < m; ++i) {
    for (const auto& mach : machines) mean_time[i] += exec_time(inst, i, mach);
    mean_time[i] /= static_cast<double>(machines.size());
  }
  const auto order = g.topological_order();
  MEDCC_EXPECTS(order.has_value());
  std::vector<double> rank(m, 0.0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    double tail = 0.0;
    for (dag::EdgeId e : g.out_edges(v)) {
      const NodeId s = g.edge(e).dst;
      tail = std::max(tail, inst.edge_time(e) + rank[s]);
    }
    rank[v] = mean_time[v] + tail;
  }
  std::vector<std::size_t> topo_pos(m);
  for (std::size_t k = 0; k < order->size(); ++k) topo_pos[(*order)[k]] = k;
  std::vector<NodeId> by_rank(m);
  for (NodeId v = 0; v < m; ++v) by_rank[v] = v;
  std::sort(by_rank.begin(), by_rank.end(), [&](NodeId a, NodeId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  // Phase 2: cut groups of mutually independent tasks along the ranking.
  std::vector<std::vector<NodeId>> groups;
  std::vector<bool> in_current(m, false);
  std::vector<NodeId> current;
  const auto depends_on_current = [&](NodeId v) {
    for (NodeId p : g.predecessors(v))
      if (in_current[p]) return true;
    return false;
  };
  for (NodeId v : by_rank) {
    if (depends_on_current(v)) {
      groups.push_back(current);
      for (NodeId u : current) in_current[u] = false;
      current.clear();
    }
    current.push_back(v);
    in_current[v] = true;
  }
  if (!current.empty()) groups.push_back(current);

  // Phase 3: per group, MCT assignment + rebalancing.
  HbmctResult result;
  result.groups = groups.size();
  result.placement.assign(m, {});
  MachineLanes lanes(machines.size());
  std::vector<bool> placed(m, false);

  const auto ready_time = [&](NodeId v) {
    double ready = 0.0;
    for (dag::EdgeId e : g.in_edges(v)) {
      const NodeId p = g.edge(e).src;
      MEDCC_EXPECTS(placed[p]);
      ready = std::max(ready, result.placement[p].finish + inst.edge_time(e));
    }
    return ready;
  };

  const auto place = [&](NodeId v, std::size_t k) {
    const double dur = exec_time(inst, v, machines[k]);
    const double start = lanes.earliest_slot(k, ready_time(v), dur);
    result.placement[v] = HeftPlacement{k, start, start + dur};
    lanes.occupy(k, start, start + dur);
    placed[v] = true;
  };
  const auto unplace = [&](NodeId v) {
    const auto& p = result.placement[v];
    lanes.release(p.machine, p.start, p.finish);
    placed[v] = false;
  };
  const auto best_machine = [&](NodeId v) {
    std::size_t best = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < machines.size(); ++k) {
      const double dur = exec_time(inst, v, machines[k]);
      const double finish = lanes.earliest_slot(k, ready_time(v), dur) + dur;
      if (finish < best_finish - 1e-12) {
        best_finish = finish;
        best = k;
      }
    }
    return best;
  };

  for (const auto& group : groups) {
    // Initial MCT assignment in rank order.
    for (NodeId v : group) place(v, best_machine(v));

    // Rebalance: move a task off the group's latest-finishing machine when
    // that strictly improves the group completion time. The move cap is a
    // safety net against fp-tolerance ping-pong; each accepted move
    // strictly lowers the moved task's finish, so it never binds in
    // practice.
    bool improved = true;
    std::size_t moves_left = 10 * group.size() * machines.size();
    while (improved && moves_left-- > 0) {
      improved = false;
      // Group completion and its defining task.
      NodeId worst_task = group.front();
      for (NodeId v : group)
        if (result.placement[v].finish >
            result.placement[worst_task].finish)
          worst_task = v;
      const double group_finish = result.placement[worst_task].finish;
      // Try every alternative machine for the defining task.
      const auto saved = result.placement[worst_task];
      unplace(worst_task);
      std::size_t best = saved.machine;
      double best_finish = group_finish;
      for (std::size_t k = 0; k < machines.size(); ++k) {
        if (k == saved.machine) continue;
        const double dur = exec_time(inst, worst_task, machines[k]);
        const double finish =
            lanes.earliest_slot(k, ready_time(worst_task), dur) + dur;
        if (finish < best_finish - 1e-12) {
          best_finish = finish;
          best = k;
        }
      }
      place(worst_task, best);
      if (best != saved.machine) {
        improved = true;
        ++result.rebalance_moves;
      }
    }
  }

  for (const auto& p : result.placement)
    result.makespan = std::max(result.makespan, p.finish);
  detail::check_placement_invariants(inst, machines, result.placement,
                                     result.makespan, "hbmct");
  return result;
}

}  // namespace medcc::sched
