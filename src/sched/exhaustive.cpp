#include "sched/exhaustive.hpp"

#include <algorithm>
#include <limits>

#include "sched/bounds.hpp"
#include "sched/verify_hook.hpp"

namespace medcc::sched {
namespace {

struct SearchState {
  const Instance* inst = nullptr;
  const ExhaustiveOptions* options = nullptr;
  std::vector<NodeId> order;           ///< computing modules, search order
  std::vector<double> min_cost_suffix; ///< sum of min costs from depth k on
  std::vector<double> weights;         ///< current duration per module
  Schedule current;
  Schedule best;
  double best_med = std::numeric_limits<double>::infinity();
  double best_cost = std::numeric_limits<double>::infinity();
  double budget = 0.0;
  std::uint64_t nodes = 0;

  void dfs(std::size_t depth, double cost_so_far) {
    if (++nodes > options->max_nodes)
      throw Error("exhaustive_optimal: node budget exceeded");
    if (depth == order.size()) {
      const double med = dag::makespan(inst->workflow().graph(), weights,
                                       inst->edge_times());
      if (med < best_med - 1e-12 ||
          (med <= best_med + 1e-12 && cost_so_far < best_cost)) {
        best_med = med;
        best_cost = cost_so_far;
        best = current;
      }
      return;
    }
    // Optimistic makespan bound: unassigned modules at their fastest type
    // (their weight vector entries are pre-seeded with the fastest time).
    const double optimistic = dag::makespan(inst->workflow().graph(), weights,
                                            inst->edge_times());
    if (optimistic >= best_med - 1e-12 &&
        // keep exploring equal-MED branches only if they might be cheaper
        !(optimistic <= best_med + 1e-12 &&
          cost_so_far + min_cost_suffix[depth] < best_cost))
      return;

    const NodeId i = order[depth];
    const double saved_weight = weights[i];
    for (std::size_t j = 0; j < inst->type_count(); ++j) {
      const double c = cost_so_far + inst->cost(i, j);
      if (c + min_cost_suffix[depth + 1] > budget + 1e-9) continue;
      current.type_of[i] = j;
      weights[i] = inst->time(i, j);
      dfs(depth + 1, c);
    }
    weights[i] = saved_weight;
  }
};

}  // namespace

ExhaustiveResult exhaustive_optimal(const Instance& inst, double budget,
                                    const ExhaustiveOptions& options) {
  const auto least = least_cost_schedule(inst);
  const double cmin = total_cost(inst, least);
  if (budget < cmin)
    throw Infeasible("exhaustive_optimal: budget below least-cost cost");

  SearchState state;
  state.inst = &inst;
  state.options = &options;
  state.order = inst.workflow().computing_modules();
  state.budget = budget;
  state.current.type_of.assign(inst.module_count(), 0);
  state.best = least;

  // Search the largest-workload modules first: they decide the makespan,
  // so bound pruning kicks in early.
  std::stable_sort(state.order.begin(), state.order.end(),
                   [&](NodeId a, NodeId b) {
                     return inst.time(a, inst.catalog().fastest_index()) >
                            inst.time(b, inst.catalog().fastest_index());
                   });

  // Suffix sums of per-module minimum costs for the cost bound.
  state.min_cost_suffix.assign(state.order.size() + 1, 0.0);
  for (std::size_t k = state.order.size(); k-- > 0;) {
    double mc = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      mc = std::min(mc, inst.cost(state.order[k], j));
    state.min_cost_suffix[k] = state.min_cost_suffix[k + 1] + mc;
  }

  // Seed weights with each module's fastest time (optimistic bound) --
  // fixed modules keep their fixed duration.
  state.weights.resize(inst.module_count());
  for (NodeId v = 0; v < inst.module_count(); ++v) {
    double fastest = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      fastest = std::min(fastest, inst.time(v, j));
    state.weights[v] = fastest;
  }

  // Incumbent: the least-cost schedule is always feasible.
  {
    const auto eval = evaluate(inst, least);
    state.best_med = eval.med;
    state.best_cost = eval.cost;
  }

  state.dfs(0, inst.total_transfer_cost());

  ExhaustiveResult result;
  result.schedule = state.best;
  result.eval = evaluate(inst, result.schedule);
  result.nodes_visited = state.nodes;
  detail::check_schedule_invariants(inst, result.schedule, result.eval, budget,
                                    detail::kUnconstrained,
                                    "exhaustive_optimal");
  return result;
}

}  // namespace medcc::sched
