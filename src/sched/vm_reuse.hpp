// VM reuse analysis (Section V-B and the testbed experiments): once a
// schedule S maps modules to VM *types*, modules of the same type whose
// executions cannot overlap in time may share one VM instance, reducing
// both the number of VMs provisioned and -- under quantum billing -- the
// actually billed cost (partial quanta are shared).
//
// We place each module at its earliest start time (the CPM est) and run a
// greedy interval assignment per type: a module reuses the instance of its
// type that became free most recently before the module's start; otherwise
// a new instance is provisioned.
#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace medcc::sched {

/// One provisioned VM instance in the reuse plan.
struct VmInstance {
  std::size_t type = 0;
  std::vector<NodeId> modules;  ///< in execution order
  double first_start = 0.0;
  double last_finish = 0.0;

  [[nodiscard]] double uptime() const { return last_finish - first_start; }
};

struct ReusePlan {
  std::vector<VmInstance> instances;
  /// instance index per module id (fixed modules get SIZE_MAX).
  std::vector<std::size_t> instance_of;
  /// Billed cost when each instance is kept up from its first start to its
  /// last finish and billed in whole quanta (uptime billing).
  double billed_cost_uptime = 0.0;
  /// Analytic per-module cost (no reuse), for comparison: sum of C(E_ij).
  double cost_without_reuse = 0.0;
};

/// Computes the reuse plan for `schedule` on `inst`.
[[nodiscard]] ReusePlan plan_vm_reuse(const Instance& inst,
                                      const Schedule& schedule);

}  // namespace medcc::sched
