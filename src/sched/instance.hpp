// A MED-CC problem instance: workflow + VM catalog + billing, with the
// execution-time matrix TE and execution-cost matrix CE precomputed
// (Alg. 1, line 1). Matrices can come from the analytic model
// T(E_ij) = WL_i / VP_j, or be supplied directly (the WRF experiment uses
// the measured Table VI matrix, which real programs do not reproduce with
// a proportional model).
#pragma once

#include <vector>

#include "cloud/billing.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/vm_type.hpp"
#include "dag/flat_dag.hpp"
#include "workflow/workflow.hpp"

namespace medcc::sched {

using workflow::NodeId;
using workflow::Workflow;

class Instance {
public:
  /// Builds TE from the analytic model (Eq. 6) and CE from Eq. 7.
  [[nodiscard]] static Instance from_model(
      Workflow wf, cloud::VmCatalog catalog,
      cloud::BillingPolicy billing = cloud::BillingPolicy::per_unit_time(),
      cloud::NetworkModel network = {});

  /// Builds from a measured time matrix: `times[k][j]` is the execution
  /// time of the k-th computing module (in ascending module id) on catalog
  /// type j. Fixed modules keep their fixed durations.
  [[nodiscard]] static Instance from_matrix(
      Workflow wf, cloud::VmCatalog catalog,
      const std::vector<std::vector<double>>& times,
      cloud::BillingPolicy billing = cloud::BillingPolicy::per_unit_time(),
      cloud::NetworkModel network = {});

  [[nodiscard]] const Workflow& workflow() const { return workflow_; }
  [[nodiscard]] const cloud::VmCatalog& catalog() const { return catalog_; }
  [[nodiscard]] const cloud::BillingPolicy& billing() const {
    return billing_;
  }
  [[nodiscard]] const cloud::NetworkModel& network() const { return network_; }

  [[nodiscard]] std::size_t module_count() const {
    return workflow_.module_count();
  }
  [[nodiscard]] std::size_t type_count() const { return catalog_.size(); }

  /// T(E_ij): execution time of module i on VM type j. Fixed modules
  /// return their fixed duration for every j.
  [[nodiscard]] double time(NodeId i, std::size_t j) const {
    MEDCC_EXPECTS(i < module_count() && j < type_stride_);
    return te_[i * type_stride_ + j];
  }
  /// C(E_ij): billed execution cost of module i on type j (0 for fixed).
  [[nodiscard]] double cost(NodeId i, std::size_t j) const {
    MEDCC_EXPECTS(i < module_count() && j < type_stride_);
    return ce_[i * type_stride_ + j];
  }

  /// Transfer time over dependency edge e under the network model.
  [[nodiscard]] double edge_time(dag::EdgeId e) const {
    MEDCC_EXPECTS(e < edge_time_.size());
    return edge_time_[e];
  }
  /// Transfer times for every edge (indexable by EdgeId).
  [[nodiscard]] const std::vector<double>& edge_times() const {
    return edge_time_;
  }
  /// Total transfer cost (CR * total data); 0 in the single-cloud setting.
  [[nodiscard]] double total_transfer_cost() const {
    return total_transfer_cost_;
  }

  /// CSR snapshot of the workflow graph with edge transfer times inlined,
  /// built once at construction for the CPM kernels (dag/cpm_kernel.hpp).
  [[nodiscard]] const dag::FlatDag& flat_dag() const { return flat_dag_; }

private:
  Instance(Workflow wf, cloud::VmCatalog catalog, cloud::BillingPolicy billing,
           cloud::NetworkModel network);
  void finalize_edges();

  Workflow workflow_;
  cloud::VmCatalog catalog_;
  cloud::BillingPolicy billing_;
  cloud::NetworkModel network_;
  /// TE and CE, row-major [module][type] with stride type_stride_: one
  /// contiguous block each, so the schedulers' candidate scans stream
  /// through memory instead of chasing per-module allocations.
  std::vector<double> te_;
  std::vector<double> ce_;
  std::size_t type_stride_ = 0;
  std::vector<double> edge_time_;
  double total_transfer_cost_ = 0.0;
  dag::FlatDag flat_dag_;
};

}  // namespace medcc::sched
