// The GAIN and LOSS budget-constrained rescheduling heuristics of
// Sakellariou, Zhao, Tsiakkouri and Dikaiakos, "Scheduling workflows with
// budget constraints" (Integrated Research in GRID Computing, 2007) -- the
// baselines the paper compares Critical-Greedy against (GAIN3 is the
// strongest least-cost-seeded member of the family, so it is the one used
// in Section VI).
//
// GAIN starts from the least-cost schedule and spends budget on upgrades:
//   GainWeight(i, j) = (T_cur(i) - T(E_ij)) / (C(E_ij) - C_cur(i)),
// the time decrease per unit of extra money; upgrades that save time at no
// extra cost are taken unconditionally.
//
// LOSS starts from a fastest/HEFT-style schedule and downgrades while the
// cost exceeds the budget:
//   LossWeight(i, j) = (T(E_ij) - T_cur(i)) / (C_cur(i) - C(E_ij)),
// the time lost per unit of money saved; the smallest weight goes first.
//
// Variant semantics (1/2/3), following the original paper's structure:
//   1 -- weights from *task* execution-time differences, recomputed against
//        the current schedule after every reassignment;
//   2 -- weights from the *makespan* difference the reassignment would
//        cause (global effect), recomputed after every reassignment;
//   3 -- weights from task differences computed ONCE against the initial
//        schedule; tasks are then visited in static weight order.
#pragma once

#include "sched/schedule.hpp"

namespace medcc::sched {

enum class GainLossVariant { V1 = 1, V2 = 2, V3 = 3 };

/// Which reassignments GAIN considers per task.
enum class GainMoveSet {
  /// Each task may move to its *fastest* type only (one candidate per
  /// task) -- the original GAIN semantics. Reproduces the paper's GAIN3
  /// numbers (e.g. MED 784.0 on the WRF instance at budget 155).
  FastestType,
  /// Every (task, type) pair with a positive time decrease is a candidate
  /// -- a strictly stronger, ratio-greedy baseline (used in ablations).
  AllPairs,
};

/// GAIN under budget B. Throws Infeasible when B < Cmin.
[[nodiscard]] Result gain(const Instance& inst, double budget,
                          GainLossVariant variant = GainLossVariant::V3,
                          GainMoveSet move_set = GainMoveSet::FastestType);

/// GAIN3 -- the baseline of Section VI (static weights, fastest-type
/// moves, least-cost seed).
[[nodiscard]] inline Result gain3(const Instance& inst, double budget) {
  return gain(inst, budget, GainLossVariant::V3, GainMoveSet::FastestType);
}

/// LOSS under budget B. Starts from the fastest schedule (the unlimited-VM
/// analogue of a HEFT seed) and downgrades until the cost fits the budget.
/// Throws Infeasible when B < Cmin (then even full downgrading cannot fit).
[[nodiscard]] Result loss(const Instance& inst, double budget,
                          GainLossVariant variant = GainLossVariant::V1);

}  // namespace medcc::sched
