// A Partial-Critical-Paths (PCP) scheduler for the deadline-constrained
// dual problem -- the related-work heuristic of Abrishami & Naghibzadeh
// ("Deadline-constrained workflow scheduling in SaaS clouds"), adapted to
// the paper's VM-type model.
//
// The algorithm starts from the all-fastest assignment, then decomposes
// the workflow into partial critical paths: repeatedly, walking back from
// an assigned anchor, it chains the not-yet-assigned "critical parent"
// (the predecessor finishing last) into a path, cheapens that path as a
// unit (greedy downgrades, cheapest time-per-dollar first) while the
// whole workflow still meets the deadline, marks it assigned, and recurses
// into the parents of every path member.
//
// Compared with sched::deadline_loss (which downgrades globally), PCP
// localizes the budget decisions per path -- the trade the original paper
// makes for scalability; tests and ablation A7 quantify the gap.
#pragma once

#include "sched/schedule.hpp"

namespace medcc::sched {

struct PcpResult {
  Schedule schedule;
  Evaluation eval;
  std::size_t paths = 0;  ///< partial critical paths processed
};

/// Minimum-cost-under-deadline via partial critical paths.
/// Throws Infeasible when even the fastest schedule misses the deadline.
[[nodiscard]] PcpResult pcp_deadline(const Instance& inst, double deadline);

}  // namespace medcc::sched
