// Critical-Greedy (Alg. 1 of the paper), the proposed MED-CC heuristic.
//
// Starting from the least-cost schedule, the algorithm repeatedly
//   1. recomputes the critical path of the currently mapped workflow,
//   2. over all critical modules and all VM types, finds the reassignment
//      with the largest execution-time decrease dT whose cost increase dC
//      fits in the remaining budget (ties -> smallest dC),
//   3. applies it and charges dC against the budget,
// until no affordable improving reassignment of a critical module exists.
//
// Complexity: the CP recomputation is O(m + |Ew|) per round; the candidate
// scan is O(|CP| * n).
#pragma once

#include "sched/schedule.hpp"

namespace medcc::sched {

/// Tuning knobs for the ablation study (bench/ablation_candidate_set);
/// the defaults are exactly Alg. 1.
struct CriticalGreedyOptions {
  /// Consider every module, not just critical ones (GAIN-like candidate
  /// set with CG's absolute-dT criterion).
  bool all_modules = false;
  /// Rank candidates by dT/dC instead of absolute dT (GAIN-like criterion
  /// with CG's critical-only candidate set).
  bool ratio_criterion = false;
};

/// Runs Critical-Greedy under budget B.
/// Throws Infeasible when B < Cmin (Alg. 1, lines 4-5).
[[nodiscard]] Result critical_greedy(const Instance& inst, double budget,
                                     const CriticalGreedyOptions& options = {});

/// One applied reassignment of a Critical-Greedy run.
struct CgMove {
  NodeId module = 0;
  std::size_t from_type = 0;
  std::size_t to_type = 0;
  double dt = 0.0;         ///< module execution-time decrease (Eq. 10)
  double dc = 0.0;         ///< cost increase charged (Eq. 11)
  double med_after = 0.0;  ///< end-to-end delay after applying the move
  double cost_after = 0.0;
};

/// The full rescheduling storyline (the Section V-B walkthrough, e.g. at
/// B=57: w4 then w3 then w6 then w2, ending at MED 6.77 with $1 unused).
struct CgTrace {
  Result result;
  std::vector<CgMove> moves;
};

/// Same algorithm as critical_greedy, additionally recording every move.
[[nodiscard]] CgTrace critical_greedy_trace(
    const Instance& inst, double budget,
    const CriticalGreedyOptions& options = {});

}  // namespace medcc::sched
