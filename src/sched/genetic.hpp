// A genetic-algorithm scheduler for MED-CC -- the metaheuristic baseline
// of the related work (Yu, "A budget constrained scheduling of workflow
// applications on utility grids using genetic algorithms", SC WORKS 2006),
// adapted to the paper's VM-type model.
//
// Chromosome: the type vector of a Schedule. Fitness: MED, with
// over-budget individuals repaired by greedy downgrades (cheapest
// cost-per-lost-hour first) rather than penalized, so the whole population
// stays feasible. Selection: tournament; crossover: uniform; mutation:
// per-gene type resampling. The population is seeded with the least-cost
// schedule, the (repaired) fastest schedule, and Critical-Greedy's result,
// so the GA never returns anything worse than CG.
#pragma once

#include "sched/schedule.hpp"
#include "util/prng.hpp"

namespace medcc::util {
class ThreadPool;
}  // namespace medcc::util

namespace medcc::sched {

struct GeneticOptions {
  std::size_t population = 40;
  std::size_t generations = 60;
  std::size_t tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.05;  ///< per gene
  std::uint64_t seed = 1;
  /// Seed the population with Critical-Greedy's schedule (recommended);
  /// disable to measure the GA's unaided quality.
  bool seed_with_cg = true;
  /// Optional worker pool for batch fitness evaluation (repair + CPM
  /// makespan). Evaluation is rng-free, each individual writes only its
  /// own slot, and every worker uses its own CPM workspace, so the result
  /// is identical to the sequential run regardless of thread count.
  /// nullptr (the default) evaluates sequentially.
  util::ThreadPool* pool = nullptr;
};

/// Runs the GA under budget B. Throws Infeasible when B < Cmin.
/// Deterministic given options.seed.
[[nodiscard]] Result genetic(const Instance& inst, double budget,
                             const GeneticOptions& options = {});

}  // namespace medcc::sched
