// Named dispatch over the budget-constrained MED-CC schedulers.
//
// Every solver that maps (Instance, budget) -> Result is reachable behind
// one string id, so callers that receive the solver choice as data -- the
// scheduling service, the CLI, config files -- need no compile-time
// knowledge of the individual algorithm headers. The built-in table covers
// Critical-Greedy and its ablation variants, the GAIN/LOSS families, and
// the two metaheuristics; all entries are deterministic (the GA and the
// annealer run with their default fixed seeds).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sched/schedule.hpp"

namespace medcc::sched {

/// A budget-constrained solver: throws Infeasible when budget < Cmin.
using SolverFn = std::function<Result(const Instance&, double budget)>;

/// A string-keyed table of budget-constrained solvers.
class SolverRegistry {
public:
  /// The immutable process-wide registry of built-in solvers:
  ///   cg, cg-all-modules, cg-ratio, gain1, gain2, gain3, gain-all,
  ///   loss1, loss2, loss3, genetic, annealing.
  [[nodiscard]] static const SolverRegistry& built_in();

  /// The solver registered under `name`, or nullptr.
  [[nodiscard]] const SolverFn* find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const {
    return find(name) != nullptr;
  }

  /// Registered ids, ascending.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return solvers_.size(); }

  /// Registers (or replaces) `name`. Callers composing a custom registry
  /// typically copy built_in() first and add entries on top.
  void register_solver(std::string name, SolverFn fn);

private:
  std::map<std::string, SolverFn, std::less<>> solvers_;
};

}  // namespace medcc::sched
