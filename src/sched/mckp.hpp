// The Multiple-Choice Knapsack Problem (MCKP) and its correspondence with
// MED-CC-Pipeline (Section IV of the paper).
//
// MCKP: m classes of items, each item with profit p and weight w; choose
// exactly one item per class maximizing total profit with total weight
// <= capacity.
//
// The paper proves MED-CC NP-complete by showing that its pipeline special
// case (zero transfer time) *is* MCKP: class i = module w_i, item j = VM
// type j with weight C(E_ij) and profit K - T(E_ij). We implement
//  * an exact dynamic program over integer weights,
//  * a branch-and-bound solver for fractional weights,
//  * both reduction directions, so the equivalence is executable and
//    property-tested (tests/sched_mckp_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"

namespace medcc::sched {

/// One MCKP item.
struct MckpItem {
  double profit = 0.0;
  double weight = 0.0;
};

/// An MCKP instance: classes of items and a capacity.
struct MckpInstance {
  std::vector<std::vector<MckpItem>> classes;
  double capacity = 0.0;
};

/// A choice of one item index per class.
struct MckpSolution {
  std::vector<std::size_t> pick;
  double total_profit = 0.0;
  double total_weight = 0.0;
  bool feasible = false;
};

/// Exact DP over integer weights. Weights are scaled by `weight_scale`
/// and rounded; the caller picks a scale that makes all weights integral
/// (e.g. 10 for the WRF rates {0.1,0.4,0.8}). Memory/time is
/// O(total_capacity * total_items) after scaling.
[[nodiscard]] MckpSolution solve_mckp_dp(const MckpInstance& mckp,
                                         double weight_scale = 1.0);

/// Exact branch-and-bound for arbitrary real weights. Classes are searched
/// in order with a linear-relaxation-free optimistic bound (max profit of
/// the remaining classes); practical for the paper's small-scale sizes.
[[nodiscard]] MckpSolution solve_mckp_bb(const MckpInstance& mckp,
                                         std::uint64_t max_nodes = 50'000'000);

/// The Section-IV forward reduction: MED-CC-Pipeline -> MCKP.
/// `inst` must be a pipeline workflow (every computing module has at most
/// one computing predecessor/successor); K is chosen as max T(E_ij) so all
/// profits are non-negative. Throws InvalidArgument otherwise.
[[nodiscard]] MckpInstance pipeline_to_mckp(const Instance& inst,
                                            double budget);

/// Solves MED-CC on a pipeline instance exactly via the MCKP DP.
/// Returns the schedule with minimum total execution time within budget.
/// `weight_scale` as in solve_mckp_dp.
[[nodiscard]] Result pipeline_optimal(const Instance& inst, double budget,
                                      double weight_scale = 1.0);

/// True when the instance's workflow is a chain of computing modules
/// (optionally bracketed by fixed entry/exit modules).
[[nodiscard]] bool is_pipeline(const Instance& inst);

}  // namespace medcc::sched
