#include "sched/lower_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "sched/bounds.hpp"
#include "sched/critical_greedy.hpp"
#include "sched/mckp.hpp"

namespace medcc::sched {
namespace {

/// Minimum achievable total time of the computing modules on `path` when
/// their combined billed cost may not exceed `path_budget` (the pipeline
/// MCKP of Section IV); fixed modules contribute their constant times.
/// Returns +inf when even the cheapest choices exceed the budget (cannot
/// happen when the caller subtracts true minima, but kept defensive).
double min_path_time(const Instance& inst, const std::vector<NodeId>& path,
                     double path_budget, double weight_scale) {
  double fixed_time = 0.0;
  MckpInstance mckp;
  mckp.capacity = path_budget;
  double k_const = 0.0;
  std::vector<NodeId> computing;
  for (NodeId i : path) {
    if (inst.workflow().module(i).is_fixed()) {
      fixed_time += *inst.workflow().module(i).fixed_time;
      continue;
    }
    computing.push_back(i);
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      k_const = std::max(k_const, inst.time(i, j));
  }
  for (NodeId i : computing) {
    std::vector<MckpItem> cls;
    for (std::size_t j = 0; j < inst.type_count(); ++j)
      cls.push_back(MckpItem{k_const - inst.time(i, j), inst.cost(i, j)});
    mckp.classes.push_back(std::move(cls));
  }
  if (mckp.classes.empty()) return fixed_time;
  const auto solution = solve_mckp_dp(mckp, weight_scale);
  if (!solution.feasible) return std::numeric_limits<double>::infinity();
  return fixed_time +
         k_const * static_cast<double>(mckp.classes.size()) -
         solution.total_profit;
}

/// Per-module minimum billed cost.
double min_cost(const Instance& inst, NodeId i) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < inst.type_count(); ++j)
    best = std::min(best, inst.cost(i, j));
  return best;
}

}  // namespace

double med_lower_bound(const Instance& inst, double budget,
                       const LowerBoundOptions& options) {
  const auto bounds = cost_bounds(inst);
  if (budget < bounds.cmin)
    throw Infeasible("med_lower_bound: budget below Cmin");

  // Candidate paths: critical paths of the boundary schedules (+ CG's).
  std::set<std::vector<NodeId>> paths;
  const auto add_path = [&](const Schedule& s) {
    const auto eval = evaluate(inst, s);
    if (!eval.cpm.critical_path.empty())
      paths.insert(eval.cpm.critical_path);
  };
  add_path(fastest_schedule(inst));
  add_path(least_cost_schedule(inst));
  if (options.probe_cg_path)
    add_path(critical_greedy(inst, budget).schedule);

  double total_min_cost = inst.total_transfer_cost();
  for (NodeId i : inst.workflow().computing_modules())
    total_min_cost += min_cost(inst, i);

  double bound = 0.0;
  for (const auto& path : paths) {
    double others_min = total_min_cost;
    for (NodeId i : path)
      if (!inst.workflow().module(i).is_fixed())
        others_min -= min_cost(inst, i);
    const double path_budget = budget - others_min;
    double t = min_path_time(inst, path, path_budget, options.weight_scale);
    // Transfer delays along the path are type-independent constants.
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      for (dag::EdgeId e : inst.workflow().graph().out_edges(path[k])) {
        if (inst.workflow().graph().edge(e).dst == path[k + 1]) {
          t += inst.edge_time(e);
          break;
        }
      }
    }
    if (std::isfinite(t)) bound = std::max(bound, t);
  }
  return bound;
}

}  // namespace medcc::sched
