#include "sched/heft.hpp"

#include <algorithm>
#include <limits>

#include "sched/verify_hook.hpp"

namespace medcc::sched {
namespace {

/// Execution time of module i on a concrete machine.
double exec_time(const Instance& inst, NodeId i, const cloud::VmType& mach) {
  const auto& mod = inst.workflow().module(i);
  if (mod.is_fixed()) return *mod.fixed_time;
  return cloud::execution_time(mod.workload, mach);
}

}  // namespace

HeftResult heft(const Instance& inst,
                const std::vector<cloud::VmType>& machines) {
  if (machines.empty()) throw InvalidArgument("heft: empty machine pool");
  const auto& wf = inst.workflow();
  const auto& g = wf.graph();
  const std::size_t m = wf.module_count();

  // Mean execution time per module over the pool.
  std::vector<double> mean_time(m, 0.0);
  for (NodeId i = 0; i < m; ++i) {
    for (const auto& mach : machines) mean_time[i] += exec_time(inst, i, mach);
    mean_time[i] /= static_cast<double>(machines.size());
  }

  // Upward rank: rank(i) = mean_time(i) + max over succ (c_ij + rank(succ)).
  const auto order = g.topological_order();
  MEDCC_EXPECTS(order.has_value());
  HeftResult result;
  result.upward_rank.assign(m, 0.0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    double tail = 0.0;
    for (dag::EdgeId e : g.out_edges(v)) {
      const NodeId s = g.edge(e).dst;
      tail = std::max(tail, inst.edge_time(e) + result.upward_rank[s]);
    }
    result.upward_rank[v] = mean_time[v] + tail;
  }

  // Scheduling order: descending upward rank; ties break on topological
  // position so zero-duration chains (rank ties) still run parents first.
  std::vector<std::size_t> topo_pos(m);
  for (std::size_t k = 0; k < order->size(); ++k) topo_pos[(*order)[k]] = k;
  std::vector<NodeId> sched_order(m);
  for (NodeId v = 0; v < m; ++v) sched_order[v] = v;
  std::sort(sched_order.begin(), sched_order.end(), [&](NodeId a, NodeId b) {
    if (result.upward_rank[a] != result.upward_rank[b])
      return result.upward_rank[a] > result.upward_rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  // Insertion-based EFT placement: each machine keeps a sorted list of
  // busy intervals; a task may slot into a gap.
  struct Interval {
    double start, finish;
  };
  std::vector<std::vector<Interval>> busy(machines.size());
  result.placement.assign(m, {});
  std::vector<bool> placed(m, false);

  for (NodeId v : sched_order) {
    // Ready time: all predecessors finished (+ transfer).
    double ready = 0.0;
    bool preds_done = true;
    for (dag::EdgeId e : g.in_edges(v)) {
      const NodeId p = g.edge(e).src;
      if (!placed[p]) {
        preds_done = false;
        break;
      }
      ready = std::max(ready, result.placement[p].finish + inst.edge_time(e));
    }
    // Descending upward rank guarantees predecessors go first; guard for
    // the degenerate all-zero-duration case by falling back to topological
    // completion.
    MEDCC_ENSURES(preds_done);

    double best_finish = std::numeric_limits<double>::infinity();
    std::size_t best_machine = 0;
    double best_start = 0.0;
    for (std::size_t k = 0; k < machines.size(); ++k) {
      const double dur = exec_time(inst, v, machines[k]);
      // Find the earliest slot of length dur at/after `ready`.
      double slot = ready;
      for (const auto& iv : busy[k]) {
        if (slot + dur <= iv.start + 1e-12) break;  // fits before iv
        slot = std::max(slot, iv.finish);
      }
      const double finish = slot + dur;
      if (finish < best_finish - 1e-12) {
        best_finish = finish;
        best_machine = k;
        best_start = slot;
      }
    }
    result.placement[v] =
        HeftPlacement{best_machine, best_start, best_finish};
    placed[v] = true;
    auto& lane = busy[best_machine];
    lane.insert(std::upper_bound(lane.begin(), lane.end(), best_start,
                                 [](double s, const Interval& iv) {
                                   return s < iv.start;
                                 }),
                Interval{best_start, best_finish});
    result.makespan = std::max(result.makespan, best_finish);
  }
  detail::check_placement_invariants(inst, machines, result.placement,
                                     result.makespan, "heft");
  return result;
}

}  // namespace medcc::sched
