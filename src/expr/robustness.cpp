#include "expr/robustness.hpp"

#include <algorithm>

namespace medcc::expr {

double RobustnessReport::miss_rate(double deadline) const {
  if (samples.empty()) return 0.0;
  const auto misses = static_cast<double>(
      std::count_if(samples.begin(), samples.end(),
                    [&](double med) { return med > deadline + 1e-12; }));
  return misses / static_cast<double>(samples.size());
}

RobustnessReport assess_robustness(const sched::Instance& inst,
                                   const sched::Schedule& schedule,
                                   util::ThreadPool& pool,
                                   const RobustnessOptions& options) {
  MEDCC_EXPECTS(options.trials >= 1);
  MEDCC_EXPECTS(options.noise >= 0.0);
  const auto nominal = sched::durations(inst, schedule);
  const auto& graph = inst.workflow().graph();

  RobustnessReport report;
  report.nominal_med =
      dag::makespan(graph, nominal, inst.edge_times());
  report.samples.assign(options.trials, 0.0);

  const util::Prng root(options.seed);
  util::parallel_for_index(
      pool, options.trials,
      [&](std::size_t trial) {
        auto rng = root.fork(trial);
        auto realized = nominal;
        for (sched::NodeId i = 0; i < realized.size(); ++i) {
          if (inst.workflow().module(i).is_fixed()) continue;
          realized[i] *= std::max(0.05, 1.0 + rng.normal(0.0, options.noise));
        }
        report.samples[trial] =
            dag::makespan(graph, realized, inst.edge_times());
      },
      /*grain=*/16);

  util::RunningStats stats;
  for (double med : report.samples) stats.add(med);
  report.mean = stats.mean();
  report.stddev = stats.stddev();
  report.p50 = util::median(report.samples);
  report.p95 = util::percentile(report.samples, 95.0);
  report.max = stats.max();
  return report;
}

}  // namespace medcc::expr
