#include "expr/instance_gen.hpp"

#include "workflow/random_workflow.hpp"

namespace medcc::expr {

const std::vector<ProblemSize>& table4_sizes() {
  static const std::vector<ProblemSize> sizes = {
      {5, 6, 3},     {10, 17, 4},   {15, 65, 5},   {20, 80, 5},
      {25, 201, 5},  {30, 269, 6},  {35, 401, 6},  {40, 434, 6},
      {45, 473, 6},  {50, 503, 7},  {55, 838, 7},  {60, 842, 7},
      {65, 993, 7},  {70, 1142, 7}, {75, 1179, 8}, {80, 1352, 8},
      {85, 1424, 8}, {90, 1825, 8}, {95, 1891, 9}, {100, 2344, 9},
  };
  return sizes;
}

const std::vector<ProblemSize>& fig7_sizes() {
  static const std::vector<ProblemSize> sizes = {
      {5, 6, 3}, {6, 11, 3}, {7, 14, 3}, {8, 18, 3}};
  return sizes;
}

sched::Instance make_instance(const ProblemSize& size, util::Prng& rng,
                              const InstanceGenOptions& options) {
  MEDCC_EXPECTS(size.modules >= 2 && size.types >= 1);
  workflow::RandomWorkflowSpec spec;
  spec.modules = size.modules;
  spec.edges = size.edges;
  spec.workload_min = options.workload_min;
  spec.workload_max = options.workload_max;
  auto wf = workflow::random_workflow(spec, rng);
  auto catalog = cloud::random_linear_catalog(
      size.types, options.unit_span * size.types, rng, options.base_power,
      options.base_price, options.efficiency);
  return sched::Instance::from_model(std::move(wf), std::move(catalog),
                                     options.billing);
}

}  // namespace medcc::expr
