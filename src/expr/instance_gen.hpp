// Random problem-instance generation for the simulation campaigns of
// Section VI: a problem size is the 3-tuple (m, |Ew|, n); instances pair a
// random workflow with an EC2-style linear-priced VM catalog.
#pragma once

#include <vector>

#include "sched/instance.hpp"
#include "util/prng.hpp"

namespace medcc::expr {

/// The paper's problem size tuple (m modules, |Ew| links, n VM types).
struct ProblemSize {
  std::size_t modules = 0;
  std::size_t edges = 0;
  std::size_t types = 0;
};

/// The 20 problem sizes of Table IV, in order (index 1..20 in the paper).
[[nodiscard]] const std::vector<ProblemSize>& table4_sizes();

/// The four small-scale sizes of Fig. 7 ((5,6,3) .. (8,18,3)).
[[nodiscard]] const std::vector<ProblemSize>& fig7_sizes();

/// Generation knobs ("appropriate ranges" in the paper's wording).
struct InstanceGenOptions {
  double workload_min = 10.0;
  double workload_max = 100.0;
  /// Catalog unit counts are distinct integers in [1, unit_span * types].
  std::size_t unit_span = 4;
  double base_power = 1.0;
  double base_price = 1.0;
  /// Power-per-unit bonus of larger types (Table I's economy of scale);
  /// see cloud::random_linear_catalog.
  double efficiency = 0.25;
  cloud::BillingPolicy billing = cloud::BillingPolicy::per_unit_time();
};

/// Deterministically generates the instance for (size, rng stream).
[[nodiscard]] sched::Instance make_instance(const ProblemSize& size,
                                            util::Prng& rng,
                                            const InstanceGenOptions& options = {});

}  // namespace medcc::expr
