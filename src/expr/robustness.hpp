// Monte-Carlo robustness assessment of a schedule: the paper schedules
// against *measured/estimated* execution times (Table VI notes the module
// times "remain stable"), but real runs jitter. This module samples
// perturbed realizations of the module durations and reports the
// distribution of the realized end-to-end delay -- so a user can pick a
// budget with a makespan guarantee instead of a point estimate.
#pragma once

#include "sched/schedule.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace medcc::expr {

struct RobustnessOptions {
  std::size_t trials = 500;
  /// Relative duration noise: each module's realized duration is
  /// nominal * max(0.05, 1 + N(0, noise)).
  double noise = 0.1;
  std::uint64_t seed = 1;
};

struct RobustnessReport {
  double nominal_med = 0.0;   ///< deterministic MED of the schedule
  double mean = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  std::vector<double> samples;  ///< realized MEDs, one per trial

  /// Fraction of trials whose realized MED exceeds `deadline`.
  [[nodiscard]] double miss_rate(double deadline) const;
};

/// Samples `options.trials` perturbed realizations in parallel on `pool`.
/// Deterministic given options.seed (per-trial forked PRNG streams).
[[nodiscard]] RobustnessReport assess_robustness(
    const sched::Instance& inst, const sched::Schedule& schedule,
    util::ThreadPool& pool, const RobustnessOptions& options = {});

}  // namespace medcc::expr
