// Scheduler comparison drivers shared by the reproduction benches:
// CG-vs-GAIN3 budget sweeps (Table IV, Figs. 8-11) and the small-scale
// optimality study (Table III, Fig. 7). Sweeps parallelize over
// (instance, budget) cells with per-cell deterministic PRNG streams.
#pragma once

#include <optional>
#include <vector>

#include "expr/instance_gen.hpp"
#include "sched/bounds.hpp"
#include "util/thread_pool.hpp"

namespace medcc::expr {

/// MED improvement of CG over GAIN3 (Section VI-B2):
/// (MED_GAIN - MED_CG) / MED_GAIN * 100.
[[nodiscard]] double improvement_percent(double med_cg, double med_gain);

/// One (instance, budget) comparison cell.
struct CompareCell {
  double budget = 0.0;
  double med_cg = 0.0;
  double med_gain = 0.0;
  double cost_cg = 0.0;
  double cost_gain = 0.0;

  [[nodiscard]] double improvement() const {
    return improvement_percent(med_cg, med_gain);
  }
};

/// CG vs GAIN3 on one instance across `levels` uniform budget levels in
/// [Cmin, Cmax].
[[nodiscard]] std::vector<CompareCell> sweep_budgets(
    const sched::Instance& inst, std::size_t levels);

/// Table IV: per problem size, one random instance, averaged over 20
/// budget levels.
struct SizeSummary {
  ProblemSize size;
  double avg_med_cg = 0.0;
  double avg_med_gain = 0.0;
  double avg_improvement = 0.0;   ///< mean over per-cell improvements
  double ratio = 0.0;             ///< avg_med_cg / avg_med_gain
};
[[nodiscard]] std::vector<SizeSummary> table4_sweep(
    util::ThreadPool& pool, std::uint64_t seed, std::size_t levels = 20);

/// Figs. 9-11: the full grid -- per problem size, `instances` random
/// workflows x `levels` budget levels. grid[size][level] is the mean
/// improvement over instances.
struct ImprovementGrid {
  std::vector<ProblemSize> sizes;
  std::vector<std::vector<double>> cell;  ///< [size][level]
  /// Mean over levels per size (Fig. 9) and over sizes per level (Fig. 10).
  std::vector<double> by_size;
  std::vector<double> by_level;
  double overall = 0.0;
};
[[nodiscard]] ImprovementGrid improvement_grid(util::ThreadPool& pool,
                                               std::uint64_t seed,
                                               std::size_t instances = 10,
                                               std::size_t levels = 20);

/// Table III / Fig. 7: small-scale comparison against exhaustive optimal.
struct OptimalityCell {
  double med_cg = 0.0;
  double med_gain = 0.0;
  double med_optimal = 0.0;
  bool cg_optimal = false;
  bool gain_optimal = false;
};
struct OptimalityStudy {
  ProblemSize size;
  std::vector<OptimalityCell> cells;  ///< one per instance
  double cg_percent_optimal = 0.0;
  double gain_percent_optimal = 0.0;
};
/// Runs `instances` random instances per size; the budget is the median of
/// [Cmin, Cmax] (Fig. 7's setting) unless `random_budget` (Table III's).
[[nodiscard]] std::vector<OptimalityStudy> optimality_study(
    util::ThreadPool& pool, const std::vector<ProblemSize>& sizes,
    std::size_t instances, std::uint64_t seed, bool random_budget = false);

}  // namespace medcc::expr
