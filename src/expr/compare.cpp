#include "expr/compare.hpp"

#include <cmath>

#include "sched/critical_greedy.hpp"
#include "sched/exhaustive.hpp"
#include "sched/gain_loss.hpp"

namespace medcc::expr {

double improvement_percent(double med_cg, double med_gain) {
  if (med_gain <= 0.0) return 0.0;
  return (med_gain - med_cg) / med_gain * 100.0;
}

std::vector<CompareCell> sweep_budgets(const sched::Instance& inst,
                                       std::size_t levels) {
  const auto bounds = sched::cost_bounds(inst);
  const auto budgets = sched::budget_levels(bounds, levels);
  std::vector<CompareCell> cells;
  cells.reserve(budgets.size());
  for (double budget : budgets) {
    CompareCell cell;
    cell.budget = budget;
    const auto cg = sched::critical_greedy(inst, budget);
    const auto g3 = sched::gain3(inst, budget);
    cell.med_cg = cg.eval.med;
    cell.med_gain = g3.eval.med;
    cell.cost_cg = cg.eval.cost;
    cell.cost_gain = g3.eval.cost;
    cells.push_back(cell);
  }
  return cells;
}

std::vector<SizeSummary> table4_sweep(util::ThreadPool& pool,
                                      std::uint64_t seed,
                                      std::size_t levels) {
  const auto& sizes = table4_sizes();
  std::vector<SizeSummary> summaries(sizes.size());
  util::Prng root(seed);
  util::parallel_for_index(pool, sizes.size(), [&](std::size_t s) {
    auto rng = root.fork(s);
    const auto inst = make_instance(sizes[s], rng);
    const auto cells = sweep_budgets(inst, levels);
    SizeSummary summary;
    summary.size = sizes[s];
    for (const auto& cell : cells) {
      summary.avg_med_cg += cell.med_cg;
      summary.avg_med_gain += cell.med_gain;
      summary.avg_improvement += cell.improvement();
    }
    const auto count = static_cast<double>(cells.size());
    summary.avg_med_cg /= count;
    summary.avg_med_gain /= count;
    summary.avg_improvement /= count;
    summary.ratio = summary.avg_med_gain > 0.0
                        ? summary.avg_med_cg / summary.avg_med_gain
                        : 1.0;
    summaries[s] = summary;
  });
  return summaries;
}

ImprovementGrid improvement_grid(util::ThreadPool& pool, std::uint64_t seed,
                                 std::size_t instances, std::size_t levels) {
  const auto& sizes = table4_sizes();
  ImprovementGrid grid;
  grid.sizes = sizes;
  grid.cell.assign(sizes.size(), std::vector<double>(levels, 0.0));

  util::Prng root(seed);
  // One parallel task per (size, instance); accumulation into the per-size
  // level vector is protected per-task by writing to distinct slices.
  std::vector<std::vector<std::vector<double>>> partial(
      sizes.size(),
      std::vector<std::vector<double>>(instances,
                                       std::vector<double>(levels, 0.0)));
  util::parallel_for_index(
      pool, sizes.size() * instances, [&](std::size_t idx) {
        const std::size_t s = idx / instances;
        const std::size_t k = idx % instances;
        auto rng = root.fork(idx);
        const auto inst = make_instance(sizes[s], rng);
        const auto cells = sweep_budgets(inst, levels);
        for (std::size_t level = 0; level < levels; ++level)
          partial[s][k][level] = cells[level].improvement();
      });

  for (std::size_t s = 0; s < sizes.size(); ++s)
    for (std::size_t level = 0; level < levels; ++level) {
      double sum = 0.0;
      for (std::size_t k = 0; k < instances; ++k)
        sum += partial[s][k][level];
      grid.cell[s][level] = sum / static_cast<double>(instances);
    }

  grid.by_size.assign(sizes.size(), 0.0);
  grid.by_level.assign(levels, 0.0);
  for (std::size_t s = 0; s < sizes.size(); ++s)
    for (std::size_t level = 0; level < levels; ++level) {
      grid.by_size[s] += grid.cell[s][level];
      grid.by_level[level] += grid.cell[s][level];
      grid.overall += grid.cell[s][level];
    }
  for (auto& v : grid.by_size) v /= static_cast<double>(levels);
  for (auto& v : grid.by_level) v /= static_cast<double>(sizes.size());
  grid.overall /= static_cast<double>(sizes.size() * levels);
  return grid;
}

std::vector<OptimalityStudy> optimality_study(
    util::ThreadPool& pool, const std::vector<ProblemSize>& sizes,
    std::size_t instances, std::uint64_t seed, bool random_budget) {
  std::vector<OptimalityStudy> studies(sizes.size());
  util::Prng root(seed);
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    studies[s].size = sizes[s];
    studies[s].cells.assign(instances, {});
  }
  util::parallel_for_index(
      pool, sizes.size() * instances, [&](std::size_t idx) {
        const std::size_t s = idx / instances;
        const std::size_t k = idx % instances;
        auto rng = root.fork(idx);
        const auto inst = make_instance(sizes[s], rng);
        const auto bounds = sched::cost_bounds(inst);
        const double budget =
            random_budget
                ? rng.uniform_real(bounds.cmin, bounds.cmax)
                : 0.5 * (bounds.cmin + bounds.cmax);
        OptimalityCell cell;
        cell.med_cg = sched::critical_greedy(inst, budget).eval.med;
        cell.med_gain = sched::gain3(inst, budget).eval.med;
        cell.med_optimal = sched::exhaustive_optimal(inst, budget).eval.med;
        const double tol = 1e-9 * std::max(1.0, cell.med_optimal);
        cell.cg_optimal = cell.med_cg <= cell.med_optimal + tol;
        cell.gain_optimal = cell.med_gain <= cell.med_optimal + tol;
        studies[s].cells[k] = cell;
      });
  for (auto& study : studies) {
    std::size_t cg = 0, gain = 0;
    for (const auto& cell : study.cells) {
      cg += cell.cg_optimal ? 1 : 0;
      gain += cell.gain_optimal ? 1 : 0;
    }
    const auto count = static_cast<double>(study.cells.size());
    study.cg_percent_optimal = 100.0 * static_cast<double>(cg) / count;
    study.gain_percent_optimal = 100.0 * static_cast<double>(gain) / count;
  }
  return studies;
}

}  // namespace medcc::expr
