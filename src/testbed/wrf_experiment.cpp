#include "testbed/wrf_experiment.hpp"

#include "sched/critical_greedy.hpp"
#include "sched/gain_loss.hpp"
#include "workflow/wrf.hpp"

namespace medcc::testbed {

sched::Instance wrf_instance() {
  const auto& te = workflow::wrf_te_matrix();  // [type][module]
  // Instance::from_matrix wants [module][type].
  std::vector<std::vector<double>> times(6, std::vector<double>(3));
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 6; ++i) times[i][j] = te[j][i];
  return sched::Instance::from_matrix(
      workflow::wrf_experiment_grouped(), cloud::wrf_catalog(), times,
      cloud::BillingPolicy::per_unit_time());  // unit = 1 second
}

std::vector<double> wrf_paper_budgets() {
  return {147.5, 150.0, 155.0, 174.9, 180.1, 186.2};
}

std::vector<WrfComparisonRow> run_wrf_comparison() {
  const auto inst = wrf_instance();
  std::vector<WrfComparisonRow> rows;
  for (double budget : wrf_paper_budgets()) {
    WrfComparisonRow row;
    row.budget = budget;
    row.cg = sched::critical_greedy(inst, budget);
    row.gain3 = sched::gain3(inst, budget);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace medcc::testbed
