// A Nimbus-cloud emulation (Section VI-C2): the paper's testbed is an
// open-source IaaS deployment with one controller node (client gateway +
// VM image repository) and several Xen VMM nodes where VMs are provisioned
// on client request. We emulate the control plane: image upload to the
// repository, image propagation to a VMM node, Xen domain boot, and
// capacity-constrained placement -- all in simulated time on top of
// sim::SimEngine, so provisioning latency and contention can be studied
// without the actual testbed hardware.
#pragma once

#include <string>
#include <vector>

#include "cloud/vm_type.hpp"
#include "sim/datacenter.hpp"

namespace medcc::testbed {

/// Configuration of the emulated private cloud.
struct NimbusConfig {
  /// VMM node capacities in processing-power units; the paper's testbed
  /// has 4 VMM nodes plus one controller.
  std::vector<double> vmm_capacities = {6.0, 6.0, 6.0, 6.0};
  /// VM image size (GB) and repository link bandwidth (GB/s) determine
  /// image propagation time on first use of a node.
  double image_size_gb = 6.8;
  double repo_bandwidth_gbps = 1.0;
  /// Xen domain boot time (seconds) once the image is local.
  double xen_boot_seconds = 30.0;
  /// Whether a node caches the image after first propagation.
  bool image_cache = true;
};

/// One provisioning request outcome.
struct ProvisionRecord {
  std::size_t vm_id = 0;
  std::size_t node = 0;
  double requested_at = 0.0;
  double ready_at = 0.0;
};

/// Emulated provisioning session: replays a batch of VM requests against
/// the virtual cluster and reports when each VM becomes usable.
class NimbusCloud {
public:
  NimbusCloud(NimbusConfig config, cloud::VmCatalog catalog);

  /// Provisions `types[i]` VMs in request order starting at t=0; returns
  /// one record per request. Requests queue when no VMM node has spare
  /// capacity (released only by release_all -- this emulates the paper's
  /// up-front virtual-cluster creation, where all VMs coexist).
  [[nodiscard]] std::vector<ProvisionRecord> provision_cluster(
      const std::vector<std::size_t>& types);

  [[nodiscard]] const NimbusConfig& config() const { return config_; }
  [[nodiscard]] const cloud::VmCatalog& catalog() const { return catalog_; }

  /// Total time until the whole cluster of `types` is usable.
  [[nodiscard]] double cluster_ready_time(
      const std::vector<std::size_t>& types);

private:
  NimbusConfig config_;
  cloud::VmCatalog catalog_;
};

}  // namespace medcc::testbed
