// The Section VI-C WRF experiment wiring (Tables V-VII, Fig. 15): the
// grouped three-pipeline WRF workflow, the measured execution-time matrix
// of Table VI, per-second billing, and the six budget values the paper
// evaluates.
#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace medcc::testbed {

/// The scheduling instance of the WRF experiment: grouped workflow
/// (Fig. 14), measured TE matrix (Table VI), Table V catalog, per-second
/// quantum billing. Cmin = 125.9, Cmax = 243.6 (verified in tests).
[[nodiscard]] sched::Instance wrf_instance();

/// The six budget values of Table VII.
[[nodiscard]] std::vector<double> wrf_paper_budgets();

/// One Table VII row: both schedulers at one budget.
struct WrfComparisonRow {
  double budget = 0.0;
  sched::Result cg;
  sched::Result gain3;
};

/// Runs Critical-Greedy and GAIN3 at every Table VII budget.
[[nodiscard]] std::vector<WrfComparisonRow> run_wrf_comparison();

}  // namespace medcc::testbed
