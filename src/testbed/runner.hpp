// Real-time (scaled) workflow execution on worker threads -- the
// proof-of-concept deployment substitute. Each planned VM becomes a worker
// thread that runs its assigned modules in order; DAG precedence is
// enforced with a condition variable over completed-module flags, exactly
// how a workflow engine daemon would block on input availability. Module
// durations come from the instance's TE matrix, scaled by `time_scale`
// (e.g. 1e-3 replays the 468-second WRF run in ~0.5 s of wall time).
#pragma once

#include "sched/schedule.hpp"
#include "testbed/programs.hpp"

namespace medcc::testbed {

struct RunnerOptions {
  /// Wall seconds per instance time unit.
  double time_scale = 1e-3;
  /// Sleep (default) or genuine CPU work per module.
  ProgramMode mode = ProgramMode::Sleep;
  /// Reuse one thread ("VM") for sequential same-type modules.
  bool reuse_vms = true;
  /// Relative runtime noise: each module's duration is scaled by
  /// max(0, 1 + N(0, noise)) with a per-(seed, module) deterministic
  /// stream -- models the ~1% run-to-run variation the paper's testbed
  /// measurements show. 0 disables.
  double noise = 0.0;
  std::uint64_t noise_seed = 1;
};

struct RunRecord {
  double start = 0.0;   ///< wall seconds from run start, unscaled back
  double finish = 0.0;  ///< .. i.e. divided by time_scale
};

struct RunResult {
  /// End-to-end measured delay in instance time units (wall / scale).
  double measured_makespan = 0.0;
  /// Analytic MED of the same schedule, for comparison.
  double analytic_med = 0.0;
  std::vector<RunRecord> modules;  ///< per module id
  std::size_t threads_used = 0;    ///< worker ("VM") threads spawned
};

/// Executes `schedule` with real threads. Throws on invalid schedules.
[[nodiscard]] RunResult run_threaded(const sched::Instance& inst,
                                     const sched::Schedule& schedule,
                                     const RunnerOptions& options = {});

}  // namespace medcc::testbed
