#include "testbed/runner.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/vm_reuse.hpp"
#include "util/prng.hpp"

namespace medcc::testbed {

RunResult run_threaded(const sched::Instance& inst,
                       const sched::Schedule& schedule,
                       const RunnerOptions& options) {
  if (options.time_scale <= 0.0)
    throw InvalidArgument("run_threaded: time_scale must be positive");
  const auto& wf = inst.workflow();
  wf.ensure_valid();
  MEDCC_EXPECTS(schedule.type_of.size() == wf.module_count());

  const auto analytic = sched::evaluate(inst, schedule);

  // Lane plan: each lane is one worker thread ("VM") with an ordered
  // module list; fixed modules each get their own lane (they model the
  // storage-side input/output processes, not VMs).
  std::vector<std::vector<sched::NodeId>> lanes;
  if (options.reuse_vms) {
    const auto plan = sched::plan_vm_reuse(inst, schedule);
    for (const auto& vm : plan.instances) lanes.push_back(vm.modules);
  } else {
    for (sched::NodeId m : wf.computing_modules()) lanes.push_back({m});
  }
  std::size_t compute_lanes = lanes.size();
  for (sched::NodeId m = 0; m < wf.module_count(); ++m)
    if (wf.module(m).is_fixed()) lanes.push_back({m});

  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<bool> finished(wf.module_count(), false);

  RunResult result;
  result.analytic_med = analytic.med;
  result.modules.assign(wf.module_count(), {});
  result.threads_used = compute_lanes;

  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed_units = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count() /
           options.time_scale;
  };

  auto worker = [&](const std::vector<sched::NodeId>& lane) {
    for (sched::NodeId m : lane) {
      // Block until every input of m is available.
      {
        std::unique_lock lock(mutex);
        done_cv.wait(lock, [&] {
          for (sched::NodeId p : wf.graph().predecessors(m))
            if (!finished[p]) return false;
          return true;
        });
      }
      double duration = wf.module(m).is_fixed()
                            ? *wf.module(m).fixed_time
                            : inst.time(m, schedule.type_of[m]);
      if (options.noise > 0.0) {
        util::Prng stream(options.noise_seed);
        auto module_stream = stream.fork(m);
        duration *= std::max(0.0, 1.0 + module_stream.normal(0.0,
                                                             options.noise));
      }
      const double start = elapsed_units();
      run_program(duration * options.time_scale, options.mode);
      {
        std::scoped_lock lock(mutex);
        result.modules[m].start = start;
        result.modules[m].finish = elapsed_units();
        finished[m] = true;
      }
      done_cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(lanes.size());
  for (const auto& lane : lanes) threads.emplace_back(worker, lane);
  for (auto& t : threads) t.join();

  result.measured_makespan = 0.0;
  for (const auto& r : result.modules)
    result.measured_makespan = std::max(result.measured_makespan, r.finish);
  return result;
}

}  // namespace medcc::testbed
