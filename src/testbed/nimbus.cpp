#include "testbed/nimbus.hpp"

#include <algorithm>

namespace medcc::testbed {

NimbusCloud::NimbusCloud(NimbusConfig config, cloud::VmCatalog catalog)
    : config_(std::move(config)), catalog_(std::move(catalog)) {
  if (config_.vmm_capacities.empty())
    throw InvalidArgument("NimbusCloud: need at least one VMM node");
  for (double cap : config_.vmm_capacities)
    if (cap <= 0.0)
      throw InvalidArgument("NimbusCloud: VMM capacity must be positive");
  if (config_.image_size_gb < 0.0 || config_.repo_bandwidth_gbps <= 0.0 ||
      config_.xen_boot_seconds < 0.0)
    throw InvalidArgument("NimbusCloud: bad image/boot parameters");
}

std::vector<ProvisionRecord> NimbusCloud::provision_cluster(
    const std::vector<std::size_t>& types) {
  // Greedy first-fit placement in request order; per-node serialized image
  // propagation (the repository streams one image per node link at a time)
  // followed by the Xen boot.
  const double propagation =
      config_.image_size_gb / config_.repo_bandwidth_gbps;
  std::vector<double> free_capacity = config_.vmm_capacities;
  std::vector<bool> image_local(free_capacity.size(), false);
  std::vector<double> node_busy_until(free_capacity.size(), 0.0);

  std::vector<ProvisionRecord> records;
  records.reserve(types.size());
  for (std::size_t r = 0; r < types.size(); ++r) {
    const std::size_t type = types[r];
    MEDCC_EXPECTS(type < catalog_.size());
    const double need = catalog_.type(type).processing_power;
    // First-fit node with spare capacity; the paper's up-front cluster
    // never releases, so an unplaceable request is an error.
    std::size_t node = free_capacity.size();
    for (std::size_t n = 0; n < free_capacity.size(); ++n) {
      if (free_capacity[n] + 1e-12 >= need) {
        node = n;
        break;
      }
    }
    if (node == free_capacity.size())
      throw Infeasible(
          "NimbusCloud: virtual cluster exceeds total VMM capacity");
    free_capacity[node] -= need;

    ProvisionRecord record;
    record.vm_id = r;
    record.node = node;
    record.requested_at = 0.0;
    double start = node_busy_until[node];
    double setup = config_.xen_boot_seconds;
    if (!image_local[node] || !config_.image_cache) setup += propagation;
    image_local[node] = image_local[node] || config_.image_cache;
    record.ready_at = start + setup;
    node_busy_until[node] = record.ready_at;
    records.push_back(record);
  }
  return records;
}

double NimbusCloud::cluster_ready_time(const std::vector<std::size_t>& types) {
  const auto records = provision_cluster(types);
  double ready = 0.0;
  for (const auto& r : records) ready = std::max(ready, r.ready_at);
  return ready;
}

}  // namespace medcc::testbed
