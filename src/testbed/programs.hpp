// Synthetic stand-ins for the WRF/WPS binaries (ungrib, metgrid, real,
// wrf, ARWpost): compute kernels whose wall time is controllable, so the
// threaded runner exercises a real concurrent execution path without the
// actual meteorological codes or input data. Two modes:
//  * sleep  -- precise timed wait (used by tests and the scaled replay);
//  * compute -- a floating-point stencil loop calibrated to the host, so
//    the work is real CPU time (used to demo CPU contention effects).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace medcc::testbed {

enum class ProgramMode { Sleep, Compute };

/// Calibrates the compute kernel: returns iterations per second on this
/// host (memoized after the first call; thread-safe).
[[nodiscard]] double calibrate_kernel();

/// Runs the synthetic program for approximately `seconds` wall time in the
/// given mode. Returns a checksum (compute mode) so the work cannot be
/// optimized away.
double run_program(double seconds, ProgramMode mode);

/// A named program of a WRF pipeline stage, for trace readability.
struct Program {
  std::string name;
  double nominal_seconds = 0.0;  ///< duration on the reference VM type
};

/// The five per-pipeline WRF stages of Fig. 13 with Table VI-scale
/// nominal durations (seconds on VT1).
[[nodiscard]] const std::array<Program, 5>& wrf_stage_programs();

}  // namespace medcc::testbed
